"""Two-level hierarchy latency model and functional access."""

import pytest

from repro.common.config import MemoryHierarchyConfig
from repro.common.errors import MemoryError_
from repro.memory.backing import BackingStore
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture
def hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(MemoryHierarchyConfig(), BackingStore())


class TestLatency:
    def test_cold_miss_costs_full_latency(self, hierarchy):
        assert hierarchy.access_latency(0x1000, is_write=False) == 100

    def test_l1_hit_after_fill(self, hierarchy):
        hierarchy.access_latency(0x1000, is_write=False)
        assert hierarchy.access_latency(0x1000, is_write=False) == 1

    def test_l2_hit_after_l1_eviction(self, hierarchy):
        hierarchy.access_latency(0x1000, is_write=False)
        hierarchy.l1.invalidate(0x1000)
        latency = hierarchy.access_latency(0x1000, is_write=False)
        assert latency == 1 + 8  # L1 lookup + L2 hit

    def test_warm_makes_hit(self, hierarchy):
        hierarchy.warm(0x2000)
        assert hierarchy.access_latency(0x2000, is_write=False) == 1

    def test_evict_forces_full_miss(self, hierarchy):
        hierarchy.warm(0x2000)
        hierarchy.evict(0x2000)
        assert hierarchy.access_latency(0x2000, is_write=False) == 100

    def test_write_allocates_dirty_in_l1(self, hierarchy):
        hierarchy.access_latency(0x3000, is_write=True)
        assert 0x3000 in hierarchy.l1.dirty_lines()

    def test_memory_access_counter(self, hierarchy):
        hierarchy.access_latency(0x1000, is_write=False)
        hierarchy.access_latency(0x1000, is_write=False)
        assert hierarchy.memory_accesses == 1


class TestFunctional:
    def test_read_write_roundtrip(self, hierarchy):
        hierarchy.write(0x100, 0xDEADBEEF, 8)
        assert hierarchy.read(0x100, 8) == 0xDEADBEEF

    def test_line_crossing_rejected(self, hierarchy):
        with pytest.raises(MemoryError_):
            hierarchy.read(0x1000 + 60, 8)

    def test_zero_size_rejected(self, hierarchy):
        with pytest.raises(MemoryError_):
            hierarchy.read(0x100, 0)


class TestConfigValidation:
    def test_line_size_mismatch_rejected(self):
        from repro.common.config import CacheConfig
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            MemoryHierarchyConfig(
                line_size=64,
                l1=CacheConfig(16 * 1024, 32, 2, 1),
            )

    def test_with_line_size(self):
        config = MemoryHierarchyConfig.with_line_size(128, miss_latency=80)
        assert config.l1.line_size == 128
        assert config.miss_latency == 80
