"""Address-space layout and page attributes."""

import pytest

from repro.common.errors import ConfigError, MemoryError_
from repro.memory.layout import (
    AddressSpace,
    PageAttr,
    Region,
    IO_COMBINING_BASE,
    IO_UNCACHED_BASE,
    default_address_space,
)


class TestRegion:
    def test_bounds(self):
        region = Region(0x1000, 0x1000, PageAttr.CACHED, "r")
        assert region.end == 0x2000
        assert region.contains(0x1000)
        assert region.contains(0x1FFF)
        assert not region.contains(0x2000)

    def test_overlap(self):
        a = Region(0, 100, PageAttr.CACHED)
        b = Region(50, 100, PageAttr.CACHED)
        c = Region(100, 100, PageAttr.CACHED)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            Region(0, 0, PageAttr.CACHED)


class TestAddressSpace:
    def test_requires_page_alignment(self):
        space = AddressSpace(page_size=8192)
        with pytest.raises(ConfigError):
            space.map_region(100, 8192, PageAttr.CACHED)
        with pytest.raises(ConfigError):
            space.map_region(8192, 100, PageAttr.CACHED)

    def test_rejects_overlap(self):
        space = AddressSpace(page_size=8192)
        space.map_region(0, 8192 * 2, PageAttr.CACHED, "a")
        with pytest.raises(ConfigError):
            space.map_region(8192, 8192, PageAttr.UNCACHED, "b")

    def test_attribute_lookup(self):
        space = default_address_space()
        assert space.attribute_of(0x1000) is PageAttr.CACHED
        assert space.attribute_of(IO_UNCACHED_BASE) is PageAttr.UNCACHED
        assert (
            space.attribute_of(IO_COMBINING_BASE + 64)
            is PageAttr.UNCACHED_COMBINING
        )

    def test_unmapped_access_raises(self):
        space = default_address_space()
        with pytest.raises(MemoryError_):
            space.attribute_of(0xFFFF_FFFF_0000)

    def test_check_span_inside_region(self):
        space = default_address_space()
        region = space.check_span(IO_UNCACHED_BASE, 64)
        assert region.attr is PageAttr.UNCACHED

    def test_check_span_rejects_boundary_cross(self):
        space = AddressSpace(page_size=8192)
        space.map_region(0, 8192, PageAttr.CACHED, "only")
        with pytest.raises(MemoryError_):
            space.check_span(8192 - 4, 8)

    def test_regions_sorted(self):
        space = AddressSpace(page_size=8192)
        space.map_region(8192 * 4, 8192, PageAttr.CACHED, "hi")
        space.map_region(0, 8192, PageAttr.CACHED, "lo")
        assert [r.name for r in space.regions] == ["lo", "hi"]

    def test_rejects_bad_page_size(self):
        with pytest.raises(ConfigError):
            AddressSpace(page_size=1000)


class TestPageAttr:
    def test_is_uncached(self):
        assert not PageAttr.CACHED.is_uncached
        assert PageAttr.UNCACHED.is_uncached
        assert PageAttr.UNCACHED_COMBINING.is_uncached
