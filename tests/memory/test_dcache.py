"""Non-blocking D-cache: MSHR semantics, LRU, write-back, coherence."""

import pytest

from repro.common.config import MemoryConfig
from repro.common.errors import ConfigError
from repro.memory.dcache import DataCache, DLineState, wire_peers


def tiny(assoc=2, sets=2, line=64, mshrs=2, policy="writeback"):
    return DataCache(
        MemoryConfig(
            enabled=True,
            size_bytes=line * assoc * sets,
            line_size=line,
            associativity=assoc,
            mshrs=mshrs,
            write_policy=policy,
        )
    )


class TestConfig:
    def test_geometry_validated(self):
        with pytest.raises(ConfigError):
            MemoryConfig(enabled=True, size_bytes=100)  # not a power of two
        with pytest.raises(ConfigError):
            MemoryConfig(enabled=True, mshrs=0)
        with pytest.raises(ConfigError):
            MemoryConfig(enabled=True, write_policy="writeonce")

    def test_num_sets(self):
        mem = MemoryConfig(size_bytes=16 * 1024, line_size=64, associativity=2)
        assert mem.num_sets == 128


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = tiny()
        assert cache.access(0x100, False, now=0) == 100  # miss_latency
        assert cache.access(0x100, False, now=100) == 101  # refill landed
        assert (cache.hits, cache.misses) == (1, 1)

    def test_same_line_offsets_share_residency(self):
        cache = tiny()
        cache.warm(0x100)
        assert cache.access(0x13F, False, now=0) == 1
        assert cache.misses == 0

    def test_warm_and_probe_count_nothing(self):
        cache = tiny()
        cache.warm(0x100)
        assert cache.probe(0x100)
        assert not cache.probe(0x200)
        assert (cache.hits, cache.misses) == (0, 0)


class TestMSHR:
    def test_secondary_miss_merges(self):
        cache = tiny()
        ready = cache.access(0x100, False, now=0)
        # Second access to the same line while the refill is in flight:
        # no new miss, no new refill, same wake-up cycle.
        assert cache.access(0x108, False, now=5) == ready
        assert cache.misses == 1
        assert cache.mshr_merges == 1
        assert cache.outstanding == 1

    def test_merged_store_installs_dirty(self):
        cache = tiny()
        cache.access(0x100, False, now=0)
        cache.access(0x100, True, now=1)  # merge, marks the refill dirty
        cache.drain(200)
        assert 0x100 in cache.dirty_lines()

    def test_capacity_stall(self):
        cache = tiny(mshrs=2)
        assert cache.can_accept(0x1000, now=0)
        cache.access(0x1000, False, now=0)
        cache.access(0x2000, False, now=0)
        # Both MSHRs busy: a third distinct line must stall at issue...
        assert not cache.can_accept(0x3000, now=1)
        assert cache.mshr_stall_cycles == 1
        # ...but accesses to in-flight lines still merge.
        assert cache.can_accept(0x2008, now=1)
        # Once a refill lands, the stalled line may enter.
        assert cache.can_accept(0x3000, now=100)

    def test_refills_drain_in_order(self):
        cache = tiny(mshrs=4)
        cache.access(0x1000, False, now=0)
        cache.access(0x2000, False, now=7)
        cache.drain(100)  # first refill due, second still in flight
        assert cache.probe(0x1000)
        assert not cache.probe(0x2000)
        assert cache.outstanding == 1

    def test_refill_hook_fires_on_primary_miss_only(self):
        cache = tiny()
        refills = []
        cache.refill_hook = refills.append
        cache.access(0x104, False, now=0)
        cache.access(0x108, False, now=1)  # secondary: no new traffic
        assert refills == [0x100]


class TestEviction:
    def test_lru_victim(self):
        cache = tiny(assoc=2, sets=1)
        cache.warm(0x000)
        cache.warm(0x040)
        cache.access(0x000, False, now=0)  # touch: 0x040 becomes LRU
        cache.access(0x080, False, now=1)
        cache.drain(200)
        assert cache.probe(0x000)
        assert not cache.probe(0x040)
        assert cache.probe(0x080)

    def test_dirty_victim_writes_back_clean_does_not(self):
        cache = tiny(assoc=1, sets=1)
        victims = []
        cache.writeback_hook = victims.append
        cache.warm(0x000)
        cache.access(0x000, True, now=0)  # dirty the resident line
        cache.access(0x040, False, now=1)  # conflict miss
        cache.drain(200)  # install evicts the dirty victim
        assert victims == [0x000]
        assert cache.writebacks == 1
        cache.access(0x080, False, now=300)
        cache.drain(500)  # 0x040 is clean: silent drop
        assert victims == [0x000]

    def test_writeback_precedes_refill_install(self):
        cache = tiny(assoc=1, sets=1)
        order = []
        cache.writeback_hook = lambda line: order.append(("wb", line))
        cache.refill_hook = lambda line: order.append(("refill", line))
        cache.warm(0x000)
        cache.access(0x000, True, now=0)
        cache.access(0x040, False, now=1)
        cache.drain(200)
        # The refill request goes on the bus at miss time; the victim's
        # write-back is generated when the refill installs.
        assert order == [("refill", 0x040), ("wb", 0x000)]
        assert cache.probe(0x040)


class TestWriteThrough:
    def test_store_hit_pays_memory_latency_and_stays_clean(self):
        cache = tiny(policy="writethrough")
        cache.warm(0x100)
        assert cache.access(0x100, True, now=0) == 100
        assert cache.dirty_lines() == []
        assert cache.writethroughs == 1

    def test_store_miss_does_not_allocate(self):
        cache = tiny(policy="writethrough")
        assert cache.access(0x200, True, now=0) == 100
        cache.drain(500)
        assert not cache.probe(0x200)
        assert cache.outstanding == 0

    def test_load_miss_still_allocates(self):
        cache = tiny(policy="writethrough")
        cache.access(0x300, False, now=0)
        cache.drain(500)
        assert cache.probe(0x300)


class TestCoherence:
    def test_store_invalidates_peers(self):
        a, b = tiny(), tiny()
        wire_peers([a, b])
        a.warm(0x100)
        b.warm(0x100)
        a.access(0x100, True, now=0)
        assert not b.probe(0x100)
        assert b.coherence_invalidations == 1
        assert a.probe(0x100)

    def test_dirty_refill_invalidates_peers_at_install(self):
        a, b = tiny(), tiny()
        wire_peers([a, b])
        a.access(0x100, True, now=0)  # store miss in a
        b.warm(0x100)  # b picks the line up meanwhile
        a.drain(200)  # a's dirty install must drop b's copy
        assert not b.probe(0x100)

    def test_invalidate_span_covers_every_line(self):
        cache = tiny(assoc=2, sets=2)
        for address in (0x000, 0x040, 0x080, 0x0C0):
            cache.warm(address)
        cache.invalidate_span(0x040, 128)  # lines 0x040 and 0x080
        assert cache.probe(0x000)
        assert not cache.probe(0x040)
        assert not cache.probe(0x080)
        assert cache.probe(0x0C0)
        assert cache.csb_invalidations == 2


class TestIntrospection:
    def test_counters_snapshot(self):
        cache = tiny()
        cache.access(0x100, False, now=0)
        counters = cache.counters()
        assert counters["misses"] == 1
        assert set(counters) == {
            "hits",
            "misses",
            "mshr_merges",
            "mshr_stall_cycles",
            "writebacks",
            "writethroughs",
            "coherence_invalidations",
            "csb_invalidations",
        }

    def test_quiescent_tracks_outstanding(self):
        cache = tiny()
        assert cache.quiescent()
        cache.access(0x100, False, now=0)
        assert not cache.quiescent()
        cache.drain(200)
        assert cache.quiescent()
