"""Attribute TLB: hit/miss accounting and LRU replacement."""

import pytest

from repro.common.errors import ConfigError
from repro.memory.layout import AddressSpace, PageAttr
from repro.memory.tlb import AttributeTLB


def small_space(pages: int = 16, page: int = 8192) -> AddressSpace:
    space = AddressSpace(page_size=page)
    space.map_region(0, pages * page, PageAttr.CACHED, "all")
    return space


class TestTLB:
    def test_miss_then_hit(self):
        tlb = AttributeTLB(small_space(), entries=4)
        assert tlb.attribute_of(0) is PageAttr.CACHED
        assert (tlb.hits, tlb.misses) == (0, 1)
        tlb.attribute_of(100)  # same page
        assert (tlb.hits, tlb.misses) == (1, 1)

    def test_distinct_pages_miss_independently(self):
        tlb = AttributeTLB(small_space(), entries=8)
        tlb.attribute_of(0)
        tlb.attribute_of(8192)
        assert tlb.misses == 2

    def test_lru_eviction(self):
        tlb = AttributeTLB(small_space(), entries=2)
        tlb.attribute_of(0 * 8192)
        tlb.attribute_of(1 * 8192)
        tlb.attribute_of(0 * 8192)  # touch page 0 so page 1 becomes LRU
        tlb.attribute_of(2 * 8192)  # evicts page 1
        tlb.attribute_of(0 * 8192)  # still resident
        assert tlb.hits == 2
        tlb.attribute_of(1 * 8192)  # was evicted
        assert tlb.misses == 4

    def test_capacity_bounded(self):
        tlb = AttributeTLB(small_space(), entries=3)
        for page in range(10):
            tlb.attribute_of(page * 8192)
        assert tlb.occupancy == 3

    def test_flush(self):
        tlb = AttributeTLB(small_space())
        tlb.attribute_of(0)
        tlb.flush()
        assert tlb.occupancy == 0
        tlb.attribute_of(0)
        assert tlb.misses == 2

    def test_propagates_unmapped_error(self):
        from repro.common.errors import MemoryError_

        tlb = AttributeTLB(small_space(pages=1))
        with pytest.raises(MemoryError_):
            tlb.attribute_of(1 << 40)

    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigError):
            AttributeTLB(small_space(), entries=0)
