"""Set-associative cache level."""

from hypothesis import given, strategies as st

from repro.common.config import CacheConfig
from repro.memory.cache import CacheLevel


def tiny_cache(assoc: int = 2, sets: int = 4, line: int = 64) -> CacheLevel:
    return CacheLevel(CacheConfig(line * assoc * sets, line, assoc, 1), "t")


class TestLookup:
    def test_cold_miss_then_hit(self):
        cache = tiny_cache()
        assert not cache.lookup(0x100, is_write=False)
        cache.fill(0x100)
        assert cache.lookup(0x100, is_write=False)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_same_line_different_offsets_hit(self):
        cache = tiny_cache()
        cache.fill(0x100)
        assert cache.lookup(0x13F, is_write=False)  # same 64-byte line

    def test_probe_does_not_touch_state(self):
        cache = tiny_cache()
        cache.fill(0x100)
        assert cache.probe(0x100)
        assert not cache.probe(0x200)
        assert (cache.hits, cache.misses) == (0, 0)


class TestWritePolicy:
    def test_write_hit_marks_dirty(self):
        cache = tiny_cache()
        cache.fill(0x100)
        cache.lookup(0x100, is_write=True)
        assert 0x100 in cache.dirty_lines()

    def test_fill_dirty(self):
        cache = tiny_cache()
        cache.fill(0x100, dirty=True)
        assert cache.dirty_lines() == [0x100]

    def test_eviction_of_dirty_line_counts_writeback(self):
        cache = tiny_cache(assoc=1, sets=1)
        cache.fill(0x0, dirty=True)
        evicted = cache.fill(0x40)  # same (only) set, evicts dirty line 0
        assert evicted == 0x0
        assert cache.writebacks == 1

    def test_eviction_of_clean_line_silent(self):
        cache = tiny_cache(assoc=1, sets=1)
        cache.fill(0x0)
        assert cache.fill(0x40) is None


class TestLRU:
    def test_lru_victim_selection(self):
        cache = tiny_cache(assoc=2, sets=1)
        cache.fill(0x000)
        cache.fill(0x040)
        cache.lookup(0x000, is_write=False)  # make line 0 MRU
        cache.fill(0x080)                    # evicts line 0x40
        assert cache.probe(0x000)
        assert not cache.probe(0x040)

    def test_refill_does_not_duplicate(self):
        cache = tiny_cache(assoc=2, sets=1)
        cache.fill(0x000)
        cache.fill(0x000)
        assert cache.resident_lines == 1

    def test_refill_preserves_dirty_state(self):
        cache = tiny_cache()
        cache.fill(0x100, dirty=True)
        cache.fill(0x100)  # clean refill must not launder the dirty bit
        assert 0x100 in cache.dirty_lines()


class TestInvalidate:
    def test_invalidate(self):
        cache = tiny_cache()
        cache.fill(0x100)
        cache.invalidate(0x100)
        assert not cache.probe(0x100)

    def test_invalidate_all(self):
        cache = tiny_cache()
        cache.fill(0x000)
        cache.fill(0x100)
        cache.invalidate_all()
        assert cache.resident_lines == 0


class TestInvariants:
    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=0x4000).map(lambda a: a & ~0x3F),
            min_size=1,
            max_size=200,
        )
    )
    def test_property_occupancy_never_exceeds_capacity(self, addresses):
        cache = tiny_cache(assoc=2, sets=4)
        for address in addresses:
            if not cache.lookup(address, is_write=False):
                cache.fill(address)
        assert cache.resident_lines <= 8
        # And every set individually respects associativity.
        for cache_set in cache._sets:
            assert len(cache_set) <= 2

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=0x2000),
                st.booleans(),
            ),
            max_size=200,
        )
    )
    def test_property_hits_plus_misses_equals_lookups(self, ops):
        cache = tiny_cache()
        for address, is_write in ops:
            if not cache.lookup(address, is_write):
                cache.fill(address, dirty=is_write)
        assert cache.hits + cache.misses == len(ops)
