"""Sparse backing store."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import MemoryError_
from repro.memory.backing import BackingStore


class TestBytes:
    def test_uninitialized_reads_zero(self):
        store = BackingStore()
        assert store.read_bytes(0x1234, 8) == bytes(8)

    def test_roundtrip(self):
        store = BackingStore()
        store.write_bytes(0x100, b"hello")
        assert store.read_bytes(0x100, 5) == b"hello"

    def test_cross_chunk_write(self):
        store = BackingStore()
        payload = bytes(range(64))
        store.write_bytes(4096 - 32, payload)  # straddles a chunk boundary
        assert store.read_bytes(4096 - 32, 64) == payload

    def test_sparse_allocation(self):
        store = BackingStore()
        store.write_bytes(0, b"x")
        store.write_bytes(1 << 40, b"y")
        # Two far-apart writes allocate only two chunks.
        assert store.touched_bytes <= 2 * 4096

    def test_negative_rejected(self):
        store = BackingStore()
        with pytest.raises(MemoryError_):
            store.read_bytes(-1, 4)
        with pytest.raises(MemoryError_):
            store.write_bytes(-1, b"a")


class TestIntegers:
    def test_big_endian(self):
        store = BackingStore()
        store.write_int(0, 0x0102030405060708, 8)
        assert store.read_bytes(0, 8) == bytes([1, 2, 3, 4, 5, 6, 7, 8])

    def test_value_wraps_to_size(self):
        store = BackingStore()
        store.write_int(0, 0x1FF, 1)
        assert store.read_int(0, 1) == 0xFF

    @given(
        address=st.integers(min_value=0, max_value=1 << 30),
        value=st.integers(min_value=0, max_value=(1 << 64) - 1),
        size=st.sampled_from([1, 2, 4, 8]),
    )
    def test_property_int_roundtrip(self, address, value, size):
        store = BackingStore()
        store.write_int(address, value, size)
        assert store.read_int(address, size) == value % (1 << (8 * size))

    @given(data=st.binary(min_size=0, max_size=300),
           address=st.integers(min_value=0, max_value=1 << 20))
    def test_property_bytes_roundtrip(self, data, address):
        store = BackingStore()
        store.write_bytes(address, data)
        assert store.read_bytes(address, len(data)) == data


class TestFill:
    def test_fill(self):
        store = BackingStore()
        store.fill(0x10, 4, 0xAB)
        assert store.read_bytes(0x10, 4) == b"\xab\xab\xab\xab"
        assert store.read_bytes(0x14, 1) == b"\x00"
