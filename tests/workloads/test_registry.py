"""Registry-wide guarantees: every shipped workload spec round-trips
serialization and yields a stable, collision-free cache key."""

from repro.workloads.registry import (
    all_workloads,
    iter_program_workloads,
    iter_trace_workloads,
    workload_by_name,
)
from repro.workloads.spec import workload_from_dict

import pytest

from repro.common.errors import ConfigError


class TestRegistryContents:
    def test_both_backends_are_registered(self):
        workloads = all_workloads()
        kinds = {w.kind for w in workloads}
        assert kinds == {"program", "trace"}
        assert len(workloads) > 20

    def test_names_are_unique(self):
        names = [w.name for w in all_workloads()]
        assert len(names) == len(set(names))

    def test_every_discipline_is_covered(self):
        disciplines = {w.discipline for w in iter_trace_workloads()}
        assert disciplines == {"csb", "lock", "uncached"}

    def test_lookup_by_name(self):
        workload = workload_by_name("bundled-sample-csb")
        assert workload.kind == "trace"
        with pytest.raises(ConfigError):
            workload_by_name("no-such-workload")


class TestRegistryRoundTrip:
    def test_every_workload_round_trips_serialization(self):
        for workload in all_workloads():
            document = workload.to_dict()
            revived = workload_from_dict(document)
            assert revived == workload, workload.name
            assert revived.to_dict() == document, workload.name

    def test_every_cache_key_is_stable_across_the_round_trip(self):
        for workload in all_workloads():
            revived = workload_from_dict(workload.to_dict())
            assert revived.cache_key() == workload.cache_key(), workload.name

    def test_cache_keys_never_collide(self):
        # Distinct execution content must hash distinctly.  Program specs
        # that differ only in display name intentionally share keys, so
        # key on the serialized content minus the name.
        by_key = {}
        for workload in all_workloads():
            document = workload.to_dict()
            document.pop("name")
            key = workload.cache_key()
            if key in by_key:
                assert by_key[key] == document
            by_key[key] = document
        assert len(by_key) > 20

    def test_program_specs_expose_usable_sources(self):
        from repro.isa.assembler import assemble

        checked = 0
        for workload in iter_program_workloads():
            if len(workload.sources) == 1:
                assemble(workload.source)
                checked += 1
            if checked >= 5:
                break
        assert checked == 5
