"""The #csb-trace v1 format: streaming parse, validation, write."""

import io
import itertools

import pytest

from repro.workloads.traces.format import (
    MAX_DEVICES,
    MAX_RECORD_BYTES,
    TRACE_HEADER,
    TraceFormatError,
    TraceRecord,
    open_trace,
    parse_trace,
    write_trace,
)

GOOD = [
    TRACE_HEADER,
    "# a comment",
    "",
    "0 write 0 8",
    "5 write 1 64",
    "5 write 0 16",
]


class TestParse:
    def test_parses_records_in_order(self):
        records = list(parse_trace(GOOD))
        assert [r.timestamp for r in records] == [0, 5, 5]
        assert [r.device for r in records] == [0, 1, 0]
        assert [r.size for r in records] == [8, 64, 16]
        assert all(r.op == "write" for r in records)

    def test_is_a_lazy_generator(self):
        def lines():
            yield TRACE_HEADER
            for ts in itertools.count():
                yield f"{ts} write 0 8"

        stream = parse_trace(lines())
        first = next(stream)
        assert first.timestamp == 0
        assert next(stream).timestamp == 1  # infinite input, no collection

    @pytest.mark.parametrize(
        "lines,fragment",
        [
            ([], "missing header"),
            (["#csb-trace v2"], "bad header"),
            ([TRACE_HEADER, "1 write 0"], "4 fields"),
            ([TRACE_HEADER, "x write 0 8"], "non-integer"),
            ([TRACE_HEADER, "1 read 0 8"], "unknown op"),
            ([TRACE_HEADER, "-1 write 0 8"], "negative timestamp"),
            ([TRACE_HEADER, f"1 write {MAX_DEVICES} 8"], "out of range"),
            ([TRACE_HEADER, "1 write 0 12"], "multiple of 8"),
            ([TRACE_HEADER, "1 write 0 0"], "multiple of 8"),
            (
                [TRACE_HEADER, f"1 write 0 {MAX_RECORD_BYTES + 8}"],
                "exceeds",
            ),
            (
                [TRACE_HEADER, "9 write 0 8", "3 write 0 8"],
                "goes backwards",
            ),
        ],
    )
    def test_malformed_input_raises_with_line_number(self, lines, fragment):
        with pytest.raises(TraceFormatError) as excinfo:
            list(parse_trace(lines))
        assert fragment in str(excinfo.value)
        assert excinfo.value.line >= 1

    def test_error_carries_the_offending_line(self):
        with pytest.raises(TraceFormatError) as excinfo:
            list(parse_trace([TRACE_HEADER, "0 write 0 8", "bad line here"]))
        assert excinfo.value.line == 3


class TestWrite:
    def test_round_trips_through_a_file(self, tmp_path):
        records = [
            TraceRecord(0, "write", 0, 8),
            TraceRecord(7, "write", 1, 64),
        ]
        path = tmp_path / "t.trace"
        assert write_trace(str(path), records) == 2
        assert list(open_trace(str(path))) == records
        text = path.read_text()
        assert text.splitlines()[0] == TRACE_HEADER

    def test_writes_to_open_stream(self):
        buffer = io.StringIO()
        write_trace(buffer, [TraceRecord(0, "write", 0, 8)])
        assert buffer.getvalue() == f"{TRACE_HEADER}\n0 write 0 8\n"

    def test_validates_while_writing(self):
        with pytest.raises(TraceFormatError):
            write_trace(io.StringIO(), [TraceRecord(0, "write", 0, 12)])
        with pytest.raises(TraceFormatError):
            write_trace(
                io.StringIO(),
                [TraceRecord(5, "write", 0, 8), TraceRecord(1, "write", 0, 8)],
            )

    def test_empty_trace_is_header_only(self):
        buffer = io.StringIO()
        assert write_trace(buffer, []) == 0
        assert buffer.getvalue() == TRACE_HEADER + "\n"


class TestBundledSample:
    def test_sample_trace_parses_cleanly(self):
        from repro.workloads.spec import bundled_trace_path

        records = list(open_trace(bundled_trace_path("sample")))
        assert len(records) == 240
        assert {r.device for r in records} == {0, 1}
