"""The trace-window compiler: geometry, idioms, expectations."""

import pytest

from repro.common.errors import ConfigError
from repro.isa.assembler import assemble
from repro.workloads.traces.compile import (
    CORE_SLICE,
    RING_BYTES,
    compile_window,
    lock_address,
    ring_combining_region,
    ring_region,
)
from repro.workloads.traces.format import TraceRecord


def records(count=4, device=0, size=8):
    return [
        TraceRecord(timestamp=i * 10, op="write", device=device, size=size)
        for i in range(count)
    ]


class TestGeometry:
    def test_ring_regions_do_not_overlap(self):
        spans = [ring_region(d) for d in range(4)]
        spans += [ring_combining_region(d) for d in range(4)]
        spans.sort()
        for (base_a, size_a), (base_b, _) in zip(spans, spans[1:]):
            assert base_a + size_a <= base_b

    def test_lock_addresses_are_line_separated(self):
        assert lock_address(1) - lock_address(0) == 64

    def test_rejects_unknown_discipline_and_bad_cores(self):
        with pytest.raises(ConfigError):
            compile_window(records(), "mmio", 1)
        with pytest.raises(ConfigError):
            compile_window(records(), "csb", 0)

    def test_rejects_too_many_cores_for_the_window(self):
        with pytest.raises(ConfigError):
            compile_window(records(), "uncached", RING_BYTES // CORE_SLICE + 1)
        with pytest.raises(ConfigError):
            compile_window(records(), "csb", RING_BYTES // 64 + 1)


class TestCompilation:
    @pytest.mark.parametrize("discipline", ["csb", "lock", "uncached"])
    def test_every_discipline_assembles(self, discipline):
        mixed = records(3, device=0, size=8) + records(3, device=1, size=64)
        mixed.sort(key=lambda r: r.timestamp)
        for window in compile_window(mixed, discipline, 2):
            program = assemble(window.source)
            assert list(program)

    def test_round_robin_assignment(self):
        windows = compile_window(records(5), "uncached", 2)
        assert [w.core_id for w in windows] == [0, 1]
        assert len(windows[0].expectations) == 3
        assert len(windows[1].expectations) == 2

    def test_expectations_carry_arrival_and_size(self):
        window = compile_window(records(3, size=16), "uncached", 1)[0]
        assert window.expectations == ((0, 16), (10, 16), (20, 16))

    def test_idle_core_gets_no_program(self):
        windows = compile_window(records(1), "uncached", 4)
        assert [w.core_id for w in windows] == [0]

    def test_uncached_stores_stay_in_the_core_slice(self):
        window = compile_window(records(1, size=4096), "uncached", 2)[0]
        for line in window.source.splitlines():
            if line.startswith("stx %l"):
                offset = int(line.split("+")[1].rstrip("]"))
                assert 0 <= offset < CORE_SLICE

    def test_core1_slices_are_disjoint_from_core0(self):
        windows = compile_window(records(4, size=64), "uncached", 2)

        def offsets(window):
            return {
                int(line.split("+")[1].rstrip("]"))
                for line in window.source.splitlines()
                if line.startswith("stx %l")
            }

        assert offsets(windows[0]).isdisjoint(offsets(windows[1]))

    def test_lock_brackets_each_record(self):
        window = compile_window(records(2), "lock", 1)[0]
        text = window.source
        assert text.count("swap [%o0]") == 2  # one acquire per record
        assert text.count("stx %g0, [%o0]") == 2  # one release per record
        assert text.count("membar") == 4  # two fences per record

    def test_csb_groups_split_at_the_line_size(self):
        window = compile_window(records(1, size=160), "csb", 1, line_size=64)[0]
        # 160B = 64 + 64 + 32: three flush groups, each with its own retry.
        assert window.source.count("! conditional flush") == 3
        assert "set 8, %l4" in window.source  # full-line group count
        assert "set 4, %l4" in window.source  # 32B tail group

    def test_csb_cores_get_distinct_backoff_and_stagger(self):
        windows = compile_window(records(4), "csb", 2)
        assert "set 1, %l5" in windows[0].source
        assert "set 3, %l5" in windows[1].source
        assert ".STAGGER" not in windows[0].source
        assert ".STAGGER" in windows[1].source

    def test_device_switch_reloads_the_ring_base(self):
        mixed = [
            TraceRecord(0, "write", 0, 8),
            TraceRecord(1, "write", 1, 8),
            TraceRecord(2, "write", 1, 8),
        ]
        window = compile_window(mixed, "uncached", 1)[0]
        base0, base1 = ring_region(0)[0], ring_region(1)[0]
        assert window.source.count(f"set {base0}, %o1") == 1
        assert window.source.count(f"set {base1}, %o1") == 1
