"""Workload specs: validation, serialization, and cache-key semantics."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads.spec import (
    ProgramWorkload,
    TraceWorkload,
    bundled_trace_path,
    workload_from_dict,
)

KERNEL = "set 1, %o1\nhalt"


class TestProgramWorkload:
    def test_single_source_property(self):
        workload = ProgramWorkload(name="k", sources=(("k", KERNEL),))
        assert workload.source == KERNEL
        assert workload.kind == "program"

    def test_smp_source_property_raises(self):
        workload = ProgramWorkload(
            name="smp", sources=(("a", KERNEL), ("b", KERNEL))
        )
        with pytest.raises(ConfigError):
            workload.source

    def test_validation(self):
        with pytest.raises(ConfigError):
            ProgramWorkload(name="", sources=(("k", KERNEL),))
        with pytest.raises(ConfigError):
            ProgramWorkload(name="k", sources=())
        with pytest.raises(ConfigError):
            ProgramWorkload(name="k", sources=(("only-name",),))
        with pytest.raises(ConfigError):
            ProgramWorkload(
                name="k", sources=(("k", KERNEL),), span=("one",)
            )

    def test_round_trip(self):
        workload = ProgramWorkload(
            name="fig5",
            sources=(("fig5", KERNEL),),
            warm=(0x8000,),
            span=("START", "DONE"),
        )
        assert workload_from_dict(workload.to_dict()) == workload

    def test_cache_key_ignores_display_name(self):
        a = ProgramWorkload(name="a", sources=(("p", KERNEL),))
        b = ProgramWorkload(name="b", sources=(("p", KERNEL),))
        assert a.cache_key() == b.cache_key()

    def test_cache_key_tracks_content(self):
        base = ProgramWorkload(name="k", sources=(("k", KERNEL),))
        other = ProgramWorkload(name="k", sources=(("k", KERNEL + "\nhalt"),))
        warmed = ProgramWorkload(
            name="k", sources=(("k", KERNEL),), warm=(0x8000,)
        )
        assert base.cache_key() != other.cache_key()
        assert base.cache_key() != warmed.cache_key()


class TestTraceWorkload:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TraceWorkload(name="t", source="")
        with pytest.raises(ConfigError):
            TraceWorkload(name="t", source="synth:n=1", discipline="mmio")
        with pytest.raises(ConfigError):
            TraceWorkload(name="t", source="synth:n=1", window=0)
        with pytest.raises(ConfigError):
            TraceWorkload(name="t", source="synth:n=1", devices=-1)

    def test_source_kinds(self):
        synth = TraceWorkload(name="s", source="synth:n=10")
        bundled = TraceWorkload(name="b", source="bundled:sample")
        file = TraceWorkload(name="f", source="/tmp/x.trace")
        assert synth.is_synthetic and not synth.is_bundled
        assert bundled.is_bundled and not bundled.is_synthetic
        assert not file.is_synthetic and not file.is_bundled
        with pytest.raises(ConfigError):
            synth.path()
        assert bundled.path() == bundled_trace_path("sample")
        assert file.path() == "/tmp/x.trace"

    def test_round_trip(self):
        workload = TraceWorkload(
            name="t",
            source="synth:n=100,seed=3",
            discipline="lock",
            window=64,
            devices=2,
        )
        assert workload_from_dict(workload.to_dict()) == workload

    def test_cache_key_is_content_addressed(self, tmp_path):
        # Byte-identical trace files at different paths share a key.
        bundled = bundled_trace_path("sample")
        with open(bundled, "r", encoding="utf-8") as handle:
            content = handle.read()
        copy = tmp_path / "copy.trace"
        copy.write_text(content)
        via_bundle = TraceWorkload(name="a", source="bundled:sample")
        via_copy = TraceWorkload(name="b", source=str(copy))
        assert via_bundle.cache_key() == via_copy.cache_key()

    def test_cache_key_tracks_replay_parameters(self):
        base = TraceWorkload(name="t", source="synth:n=10")
        assert (
            base.cache_key()
            != TraceWorkload(
                name="t", source="synth:n=10", discipline="lock"
            ).cache_key()
        )
        assert (
            base.cache_key()
            != TraceWorkload(
                name="t", source="synth:n=10", window=8
            ).cache_key()
        )
        assert (
            base.cache_key()
            != TraceWorkload(name="t", source="synth:n=11").cache_key()
        )


class TestBundledTraces:
    def test_bad_names_rejected(self):
        for name in ("", "../etc/passwd", ".hidden", "a/b"):
            with pytest.raises(ConfigError):
                bundled_trace_path(name)
        with pytest.raises(ConfigError):
            bundled_trace_path("no-such-trace")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            workload_from_dict({"kind": "quantum"})
