"""Synthetic trace generation: grammar, determinism, distributions."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads.traces.format import validate_record
from repro.workloads.traces.synth import (
    SynthSpec,
    parse_synth_spec,
    synthesize,
)


class TestGrammar:
    def test_full_spec_parses(self):
        spec = parse_synth_spec(
            "synth:n=100,seed=7,arrival=bursty,gap=50,burst=4,"
            "devices=3,skew=1.5,sizes=8:3/64:1"
        )
        assert spec == SynthSpec(
            n=100,
            seed=7,
            arrival="bursty",
            gap=50.0,
            burst=4,
            devices=3,
            skew=1.5,
            sizes=((8, 3.0), (64, 1.0)),
        )

    def test_defaults(self):
        spec = parse_synth_spec("synth:n=10")
        assert spec.seed == 1
        assert spec.arrival == "poisson"
        assert spec.sizes == ((8, 1.0),)

    @pytest.mark.parametrize(
        "text",
        [
            "n=10",  # missing prefix
            "synth:",  # empty body
            "synth:seed=1",  # missing n
            "synth:n=0",
            "synth:n=10,arrival=warp",
            "synth:n=10,gap=0",
            "synth:n=10,burst=0",
            "synth:n=10,devices=0",
            "synth:n=10,devices=65",
            "synth:n=10,skew=-1",
            "synth:n=10,sizes=12:1",
            "synth:n=10,sizes=8:0",
            "synth:n=10,sizes=8",
            "synth:n=10,bogus=1",
            "synth:n=ten",
            "synth:n",
        ],
    )
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ConfigError):
            parse_synth_spec(text)


class TestSynthesize:
    def test_identical_spec_identical_stream(self):
        spec = "synth:n=200,seed=5,devices=3,skew=1.0,sizes=8:1/64:1"
        a = list(synthesize(parse_synth_spec(spec)))
        b = list(synthesize(parse_synth_spec(spec)))
        assert a == b

    def test_seed_changes_the_stream(self):
        a = list(synthesize(parse_synth_spec("synth:n=50,seed=1")))
        b = list(synthesize(parse_synth_spec("synth:n=50,seed=2")))
        assert a != b

    def test_every_record_is_valid_and_monotone(self):
        spec = parse_synth_spec(
            "synth:n=500,seed=9,arrival=bursty,burst=8,devices=4,"
            "skew=2.0,sizes=8:1/64:1/4096:1"
        )
        previous = -1
        count = 0
        for record in synthesize(spec):
            validate_record(record)
            assert record.timestamp >= previous
            previous = record.timestamp
            count += 1
        assert count == 500

    def test_mean_gap_tracks_the_spec(self):
        spec = parse_synth_spec("synth:n=4000,seed=3,gap=100")
        records = list(synthesize(spec))
        mean = records[-1].timestamp / len(records)
        assert 90 < mean < 110

    def test_skew_concentrates_low_devices(self):
        def share_of_device0(skew):
            spec = parse_synth_spec(
                f"synth:n=4000,seed=3,devices=4,skew={skew}"
            )
            hits = sum(1 for r in synthesize(spec) if r.device == 0)
            return hits / 4000

        assert abs(share_of_device0(0.0) - 0.25) < 0.05
        assert share_of_device0(2.0) > 0.6

    def test_bursty_shares_arrival_instants(self):
        spec = parse_synth_spec(
            "synth:n=64,seed=2,arrival=bursty,burst=8,gap=1000"
        )
        records = list(synthesize(spec))
        timestamps = [r.timestamp for r in records]
        assert len(set(timestamps)) == 8  # one instant per burst

    def test_size_mixture_weights_hold(self):
        spec = parse_synth_spec("synth:n=4000,seed=4,sizes=8:3/64:1")
        records = list(synthesize(spec))
        small = sum(1 for r in records if r.size == 8)
        assert abs(small / 4000 - 0.75) < 0.05

    def test_generation_is_lazy(self):
        spec = parse_synth_spec("synth:n=1000000000,seed=1")
        stream = synthesize(spec)
        assert next(stream).op == "write"  # no billion-record list
