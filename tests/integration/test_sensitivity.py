"""Sensitivity-study integration checks."""

from repro.evaluation.sensitivity import (
    ratio_sensitivity_table,
    sensitivity_summary,
    width_sensitivity_table,
)


class TestWidth:
    def test_csb_insensitive_to_width(self):
        table = width_sensitivity_table(widths=(2, 8))
        csb = table.column("csb_cycles")
        assert max(csb) - min(csb) <= 2

    def test_lock_insensitive_to_width(self):
        table = width_sensitivity_table(widths=(2, 8))
        lock = table.column("lock_cycles")
        assert max(lock) - min(lock) <= 8


class TestRatio:
    def test_lock_slope_is_two_bus_cycles_per_doubleword(self):
        table = ratio_sensitivity_table(ratios=(3, 5))
        assert table.lookup("cpu_ratio", 3, "lock_slope") == 6
        assert table.lookup("cpu_ratio", 5, "lock_slope") == 10

    def test_csb_slope_constant(self):
        table = ratio_sensitivity_table(ratios=(2, 8))
        assert set(table.column("csb_slope")) == {1}


def test_summary_renders():
    lines = sensitivity_summary()
    assert len(lines) == 2
    assert "lock" in lines[0]
