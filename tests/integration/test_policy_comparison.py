"""Integration checks for the processor-policy comparison study."""

from repro.evaluation.policy_comparison import (
    POLICY_SCHEMES,
    interleaved_store_kernel,
    policy_table,
)
from repro.isa.assembler import assemble


class TestInterleavedKernel:
    def test_covers_same_bytes_as_sequential(self):
        source = interleaved_store_kernel(128)
        program = assemble(source)
        offsets = sorted(
            instr.offset for instr in program if instr.is_store
        )
        assert offsets == [8 * i for i in range(16)]

    def test_within_line_order_is_evens_then_odds(self):
        source = interleaved_store_kernel(64)
        program = assemble(source)
        offsets = [instr.offset for instr in program if instr.is_store]
        assert offsets == [0, 16, 32, 48, 8, 24, 40, 56]


class TestPolicyTable:
    def test_all_schemes_present(self):
        table = policy_table(sizes=(64,))
        assert [row[0] for row in table.rows] == list(POLICY_SCHEMES)

    def test_r10000_order_sensitivity(self):
        sequential = policy_table(sizes=(1024,), interleaved=False)
        shuffled = policy_table(sizes=(1024,), interleaved=True)
        assert shuffled.lookup("scheme", "r10000", "1024") < sequential.lookup(
            "scheme", "r10000", "1024"
        )

    def test_csb_order_insensitive(self):
        sequential = policy_table(sizes=(1024,), interleaved=False)
        shuffled = policy_table(sizes=(1024,), interleaved=True)
        assert shuffled.lookup("scheme", "csb", "1024") == sequential.lookup(
            "scheme", "csb", "1024"
        )
