"""Refill bus occupancy and the loaded-bus studies."""

import pytest

from repro import System, assemble
from repro.evaluation.loaded_bus import (
    injected_bandwidth_point,
    loaded_bandwidth_point,
    loaded_bus_table,
    stores_with_miss_stream_kernel,
)
from repro.memory.layout import DRAM_BASE
from tests.conftest import make_config


class TestRefillEngine:
    def test_disabled_by_default(self):
        system = System(make_config())
        assert system.refill_engine is None

    def test_miss_produces_refill_transaction(self):
        from dataclasses import replace
        from repro.common.config import MemoryHierarchyConfig

        config = replace(
            make_config(),
            memory=MemoryHierarchyConfig.with_line_size(64, refills_use_bus=True),
        )
        system = System(config)
        system.add_process(assemble(f"ldx [{DRAM_BASE + 0x5000}], %o1\nhalt"))
        system.run()
        kinds = [r.kind for r in system.stats.transactions]
        assert kinds == ["refill"]
        assert system.stats.get("refill.requests") == 1

    def test_hits_produce_no_refills(self):
        from dataclasses import replace
        from repro.common.config import MemoryHierarchyConfig

        config = replace(
            make_config(),
            memory=MemoryHierarchyConfig.with_line_size(64, refills_use_bus=True),
        )
        system = System(config)
        system.hierarchy.warm(DRAM_BASE + 0x5000)
        system.add_process(assemble(f"ldx [{DRAM_BASE + 0x5000}], %o1\nhalt"))
        system.run()
        assert system.stats.get("refill.requests") == 0

    def test_refills_not_counted_in_store_window(self):
        point_idle = injected_bandwidth_point("none", 256, refill_period=0)
        assert point_idle == pytest.approx(4.0)


class TestInjectedTraffic:
    def test_bandwidth_degrades_with_interference(self):
        idle = injected_bandwidth_point("csb", 512, refill_period=0)
        light = injected_bandwidth_point("csb", 512, refill_period=40)
        heavy = injected_bandwidth_point("csb", 512, refill_period=15)
        assert idle > light > heavy

    def test_bursts_use_leftover_slots_better_than_singles(self):
        table = loaded_bus_table(refill_periods=(0, 12), total_bytes=512)
        none_ratio = table.lookup("scheme", "none", "1/12") / table.lookup(
            "scheme", "none", "idle"
        )
        csb_ratio = table.lookup("scheme", "csb", "1/12") / table.lookup(
            "scheme", "csb", "idle"
        )
        assert csb_ratio > none_ratio


class TestMissInterleaved:
    def test_delayed_drain_improves_hw_combining(self):
        # The retire stalls of missing loads keep entries in the buffer
        # longer, so combining improves — the paper's stated trade-off.
        idle = loaded_bandwidth_point("combine64", 256, refills_use_bus=False)
        loaded = loaded_bandwidth_point("combine64", 256, refills_use_bus=True)
        assert loaded >= idle

    def test_kernel_covers_all_stores(self):
        source = stores_with_miss_stream_kernel(256, 64, csb=False)
        program = assemble(source)
        stores = [i for i in program if i.is_store]
        assert len(stores) == 32
