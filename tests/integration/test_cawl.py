"""The cached-average-write-latency model against the simulator.

A serialized cached-store sweep over N cold lines should cost
``miss_latency + (stores_per_line - 1) * hit_latency`` per line (plus a
small constant pipeline overhead per store); fitting the simulated spans
against N must recover that slope.  The fit itself is the hand-rolled
closed-form least squares in :mod:`repro.evaluation.analytic`.
"""

from __future__ import annotations

import pytest

from repro.common.config import MemoryConfig, SystemConfig
from repro.common.errors import ConfigError
from repro.evaluation.analytic import (
    cached_write_latency,
    fit_linear,
    write_run_cycles,
)
from repro.isa.assembler import assemble
from repro.sim.system import System

BASE = 0x8000


def _sweep_span(lines, per_line, mem):
    source = ["mark 1"]
    for i in range(lines):
        source.append(f"set {BASE + i * mem.line_size}, %o0")
        for j in range(per_line):
            source.append(f"stx %g0, [%o0+{j * 8}]")
    source += ["mark 2", "halt"]
    system = System(SystemConfig(mem=mem))
    system.add_process(assemble("\n".join(source)))
    system.run()
    return system.span("1", "2")


class TestFitLinear:
    def test_exact_line_recovered(self):
        intercept, slope = fit_linear([1, 2, 3, 4], [5, 7, 9, 11])
        assert intercept == pytest.approx(3.0)
        assert slope == pytest.approx(2.0)

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ConfigError):
            fit_linear([1], [2])
        with pytest.raises(ConfigError):
            fit_linear([1, 1], [2, 3])
        with pytest.raises(ConfigError):
            fit_linear([1, 2], [1, 2, 3])


class TestModel:
    def test_expected_latency_blends_hit_and_miss(self):
        mem = MemoryConfig(enabled=True)
        assert cached_write_latency(mem, 1.0) == mem.hit_latency
        assert cached_write_latency(mem, 0.0) == mem.miss_latency
        assert cached_write_latency(mem, 0.75) == pytest.approx(
            0.75 * mem.hit_latency + 0.25 * mem.miss_latency
        )

    def test_writethrough_is_flat_at_miss_latency(self):
        mem = MemoryConfig(enabled=True, write_policy="writethrough")
        assert cached_write_latency(mem, 1.0) == mem.miss_latency
        assert write_run_cycles(mem, 4, 4) == 16 * mem.miss_latency

    def test_validation(self):
        mem = MemoryConfig(enabled=True)
        with pytest.raises(ConfigError):
            cached_write_latency(mem, 1.5)
        with pytest.raises(ConfigError):
            write_run_cycles(mem, 0, 1)


class TestSimulatorCrosscheck:
    @pytest.mark.parametrize("per_line", [1, 4])
    def test_fitted_slope_matches_writeback_model(self, per_line):
        mem = MemoryConfig(enabled=True)
        xs = [4, 8, 16, 32]
        ys = [_sweep_span(lines, per_line, mem) for lines in xs]
        _, slope = fit_linear(xs, ys)
        predicted = write_run_cycles(mem, 1, per_line)
        # Per-store frontend/retire overhead rides on top of the model;
        # the memory component must dominate and match within 15%.
        assert slope == pytest.approx(predicted, rel=0.15)

    def test_writethrough_slope_near_per_store_miss_latency(self):
        mem = MemoryConfig(enabled=True, write_policy="writethrough")
        xs = [4, 8, 16]
        ys = [_sweep_span(lines, 4, mem) for lines in xs]
        _, slope = fit_linear(xs, ys)
        assert slope == pytest.approx(write_run_cycles(mem, 1, 4), rel=0.15)

    def test_policies_ordered_as_predicted(self):
        wb = MemoryConfig(enabled=True)
        wt = MemoryConfig(enabled=True, write_policy="writethrough")
        assert write_run_cycles(wt, 8, 4) > write_run_cycles(wb, 8, 4)
        assert _sweep_span(8, 4, wt) > _sweep_span(8, 4, wb)
