"""The sweep engine: parallel, cached, and serial runs are byte-identical.

The tentpole invariant — ``SweepRunner`` is a pure speedup.  A sweep fanned
out over worker processes, or resolved from the content-addressed cache,
must render to exactly the CSV a fresh serial run produces.  Reduced size
grids keep each case test-fast (full sweeps live in the benchmark harness
and the --check regression gate).
"""

import json
import os
from dataclasses import replace

import pytest

from repro.common.errors import ConfigError
from repro.evaluation import runner as runner_module
from repro.evaluation.ablations import buffer_depth_table
from repro.evaluation.bandwidth import bandwidth_job, panel_table
from repro.evaluation.latency import fig5_table, latency_job
from repro.evaluation.panels import FIG3_PANELS
from repro.evaluation.runner import (
    ResultCache,
    SimJob,
    SweepRunner,
    default_cache_dir,
    execute_job,
    job_key,
)

#: One Figure 3 panel, one Figure 5 panel, one ablation — each at a
#: reduced grid — built through an injected runner.
CASES = {
    "fig3c": lambda r: panel_table(FIG3_PANELS["c"], sizes=(16, 64, 256), runner=r),
    "fig5a": lambda r: fig5_table(lock_hits_l1=True, counts=(2, 5, 8), runner=r),
    "ablation-depth": lambda r: buffer_depth_table(depths=(1, 2, 8), runner=r),
}


def _small_job() -> SimJob:
    return bandwidth_job(FIG3_PANELS["e"], "none", 16)


class TestDeterministicEquivalence:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_parallel_matches_serial_byte_for_byte(self, name):
        build = CASES[name]
        serial = build(SweepRunner(jobs=1)).to_csv()
        parallel = build(SweepRunner(jobs=4)).to_csv()
        assert parallel == serial

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_cached_rerun_matches_and_hits(self, name, tmp_path):
        build = CASES[name]
        directory = str(tmp_path / "cache")
        cold_cache = ResultCache(directory)
        cold_runner = SweepRunner(jobs=1, cache=cold_cache)
        cold = build(cold_runner).to_csv()
        assert cold_runner.simulated > 0
        assert cold_cache.hits == 0

        warm_cache = ResultCache(directory)
        warm_runner = SweepRunner(jobs=1, cache=warm_cache)
        warm = build(warm_runner).to_csv()
        assert warm == cold
        assert warm_runner.simulated == 0
        assert warm_cache.misses == 0
        assert warm_runner.cache_hits == cold_runner.simulated

    def test_parallel_cold_then_serial_warm(self, tmp_path):
        """The cache written by a parallel sweep serves a serial rerun."""
        directory = str(tmp_path / "cache")
        build = CASES["fig3c"]
        cold = build(SweepRunner(jobs=4, cache=ResultCache(directory))).to_csv()
        warm_runner = SweepRunner(jobs=1, cache=ResultCache(directory))
        assert build(warm_runner).to_csv() == cold
        assert warm_runner.simulated == 0

    def test_results_come_back_in_input_order(self):
        jobs = [bandwidth_job(FIG3_PANELS["e"], "none", s) for s in (256, 16)]
        values = SweepRunner(jobs=2).run(jobs)
        assert values == [execute_job(jobs[0]), execute_job(jobs[1])]

    def test_progress_reports_every_job(self, tmp_path):
        seen = []
        cache = ResultCache(str(tmp_path))
        runner = SweepRunner(
            jobs=1, cache=cache, progress=lambda done, total: seen.append((done, total))
        )
        job = _small_job()
        runner.run([job, replace(job, name="again")])
        runner.run([job])  # all three points resolve, hits included
        assert seen == [(1, 2), (2, 2), (1, 1)]


class TestCacheKeys:
    def test_any_config_field_changes_the_key(self):
        job = _small_job()
        reconfigured = replace(
            job,
            config=replace(job.config, bus=replace(job.config.bus, cpu_ratio=7)),
        )
        assert job_key(reconfigured) != job_key(job)

    def test_kernel_changes_the_key(self):
        job = _small_job()
        assert job_key(replace(job, kernel=job.kernel + "\nnop")) != job_key(job)

    def test_version_tag_changes_the_key(self, monkeypatch):
        job = _small_job()
        before = job_key(job)
        monkeypatch.setattr(runner_module, "SIM_VERSION", "csb-sim-TEST")
        assert job_key(job) != before

    def test_measurement_args_and_warm_change_the_key(self):
        warm = latency_job("none", 2, lock_hits_l1=True)
        cold = latency_job("none", 2, lock_hits_l1=False)
        assert job_key(warm) != job_key(cold)

    def test_display_name_does_not_change_the_key(self):
        job = _small_job()
        assert job_key(replace(job, name="renamed")) == job_key(job)


class TestCacheRobustness:
    def _prime(self, directory):
        job = _small_job()
        [value] = SweepRunner(cache=ResultCache(directory)).run([job])
        return job, job_key(job), value

    @pytest.mark.parametrize(
        "garbage",
        [
            "",                        # empty file
            '{"value": 1.',            # truncated JSON
            "not json at all",
            '{"no_value_key": 3}',
            '{"value": "a string"}',   # wrong type
            '{"value": true}',         # bool is not a measurement
            '{"value": null}',
        ],
    )
    def test_corrupt_entry_is_recomputed_not_crashed(self, tmp_path, garbage):
        directory = str(tmp_path)
        job, key, value = self._prime(directory)
        with open(os.path.join(directory, f"{key}.json"), "w") as handle:
            handle.write(garbage)
        cache = ResultCache(directory)
        runner = SweepRunner(cache=cache)
        [recomputed] = runner.run([job])
        assert recomputed == value
        assert runner.simulated == 1 and cache.hits == 0
        # The recompute healed the entry in place.
        assert ResultCache(directory).get(key) == value

    def test_roundtrip_is_exact(self, tmp_path):
        directory = str(tmp_path)
        job, key, value = self._prime(directory)
        cached = ResultCache(directory).get(key)
        assert cached == value and type(cached) is type(value)

    def test_entry_records_version_and_name(self, tmp_path):
        directory = str(tmp_path)
        _, key, _ = self._prime(directory)
        with open(os.path.join(directory, f"{key}.json")) as handle:
            document = json.load(handle)
        assert document["version"] == runner_module.SIM_VERSION

    def test_unwritable_cache_does_not_fail_the_sweep(self, tmp_path):
        directory = str(tmp_path / "ro")
        cache = ResultCache(directory)
        os.chmod(directory, 0o500)
        try:
            [value] = SweepRunner(cache=cache).run([_small_job()])
            assert value > 0
        finally:
            os.chmod(directory, 0o700)


class TestExperimentTableCache:
    """The whole-table layer used for studies that are not SimJob sweeps."""

    def test_key_varies_by_experiment_and_version(self, monkeypatch):
        from repro.evaluation.runner import experiment_key

        assert experiment_key("blockstore") != experiment_key("crossover")
        before = experiment_key("blockstore")
        monkeypatch.setattr(runner_module, "SIM_VERSION", "csb-sim-TEST")
        assert experiment_key("blockstore") != before

    def test_table_roundtrips_exactly(self, tmp_path):
        from repro.evaluation.experiments import run_experiment

        table = run_experiment("blockstore")
        cache = ResultCache(str(tmp_path))
        cache.put_table("k", table, name="blockstore")
        restored = ResultCache(str(tmp_path)).get_table("k")
        assert restored.render() == table.render()
        assert restored.to_csv() == table.to_csv()
        assert restored.to_markdown() == table.to_markdown()

    def test_corrupt_table_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with open(os.path.join(str(tmp_path), "k.json"), "w") as handle:
            handle.write('{"table": {"columns": [], "rows": "junk"}}')
        assert cache.get_table("k") is None
        assert cache.misses == 1

    def test_cli_warm_run_is_byte_identical(self, tmp_path, capsys):
        from repro.evaluation.cli import main

        argv = ["blockstore", "--cache-dir", str(tmp_path), "--quiet"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == cold


class TestJobValidation:
    def test_unknown_measurement_rejected(self):
        job = _small_job()
        with pytest.raises(ConfigError):
            replace(job, measurement="power")

    def test_span_needs_two_labels(self):
        job = _small_job()
        with pytest.raises(ConfigError):
            replace(job, measurement="span", args=("only-start",))

    def test_runner_needs_a_job_slot(self):
        with pytest.raises(ConfigError):
            SweepRunner(jobs=0)

    def test_default_cache_dir_honours_env(self, monkeypatch):
        monkeypatch.setenv("CSB_CACHE_DIR", "/tmp/somewhere")
        assert default_cache_dir() == "/tmp/somewhere"
