"""End-to-end message sends over the NIC: locked PIO, CSB inline, DMA."""


from repro import System, assemble
from repro.devices.dma import DmaEngine
from repro.devices.nic import NetworkInterface
from repro.memory.layout import (
    IO_COMBINING_BASE,
    IO_UNCACHED_BASE,
    PageAttr,
    Region,
)
from repro.workloads.lockbench import MARK_DONE, MARK_START
from repro.workloads.messaging import (
    csb_send_kernel,
    dma_send_kernel,
    pio_send_kernel,
)
from tests.conftest import make_config

NIC_UNCACHED = IO_UNCACHED_BASE           # register window in plain uncached space
NIC_COMBINING = IO_COMBINING_BASE         # a NIC whose FIFO lives in combining space
DMA_BASE = IO_UNCACHED_BASE + 0x10_0000


def build(nic_space="uncached", with_dma=False):
    system = System(make_config())
    if nic_space == "uncached":
        region = Region(NIC_UNCACHED, 64 * 1024, PageAttr.UNCACHED, "nic")
    else:
        region = Region(
            NIC_COMBINING, 64 * 1024, PageAttr.UNCACHED_COMBINING, "nic"
        )
    nic = system.attach_device(NetworkInterface(region))
    dma = None
    if with_dma:
        dma_region = Region(DMA_BASE, 8192, PageAttr.UNCACHED, "dma")
        dma = system.attach_device(
            DmaEngine(dma_region, system.backing, nic)
        )
    return system, nic, dma


class TestLockedPIO:
    def test_payload_descriptor_send(self):
        system, nic, _ = build()
        system.add_process(
            assemble(pio_send_kernel(32, NIC_UNCACHED))
        ).set_register("%l0", 0x11).set_register("%l1", 0x22)
        system.run()
        assert len(nic.sent) == 1
        packet = nic.sent[0]
        assert not packet.inline
        assert len(packet.payload) == 32
        # Payload assembled from the %l registers, big-endian.
        assert packet.payload[7] == 0x11
        assert packet.payload[15] == 0x22

    def test_lock_released_after_send(self):
        from repro.workloads.lockbench import DEFAULT_LOCK_ADDR

        system, _, _ = build()
        system.add_process(assemble(pio_send_kernel(16, NIC_UNCACHED)))
        system.run()
        assert system.backing.read_int(DEFAULT_LOCK_ADDR, 8) == 0


class TestCSBInlineSend:
    def test_single_burst_becomes_inline_packet(self):
        system, nic, _ = build(nic_space="combining")
        system.add_process(
            assemble(csb_send_kernel(64, NIC_COMBINING))
        ).set_register("%l0", 0xAB)
        system.run()
        assert len(nic.sent) == 1
        assert nic.sent[0].inline
        assert len(nic.sent[0].payload) == 64
        assert system.stats.get("bus.bursts") == 1

    def test_csb_send_cheaper_than_locked_pio(self):
        system_pio, _, _ = build()
        system_pio.add_process(assemble(pio_send_kernel(32, NIC_UNCACHED)))
        system_pio.run()
        system_csb, _, _ = build(nic_space="combining")
        system_csb.add_process(assemble(csb_send_kernel(32, NIC_COMBINING)))
        system_csb.run()
        assert system_csb.span(MARK_START, MARK_DONE) < system_pio.span(
            MARK_START, MARK_DONE
        )


class TestDMASend:
    def test_dma_transfer_end_to_end(self):
        system, nic, dma = build(with_dma=True)
        payload_src = 0x8000
        system.backing.write_bytes(payload_src, b"D" * 256)
        system.add_process(
            assemble(dma_send_kernel(payload_src, 256, DMA_BASE))
        )
        system.run()
        assert nic.last_payload() == b"D" * 256
        assert len(dma.transfers) == 1

    def test_dma_setup_cost_dominates_small_sends(self):
        def dma_span(nbytes):
            system, _, _ = build(with_dma=True)
            system.backing.write_bytes(0x8000, b"x" * nbytes)
            system.add_process(assemble(dma_send_kernel(0x8000, nbytes, DMA_BASE)))
            system.run()
            return system.span(MARK_START, MARK_DONE)

        small, large = dma_span(8), dma_span(1024)
        # Going from 8 B to 1 KB costs far less than 128x: setup dominates.
        assert large < 4 * small

    def test_pio_beats_dma_for_short_messages(self):
        system_dma, _, _ = build(with_dma=True)
        system_dma.backing.write_bytes(0x8000, bytes(16))
        system_dma.add_process(assemble(dma_send_kernel(0x8000, 16, DMA_BASE)))
        system_dma.run()
        system_csb, _, _ = build(nic_space="combining")
        system_csb.add_process(assemble(csb_send_kernel(16, NIC_COMBINING)))
        system_csb.run()
        assert system_csb.span(MARK_START, MARK_DONE) < system_dma.span(
            MARK_START, MARK_DONE
        )
