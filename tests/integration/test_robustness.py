"""Error paths and determinism: the simulator fails loudly and repeats
exactly."""

import pytest

from repro import System, assemble
from repro.common.errors import DeadlockError, MemoryError_, SimulationError
from repro.isa.program import Program, ProgramError
from repro.isa.instructions import NopInstruction
from repro.memory.layout import IO_UNCACHED_BASE
from tests.conftest import make_config


class TestErrorPaths:
    def test_unmapped_access_fails_at_dispatch(self):
        system = System(make_config())
        system.add_process(assemble("ldx [0x70000000], %o1\nhalt"))
        with pytest.raises(MemoryError_):
            system.run()

    def test_fetch_past_end_is_impossible_by_construction(self):
        # finalize() requires a trailing halt, so a program can never run
        # off its end.
        program = Program()
        program.add(NopInstruction())
        with pytest.raises(ProgramError):
            program.finalize()

    def test_run_without_processes_finishes_immediately(self):
        system = System(make_config())
        assert system.finished
        system.run()
        assert system.cycle == 0

    def test_spin_forever_raises_deadlock_with_cycle(self):
        system = System(make_config())
        system.add_process(assemble("x: ba x\nhalt"))
        with pytest.raises(DeadlockError) as exc:
            system.run(max_cycles=5_000)
        assert exc.value.cycle is not None

    def test_unaligned_uncached_store_rejected(self):
        system = System(make_config())
        system.add_process(
            assemble(f"set {IO_UNCACHED_BASE + 4}, %o1\nstx %l0, [%o1]\nhalt")
        )
        with pytest.raises(SimulationError):
            system.run()

    def test_interrupt_on_halted_core_is_harmless(self):
        system = System(make_config())
        system.add_process(assemble("halt"))
        system.run()
        system.core.interrupt()
        system.run_cycles(5)  # no crash, nothing to squash


class TestDeterminism:
    def test_identical_runs_produce_identical_stats(self):
        def run():
            system = System(make_config(combine_block=64))
            from repro.workloads import store_kernel_csb

            system.add_process(assemble(store_kernel_csb(512, 64)))
            system.run()
            return (
                system.cycle,
                system.stats.as_dict(),
                [
                    (r.start_cycle, r.end_cycle, r.address, r.size, r.kind)
                    for r in system.stats.transactions
                ],
            )

        assert run() == run()

    def test_multiprocess_runs_deterministic(self):
        from repro.workloads.contention import contending_csb_kernel
        from repro.memory.layout import IO_COMBINING_BASE

        def run():
            system = System(make_config(quantum=120, switch_penalty=20))
            system.add_process(
                assemble(contending_csb_kernel(15, IO_COMBINING_BASE))
            )
            system.add_process(
                assemble(contending_csb_kernel(15, IO_COMBINING_BASE + 64))
            )
            system.run(max_cycles=5_000_000)
            return system.cycle, system.stats.as_dict()

        assert run() == run()


class TestSlowRegistrySweep:
    @pytest.mark.slow
    def test_every_registered_experiment_produces_a_table(self):
        from repro.evaluation.experiments import experiment_ids, run_experiment

        for experiment_id in experiment_ids():
            table = run_experiment(experiment_id)
            assert table.rows, experiment_id
