"""Every example script must run clean and print its key results."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example printed nothing"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "nic_message_send", "csb_contention", "pio_vs_dma"} <= names
