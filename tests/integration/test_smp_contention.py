"""The SMP contention experiment: lock vs CSB as cores hammer one device.

The paper's §3.2 separation claim, taken to true multiprocessing: the
locked discipline serializes every core on one spin lock, so its total
completion time grows with the waiter count; the CSB's optimistic
protocol pays only for actual interleavings.  The gap between the two
columns must therefore widen monotonically from 2 to 8 cores — and the
run must be attributable per core all the way down: metrics snapshot,
bus-cycle reporter, and arbiter grant counts.
"""

from repro.evaluation.smp_contention import (
    smp_contention_cycles,
    smp_contention_system,
    smp_contention_table,
)
from repro.observability.metrics import MetricsSnapshot
from repro.observability.report import BusCycleReporter


class TestSeparation:
    def test_gap_widens_monotonically_and_csb_wins(self):
        gaps = []
        for cores in (2, 4, 8):
            lock = smp_contention_cycles("lock", cores)
            csb = smp_contention_cycles("csb", cores)
            assert csb < lock, f"CSB must win at {cores} cores"
            gaps.append(lock - csb)
        assert gaps == sorted(gaps)
        assert len(set(gaps)) == len(gaps)  # strictly increasing

    def test_lock_time_scales_linearly_with_cores(self):
        # Pure serialization: N cores take ~N times the per-core cost.
        two = smp_contention_cycles("lock", 2)
        eight = smp_contention_cycles("lock", 8)
        assert 3.5 < eight / two < 4.5

    def test_csb_run_actually_conflicts(self):
        system = smp_contention_system("csb", 4)
        system.run(max_cycles=50_000_000)
        assert system.stats.get("csb.flush_conflicts") > 0
        # Every core's payload arrived despite the conflicts: each core
        # flushes `iterations` full lines.
        assert system.stats.get("csb.flushes") == 4 * 6

    def test_table_shape(self):
        table = smp_contention_table(core_counts=(2, 4))
        assert table.columns == ["cores", "lock", "csb", "lock/csb"]
        for cores in (2, 4):
            ratio = table.lookup("cores", cores, "lock/csb")
            assert ratio > 1.0


class TestPerCoreAttribution:
    def test_metrics_snapshot_reports_each_core(self):
        system = smp_contention_system("csb", 2)
        system.run(max_cycles=50_000_000)
        snapshot = MetricsSnapshot.from_system(system)
        for core in (0, 1):
            entry = snapshot.per_core[core]
            assert entry["transactions"] > 0
            assert entry["wire_bytes"] > 0
            assert entry["bus_grants"] > 0
            assert entry["context_switches"] >= 1  # the install switch
        document = snapshot.to_dict()
        assert set(document["per_core"]) >= {"0", "1"}

    def test_bus_cycle_reporter_breaks_down_by_core(self):
        system = smp_contention_system("csb", 2)
        reporter = system.attach_observer(BusCycleReporter())
        system.run(max_cycles=50_000_000)
        breakdown = reporter.core_breakdown()
        for core in (0, 1):
            assert breakdown[core]["transactions"] > 0
            assert breakdown[core]["busy_cycles"] > 0
        # Per-core wire bytes must sum to the whole run's wire bytes.
        assert sum(e["wire_bytes"] for e in breakdown.values()) == sum(
            t.size for t in reporter.transactions
        )

    def test_arbiter_granted_every_core(self):
        system = smp_contention_system("lock", 4)
        system.run(max_cycles=50_000_000)
        for core in range(4):
            assert system.arbiter.grants[f"core{core}"] > 0

    def test_stats_transactions_carry_core_ids(self):
        system = smp_contention_system("csb", 2)
        system.run(max_cycles=50_000_000)
        by_core = system.stats.transactions_by_core()
        assert set(by_core) >= {0, 1}
        total = sum(entry["transactions"] for entry in by_core.values())
        assert total == len(system.stats.transactions)
