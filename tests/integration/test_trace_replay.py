"""Streaming trace replay end to end: disciplines, determinism,
bounded memory, TraceJob plumbing, and the trace experiments."""

import pytest

from repro.common.config import SamplingConfig, SystemConfig
from repro.common.errors import ConfigError
from repro.evaluation.runner import (
    ResultCache,
    SweepRunner,
    TraceJob,
    execute_job,
    job_key,
)
from repro.workloads.spec import TraceWorkload
from repro.workloads.traces import TraceReplay, replay_trace

STEADY = "synth:n=300,seed=11,gap=80,devices=2,sizes=8:3/64:1"


def workload(discipline="csb", window=64, source=STEADY, devices=0):
    return TraceWorkload(
        name=f"test-{discipline}",
        source=source,
        discipline=discipline,
        window=window,
        devices=devices,
    )


class TestReplayEndToEnd:
    @pytest.mark.parametrize("discipline", ["csb", "lock", "uncached"])
    def test_replays_to_completion(self, discipline):
        result = replay_trace(workload(discipline))
        assert result.replayed == 300
        assert result.windows == 5
        assert result.histogram.count == 300
        assert result.cycles > 0
        assert sum(ring.enqueued for ring in result.rings) > 0
        assert result.metrics is not None
        assert set(result.metrics.latency) == {
            "p50",
            "p90",
            "p95",
            "p99",
            "p99.9",
        }
        assert result.latency == result.metrics.latency

    def test_bundled_trace_replays(self):
        result = replay_trace(
            TraceWorkload(
                name="bundled",
                source="bundled:sample",
                discipline="uncached",
                devices=2,
            )
        )
        assert result.replayed == 240

    def test_smp_replay_completes(self):
        result = replay_trace(workload("csb"), SystemConfig(num_cores=2))
        assert result.replayed == 300
        assert result.histogram.count == 300

    def test_identical_runs_are_byte_identical(self):
        first = replay_trace(workload("csb"))
        second = replay_trace(workload("csb"))
        assert first.cycles == second.cycles
        assert first.histogram.buckets == second.histogram.buckets
        assert first.stats.as_dict() == second.stats.as_dict()
        assert first.metrics.to_dict() == second.metrics.to_dict()

    def test_memory_stays_bounded_while_streaming(self):
        replay = TraceReplay(workload("uncached", window=32))
        result = replay.run()
        assert result.windows == 10
        # Condensation folded the per-record transaction list away...
        assert len(result.stats.transactions) == 0
        # ...without losing the counts...
        assert result.stats.transaction_count >= 300
        # ...and the halted window contexts were retired as it went.
        assert len(replay.system.scheduler.processes) <= 1

    def test_idle_gaps_are_skipped(self):
        sparse = "synth:n=20,seed=3,gap=50000,devices=1"
        result = replay_trace(workload("uncached", window=4, source=sparse))
        # 20 arrivals ~50k CPU cycles apart: simulating every idle cycle
        # would take ~1M bus cycles; the skip lands us near the span.
        assert result.cycles * 6 > 500_000
        assert result.replayed == 20

    def test_undeclared_device_raises(self):
        with pytest.raises(ConfigError):
            replay_trace(workload("uncached", devices=1))

    def test_sampling_config_rejected(self):
        config = SystemConfig(sampling=SamplingConfig(enabled=True))
        with pytest.raises(ConfigError):
            TraceReplay(workload(), config)


class TestTraceJob:
    def job(self, measurement="latency_p99", args=(), discipline="csb"):
        return TraceJob(
            config=SystemConfig(),
            workload=workload(discipline),
            measurement=measurement,
            args=args,
        )

    def test_percentile_measurements(self):
        p50 = execute_job(self.job("latency_p50"))
        p99 = execute_job(self.job("latency_p99"))
        assert 0 <= p50 <= p99

    def test_counting_and_ring_measurements(self):
        assert execute_job(self.job("transactions")) == 300
        assert execute_job(self.job("cycles")) > 0
        share0 = execute_job(self.job("device_share", args=("0",)))
        share1 = execute_job(self.job("device_share", args=("1",)))
        assert share0 + share1 == pytest.approx(1.0)
        assert execute_job(self.job("mean_occupancy", args=("0",))) >= 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            self.job("latency_p42")
        with pytest.raises(ConfigError):
            self.job("device_share")  # missing device arg
        with pytest.raises(ConfigError):
            self.job("device_share", args=("zero",))
        with pytest.raises(ConfigError):
            execute_job(self.job("device_share", args=("9",)))

    def test_job_key_is_stable_and_discriminating(self):
        base = self.job()
        assert job_key(base) == job_key(self.job())
        assert job_key(base) != job_key(self.job("latency_p50"))
        assert job_key(base) != job_key(self.job(discipline="lock"))
        renamed = TraceJob(
            config=SystemConfig(),
            workload=workload("csb"),
            measurement="latency_p99",
            name="renamed",
        )
        assert job_key(base) == job_key(renamed)  # names are display-only

class TestTraceJobThroughTheRunner:
    def jobs(self):
        return [
            TraceJob(
                config=SystemConfig(),
                workload=workload(discipline),
                measurement=measurement,
            )
            for discipline in ("csb", "uncached")
            for measurement in ("latency_p99", "transactions")
        ]

    def test_parallel_and_cached_match_serial(self, tmp_path):
        serial = SweepRunner(jobs=1, cache=None).run(self.jobs())
        parallel = SweepRunner(jobs=2, cache=None).run(self.jobs())
        cache = ResultCache(str(tmp_path / "cache"))
        warm = SweepRunner(jobs=1, cache=cache)
        assert warm.run(self.jobs()) == serial
        cached = SweepRunner(jobs=1, cache=cache)
        assert cached.run(self.jobs()) == serial
        assert cached.cache_hits == len(self.jobs())
        assert parallel == serial

    def test_sampling_falls_back_to_detailed(self):
        runner = SweepRunner(
            jobs=1, cache=None, sampling=SamplingConfig(enabled=True)
        )
        jobs = self.jobs()[:1]
        results = runner.run(jobs)
        assert results == SweepRunner(jobs=1, cache=None).run(jobs)
        assert runner.sampling_fallbacks

    def test_observed_mode_collects_metrics(self):
        runner = SweepRunner(jobs=1, cache=None, collect_metrics=True)
        job = TraceJob(
            config=SystemConfig(),
            workload=workload("csb"),
            measurement="latency_p50",
            name="observed-trace",
        )
        runner.run([job])
        snapshot = runner.metrics["observed-trace"]
        assert snapshot.latency
        assert snapshot.to_dict()["latency"] == snapshot.latency


class TestTraceExperiments:
    def test_registered_and_render(self):
        from repro.evaluation.experiments import EXPERIMENTS

        assert "trace-saturation" in EXPERIMENTS
        assert "trace-imbalance" in EXPERIMENTS

    def test_saturation_table_shows_the_knee(self):
        from repro.evaluation.trace_experiments import trace_saturation_table

        table = trace_saturation_table(gaps=[200, 10])
        rows = {row[0]: row[1:] for row in table.rows}
        # Every discipline's tail grows as the gap shrinks.
        for label, values in rows.items():
            assert values[-1] > values[0], label

    def test_imbalance_table_concentrates_load(self):
        from repro.evaluation.trace_experiments import trace_imbalance_table

        table = trace_imbalance_table(skews=[0.0, 2.0])
        rows = {row[0]: row[1:] for row in table.rows}
        shares = [rows[f"ring{d}_share"] for d in range(4)]
        for column in range(2):
            assert sum(s[column] for s in shares) == pytest.approx(1.0)
        assert rows["ring0_share"][1] > rows["ring0_share"][0]
