"""Multi-process CSB contention: the non-blocking protocol end to end.

Reproduces the paper's §3.2 interleaving: a process preempted between its
combining stores and its conditional flush conflicts with the competitor,
retries in software, and every committed line still reaches the device
exactly once and intact (no interleaved lines, no lost sequences).
"""


from repro import System, assemble
from repro.devices.sink import BurstSink
from repro.memory.layout import IO_COMBINING_BASE, PageAttr, Region
from repro.workloads.contention import contending_csb_kernel
from tests.conftest import make_config

LINE_A = IO_COMBINING_BASE
LINE_B = IO_COMBINING_BASE + 4096


def run_contention(iterations=40, quantum=150, same_line=False):
    system = System(make_config(quantum=quantum, switch_penalty=30))
    region = Region(IO_COMBINING_BASE, 8192, PageAttr.UNCACHED_COMBINING, "sink")
    sink = system.attach_device(BurstSink(region))
    base_b = LINE_A if same_line else LINE_B
    system.add_process(
        assemble(contending_csb_kernel(iterations, LINE_A, signature=0x1_0000)),
        name="A",
    )
    system.add_process(
        assemble(contending_csb_kernel(iterations, base_b, signature=0x2_0000)),
        name="B",
    )
    system.run(max_cycles=20_000_000)
    return system, sink


class TestConflictsHappen:
    def test_preemption_causes_flush_conflicts(self):
        system, _ = run_contention()
        assert system.scheduler.context_switches > 2
        assert system.stats.get("csb.flush_conflicts") > 0

    def test_all_sequences_eventually_commit(self):
        iterations = 40
        system, _ = run_contention(iterations=iterations)
        assert system.stats.get("csb.flushes") == 2 * iterations


class TestExactlyOnce:
    def test_every_committed_line_is_homogeneous(self):
        # Each kernel stores the same signature value in all 8 slots of its
        # line; a torn/interleaved line would mix signatures.
        _, sink = run_contention(same_line=True)
        for offset, data in sink.log:
            assert len(data) == 64
            words = [data[i : i + 8] for i in range(0, 64, 8)]
            assert len(set(words)) == 1, f"torn line at {offset:#x}: {words}"

    def test_flush_count_matches_device_writes(self):
        system, sink = run_contention()
        assert len(sink.log) == system.stats.get("csb.flushes")

    def test_iteration_payloads_all_delivered_per_process(self):
        # Signatures increment per iteration: the set of values seen at the
        # device must be exactly {sig, sig+1, ..., sig+N-1} for each process.
        iterations = 30
        _, sink = run_contention(iterations=iterations)
        seen_a, seen_b = set(), set()
        for _, data in sink.log:
            value = int.from_bytes(data[:8], "big")
            if value >> 16 == 1:
                seen_a.add(value & 0xFFFF)
            elif value >> 16 == 2:
                seen_b.add(value & 0xFFFF)
        assert seen_a == set(range(iterations))
        assert seen_b == set(range(iterations))


class TestProgressAndFairness:
    def test_no_livelock_with_round_robin(self):
        # Both processes finish despite repeated conflicts.
        system, _ = run_contention(iterations=60, quantum=97)
        assert system.scheduler.all_halted

    def test_conflicts_scale_down_with_longer_quantum(self):
        _, _ = short = run_contention(iterations=40, quantum=120)
        system_short, _ = short
        system_long, _ = run_contention(iterations=40, quantum=5000)
        assert (
            system_long.stats.get("csb.flush_conflicts")
            <= system_short.stats.get("csb.flush_conflicts")
        )
