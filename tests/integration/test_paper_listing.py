"""The paper's §3.2 listing, verbatim, end to end.

The exact assembly from the paper (eight FP doubleword stores in a
scrambled order, conditional flush via ``swap``, compare, retry branch)
runs on the simulated system and must commit one atomic, correctly
ordered 64-byte burst.
"""

import pytest

from repro import System, assemble
from repro.devices.sink import BurstSink
from repro.memory.layout import IO_COMBINING_BASE, PageAttr, Region
from tests.conftest import make_config

# The listing from §3.2, completed with the "5 additional dword stores"
# the paper elides, in a deliberately shuffled order.
PAPER_LISTING = f"""
set {IO_COMBINING_BASE}, %o1
.RETRY:
set 8, %l4          ! expected value
! store 8 dwords in any order
std %f0,[%o1]
std %f10,[%o1+40]
std %f4,[%o1+16]
std %f14,[%o1+56]
std %f2,[%o1+8]
std %f8,[%o1+32]
std %f6,[%o1+24]
std %f12,[%o1+8]
swap [%o1], %l4     ! conditional flush
cmp %l4, 8          ! compare values
bnz .RETRY          ! retry on failure
halt
"""

# The paper's ellipsis skips one store; give %f12 its own slot instead of
# colliding with %f2's (an overlapping combining store is legal — it just
# overwrites the slot — but distinct slots make the check exact).
CORRECTED_LISTING = PAPER_LISTING.replace("std %f12,[%o1+8]", "std %f12,[%o1+48]")


@pytest.fixture
def loaded_system():
    system = System(make_config())
    sink = system.attach_device(
        BurstSink(
            Region(IO_COMBINING_BASE, 8192, PageAttr.UNCACHED_COMBINING, "dev")
        )
    )
    process = system.add_process(assemble(CORRECTED_LISTING, name="paper-3.2"))
    for i in range(8):
        process.set_register(f"%f{i * 2}", 0xF0F0_0000 + i)
    return system, sink, process


def test_paper_listing_commits_one_atomic_burst(loaded_system):
    system, sink, process = loaded_system
    system.run()
    # One atomic 64-byte burst, no conflicts, flush succeeded first try.
    assert len(sink.log) == 1
    offset, data = sink.log[0]
    assert offset == 0 and len(data) == 64
    assert system.stats.get("csb.flush_conflicts") == 0
    # The scrambled store order does not matter: slot i holds %f(2i).
    for i in range(8):
        word = int.from_bytes(data[i * 8 : i * 8 + 8], "big")
        assert word == 0xF0F0_0000 + i
    # The swap left the expected value in %l4 (flush success contract).
    assert process.registers.read("%l4") == 8


def test_paper_listing_with_overlapping_store_still_flushes(loaded_system):
    # The literal listing (with %f12 overwriting %f2's slot) is also legal:
    # eight stores arrived, so expected=8 still matches.
    system = System(make_config())
    process = system.add_process(assemble(PAPER_LISTING))
    for i in range(8):
        process.set_register(f"%f{i * 2}", 0xF0F0_0000 + i)
    system.run()
    assert system.stats.get("csb.flushes") == 1
    assert system.stats.get("csb.flush_conflicts") == 0
    # Slot 1 holds the later writer's value (%f12).
    assert system.backing.read_int(IO_COMBINING_BASE + 8, 8) == 0xF0F0_0006
