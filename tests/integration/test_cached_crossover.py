"""The cached-I/O crossover study (non-blocking D-cache enabled).

Pins the emergent lock-hit/lock-miss split — the same locked-PIO kernel
run warm and cold, with the difference produced entirely by the MSHR
miss path — and the golden CSV in expected_results/.
"""

from __future__ import annotations

import os

import pytest

from repro.common.config import MemoryConfig
from repro.common.errors import ConfigError
from repro.evaluation.cached_crossover import (
    CACHED_METHODS,
    cached_crossover_table,
    cached_send_latency,
    lock_miss_penalty,
)

GOLDEN = os.path.join(
    os.path.dirname(__file__), "..", "..", "expected_results",
    "cached-crossover.csv",
)


class TestEmergentSplit:
    def test_lock_miss_costs_about_the_miss_latency(self):
        mem = MemoryConfig(enabled=True)
        penalty = lock_miss_penalty(64)
        # The split is whatever the MSHR path costs: near miss_latency,
        # minus the hit it replaces and any pipeline overlap.
        assert mem.miss_latency - mem.hit_latency - 20 <= penalty
        assert penalty <= mem.miss_latency + 20

    def test_split_scales_with_configured_miss_latency(self):
        slow = MemoryConfig(enabled=True, miss_latency=400)
        assert lock_miss_penalty(64, slow) > lock_miss_penalty(64) * 3

    def test_split_is_size_independent(self):
        # The lock is acquired once per send: the penalty must not grow
        # with the payload.
        assert lock_miss_penalty(16) == lock_miss_penalty(512)

    def test_csb_row_immune_to_lock_residency(self):
        # The CSB path takes no lock, so its latency sits below even the
        # lock-hit PIO path for one-line messages.
        assert cached_send_latency("csb", 64) < cached_send_latency(
            "pio_lock_hit", 64
        )

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigError):
            cached_send_latency("pio", 64)
        with pytest.raises(ConfigError):
            cached_send_latency(
                "csb", 64, MemoryConfig(enabled=False)
            )


class TestGolden:
    def test_table_matches_golden_csv(self):
        table = cached_crossover_table()
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            assert table.to_csv() == handle.read()

    def test_row_order(self):
        table = cached_crossover_table(sizes=(16,))
        assert tuple(row[0] for row in table.rows) == CACHED_METHODS

    def test_registered_in_the_experiment_registry(self):
        from repro.evaluation.experiments import EXPERIMENTS

        assert "cached-crossover" in EXPERIMENTS

    def test_runner_mem_overrides_parameterize_the_cache(self):
        from repro.evaluation.runner import SweepRunner

        runner = SweepRunner(overrides={"mem": {"miss_latency": 400}})
        slow = cached_crossover_table(sizes=(16,), runner=runner)
        fast = cached_crossover_table(sizes=(16,))
        slow_by = dict((r[0], r[1]) for r in slow.rows)
        fast_by = dict((r[0], r[1]) for r in fast.rows)
        assert slow_by["pio_lock_miss"] > fast_by["pio_lock_miss"]
        assert slow_by["csb"] == fast_by["csb"]  # no cached accesses
