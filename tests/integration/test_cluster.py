"""Two-node cluster: link delivery, RX path, ping-pong end to end."""

import pytest

from repro import System, assemble
from repro.common.errors import ConfigError
from repro.devices.link import Link
from repro.devices.nic import (
    NetworkInterface,
    RX_CONSUME_OFFSET,
    RX_LEN_OFFSET,
    RX_STATUS_OFFSET,
    RX_WINDOW_OFFSET,
)
from repro.memory.layout import (
    IO_UNCACHED_BASE,
    PageAttr,
    Region,
)
from repro.sim.cluster import Cluster
from repro.evaluation.rtt import pingpong_rtt, rtt_table

NIC = IO_UNCACHED_BASE


def two_nodes(link_latency=5):
    def node():
        system = System()
        nic = NetworkInterface(
            Region(NIC, 16 * 1024, PageAttr.UNCACHED, "nic")
        )
        system.attach_device(nic)
        return system, nic

    (sys_a, nic_a), (sys_b, nic_b) = node(), node()
    cluster = Cluster([sys_a, sys_b])
    cluster.connect(Link(nic_a, nic_b, latency=link_latency))
    return cluster, sys_a, sys_b, nic_a, nic_b


class TestNicRxSide:
    def test_receive_and_registers(self):
        _, sys_a, _, nic_a, _ = two_nodes()
        nic_a.receive_packet(b"PAYLOAD!" * 2)
        assert nic_a.rx_pending == 1
        assert nic_a.bus_read(NIC + RX_STATUS_OFFSET, 8)[-1] == 1
        assert nic_a.bus_read(NIC + RX_LEN_OFFSET, 8)[-1] == 16
        assert nic_a.bus_read(NIC + RX_WINDOW_OFFSET, 8) == b"PAYLOAD!"

    def test_consume_pops_head(self):
        _, _, _, nic, _ = two_nodes()
        nic.receive_packet(b"first___")
        nic.receive_packet(b"second__")
        nic.bus_write(NIC + RX_CONSUME_OFFSET, bytes(8))
        assert nic.bus_read(NIC + RX_WINDOW_OFFSET, 8) == b"second__"

    def test_rx_overflow_drops(self):
        _, _, _, nic, _ = two_nodes()
        nic.rx_depth = 2
        for i in range(4):
            nic.receive_packet(bytes([i]) * 8)
        assert nic.rx_pending == 2
        assert nic.rx_dropped == 2

    def test_empty_rx_window_reads_zero(self):
        _, _, _, nic, _ = two_nodes()
        assert nic.bus_read(NIC + RX_WINDOW_OFFSET, 8) == bytes(8)


class TestLink:
    def test_wire_latency(self):
        cluster, sys_a, sys_b, nic_a, nic_b = two_nodes(link_latency=7)
        link = cluster.links[0]
        nic_a.egress(_packet(b"x" * 8))
        link._now = 0
        link.tick(0)
        assert nic_b.rx_pending == 0
        link.tick(6)
        assert nic_b.rx_pending == 0
        link.tick(7)
        assert nic_b.rx_pending == 1

    def test_full_duplex(self):
        cluster, _, _, nic_a, nic_b = two_nodes(link_latency=0)
        link = cluster.links[0]
        nic_a.egress(_packet(b"a" * 8))
        nic_b.egress(_packet(b"b" * 8))
        link.tick(1)
        assert nic_a.rx_pending == 1 and nic_b.rx_pending == 1

    def test_needs_distinct_nics(self):
        _, _, _, nic_a, _ = two_nodes()
        with pytest.raises(ConfigError):
            Link(nic_a, nic_a)


class TestCluster:
    def test_needs_two_systems(self):
        with pytest.raises(ConfigError):
            Cluster([System()])

    def test_rejects_mismatched_ratios(self):
        from tests.conftest import make_config

        with pytest.raises(ConfigError):
            Cluster([System(make_config(cpu_ratio=4)), System(make_config())])

    def test_plain_programs_run_in_lockstep(self):
        cluster, sys_a, sys_b, _, _ = two_nodes()
        sys_a.add_process(assemble("set 1, %o1\nhalt"))
        sys_b.add_process(assemble("set 2, %o1\nhalt"))
        cluster.run()
        assert sys_a.scheduler.processes[0].registers.read("%o1") == 1
        assert sys_b.scheduler.processes[0].registers.read("%o1") == 2


class TestPingPong:
    @pytest.mark.parametrize("method", ["pio", "csb", "csb_multisize"])
    def test_round_trip_completes(self, method):
        rtt = pingpong_rtt(method, payload_dwords=4)
        assert 100 < rtt < 5000

    def test_payload_signature_echoed(self):
        # The pong node loads the first payload doubleword and sends it
        # back; the study itself checks received counts, so here just make
        # sure repeated measurements are deterministic.
        assert pingpong_rtt("csb", 2) == pingpong_rtt("csb", 2)

    def test_relaxed_csb_wins_at_every_size(self):
        table = rtt_table(payload_dwords=(1, 8), link_latency=10)
        for column in ("8B", "64B"):
            relaxed = table.lookup("method", "csb_multisize", column)
            assert relaxed <= table.lookup("method", "csb", column)
            assert relaxed <= table.lookup("method", "pio", column)

    def test_longer_wire_raises_rtt_by_twice_the_latency(self):
        short = pingpong_rtt("csb", 4, link_latency=5)
        long = pingpong_rtt("csb", 4, link_latency=25)
        # Two wire crossings, bus cycles at ratio 6.
        assert long - short == 2 * 20 * 6


def _packet(payload):
    from repro.devices.nic import Packet

    return Packet(payload=payload, inline=True, pushed_at=0, sent_at=0)


class TestOversizedRxPayload:
    def test_dma_built_packet_larger_than_window_is_truncated(self):
        # A DMA engine can build packets bigger than the 4 KB RX window;
        # delivery must truncate, not crash the next window read.
        from repro.devices.nic import RX_WINDOW_SIZE

        _, _, _, nic, _ = two_nodes()
        nic.receive_packet(b"Z" * (RX_WINDOW_SIZE + 512))
        assert nic.bus_read(NIC + RX_LEN_OFFSET, 8) == RX_WINDOW_SIZE.to_bytes(
            8, "big"
        )
        assert nic.bus_read(NIC + RX_WINDOW_OFFSET, 8) == b"Z" * 8
