"""Simulator vs. the closed-form bandwidth model.

The analytic model (repro.evaluation.analytic) gives exact answers for the
two ends of the policy spectrum: the non-combining stream and the CSB
stream, both of which keep the bus saturated at any ratio >= 2.  The
simulator must match them exactly; hardware combining must stay below its
steady-state upper bound and approach it as transfers grow.
"""

import pytest

from repro.evaluation.analytic import (
    combining_steady_bandwidth,
    csb_bandwidth,
    noncombining_bandwidth,
)
from repro.evaluation.bandwidth import bandwidth_point, config_for
from repro.evaluation.panels import FIG3_PANELS, FIG4_PANELS, PanelSpec

ALL_PANELS = [
    pytest.param(spec, id=spec.panel_id)
    for spec in list(FIG3_PANELS.values()) + list(FIG4_PANELS.values())
]


@pytest.mark.parametrize("panel", ALL_PANELS)
@pytest.mark.parametrize("size", [16, 64, 512])
def test_noncombining_matches_exactly(panel: PanelSpec, size: int):
    bus = config_for(panel, "none").bus
    assert bandwidth_point(panel, "none", size) == pytest.approx(
        noncombining_bandwidth(bus, size)
    )


@pytest.mark.parametrize("panel", ALL_PANELS)
@pytest.mark.parametrize("size", [64, 128, 1024])
def test_csb_matches_exactly_for_line_multiples(panel: PanelSpec, size: int):
    if size < panel.line_size:
        pytest.skip("below one line")
    bus = config_for(panel, "csb").bus
    expected = csb_bandwidth(bus, panel.line_size, size)
    measured = bandwidth_point(panel, "csb", size)
    # The CSB stream saturates the bus except when the bus is so fast that
    # the core cannot refill the single line buffer in time (the 256-bit
    # split bus); then the simulator is honestly below the bound.
    if measured != pytest.approx(expected):
        assert measured < expected
        assert panel.bus_kind == "split"
    else:
        assert measured == pytest.approx(expected)


@pytest.mark.parametrize("panel", ALL_PANELS)
def test_combining_below_steady_bound(panel: PanelSpec):
    bus = config_for(panel, "none").bus
    for block in (16, 32):
        if block > panel.line_size:
            continue
        bound = combining_steady_bandwidth(bus, block)
        measured = bandwidth_point(panel, f"combine{block}", 1024)
        assert measured <= bound + 1e-9
        # And it gets reasonably close at 1 KB (within 40%).
        assert measured >= 0.5 * bound


def test_combining_monotone_in_transfer_size():
    panel = FIG3_PANELS["e"]
    sizes = (16, 32, 64, 128, 256, 512, 1024)
    values = [bandwidth_point(panel, "combine64", s) for s in sizes]
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


def test_window_formula_spot_check():
    from repro.common.config import BusConfig
    from repro.evaluation.analytic import window_cycles

    bus = BusConfig(kind="multiplexed", width_bytes=8, turnaround=1)
    # Paper: 1 txn = 2 cycles, 2 = 5, 3 = 8.
    assert window_cycles(bus, 8, 1) == 2
    assert window_cycles(bus, 8, 2) == 5
    assert window_cycles(bus, 8, 3) == 8
