"""The paper's prose anchors (DESIGN.md §5), checked end-to-end.

These tests pin the simulator to every quantitative statement the paper
makes in §4.3; if any of them breaks, the reproduced figures no longer
mean what the paper's figures mean.
"""

import pytest

from repro.evaluation.bandwidth import bandwidth_point
from repro.evaluation.latency import latency_point
from repro.evaluation.panels import FIG3_PANELS, FIG4_PANELS


class TestBandwidthAnchors:
    def test_noncombining_mux_bus_flat_at_half_peak(self):
        # "Without any combining, the bandwidth is independent of the total
        # amount of data transferred ... 4 bytes per bus cycle, which is
        # half of the peak bandwidth."
        panel = FIG3_PANELS["c"]
        for size in (16, 64, 256, 1024):
            assert bandwidth_point(panel, "none", size) == pytest.approx(4.0)

    def test_combining_approaches_line_per_5_cycles(self):
        # "...ultimately approaching the peak bandwidth of one cache line
        # per 5 cycles" (32-byte line, 8-byte mux bus).
        panel = FIG3_PANELS["c"]
        peak = 32 / 5
        bw = bandwidth_point(panel, "combine32", 1024)
        assert 0.9 * peak < bw <= peak

    def test_csb_reaches_line_per_burst(self):
        panel = FIG3_PANELS["e"]  # 64-byte line
        assert bandwidth_point(panel, "csb", 1024) == pytest.approx(64 / 9)

    def test_small_transfers_unaffected_by_combining(self):
        # "For small data transfers of 16 bytes, combining has no effect
        # because the first store leaves the buffer before the second is
        # issued."
        panel = FIG3_PANELS["c"]
        assert bandwidth_point(panel, "combine32", 16) == pytest.approx(
            bandwidth_point(panel, "none", 16)
        )

    def test_csb_penalized_below_a_line(self):
        # "Transfers that are significantly smaller than a cache line are
        # penalized by the unnecessary long burst transactions."
        panel = FIG3_PANELS["e"]
        assert bandwidth_point(panel, "csb", 16) < bandwidth_point(
            panel, "none", 16
        )

    def test_csb_wins_at_a_cache_line(self):
        # "The conditional store buffer clearly has the greatest advantage
        # over all other schemes for transfer sizes of about a cache line."
        panel = FIG3_PANELS["e"]
        csb = bandwidth_point(panel, "csb", 64)
        for scheme in ("none", "combine16", "combine32", "combine64"):
            assert csb > bandwidth_point(panel, scheme, 64)

    def test_larger_lines_move_crossover_right(self):
        # "Increasing the cache line size pushes the crossover point
        # between the CSB and other schemes towards larger transfers."
        def crossover(panel):
            for size in (16, 32, 64, 128, 256, 512, 1024):
                if bandwidth_point(panel, "csb", size) > bandwidth_point(
                    panel, "none", size
                ):
                    return size
            return 2048

        assert crossover(FIG3_PANELS["f"]) >= crossover(FIG3_PANELS["d"])

    def test_turnaround_lets_csb_win_earlier(self):
        # "The net effect is that the CSB bandwidth surpasses all other
        # schemes for even shorter transfers" (turnaround panel g vs e).
        def csb_beats_all_at(panel, size):
            csb = bandwidth_point(panel, "csb", size)
            return all(
                csb >= bandwidth_point(panel, s, size)
                for s in ("none", "combine16", "combine32", "combine64")
            )

        assert csb_beats_all_at(FIG3_PANELS["g"], 32)
        assert not csb_beats_all_at(FIG3_PANELS["e"], 32)

    def test_min_delay_8_only_hurts_short_transactions(self):
        # "A delay of 4 ... an 8-cycle burst completely overlaps with the
        # acknowledgment."
        none_free = bandwidth_point(FIG3_PANELS["e"], "none", 1024)
        none_delay = bandwidth_point(FIG3_PANELS["i"], "none", 1024)
        csb_free = bandwidth_point(FIG3_PANELS["e"], "csb", 1024)
        csb_delay = bandwidth_point(FIG3_PANELS["i"], "csb", 1024)
        assert none_delay < none_free / 2  # short txns crushed
        assert csb_delay == pytest.approx(csb_free)  # bursts unaffected


class TestSplitBusAnchors:
    def test_doubleword_wastes_wide_bus(self):
        # A doubleword uses half of a 128-bit bus: 8 bytes/cycle against a
        # 16 byte/cycle peak.
        panel = FIG4_PANELS["a"]
        assert bandwidth_point(panel, "none", 256) == pytest.approx(8.0)

    def test_256bit_burst_two_cycles(self):
        # "On a 256 bit wide bus, a burst transfer takes only two cycles,
        # the same number of cycles as two individual doubleword stores."
        panel = FIG4_PANELS["b"]
        assert bandwidth_point(panel, "csb", 64) == pytest.approx(32.0)

    def test_min_delay_4_only_csb_hides(self):
        # "For a minimum delay of 4, only the CSB can successfully hide the
        # acknowledgment latency."
        panel = FIG4_PANELS["d"]
        csb = bandwidth_point(panel, "csb", 1024)
        assert csb == pytest.approx(16.0)
        for scheme in ("none", "combine16", "combine32", "combine64"):
            assert bandwidth_point(panel, scheme, 1024) < csb


class TestLatencyAnchors:
    def test_locking_slope_12_cycles_per_doubleword(self):
        # "It increases by 12 cycles for every doubleword transferred"
        # (ratio 6: one 2-cycle bus transaction per doubleword).
        spans = [latency_point("none", n, lock_hits_l1=True) for n in (2, 5, 8)]
        assert spans[1] - spans[0] == 3 * 12
        assert spans[2] - spans[1] == 3 * 12

    def test_csb_slope_1_cycle_per_doubleword(self):
        spans = [latency_point("csb", n, lock_hits_l1=True) for n in (2, 5, 8)]
        assert spans[1] - spans[0] == 3
        assert spans[2] - spans[1] == 3

    def test_lock_miss_adds_roughly_miss_latency(self):
        hit = latency_point("none", 4, lock_hits_l1=True)
        miss = latency_point("none", 4, lock_hits_l1=False)
        assert 90 <= miss - hit <= 110

    def test_csb_unaffected_by_lock_variable_state(self):
        # The CSB path has no lock variable at all.
        assert latency_point("csb", 4, True) == latency_point("csb", 4, False)

    def test_csb_beats_locking_everywhere(self):
        for n in (2, 4, 8):
            for hits in (True, False):
                assert latency_point("csb", n, hits) < latency_point(
                    "none", n, hits
                )

    def test_alignment_nonmonotonicity_7_to_8(self):
        # "The bus alignment restrictions lead to better bus utilization
        # when going from 7 to 8 transactions, thus explaining the
        # decreasing number of cycles."
        seven = latency_point("combine64", 7, lock_hits_l1=True)
        eight = latency_point("combine64", 8, lock_hits_l1=True)
        assert eight <= seven
