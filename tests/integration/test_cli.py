"""The ``csb-figures`` command-line interface."""



from repro.evaluation.cli import main


class TestList:
    def test_list_prints_all_ids(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert "fig3a" in out and "fig5b" in out and "crossover" in out


class TestRun:
    def test_single_experiment_prints_table(self, capsys):
        assert main(["sensitivity-ratio"]) == 0
        out = capsys.readouterr().out
        assert "cpu_ratio" in out and "lock_slope" in out

    def test_unknown_experiment_is_clean_usage_error(self, capsys):
        assert main(["fig9z"]) == 2
        err = capsys.readouterr().err
        assert "fig9z" in err and "--list" in err

    def test_no_arguments_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_csv_output(self, tmp_path, capsys):
        assert main(["ablation-depth", "--out", str(tmp_path)]) == 0
        path = tmp_path / "ablation-depth.csv"
        assert path.exists()
        header = path.read_text().splitlines()[0]
        assert header.startswith("depth,")

    def test_precision_flag(self, capsys):
        assert main(["ablation-depth", "--precision", "0"]) == 0
        out = capsys.readouterr().out
        assert "." not in out.splitlines()[-2].split()[-1]


class TestCheckMode:
    def test_check_against_fresh_golden(self, tmp_path, capsys):
        assert main(["ablation-depth", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["ablation-depth", "--check", str(tmp_path)]) == 0
        assert "ablation-depth: OK" in capsys.readouterr().out

    def test_check_detects_divergence(self, tmp_path, capsys):
        assert main(["ablation-depth", "--out", str(tmp_path)]) == 0
        golden = tmp_path / "ablation-depth.csv"
        golden.write_text(golden.read_text().replace("1,", "999,", 1))
        assert main(["ablation-depth", "--check", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "MISMATCH" in out and "expected:" in out

    def test_check_missing_golden(self, tmp_path, capsys):
        assert main(["ablation-depth", "--check", str(tmp_path)]) == 1
        assert "MISSING" in capsys.readouterr().out
