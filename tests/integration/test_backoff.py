"""Livelock mitigation (paper §3.2): exponential backoff on failed flushes.

A deterministic adversary injects a competing process's combining store
just before each conditional flush, forcing a controlled number of
conflicts.  With backoff enabled, every consecutive failure roughly
doubles the retry delay; without it, each retry costs the same.
"""

from repro import System, SystemConfig, assemble
from repro.memory.layout import IO_COMBINING_BASE
from repro.workloads.contention import contending_csb_kernel

N_DWORDS = 4


def run_with_forced_conflicts(backoff: bool, conflicts: int) -> int:
    """Total cycles for one iteration that suffers ``conflicts`` failures."""
    system = System()
    system.add_process(
        assemble(
            contending_csb_kernel(
                1,
                IO_COMBINING_BASE,
                n_doublewords=N_DWORDS,
                backoff=backoff,
                backoff_cap=4096,
            )
        )
    )
    forced = 0
    while not system.finished:
        # Sabotage: once the sequence is fully in the CSB (counter == n),
        # a competing process's store clears it, so the flush will fail.
        if (
            forced < conflicts
            and system.csb.hit_counter == N_DWORDS
            and system.csb.line_buffer_free
        ):
            system.unit.issue_store(IO_COMBINING_BASE, 8, 0xBAD, pid=99)
            forced += 1
        system.step()
    assert system.stats.get("csb.flush_conflicts") == conflicts
    assert system.stats.get("csb.flushes") == 1  # it did get through
    return system.cycle


class TestBackoffSemantics:
    def test_no_conflicts_backoff_is_free(self):
        plain = run_with_forced_conflicts(backoff=False, conflicts=0)
        with_backoff = run_with_forced_conflicts(backoff=True, conflicts=0)
        # The success path adds only the be/reset instructions.
        assert abs(with_backoff - plain) <= 8

    def test_retry_cost_constant_without_backoff(self):
        costs = [
            run_with_forced_conflicts(False, k) for k in range(1, 7)
        ]
        deltas = [b - a for a, b in zip(costs, costs[1:])]
        # Flat per-retry cost, modulo bus-phase alignment jitter.
        assert max(deltas) - min(deltas) <= 8

    def test_retry_cost_grows_exponentially_with_backoff(self):
        costs = [run_with_forced_conflicts(True, k) for k in range(1, 7)]
        deltas = [b - a for a, b in zip(costs, costs[1:])]
        # Deltas are non-decreasing and the spin term eventually dominates
        # the constant retry cost (the last delta dwarfs the first).
        assert all(b >= a for a, b in zip(deltas, deltas[1:]))
        assert deltas[-1] >= 3 * deltas[0]

    def test_backoff_capped(self):
        capped = run_with_forced_conflicts(True, 12)
        assert capped < 100_000  # cap prevents unbounded exponential spins


class TestBackoffUnderPreemption:
    def test_both_processes_complete_with_tiny_quantum(self):
        iterations = 25
        system = System(SystemConfig(quantum=45, switch_penalty=15))
        system.add_process(
            assemble(
                contending_csb_kernel(
                    iterations, IO_COMBINING_BASE, backoff=True, signature=0x1_0000
                )
            )
        )
        system.add_process(
            assemble(
                contending_csb_kernel(
                    iterations,
                    IO_COMBINING_BASE + 64,
                    backoff=True,
                    signature=0x2_0000,
                )
            )
        )
        system.run(max_cycles=10_000_000)
        assert system.stats.get("csb.flushes") == 2 * iterations
