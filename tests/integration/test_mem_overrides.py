"""--mem plumbing and the visible sampling fallback.

The CLI's ``--mem KEY=VALUE`` flags become a partial ``mem`` overrides
section on the SweepRunner, reach every sweep job, and tag the
whole-table cache; a sampled sweep that must run a job detailed now says
so (``sampling_fallbacks`` + a log line) instead of staying silent.
"""

from __future__ import annotations

import pytest

from repro.common.config import MemoryConfig, SamplingConfig
from repro.evaluation.cli import (
    _make_runner,
    _mem_from_args,
    _parser,
    _table_variant,
)
from repro.evaluation.runner import SimJob, SweepRunner, job_key
from repro.workloads.random_programs import (
    MARK_END,
    MARK_START,
    generate_program,
)

from tests.conftest import make_config

SAMPLING = SamplingConfig(
    enabled=True, ff_instructions=64, warmup_cycles=48, window_cycles=96
)


def _span_job(seed=0, **config_kwargs):
    return SimJob(
        config=make_config(**config_kwargs),
        kernel=generate_program(seed),
        measurement="span",
        args=(MARK_START, MARK_END),
        name=f"rand{seed}",
    )


class TestMemFlag:
    def test_no_flag_means_no_override(self):
        args = _parser().parse_args(["fig3a"])
        assert _mem_from_args(args) is None

    def test_flag_implies_enabled(self):
        args = _parser().parse_args(["fig3a", "--mem", "mshrs=8"])
        assert _mem_from_args(args) == {"mshrs": 8, "enabled": True}

    def test_explicit_disable_wins(self):
        args = _parser().parse_args(["fig3a", "--mem", "enabled=false"])
        assert _mem_from_args(args) == {"enabled": False}

    @pytest.mark.parametrize(
        "flag", ["ways=4", "mshrs=lots", "mshrs", "size_bytes=100"]
    )
    def test_bad_mem_flags_exit(self, flag):
        args = _parser().parse_args(["fig3a", "--mem", flag])
        with pytest.raises(SystemExit):
            _mem_from_args(args)

    def test_runner_carries_partial_overrides(self):
        args = _parser().parse_args(
            ["fig3a", "--no-cache", "--quiet", "--mem", "mshrs=8"]
        )
        runner = _make_runner(args)
        assert runner.overrides == {"mem": {"mshrs": 8, "enabled": True}}

    def test_table_variant_tags_mem_runs(self):
        assert _table_variant(SweepRunner()) == ""
        tagged = _table_variant(
            SweepRunner(overrides={"mem": {"enabled": True}})
        )
        assert tagged.startswith("overrides:")
        both = _table_variant(
            SweepRunner(sampling=SAMPLING, overrides={"mem": {"enabled": True}})
        )
        assert "sampled:" in both and "overrides:" in both


class TestRunnerOverrides:
    def test_overrides_rewrite_jobs_and_cache_keys(self):
        job = _span_job()
        runner = SweepRunner(overrides={"mem": {"enabled": True}})
        rewritten = runner._with_overrides(job)
        assert rewritten.config.mem.enabled
        assert rewritten.config.mem.line_size == job.config.mem.line_size
        assert job_key(rewritten) != job_key(job)

    def test_no_overrides_is_identity(self):
        job = _span_job()
        assert SweepRunner()._with_overrides(job) is job

    def test_overridden_sweep_simulates_with_the_cache(self):
        job = _span_job()
        plain = SweepRunner(jobs=1).run([job])
        cached = SweepRunner(
            jobs=1, overrides={"mem": {"enabled": True}}
        ).run([job])
        assert len(cached) == len(plain) == 1


class TestCliByteIdentity:
    def test_mem_disabled_check_stays_golden(self, capsys):
        # ``--mem enabled=false`` merges to the default config, so the
        # published goldens must verify byte-for-byte through the CLI.
        from repro.evaluation.cli import main

        assert (
            main(
                [
                    "fig3c",
                    "--check",
                    "expected_results",
                    "--no-cache",
                    "--quiet",
                    "--mem",
                    "enabled=false",
                ]
            )
            == 0
        )
        assert "fig3c: OK" in capsys.readouterr().out

    def test_cached_crossover_check_through_the_cli(self, capsys):
        from repro.evaluation.cli import main

        assert (
            main(
                [
                    "cached-crossover",
                    "--check",
                    "expected_results",
                    "--no-cache",
                    "--quiet",
                ]
            )
            == 0
        )
        assert "cached-crossover: OK" in capsys.readouterr().out


class TestVisibleSamplingFallback:
    def test_ineligible_job_is_recorded_and_logged(self):
        notes = []
        runner = SweepRunner(sampling=SAMPLING, log=notes.append)
        smp = _span_job(num_cores=2)
        rewritten = runner._with_sampling(smp)
        assert rewritten is smp
        assert len(runner.sampling_fallbacks) == 1
        name, reason = runner.sampling_fallbacks[0]
        assert name == "rand0"
        assert reason
        assert notes and "detailed tier" in notes[0]

    def test_mem_jobs_fall_back_visibly(self):
        # The data cache is not sampleable: --mem plus --tier sampled
        # must degrade loudly, not silently.
        notes = []
        runner = SweepRunner(
            sampling=SAMPLING,
            overrides={"mem": {"enabled": True}},
            log=notes.append,
        )
        results = runner.run([_span_job()])
        assert len(results) == 1
        assert len(runner.sampling_fallbacks) == 1
        assert "cache" in runner.sampling_fallbacks[0][1]
        assert len(notes) == 1

    def test_eligible_jobs_record_nothing(self):
        runner = SweepRunner(sampling=SAMPLING, log=lambda note: None)
        runner._with_sampling(_span_job())
        assert runner.sampling_fallbacks == []

    def test_default_log_goes_to_stderr(self, capsys):
        runner = SweepRunner(sampling=SAMPLING)
        runner._with_sampling(_span_job(num_cores=2))
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "detailed tier" in captured.err
