"""Figure harness: every panel produces a complete, well-formed table.

Full sweeps run in the benchmark harness; here each panel is exercised at
a reduced size grid so the whole registry stays test-fast.
"""

import pytest

from repro.common.errors import ConfigError
from repro.common.tables import Table
from repro.evaluation.bandwidth import panel_table
from repro.evaluation.latency import fig5_table
from repro.evaluation.panels import (
    FIG3_PANELS,
    FIG4_PANELS,
    panel_by_id,
)
from repro.evaluation.schemes import all_schemes, hw_schemes, scheme_block
from repro.evaluation.experiments import experiment_ids, run_experiment

SMOKE_SIZES = (16, 64, 256)


class TestSchemes:
    def test_hw_schemes_follow_line_size(self):
        assert hw_schemes(32) == ["none", "combine16", "combine32"]
        assert all_schemes(64)[-1] == "csb"
        assert all_schemes(128) == [
            "none", "combine16", "combine32", "combine64", "combine128", "csb",
        ]

    def test_scheme_block(self):
        assert scheme_block("none") == 8
        assert scheme_block("combine32") == 32
        with pytest.raises(ConfigError):
            scheme_block("csb")
        with pytest.raises(ConfigError):
            scheme_block("combineXL")


class TestPanelRegistry:
    def test_all_panels_present(self):
        assert sorted(FIG3_PANELS) == list("abcdefghi")
        assert sorted(FIG4_PANELS) == list("abcde")

    def test_panel_by_id(self):
        assert panel_by_id("fig3g").turnaround == 1
        assert panel_by_id("FIG4B").bus_width == 32
        with pytest.raises(ConfigError):
            panel_by_id("fig9z")


@pytest.mark.parametrize("panel_key", sorted(FIG3_PANELS))
def test_fig3_panel_produces_full_table(panel_key):
    spec = FIG3_PANELS[panel_key]
    table = panel_table(spec, sizes=SMOKE_SIZES)
    assert isinstance(table, Table)
    assert len(table.rows) == len(all_schemes(spec.line_size))
    for row in table.rows:
        assert all(isinstance(v, float) and v > 0 for v in row[1:])


@pytest.mark.parametrize("panel_key", sorted(FIG4_PANELS))
def test_fig4_panel_produces_full_table(panel_key):
    spec = FIG4_PANELS[panel_key]
    table = panel_table(spec, sizes=SMOKE_SIZES)
    assert len(table.rows) == len(all_schemes(spec.line_size))


class TestFig5Tables:
    def test_hit_panel(self):
        table = fig5_table(lock_hits_l1=True, counts=(2, 8))
        csb_row = [r for r in table.rows if r[0] == "csb"][0]
        none_row = [r for r in table.rows if r[0] == "none"][0]
        assert all(c < n for c, n in zip(csb_row[1:], none_row[1:]))

    def test_miss_panel_larger_than_hit(self):
        hit = fig5_table(True, counts=(4,))
        miss = fig5_table(False, counts=(4,))
        assert miss.lookup("scheme", "none", "32B") > hit.lookup(
            "scheme", "none", "32B"
        )


class TestExperimentRegistry:
    def test_ids_cover_all_figures(self):
        ids = experiment_ids()
        figure_ids = [i for i in ids if i.startswith("fig")]
        assert len(figure_ids) == 16  # 9 + 5 + 2 panels
        assert "fig3a" in ids and "fig4e" in ids and "fig5b" in ids

    def test_extension_studies_registered(self):
        ids = experiment_ids()
        for extension in ("crossover", "blockstore", "sensitivity-width"):
            assert extension in ids

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError):
            run_experiment("fig7x")

    @pytest.mark.slow
    def test_run_experiment_roundtrip(self):
        table = run_experiment("fig5a")
        assert table.rows
