"""Tier selection plumbing: CLI flags, runner rewrite, cache keying.

``csb-figures --tier sampled`` (or any ``--sample KEY=VALUE`` override)
must thread a :class:`~repro.common.config.SamplingConfig` into every
sweep job, land sampled results in cache entries disjoint from detailed
ones, and leave ineligible jobs (SMP, preemptive quanta, faults) running
fully detailed.  With sampling off, nothing anywhere may change — the
default tier stays byte-identical to the pre-tiered engine.
"""

from __future__ import annotations

import pytest

from repro.common.config import SamplingConfig
from repro.evaluation.cli import _parser, _sampling_from_args, _table_variant
from repro.evaluation.runner import (
    ResultCache,
    SimJob,
    SweepRunner,
    experiment_key,
    job_key,
)
from repro.workloads.random_programs import (
    MARK_END,
    MARK_START,
    generate_program,
)

from tests.conftest import make_config

SAMPLING = SamplingConfig(
    enabled=True, ff_instructions=64, warmup_cycles=48, window_cycles=96
)


def _span_job(seed=0, **config_kwargs):
    return SimJob(
        config=make_config(**config_kwargs),
        kernel=generate_program(seed),
        measurement="span",
        args=(MARK_START, MARK_END),
        name=f"rand{seed}",
    )


class TestCliFlags:
    def test_default_tier_is_detailed(self):
        args = _parser().parse_args(["fig3a"])
        assert args.tier == "detailed"
        assert _sampling_from_args(args) is None

    def test_tier_sampled_uses_defaults(self):
        args = _parser().parse_args(["fig3a", "--tier", "sampled"])
        sampling = _sampling_from_args(args)
        assert sampling == SamplingConfig(enabled=True)

    def test_sample_overrides_imply_sampled(self):
        args = _parser().parse_args(
            ["fig3a", "--sample", "window_cycles=800", "--sample",
             "confidence=0.99"]
        )
        sampling = _sampling_from_args(args)
        assert sampling.enabled
        assert sampling.window_cycles == 800
        assert sampling.confidence == 0.99
        assert sampling.ff_instructions == SamplingConfig().ff_instructions

    @pytest.mark.parametrize(
        "flag",
        ["bogus_key=1", "window_cycles", "window_cycles=abc",
         "confidence=0.5"],
    )
    def test_bad_sample_flags_exit(self, flag):
        args = _parser().parse_args(["fig3a", "--sample", flag])
        with pytest.raises(SystemExit):
            _sampling_from_args(args)

    def test_table_variant_tags_sampled_runs(self):
        assert _table_variant(SweepRunner()) == ""
        tagged = _table_variant(SweepRunner(sampling=SAMPLING))
        assert tagged.startswith("sampled:")
        assert "96" in tagged

    def test_experiment_key_varies_with_variant(self):
        plain = experiment_key("fig3a")
        sampled = experiment_key("fig3a", variant="sampled:x")
        assert plain != sampled
        assert experiment_key("fig3a", variant="") == plain


class TestRunnerRewrite:
    def test_sampled_jobs_get_disjoint_cache_keys(self):
        job = _span_job()
        rewritten = SweepRunner(sampling=SAMPLING)._with_sampling(job)
        assert rewritten.config.sampling == SAMPLING
        assert job_key(rewritten) != job_key(job)

    def test_ineligible_jobs_stay_detailed(self):
        smp = _span_job(num_cores=2)
        rewritten = SweepRunner(sampling=SAMPLING)._with_sampling(smp)
        assert rewritten is smp

    def test_sampled_sweep_runs_and_caches(self, tmp_path):
        jobs = [_span_job(seed) for seed in (0, 1)]
        cache = ResultCache(str(tmp_path))
        runner = SweepRunner(jobs=1, cache=cache, sampling=SAMPLING)
        first = runner.run(jobs)
        assert runner.simulated == len(jobs)
        warm = SweepRunner(jobs=1, cache=cache, sampling=SAMPLING)
        assert warm.run(jobs) == first
        assert warm.simulated == 0  # resolved from the sampled cache slice
        # A detailed runner sharing the cache must not see sampled entries.
        detailed = SweepRunner(jobs=1, cache=cache)
        detailed_results = detailed.run(jobs)
        assert detailed.simulated == len(jobs)
        # Spans agree within sampling error but are not byte-identical by
        # construction here (the sampled span is reconstructed): all this
        # test pins is that the two tiers keep separate cache entries.
        assert len(detailed_results) == len(first)

    def test_disabled_sampling_is_identity(self):
        job = _span_job()
        runner = SweepRunner(sampling=None)
        assert runner._with_sampling(job) is job
        baseline = SweepRunner(jobs=1).run([job])
        assert SweepRunner(jobs=1, sampling=None).run([job]) == baseline
