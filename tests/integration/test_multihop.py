"""Three-node store-and-forward: the cluster scales past two nodes.

Node 0 sends a message toward node 2 through node 1, which owns two NICs
(one per link) and runs a forwarding kernel: poll NIC-A's RX, copy the
payload out with uncached loads, send it onward through NIC-B with a CSB
burst.  Every hop preserves the payload.
"""

from repro import System, assemble
from repro.common.config import DOUBLEWORD
from repro.devices import nic as nic_regs
from repro.devices.base import DeviceAlias
from repro.devices.link import Link
from repro.devices.nic import NetworkInterface
from repro.memory.layout import (
    IO_COMBINING_BASE,
    IO_UNCACHED_BASE,
    PageAttr,
    Region,
)
from repro.sim.cluster import Cluster

NIC_SIZE = 16 * 1024
NIC_A = IO_UNCACHED_BASE                 # node1's NIC toward node0
NIC_B = IO_UNCACHED_BASE + NIC_SIZE      # node1's NIC toward node2
NIC_B_TX = IO_COMBINING_BASE             # combining alias of NIC_B's TX side
PAYLOAD_DWORDS = 4
SIGNATURE = 0xFEED0000_00000001


def make_node():
    system = System()
    nic = NetworkInterface(
        Region(NIC_A, NIC_SIZE, PageAttr.UNCACHED, "nic")
    )
    system.attach_device(nic)
    alias = DeviceAlias(
        Region(IO_COMBINING_BASE, NIC_SIZE, PageAttr.UNCACHED_COMBINING, "nic-tx"),
        nic,
    )
    system.attach_device(alias)
    return system, nic


def sender_kernel() -> str:
    lines = [
        f"set {SIGNATURE}, %l0",
        f"set {IO_COMBINING_BASE}, %o1",
        ".S:",
        f"set {PAYLOAD_DWORDS}, %l4",
    ]
    for i in range(PAYLOAD_DWORDS):
        lines.append(f"add %l0, {i}, %l1")
        lines.append(f"stx %l1, [%o1+{i * DOUBLEWORD}]")
    lines += ["swap [%o1], %l4", f"cmp %l4, {PAYLOAD_DWORDS}", "bnz .S", "halt"]
    return "\n".join(lines)


def forwarder_kernel() -> str:
    """Poll NIC-A, copy the payload, re-send via NIC-B's combining alias."""
    lines = [
        f"set {NIC_A + nic_regs.RX_STATUS_OFFSET}, %o4",
        f"set {NIC_A + nic_regs.RX_WINDOW_OFFSET}, %o5",
        f"set {NIC_B_TX + NIC_SIZE}, %o1",    # alias of NIC_B's TX FIFO
        ".WAIT:",
        "ldx [%o4], %l6",
        "brz %l6, .WAIT",
    ]
    for i in range(PAYLOAD_DWORDS):
        lines.append(f"ldx [%o5+{i * DOUBLEWORD}], %l{i}")
    lines += [
        f"stx %g0, [%o4+{nic_regs.RX_CONSUME_OFFSET - nic_regs.RX_STATUS_OFFSET}]",
        ".F:",
        f"set {PAYLOAD_DWORDS}, %l4",
    ]
    for i in range(PAYLOAD_DWORDS):
        lines.append(f"stx %l{i}, [%o1+{i * DOUBLEWORD}]")
    lines += ["swap [%o1], %l4", f"cmp %l4, {PAYLOAD_DWORDS}", "bnz .F", "halt"]
    return "\n".join(lines)


def receiver_kernel(result_addr: int) -> str:
    lines = [
        f"set {NIC_A + nic_regs.RX_STATUS_OFFSET}, %o4",
        f"set {NIC_A + nic_regs.RX_WINDOW_OFFSET}, %o5",
        f"set {result_addr}, %o6",
        ".WAIT:",
        "ldx [%o4], %l6",
        "brz %l6, .WAIT",
    ]
    for i in range(PAYLOAD_DWORDS):
        lines.append(f"ldx [%o5+{i * DOUBLEWORD}], %l0")
        lines.append(f"stx %l0, [%o6+{i * DOUBLEWORD}]")
    lines += ["halt"]
    return "\n".join(lines)


def test_three_node_store_and_forward():
    node0, nic0 = make_node()
    node2, nic2 = make_node()
    # Node 1 has two NICs: nic1a toward node0, nic1b toward node2.
    node1 = System()
    nic1a = NetworkInterface(
        Region(NIC_A, NIC_SIZE, PageAttr.UNCACHED, "nic-a")
    )
    nic1b = NetworkInterface(
        Region(NIC_B, NIC_SIZE, PageAttr.UNCACHED, "nic-b")
    )
    node1.attach_device(nic1a)
    node1.attach_device(nic1b)
    node1.attach_device(
        DeviceAlias(
            Region(
                IO_COMBINING_BASE, NIC_SIZE, PageAttr.UNCACHED_COMBINING, "a-tx"
            ),
            nic1a,
        )
    )
    node1.attach_device(
        DeviceAlias(
            Region(
                IO_COMBINING_BASE + NIC_SIZE,
                NIC_SIZE,
                PageAttr.UNCACHED_COMBINING,
                "b-tx",
            ),
            nic1b,
        )
    )
    cluster = Cluster([node0, node1, node2])
    cluster.connect(Link(nic0, nic1a, latency=5))
    cluster.connect(Link(nic1b, nic2, latency=5))

    result_addr = 0x6000
    node0.add_process(assemble(sender_kernel()), name="sender")
    node1.add_process(assemble(forwarder_kernel()), name="forwarder")
    node2.add_process(assemble(receiver_kernel(result_addr)), name="receiver")
    cluster.run()

    for i in range(PAYLOAD_DWORDS):
        assert node2.backing.read_int(result_addr + i * 8, 8) == SIGNATURE + i
    assert nic2.received_total == 1
    assert nic1a.received_total == 1
