"""The stable facade (repro.api) and the SystemConfig kwarg fold-in."""

import pytest

import repro
from repro import (
    RunResult,
    System,
    SystemConfig,
    assemble,
    experiments,
    run_experiment,
    simulate,
)
from repro.common.errors import ConfigError
from repro.common.serialize import config_from_dict, config_to_dict
from repro.observability import RingBufferSink
from repro.workloads import store_kernel_csb
from tests.conftest import make_config


class TestSimulate:
    def test_returns_run_result_with_metrics(self):
        result = simulate(make_config(), store_kernel_csb(256, 64))
        assert isinstance(result, RunResult)
        assert result.store_bandwidth > 0
        assert result.stats.get("csb.flushes") == 4
        assert result.metrics.counters["csb.flushes"] == 4
        assert result.metrics.bus_transactions == result.stats.get(
            "bus.transactions"
        )

    def test_accepts_assembled_program(self):
        program = assemble("set 1, %o1\nhalt")
        result = simulate(make_config(), program)
        assert result.system.cycle > 0

    def test_multi_process_via_programs(self):
        source = "set 1, %o1\nhalt"
        result = simulate(make_config(quantum=100), programs=[source, source])
        assert len(result.system.scheduler.processes) == 2

    def test_observers_attach(self):
        ring = RingBufferSink()
        simulate(make_config(), store_kernel_csb(64, 64), observers=[ring])
        assert ring.seen > 0

    def test_defaults_allow_config_omission(self):
        result = simulate(program="halt")
        assert result.system.cycle >= 1

    def test_experiment_facade_round_trip(self):
        assert "fig5a" in experiments()
        table = run_experiment("fig5a")
        assert "Figure 5(a)" in table.render(2)


class TestPackageSurface:
    def test_facade_exported_from_package_root(self):
        for name in ("simulate", "run_experiment", "experiments", "RunResult"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None


class TestSystemConfigScalars:
    def test_fields_reach_the_machine(self):
        system = System(
            SystemConfig(quantum=150, switch_penalty=7, bus_read_latency=5,
                         trace=True)
        )
        assert system.scheduler.quantum == 150
        assert system.scheduler.switch_penalty == 7
        assert system.bus.read_latency == 5
        assert system.trace is not None

    def test_validation(self):
        with pytest.raises(ConfigError):
            SystemConfig(quantum=0)
        with pytest.raises(ConfigError):
            SystemConfig(switch_penalty=-1)
        with pytest.raises(ConfigError):
            SystemConfig(bus_read_latency=-1)

    def test_serialize_round_trip_preserves_scalars(self):
        config = SystemConfig(quantum=250, switch_penalty=12,
                              bus_read_latency=4, trace=True)
        restored = config_from_dict(config_to_dict(config))
        assert restored == config

    def test_serialized_defaults_round_trip(self):
        config = make_config()
        assert config_from_dict(config_to_dict(config)) == config


class TestRemovedKwargs:
    def test_loose_kwargs_rejected(self):
        with pytest.raises(TypeError):
            System(make_config(), quantum=120)

    def test_config_only_construction_is_clean(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            System(make_config())
