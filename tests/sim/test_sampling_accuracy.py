"""Sampled-estimate accuracy and fast-forward throughput.

The tiered engine's pitch is that a sampled run recovers the paper's
metrics (Figure 3/4 store bandwidth, Figure 5 mark-to-mark spans) within
a few percent of the detailed golden value at a fraction of the detailed
work.  These tests pin that claim on representative points:

* store-bandwidth estimates (both the cumulative value and the per-window
  confidence-interval estimate) within 5% of the detailed run;
* span reconstruction (raw detailed span + skipped-instructions x sampled
  CPI) within 5% on a long uniform marked loop;
* the functional tier retires instructions at >= 10x the detailed core's
  rate (the speedup that makes sampling worthwhile at all).
"""

from __future__ import annotations

import time

import pytest

from repro.common.config import SamplingConfig
from repro.isa.assembler import assemble
from repro.sim.fastforward import FastForwarder
from repro.sim.sampling import Z_SCORES, run_sampled
from repro.sim.system import System
from repro.workloads import store_kernel_csb, store_kernel_uncached

from tests.conftest import make_config

MAX_CYCLES = 2_000_000

TOLERANCE = 0.05


def _detailed(source):
    system = System(make_config())
    system.add_process(assemble(source, name="golden"))
    system.run(max_cycles=MAX_CYCLES)
    return system


def _sampled(source, sampling):
    system = System(make_config(sampling=sampling))
    system.add_process(assemble(source, name="sampled"))
    run_sampled(system, max_cycles=MAX_CYCLES)
    return system


def _within(value, golden, tolerance=TOLERANCE):
    assert golden != 0
    assert abs(value - golden) / abs(golden) <= tolerance, (value, golden)


class TestBandwidthAccuracy:
    """Figure 3/4 metric: useful store bytes per bus cycle."""

    @pytest.mark.parametrize(
        "kernel",
        [store_kernel_csb(65536, 64), store_kernel_uncached(32768)],
        ids=["csb-64KiB", "uncached-32KiB"],
    )
    def test_sampled_bandwidth_within_5pct(self, kernel):
        golden = _detailed(kernel).store_bandwidth
        system = _sampled(kernel, SamplingConfig(enabled=True))
        report = system.sampling_report
        assert len(report.windows) >= 2
        # The cumulative metric stays valid because the clock freezes
        # during fast-forward phases.
        _within(system.store_bandwidth, golden)
        # The per-window estimate comes with a confidence interval.
        estimate = report.store_bandwidth
        _within(estimate.mean, golden)
        assert estimate.half_width >= 0.0
        assert estimate.low <= estimate.mean <= estimate.high

    def test_sampled_run_simulates_fewer_detailed_cycles(self):
        kernel = store_kernel_csb(65536, 64)
        golden = _detailed(kernel)
        sampled = _sampled(kernel, SamplingConfig(enabled=True))
        report = sampled.sampling_report
        assert report.detailed_cycles < golden.cycle
        assert report.ff_instructions > 0
        total = report.detailed_instructions + report.ff_instructions
        assert total == golden.scheduler.processes[0].retired_instructions


SPAN_KERNEL = """
        mark    span_start
        set     4000, %o0
        set     0, %o1
loop:   add     %o1, 3, %o1
        xor     %o1, 5, %o1
        sub     %o0, 1, %o0
        brnz    %o0, loop
        mark    span_end
        halt
"""


class TestSpanReconstruction:
    """Figure 5 metric: CPU cycles between two marks."""

    def test_sampled_span_within_5pct(self):
        golden = _detailed(SPAN_KERNEL).span("span_start", "span_end")
        sampling = SamplingConfig(
            enabled=True, ff_instructions=800, warmup_cycles=600,
            window_cycles=1200,
        )
        system = _sampled(SPAN_KERNEL, sampling)
        report = system.sampling_report
        raw = system.span("span_start", "span_end")
        assert raw < golden  # the raw span really omits skipped work
        estimate = report.estimate_span(raw, "span_start", "span_end")
        _within(estimate, golden)
        assert report.span_half_width("span_start", "span_end") >= 0.0

    def test_span_without_skipped_work_is_exact(self):
        golden = _detailed(SPAN_KERNEL).span("span_start", "span_end")
        # Windows larger than the program: the sampled run degenerates to
        # a fully detailed run and the span must be bit-exact.
        sampling = SamplingConfig(
            enabled=True, ff_instructions=1, warmup_cycles=10,
            window_cycles=1_000_000,
        )
        system = _sampled(SPAN_KERNEL, sampling)
        raw = system.span("span_start", "span_end")
        assert raw == golden
        assert (
            system.sampling_report.estimate_span(raw, "span_start", "span_end")
            == golden
        )

    def test_api_simulate_reconstructs_span(self):
        from repro.api import simulate

        golden = simulate(make_config(), SPAN_KERNEL).span(
            "span_start", "span_end"
        )
        sampling = SamplingConfig(
            enabled=True, ff_instructions=800, warmup_cycles=600,
            window_cycles=1200,
        )
        result = simulate(make_config(sampling=sampling), SPAN_KERNEL)
        assert result.sampling is not None
        _within(result.span("span_start", "span_end"), golden)


SPEED_KERNEL = """
        set     800, %o0
        set     0, %o1
loop:   add     %o1, 3, %o1
        sub     %o1, 1, %o1
        mulx    %o1, 1, %o1
        sub     %o0, 1, %o0
        brnz    %o0, loop
        halt
"""


class TestThroughput:
    def test_fast_forward_at_least_10x_detailed(self):
        detailed = System(make_config())
        detailed.add_process(assemble(SPEED_KERNEL, name="det"))
        start = time.perf_counter()
        detailed.run(max_cycles=MAX_CYCLES)
        detailed_seconds = time.perf_counter() - start
        instructions = detailed.scheduler.processes[0].retired_instructions
        detailed_rate = instructions / detailed_seconds

        ff_system = System(make_config())
        ff_system.add_process(assemble(SPEED_KERNEL, name="ff"))
        ff_system.step()
        ff = FastForwarder(ff_system)
        start = time.perf_counter()
        executed = ff.fast_forward(10**9)
        ff_seconds = time.perf_counter() - start
        ff_rate = executed / ff_seconds

        assert executed == instructions  # whole program, both tiers
        assert ff_system.scheduler.processes[0].halted
        assert ff_rate >= 10 * detailed_rate, (ff_rate, detailed_rate)


class TestEstimateMath:
    def test_z_table_matches_confidence_levels(self):
        from repro.common.config import CONFIDENCE_LEVELS

        assert set(Z_SCORES) == set(CONFIDENCE_LEVELS)

    def test_single_sample_has_zero_half_width(self):
        from repro.sim.sampling import _estimate

        estimate = _estimate([4.0], 0.95)
        assert estimate.mean == 4.0
        assert estimate.half_width == 0.0

    def test_interval_scales_with_z(self):
        from repro.sim.sampling import _estimate

        samples = [1.0, 2.0, 3.0, 4.0]
        narrow = _estimate(samples, 0.90)
        wide = _estimate(samples, 0.99)
        assert narrow.mean == wide.mean
        assert narrow.half_width < wide.half_width

    def test_report_serializes(self):
        kernel = store_kernel_csb(16384, 64)
        sampling = SamplingConfig(
            enabled=True, ff_instructions=400, warmup_cycles=300,
            window_cycles=600,
        )
        report = _sampled(kernel, sampling).sampling_report
        payload = report.to_dict()
        assert payload["config"]["enabled"] is True
        assert payload["ff_instructions"] == report.ff_instructions
        assert len(payload["windows"]) == len(report.windows)
