"""Cluster.run's batched loop is cycle-identical to stepping manually.

``Cluster.run`` hoists the per-cycle node steps and link ticks into
locals (the same optimization ``System.run`` applies); the simulator's
determinism contract requires this to change nothing observable.  Both
drivers run the full two-node ping-pong — kernels, NICs, a latent wire —
and every cycle count, counter, and NIC statistic must agree.
"""

from repro.devices.link import Link
from repro.evaluation.rtt import _build_node
from repro.isa.assembler import assemble
from repro.memory.layout import IO_COMBINING_BASE, IO_UNCACHED_BASE
from repro.sim.cluster import Cluster
from repro.workloads.pingpong import ping_kernel, pong_kernel


def _pingpong_cluster():
    node_a, nic_a = _build_node()
    node_b, nic_b = _build_node()
    cluster = Cluster([node_a, node_b])
    cluster.connect(Link(nic_a, nic_b, latency=10))
    node_a.add_process(
        assemble(
            ping_kernel("csb", 4, IO_UNCACHED_BASE, IO_COMBINING_BASE),
            name="ping",
        )
    )
    node_b.add_process(
        assemble(
            pong_kernel("csb", 4, IO_UNCACHED_BASE, IO_COMBINING_BASE),
            name="pong",
        )
    )
    return cluster, nic_a, nic_b


def _signature(cluster, nics):
    return {
        "cycle": cluster.cycle,
        "stats": [system.stats.as_dict() for system in cluster.systems],
        "marks": [dict(system.stats.marks) for system in cluster.systems],
        "received": [nic.received_total for nic in nics],
        "in_flight": [link.in_flight for link in cluster.links],
    }


def test_batched_run_matches_manual_stepping():
    batched, *batched_nics = _pingpong_cluster()
    batched.run(max_cycles=100_000)

    stepped, *stepped_nics = _pingpong_cluster()
    while not stepped.finished:
        assert stepped.cycle < 100_000
        stepped.step()

    assert _signature(batched, batched_nics) == _signature(stepped, stepped_nics)


def test_run_resumes_after_manual_steps():
    # Mixing drivers mid-flight must also be seamless: step a while, then
    # hand the rest of the run to the batched loop.
    mixed, *mixed_nics = _pingpong_cluster()
    for _ in range(137):
        mixed.step()
    mixed.run(max_cycles=100_000)

    reference, *reference_nics = _pingpong_cluster()
    reference.run(max_cycles=100_000)

    assert _signature(mixed, mixed_nics) == _signature(reference, reference_nics)
