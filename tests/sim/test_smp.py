"""SMP system construction, per-core scheduling, and cross-core CSB
conflicts.

The single-core pins here guard the refactor's central promise: a
``num_cores=1`` system is cycle-for-cycle and counter-for-counter the
machine the pre-SMP simulator built (the full-figure equivalence is
enforced by ``csb-figures --all --check expected_results``; these tests
keep the fast suite sensitive to the same property).
"""

import pytest

from repro.common.errors import ConfigError
from repro.isa.assembler import assemble
from repro.memory.layout import IO_COMBINING_BASE
from repro.observability.sinks import RingBufferSink
from repro.sim.system import System
from repro.workloads.lockbench import DEFAULT_LOCK_ADDR, locked_access_kernel
from repro.workloads.storebw import store_kernel_csb
from tests.conftest import make_config, run_asm

LINE = IO_COMBINING_BASE


def make_smp(num_cores, **kwargs):
    return System(make_config(num_cores=num_cores, **kwargs))


class TestConstruction:
    def test_per_core_hardware_shared_backbone(self):
        system = make_smp(4)
        assert len(system.cores) == len(system.units) == len(system.buffers) == 4
        # One CSB, one bus, one hierarchy for the whole machine.
        assert all(unit.csb is system.csb for unit in system.units)
        assert all(unit.bus is system.bus for unit in system.units)
        assert [core.core_id for core in system.cores] == [0, 1, 2, 3]

    def test_singular_aliases_are_core_zero(self):
        system = make_smp(2)
        assert system.core is system.cores[0]
        assert system.unit is system.units[0]
        assert system.buffer is system.buffers[0]

    def test_arbiter_has_one_slot_per_core(self):
        system = make_smp(3)
        expected = {"core0", "core1", "core2"}
        if system.refill_engine is not None:
            expected.add("refill")
        assert set(system.arbiter.grants) == expected

    def test_num_cores_must_be_positive(self):
        with pytest.raises(ConfigError):
            make_smp(0)


class TestProcessPlacement:
    def test_round_robin_distribution_by_default(self):
        system = make_smp(2)
        for _ in range(4):
            system.add_process(assemble("halt"))
        assert [len(q.processes) for q in system.scheduler.queues] == [2, 2]

    def test_explicit_core_id_pins(self):
        system = make_smp(2)
        context = system.add_process(assemble("halt"), core_id=1)
        assert system.scheduler.queues[1].processes == [context]
        assert system.scheduler.queues[0].processes == []

    def test_core_id_out_of_range_rejected(self):
        system = make_smp(2)
        with pytest.raises(ConfigError):
            system.add_process(assemble("halt"), core_id=2)


class TestSingleCorePins:
    """Known-good single-core numbers (the pre-SMP machine's)."""

    def test_csb_store_kernel_cycles_and_counters(self):
        system = run_asm(store_kernel_csb(64, 64))
        assert system.cycle == 67
        counters = system.stats.as_dict()
        assert counters["csb.stores"] == 8
        assert counters["csb.flushes"] == 1
        assert counters["csb.sequences_started"] == 1
        assert counters["bus.transactions"] == 1
        assert counters["bus.bytes_wire"] == 64
        assert counters["core.retired"] == 18

    def test_locked_access_kernel_cycles(self):
        system = run_asm(locked_access_kernel(4), warm=[DEFAULT_LOCK_ADDR])
        assert system.cycle == 55
        assert system.stats.get("bus.transactions") == 4


class TestTwoCoreExecution:
    def test_both_cores_run_to_completion(self):
        system = make_smp(2)
        a = system.add_process(assemble("set 7, %o1\nhalt"))
        b = system.add_process(assemble("set 9, %o1\nhalt"))
        system.run(max_cycles=10_000)
        assert a.registers.read("%o1") == 7
        assert b.registers.read("%o1") == 9

    def test_parallel_speedup_over_one_core(self):
        # The same two compute-bound programs finish sooner on two cores
        # than time-shared on one.
        spin = "set 200, %l1\n.S:\nsub %l1, 1, %l1\nbrnz %l1, .S\nhalt"

        def total(num_cores):
            system = make_smp(num_cores, quantum=100)
            system.add_process(assemble(spin))
            system.add_process(assemble(spin))
            system.run(max_cycles=100_000)
            return system.cycle

        assert total(2) < total(1)


def _conflict_system():
    """Core 0 combines four doublewords then flushes late; core 1's lone
    mid-sequence store to the same line clears core 0's sequence."""
    system = make_smp(2)
    victim = "\n".join(
        [
            f"set {LINE}, %o1",
            "stx %l0, [%o1+0]",
            "stx %l0, [%o1+8]",
            "stx %l0, [%o1+16]",
            "stx %l0, [%o1+24]",
            "set 100, %l6",       # hold the flush until core 1 has intruded
            ".D:",
            "sub %l6, 1, %l6",
            "brnz %l6, .D",
            "set 4, %l4",
            "swap [%o1], %l4",    # conditional flush, expected = 4
            "halt",
        ]
    )
    intruder = "\n".join(
        [
            "set 30, %l1",        # land after core 0's stores, before its flush
            ".S:",
            "sub %l1, 1, %l1",
            "brnz %l1, .S",
            f"set {LINE}, %o1",
            "stx %l0, [%o1+32]",
            "halt",
        ]
    )
    system.add_process(assemble(victim, name="victim"), core_id=0)
    system.add_process(assemble(intruder, name="intruder"), core_id=1)
    return system


class TestCrossCoreConflict:
    def test_interleaved_stores_abort_the_flush(self):
        system = _conflict_system()
        sink = system.attach_observer(RingBufferSink())
        system.run(max_cycles=10_000)
        aborts = sink.of_kind("ConflictAbort")
        assert len(aborts) == 1
        abort = aborts[0]
        # Core 0 (pid 1) expected its 4 stores; the CSB actually held core
        # 1's restarted sequence — exactly one store, so counter == 1.
        assert abort.core_id == 0
        assert abort.pid == 1
        assert abort.expected == 4
        assert abort.counter == 1
        assert system.stats.get("csb.flush_conflicts") == 1
        # Core 1's intrusion started a fresh sequence (core 0's + core 1's).
        assert system.stats.get("csb.sequences_started") == 2

    def test_flush_swap_returned_zero_to_the_victim(self):
        system = _conflict_system()
        system.run(max_cycles=10_000)
        victim = system.scheduler.processes[0]
        assert victim.registers.read("%l4") == 0  # CONFLICT, not 4


class TestSchedulerRunnableCount:
    def test_cached_count_tracks_halts(self):
        system = System(make_config(quantum=50))
        for _ in range(3):
            system.add_process(
                assemble("set 40, %l1\n.S:\nsub %l1, 1, %l1\nbrnz %l1, .S\nhalt")
            )
        queue = system.scheduler.queues[0]
        assert queue._num_runnable == 3
        while not system.scheduler.all_halted:
            system.step()
            assert queue._num_runnable == len(queue.runnable())
        assert queue._num_runnable == 0

    def test_quantum_switching_still_preempts(self):
        system = System(make_config(quantum=60))
        spin = "set 300, %l1\n.S:\nsub %l1, 1, %l1\nbrnz %l1, .S\nhalt"
        system.add_process(assemble(spin))
        system.add_process(assemble(spin))
        system.run(max_cycles=100_000)
        assert system.scheduler.context_switches > 2
