"""run_streamed and retire_halted: the streaming-replay contracts."""

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import DeadlockError
from repro.isa.assembler import assemble
from repro.sim.system import System

KERNEL = "set 1, %o1\nset 2, %o2\nhalt"


class TestRunStreamed:
    def test_feed_is_called_until_exhausted(self):
        system = System(SystemConfig())
        calls = []

        def feed(sys):
            calls.append(sys.cycle)
            if len(calls) > 3:
                return False
            sys.add_process(assemble(KERNEL), name=f"w{len(calls)}")
            return True

        system.run_streamed(feed)
        assert len(calls) == 4  # 3 windows + the exhausted call
        assert calls[0] == 0  # fed before the first cycle
        assert calls == sorted(calls)

    def test_empty_stream_runs_zero_cycles(self):
        system = System(SystemConfig())
        system.run_streamed(lambda sys: False)
        assert system.cycle == 0

    def test_feed_may_fast_forward_the_clock(self):
        system = System(SystemConfig())
        state = {"fed": False}

        def feed(sys):
            if state["fed"]:
                return False
            state["fed"] = True
            sys.cycle = 10_000  # idle-skip over a trace gap
            sys.add_process(assemble(KERNEL))
            return True

        system.run_streamed(feed)
        assert system.cycle > 10_000

    def test_lying_feed_raises(self):
        system = System(SystemConfig())
        with pytest.raises(DeadlockError):
            system.run_streamed(lambda sys: True)  # claims work, adds none

    def test_max_cycles_bounds_the_whole_run(self):
        system = System(SystemConfig())

        def feed(sys):
            sys.add_process(assemble(KERNEL))
            return True  # endless stream

        with pytest.raises(DeadlockError):
            system.run_streamed(feed, max_cycles=500)


class TestRetireHalted:
    def test_halted_processes_are_forgotten(self):
        system = System(SystemConfig())

        def feed(sys):
            if len(sys.scheduler.processes) >= 3:
                return False
            sys.add_process(assemble(KERNEL))
            return True

        system.run_streamed(feed)
        assert len(system.scheduler.processes) == 3
        retired = system.scheduler.retire_halted()
        assert retired == 3
        assert system.scheduler.processes == []

    def test_queue_stays_bounded_across_windows(self):
        system = System(SystemConfig(num_cores=2))
        windows = {"n": 0}

        def feed(sys):
            sys.scheduler.retire_halted()
            for queue in sys.scheduler.queues:
                assert len(queue._processes) == 0
            if windows["n"] == 5:
                return False
            windows["n"] += 1
            for core in range(2):
                sys.add_process(assemble(KERNEL), core_id=core)
            return True

        system.run_streamed(feed)
        assert windows["n"] == 5

    def test_retire_is_a_noop_with_live_processes(self):
        system = System(SystemConfig())
        system.add_process(assemble(KERNEL))
        assert system.scheduler.retire_halted() == 0
        system.run()
        assert system.scheduler.retire_halted() == 1
