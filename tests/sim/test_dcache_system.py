"""The non-blocking D-cache wired into full systems.

Covers the MemoryConfig integration points end to end: the cache-off
byte-identity guarantee, the emergent hit/miss timing on the cached
store/load/swap paths, dirty-victim write-back traffic on the shared bus,
SMP per-core caches with the invalidate mesh, and the
invalidate-on-CSB-write coherence rule.
"""

from dataclasses import replace

from repro.common.config import MemoryConfig, SystemConfig
from repro.isa.assembler import assemble
from repro.memory.layout import IO_COMBINING_BASE
from repro.sim.system import System
from repro.workloads.storebw import store_kernel_csb

BASE = 0x8000


def cached_config(num_cores=1, **mem_kwargs):
    mem_kwargs.setdefault("enabled", True)
    return SystemConfig(num_cores=num_cores, mem=MemoryConfig(**mem_kwargs))


def run_source(source, config=None):
    system = System(config)
    system.add_process(assemble(source))
    system.run()
    return system


def snapshot(system):
    from repro.observability.metrics import MetricsSnapshot

    return MetricsSnapshot.from_system(system).counters


def store_sweep(lines, per_line=1, stride=64, base=BASE):
    source = ["mark 1"]
    for i in range(lines):
        source.append(f"set {base + i * stride}, %o0")
        for j in range(per_line):
            source.append(f"stx %g0, [%o0+{j * 8}]")
    source += ["mark 2", "halt"]
    return "\n".join(source)


class TestByteIdentity:
    """mem.enabled=False (the default) must not move a single cycle."""

    def test_disabled_config_builds_no_cache_hardware(self):
        system = System()
        assert system.dcaches == []
        assert system.writeback_engine is None

    def test_explicit_disabled_equals_default(self):
        kernel = store_sweep(8) + "\n" + store_kernel_csb(256, 64)
        baseline = run_source(kernel)
        explicit = run_source(
            kernel, replace(SystemConfig(), mem=MemoryConfig(enabled=False))
        )
        assert explicit.cycle == baseline.cycle
        assert snapshot(explicit) == snapshot(baseline)


class TestCachedTiming:
    def test_cold_store_sweep_counts_one_miss_per_line(self):
        system = run_source(store_sweep(8, per_line=4), cached_config())
        cache = system.dcaches[0]
        assert cache.misses == 8
        assert cache.hits == 8 * 3
        assert system.stats["core.cached_stores"] == 32

    def test_misses_cost_miss_latency_per_line(self):
        fast = run_source(store_sweep(4), cached_config())
        slow = run_source(store_sweep(8), cached_config())
        per_line = (
            slow.span("1", "2") - fast.span("1", "2")
        ) / 4
        mem = cached_config().mem
        assert mem.miss_latency <= per_line <= mem.miss_latency + 10

    def test_warm_lines_hit(self):
        config = cached_config()
        system = System(config)
        system.add_process(assemble(store_sweep(4)))
        for i in range(4):
            system.warm(BASE + i * 64)
        system.run()
        assert system.dcaches[0].misses == 0
        assert system.dcaches[0].hits == 4

    def test_writethrough_slower_than_writeback(self):
        wb = run_source(
            store_sweep(4, per_line=4), cached_config(write_policy="writeback")
        )
        wt = run_source(
            store_sweep(4, per_line=4),
            cached_config(write_policy="writethrough"),
        )
        assert wt.span("1", "2") > wb.span("1", "2")
        assert wt.dcaches[0].writethroughs == 16
        assert wt.dcaches[0].dirty_lines() == []


class TestWritebackTraffic:
    def test_dirty_victims_reach_the_bus(self):
        # A direct-mapped 2-line cache + a 4-line dirty sweep forces
        # dirty evictions; with bus_traffic on they must become
        # write-back transactions, drained before the run completes.
        config = cached_config(
            size_bytes=128, line_size=64, associativity=1, mshrs=2
        )
        system = run_source(store_sweep(4), config)
        cache = system.dcaches[0]
        assert cache.writebacks >= 2
        assert system.stats["writeback.requests"] == cache.writebacks
        assert (
            system.stats["writeback.issued"]
            == system.stats["writeback.requests"]
        )
        assert system.writeback_engine.pending == 0

    def test_bus_traffic_off_keeps_the_bus_silent(self):
        config = cached_config(
            size_bytes=128, line_size=64, associativity=1, bus_traffic=False
        )
        system = run_source(store_sweep(4), config)
        assert system.dcaches[0].writebacks >= 2
        assert system.stats["writeback.requests"] == 0
        assert system.stats["refill.requests"] == 0


class TestSMP:
    def test_one_cache_per_core_with_peer_mesh(self):
        system = System(cached_config(num_cores=3))
        assert len(system.dcaches) == 3
        for cache in system.dcaches:
            assert len(cache.peers) == 2
            assert cache not in cache.peers

    def test_store_invalidates_the_other_cores_copy(self):
        system = System(cached_config(num_cores=2))
        system.add_process(assemble("halt"), core_id=1)
        system.add_process(
            assemble(f"set {BASE}, %o0\nstx %g0, [%o0]\nhalt"), core_id=0
        )
        system.dcaches[1].warm(BASE)
        system.run()
        assert system.dcaches[0].probe(BASE)
        assert not system.dcaches[1].probe(BASE)
        assert system.dcaches[1].coherence_invalidations == 1

    def test_smp_cached_run_completes_with_traffic(self):
        system = System(cached_config(num_cores=2))
        for core_id in range(2):
            system.add_process(
                assemble(store_sweep(4, base=BASE + core_id * 0x1000)),
                core_id=core_id,
            )
        system.run()
        assert all(cache.misses == 4 for cache in system.dcaches)
        assert system.stats["refill.requests"] == 8


class TestCSBInvalidate:
    def test_csb_burst_drops_cached_copies_of_the_flushed_span(self):
        # The litmus for the invalidate-on-CSB-write rule: a line of the
        # combining window is (artificially) resident in both D-caches;
        # committing a CSB burst over it must drop every copy.
        config = cached_config(num_cores=2)
        system = System(config)
        line = system.config.csb.line_size
        kernel = store_kernel_csb(line, line)
        system.add_process(assemble(kernel), core_id=0)
        system.add_process(assemble("halt"), core_id=1)
        for cache in system.dcaches:
            cache.warm(IO_COMBINING_BASE)
        system.run()
        assert system.stats["csb.flushes"] >= 1
        for cache in system.dcaches:
            assert not cache.probe(IO_COMBINING_BASE)
            assert cache.csb_invalidations >= 1


class TestObservability:
    def test_metrics_snapshot_carries_cache_counters(self):
        from repro.observability.metrics import MetricsSnapshot

        system = run_source(store_sweep(4), cached_config())
        snapshot = MetricsSnapshot.from_system(system)
        assert snapshot.cache["misses"] == 4
        assert snapshot.to_dict()["cache"]["misses"] == 4

    def test_cache_events_published(self):
        from repro.observability.sinks import RingBufferSink

        config = cached_config(size_bytes=128, associativity=1)
        system = System(config)
        sink = RingBufferSink()
        system.attach_observer(sink)
        system.add_process(assemble(store_sweep(4)))
        system.run()
        kinds = [type(event).__name__ for event in sink.events]
        assert "CacheMiss" in kinds
        assert "CacheRefill" in kinds
        assert "CacheWriteback" in kinds
