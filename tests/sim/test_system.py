"""System assembly and run loop."""

import pytest

from repro import System, assemble
from repro.common.errors import ConfigError, DeadlockError
from repro.devices.sink import BurstSink
from repro.memory.layout import (
    IO_UNCACHED_BASE,
    PageAttr,
    Region,
)
from tests.conftest import make_config


class TestConstruction:
    def test_default_config(self):
        system = System()
        assert system.config.bus.cpu_ratio == 6

    def test_components_share_stats(self):
        system = System()
        assert system.bus.stats is system.stats
        assert system.csb.stats is system.stats


class TestDeviceAttachment:
    def test_attach_in_uncached_space(self):
        system = System(make_config())
        region = Region(IO_UNCACHED_BASE, 8192, PageAttr.UNCACHED, "dev")
        device = system.attach_device(BurstSink(region))
        assert device in system.devices

    def test_attach_outside_mapped_space_rejected(self):
        system = System(make_config())
        region = Region(0x7000_0000, 8192, PageAttr.UNCACHED, "dev")
        with pytest.raises(ConfigError):
            system.attach_device(BurstSink(region))

    def test_attach_in_cached_space_rejected(self):
        system = System(make_config())
        region = Region(0x0, 8192, PageAttr.CACHED, "dev")
        with pytest.raises(ConfigError):
            system.attach_device(BurstSink(region))

    def test_devices_get_bus_ticks(self):
        system = System(make_config())
        region = Region(IO_UNCACHED_BASE, 64 * 1024, PageAttr.UNCACHED, "nic")
        from repro.devices.nic import NetworkInterface

        nic = system.attach_device(NetworkInterface(region))
        system.add_process(
            assemble(f"set {IO_UNCACHED_BASE + 0x1000}, %o1\nstx %l0, [%o1]\nhalt")
        )
        system.run()
        assert nic.writes == 1


class TestRunLoop:
    def test_finished_only_after_io_drains(self):
        system = System(make_config())
        system.add_process(
            assemble(f"set {IO_UNCACHED_BASE}, %o1\nstx %l0, [%o1]\nhalt")
        )
        # Step until the process halts; I/O may still be in flight.
        while not system.scheduler.all_halted:
            system.step()
        system.run()  # must still drain the bus
        assert system.unit.quiescent()
        assert system.finished

    def test_max_cycles_guard(self):
        system = System(make_config())
        system.add_process(assemble("loop: ba loop\nhalt"))
        with pytest.raises(DeadlockError):
            system.run(max_cycles=1000)

    def test_run_cycles_advances_exactly(self):
        system = System(make_config())
        system.add_process(assemble("halt"))
        system.run_cycles(10)
        assert system.cycle == 10

    def test_span_and_bandwidth_helpers(self):
        system = System(make_config())
        system.add_process(
            assemble(
                f"mark a\nset {IO_UNCACHED_BASE}, %o1\n"
                "stx %l0, [%o1]\nmembar\nmark b\nhalt"
            )
        )
        system.run()
        assert system.span("a", "b") > 0
        assert system.store_bandwidth > 0
