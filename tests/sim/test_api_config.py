"""The unified-config API surface: overrides mappings and fallbacks.

``simulate``/``run_experiment`` take one configuration argument — a full
SystemConfig or a partial overrides mapping.  The pre-MemoryConfig call
shapes (program first, runner as second positional) were shimmed for one
release and are now rejected outright.
"""

import warnings

import pytest

from repro import MemoryConfig, SystemConfig, assemble, simulate
from repro.api import resolve_config, run_experiment
from repro.common.errors import ConfigError
from repro.common.serialize import apply_overrides, parse_field_assignments

KERNEL = "set 1, %o1\nhalt"


class TestResolveConfig:
    def test_none_is_defaults(self):
        assert resolve_config(None) == SystemConfig()

    def test_full_config_passes_through(self):
        config = SystemConfig(num_cores=2)
        assert resolve_config(config) is config

    def test_mapping_merges_over_defaults(self):
        config = resolve_config({"mem": {"enabled": True, "mshrs": 8}})
        assert config.mem.enabled
        assert config.mem.mshrs == 8
        # Untouched sections keep their defaults.
        assert config.bus == SystemConfig().bus

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigError):
            resolve_config({"dcache": {"enabled": True}})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            resolve_config({"mem": {"ways": 4}})

    def test_wrong_type_rejected(self):
        with pytest.raises(ConfigError):
            resolve_config(42)


class TestSimulateOverrides:
    def test_overrides_reach_the_machine(self):
        result = simulate({"mem": {"enabled": True}}, KERNEL)
        assert len(result.system.dcaches) == 1

    def test_overrides_equal_explicit_config(self):
        from dataclasses import replace

        explicit = simulate(
            replace(SystemConfig(), mem=MemoryConfig(enabled=True)), KERNEL
        )
        implied = simulate({"mem": {"enabled": True}}, KERNEL)
        assert implied.system.cycle == explicit.system.cycle

    def test_sampling_fallback_reports_reason(self):
        # Sampling + SMP is invalid; the overrides path degrades to a
        # detailed run and says why instead of raising.
        result = simulate(
            {"sampling": {"enabled": True}, "num_cores": 2}, KERNEL
        )
        assert result.sampling is None
        assert result.sampling_fallback is not None
        assert result.system.cycle > 0

    def test_no_fallback_on_clean_run(self):
        assert simulate(None, KERNEL).sampling_fallback is None

    def test_invalid_overrides_without_sampling_still_raise(self):
        with pytest.raises(ConfigError):
            simulate({"num_cores": 0}, KERNEL)


class TestRemovedShims:
    def test_program_first_is_rejected(self):
        with pytest.raises(ConfigError):
            simulate(KERNEL)

    def test_program_then_config_is_rejected(self):
        with pytest.raises(ConfigError):
            simulate(assemble(KERNEL), SystemConfig())

    def test_config_first_warns_nothing(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            simulate(SystemConfig(), KERNEL)

    def test_run_experiment_positional_runner_is_rejected(self):
        from repro.evaluation.runner import default_runner

        with pytest.raises(ConfigError):
            run_experiment("crossover", default_runner())


class TestRunExperimentConfig:
    def test_mem_overrides_change_sweep_results(self):
        # fig5a sweeps locked round trips; caching the lock changes the
        # numbers, which proves the overrides reached every job.
        baseline = run_experiment("fig5a")
        cached = run_experiment("fig5a", {"mem": {"enabled": True}})
        assert cached.columns == baseline.columns
        assert cached.rows != baseline.rows

    def test_unknown_override_fails_fast(self):
        with pytest.raises(ConfigError):
            run_experiment("fig5a", {"mem": {"bogus": 1}})


class TestFieldAssignmentParsing:
    def test_coercion_by_field_type(self):
        fields = parse_field_assignments(
            MemoryConfig,
            ["mshrs=8", "enabled=yes", "write_policy=writethrough"],
            "--mem",
        )
        assert fields == {
            "mshrs": 8,
            "enabled": True,
            "write_policy": "writethrough",
        }

    def test_later_assignment_wins(self):
        fields = parse_field_assignments(
            MemoryConfig, ["mshrs=2", "mshrs=16"], "--mem"
        )
        assert fields == {"mshrs": 16}

    def test_unknown_key_and_bad_value_rejected(self):
        with pytest.raises(ConfigError):
            parse_field_assignments(MemoryConfig, ["ways=4"], "--mem")
        with pytest.raises(ConfigError):
            parse_field_assignments(MemoryConfig, ["mshrs=lots"], "--mem")
        with pytest.raises(ConfigError):
            parse_field_assignments(MemoryConfig, ["mshrs"], "--mem")


class TestApplyOverrides:
    def test_partial_nested_merge(self):
        base = SystemConfig()
        merged = apply_overrides(
            base, {"mem": {"enabled": True}, "num_cores": 2}
        )
        assert merged.mem.enabled
        assert merged.num_cores == 2
        assert merged.mem.mshrs == base.mem.mshrs

    def test_l1_submerge(self):
        merged = apply_overrides(
            SystemConfig(), {"memory": {"l1": {"hit_latency": 3}}}
        )
        assert merged.memory.l1.hit_latency == 3
        assert merged.memory.l2 == SystemConfig().memory.l2

    def test_mem_section_round_trips_serialization(self):
        from repro.common.serialize import config_from_dict, config_to_dict

        config = apply_overrides(
            SystemConfig(), {"mem": {"enabled": True, "mshrs": 8}}
        )
        assert config_from_dict(config_to_dict(config)) == config
