"""Tiered-execution differential harness (fast-forward vs detailed).

The fast-forward interpreter executes the same :mod:`repro.isa.semantics`
helpers against the same backing store, register file, and CSB as the
detailed out-of-order core, so a fast-forwarded run must leave *exactly*
the architectural state a detailed-only run does.  This suite pins that
property over every shipped workload in the lint registry and the
seeded random-program corpus:

* **mixed** — drain early, fast-forward a prefix, finish detailed;
* **sampled** — the full :func:`repro.sim.sampling.run_sampled`
  controller with windows small enough that even short kernels
  alternate tiers several times;
* **polling prefix** — the device-polling kernels never halt standalone,
  so two runs that mix the tiers differently are compared at the same
  instruction count instead.

Architectural state is registers, pc, halted flag, retired-instruction
count, mark *labels* (mark cycles are timing), and the whole backing
store.  Timing observables (cycles, counters) are expected to differ.
"""

from __future__ import annotations

import pytest

from repro.common.config import SamplingConfig, SystemConfig
from repro.common.errors import ConfigError, SimulationError
from repro.common.serialize import config_from_dict, config_to_dict
from repro.faults.config import FaultConfig
from repro.isa.assembler import assemble
from repro.sim.fastforward import FastForwarder, decode_program
from repro.sim.sampling import _drain, run_sampled
from repro.sim.system import System
from repro.workloads.random_programs import generate_program

from tests.conftest import make_config, registry_targets

MAX_CYCLES = 2_000_000

#: Kernels that poll a device register and therefore never halt on a
#: bare (device-free) system; they get the bounded-prefix comparison.
POLLING_PREFIXES = ("ping-", "pong-", "dma-send-")

_TARGETS = registry_targets()
HALTING = sorted(
    name for name in _TARGETS if not name.startswith(POLLING_PREFIXES)
)
POLLING = sorted(name for name in _TARGETS if name.startswith(POLLING_PREFIXES))

RANDOM_SEEDS = tuple(range(50))

#: Windows small enough that even few-thousand-cycle kernels alternate
#: fast-forward and detailed phases several times.
TINY_SAMPLING = SamplingConfig(
    enabled=True, ff_instructions=64, warmup_cycles=48, window_cycles=96
)


def _config_for(name, sampling=None):
    kwargs = {}
    if sampling is not None:
        kwargs["sampling"] = sampling
    return make_config(line_size=_TARGETS[name].context.line_size, **kwargs)


def _arch_state(system):
    """Everything the functional tier must preserve exactly."""
    contexts = system.scheduler.processes
    return (
        [dict(ctx.registers.snapshot()) for ctx in contexts],
        [ctx.pc for ctx in contexts],
        [ctx.halted for ctx in contexts],
        [ctx.retired_instructions for ctx in contexts],
        [sorted(ctx.marks) for ctx in contexts],
        system.backing.snapshot(),
    )


def _fresh(source, config):
    system = System(config)
    system.add_process(assemble(source, name="diff"))
    return system


def _detailed(source, config):
    system = _fresh(source, config)
    system.run(max_cycles=MAX_CYCLES)
    return system


def _to_handoff(system):
    """Step past reset and drain to the first hand-off point."""
    system.step()
    _drain(system, MAX_CYCLES)
    return FastForwarder(system)


def _mixed(source, config, ff_budget=256):
    """Fast-forward an early prefix, then run detailed to completion."""
    system = _fresh(source, config)
    ff = _to_handoff(system)
    ff.fast_forward(ff_budget)
    system.run(max_cycles=MAX_CYCLES)
    return system


def _sampled(source, config):
    system = _fresh(source, config)
    run_sampled(system, max_cycles=MAX_CYCLES)
    return system


# -- architectural identity: every shipped halting workload --------------------


@pytest.mark.parametrize("name", HALTING)
def test_registry_workload_tier_identity(name):
    source = _TARGETS[name].source
    golden = _arch_state(_detailed(source, _config_for(name)))
    assert _arch_state(_mixed(source, _config_for(name))) == golden
    sampled = _sampled(source, _config_for(name, sampling=TINY_SAMPLING))
    assert _arch_state(sampled) == golden
    assert sampled.sampling_report is not None


# -- architectural identity: the random-program corpus -------------------------


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_random_program_tier_identity(seed):
    source = generate_program(seed)
    golden = _arch_state(_detailed(source, make_config()))
    assert _arch_state(_mixed(source, make_config())) == golden
    sampled = _sampled(source, make_config(sampling=TINY_SAMPLING))
    assert _arch_state(sampled) == golden


# -- bounded-prefix identity: the device-polling kernels -----------------------


@pytest.mark.parametrize("name", POLLING)
def test_polling_workload_prefix_identity(name):
    """Two tier mixes must agree at the same instruction count.

    These kernels spin on a device register (all zeros without the
    device), so instead of running to a halt, run A fast-forwards
    straight to instruction N while run B takes a detailed detour first
    and fast-forwards the rest of the way to the same N.
    """
    source = _TARGETS[name].source
    config = _config_for(name)

    a = _fresh(source, config)
    ff_a = _to_handoff(a)
    ff_a.fast_forward(2000)
    total = a.scheduler.processes[0].retired_instructions

    b = _fresh(source, config)
    ff_b = _to_handoff(b)
    b.run_window(300)
    _drain(b, MAX_CYCLES)
    retired = b.scheduler.processes[0].retired_instructions
    assert retired < total  # the detour must not overshoot the target
    ff_b.fast_forward(total - retired)

    assert not a.scheduler.processes[0].halted
    assert _arch_state(a) == _arch_state(b)


# -- fast-forward-0: the tiered engine must be able to vanish ------------------


def test_ff0_sampled_run_is_byte_identical_to_detailed():
    """A sampled run whose windows cover the whole program never reaches
    a fast-forward phase — and must then be byte-identical to a detailed
    run in *timing* too: cycles, every counter, every mark cycle."""
    from repro.workloads import store_kernel_csb

    source = store_kernel_csb(4096, 64)
    detailed = _detailed(source, make_config())
    huge_windows = SamplingConfig(
        enabled=True, ff_instructions=1, warmup_cycles=0,
        window_cycles=1_000_000,
    )
    sampled = _sampled(source, make_config(sampling=huge_windows))
    assert sampled.sampling_report.ff_instructions == 0
    assert sampled.cycle == detailed.cycle
    assert sampled.stats.as_dict() == detailed.stats.as_dict()
    assert dict(sampled.stats.marks) == dict(detailed.stats.marks)
    assert _arch_state(sampled) == _arch_state(detailed)


# -- hand-off mechanics --------------------------------------------------------


class TestHandoff:
    def test_zero_budget_rejected(self):
        system = _fresh(generate_program(0), make_config())
        ff = _to_handoff(system)
        with pytest.raises(ConfigError):
            ff.fast_forward(0)

    def test_handoff_requires_drained_pipeline(self):
        system = _fresh(generate_program(0), make_config())
        ff = FastForwarder(system)
        while system.core.drained:  # step until work is in flight
            system.step()
        with pytest.raises(SimulationError):
            ff.fast_forward(100)

    def test_nothing_installed_is_a_noop(self):
        system = System(make_config())
        system.add_process(assemble(generate_program(0), name="diff"))
        ff = FastForwarder(system)
        assert ff.fast_forward(100) == 0  # context not yet installed

    def test_halted_context_is_a_noop(self):
        system = _detailed(generate_program(0), make_config())
        ff = FastForwarder(system)
        assert ff.fast_forward(100) == 0

    def test_budget_is_respected(self):
        system = _fresh(generate_program(0), make_config())
        ff = _to_handoff(system)
        before = system.scheduler.processes[0].retired_instructions
        assert ff.fast_forward(7) == 7
        assert system.scheduler.processes[0].retired_instructions == before + 7

    def test_decode_cache_hits_by_content(self):
        program = assemble(generate_program(3), name="a")
        same = assemble(generate_program(3), name="b")
        assert decode_program(program, 64) is decode_program(same, 64)
        assert decode_program(program, 64) is not decode_program(program, 128)


# -- eligibility gates ---------------------------------------------------------


class TestEligibility:
    def test_smp_rejected(self):
        system = System(make_config(num_cores=2))
        with pytest.raises(ConfigError):
            FastForwarder(system)

    def test_quantum_rejected(self):
        system = System(make_config(quantum=500))
        with pytest.raises(ConfigError):
            FastForwarder(system)

    def test_faults_rejected(self):
        system = System(make_config(faults=FaultConfig(bus_nack_rate=0.1)))
        with pytest.raises(ConfigError):
            FastForwarder(system)

    def test_devices_rejected(self):
        from repro.devices.sink import BurstSink
        from repro.memory.layout import IO_COMBINING_BASE, PageAttr, Region

        system = _fresh(generate_program(0), make_config())
        region = Region(IO_COMBINING_BASE, 8192, PageAttr.UNCACHED_COMBINING, "sink")
        system.attach_device(BurstSink(region))
        ff = FastForwarder(system)
        with pytest.raises(ConfigError):
            ff.fast_forward(100)

    def test_run_sampled_requires_enabled_config(self):
        system = _fresh(generate_program(0), make_config())
        with pytest.raises(ConfigError):
            run_sampled(system)

    def test_sampled_config_rejects_smp(self):
        with pytest.raises(ConfigError):
            make_config(num_cores=2, sampling=SamplingConfig(enabled=True))

    def test_sampled_config_rejects_faults(self):
        with pytest.raises(ConfigError):
            make_config(
                faults=FaultConfig(bus_nack_rate=0.1),
                sampling=SamplingConfig(enabled=True),
            )


# -- sampling config plumbing --------------------------------------------------


class TestSamplingConfig:
    def test_serialization_round_trip(self):
        config = make_config(sampling=TINY_SAMPLING)
        assert config_from_dict(config_to_dict(config)) == config

    def test_default_is_disabled_and_round_trips(self):
        config = SystemConfig()
        assert not config.sampling.enabled
        assert config_from_dict(config_to_dict(config)) == config

    def test_bad_confidence_rejected(self):
        with pytest.raises(ConfigError):
            SamplingConfig(confidence=0.5)

    def test_sampling_changes_cache_key(self):
        from repro.evaluation.runner import SimJob, job_key

        detailed = SimJob(
            config=make_config(), kernel="halt", measurement="store_bandwidth"
        )
        sampled = SimJob(
            config=make_config(sampling=TINY_SAMPLING),
            kernel="halt",
            measurement="store_bandwidth",
        )
        assert job_key(detailed) != job_key(sampled)
