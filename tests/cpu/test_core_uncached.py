"""Uncached operations through the core: ordering, exactly-once, CSB flush."""

from repro.memory.layout import IO_COMBINING_BASE, IO_UNCACHED_BASE
from tests.conftest import make_config, run_asm


class TestUncachedStores:
    def test_data_reaches_uncached_space(self):
        system = run_asm(
            f"set {IO_UNCACHED_BASE}, %o1\n"
            "set 0xAB, %l0\n"
            "stx %l0, [%o1]\n"
            "halt"
        )
        assert system.backing.read_int(IO_UNCACHED_BASE, 8) == 0xAB

    def test_program_order_preserved_without_combining(self):
        # Two stores to the SAME address: both must reach the device, last
        # writer's value persisting (exactly-once, in-order).
        from repro import System, assemble
        from repro.devices.sink import BurstSink
        from repro.memory.layout import PageAttr, Region

        system = System(make_config())
        region = Region(IO_UNCACHED_BASE, 8192, PageAttr.UNCACHED, "sink")
        sink = system.attach_device(BurstSink(region))
        system.add_process(
            assemble(
                f"set {IO_UNCACHED_BASE}, %o1\n"
                "set 1, %l0\nstx %l0, [%o1]\n"
                "set 2, %l0\nstx %l0, [%o1]\n"
                "halt"
            )
        )
        system.run()
        assert [d[-1] for _, d in sink.log] == [1, 2]

    def test_uncached_never_forwards_to_load(self):
        # A load after a store to the same uncached address must go to the
        # bus and read the device (which still has the OLD value if the
        # store has not completed -- here it has, so it sees the new one,
        # but critically via a real bus read).
        system = run_asm(
            f"set {IO_UNCACHED_BASE}, %o1\n"
            "set 7, %l0\n"
            "stx %l0, [%o1]\n"
            "membar\n"
            "ldx [%o1], %o2\n"
            "halt"
        )
        assert system.scheduler.processes[0].registers.read("%o2") == 7
        kinds = [r.kind for r in system.stats.transactions]
        assert kinds == ["uncached_store", "uncached_load"]


class TestUncachedLoads:
    def test_load_gets_device_value(self):
        from repro import System, assemble

        system = System(make_config())
        system.backing.write_int(IO_UNCACHED_BASE + 0x10, 0x55, 8)
        system.add_process(
            assemble(f"ldx [{IO_UNCACHED_BASE + 0x10}], %o2\nhalt")
        )
        system.run()
        assert system.scheduler.processes[0].registers.read("%o2") == 0x55

    def test_dependent_branch_waits_for_uncached_load(self):
        from repro import System, assemble

        system = System(make_config())
        system.backing.write_int(IO_UNCACHED_BASE, 1, 8)
        system.add_process(
            assemble(
                f"ldx [{IO_UNCACHED_BASE}], %o2\n"
                "brnz %o2, yes\n"
                "set 1, %o3\n"
                "ba out\n"
                "yes: set 2, %o3\n"
                "out: halt"
            )
        )
        system.run()
        assert system.scheduler.processes[0].registers.read("%o3") == 2


class TestCSBThroughCore:
    def test_flush_success_value(self):
        system = run_asm(
            f"set {IO_COMBINING_BASE}, %o1\n"
            "set 2, %l4\n"
            "stx %l0, [%o1]\n"
            "stx %l0, [%o1+8]\n"
            "swap [%o1], %l4\n"
            "halt"
        )
        # Flush succeeded: %l4 keeps the expected value 2.
        assert system.scheduler.processes[0].registers.read("%l4") == 2

    def test_flush_wrong_expectation_returns_zero_then_retry_succeeds(self):
        system = run_asm(
            f"set {IO_COMBINING_BASE}, %o1\n"
            "set 3, %l4\n"              # wrong: only 2 stores follow
            "stx %l0, [%o1]\n"
            "stx %l0, [%o1+8]\n"
            "swap [%o1], %l4\n"
            "add %l4, 0, %o5\n"          # capture the failed result
            ".RETRY:\n"
            "set 2, %l4\n"
            "stx %l0, [%o1]\n"
            "stx %l0, [%o1+8]\n"
            "swap [%o1], %l4\n"
            "cmp %l4, 2\n"
            "bnz .RETRY\n"
            "halt"
        )
        regs = system.scheduler.processes[0].registers
        assert regs.read("%o5") == 0   # first flush conflicted
        assert regs.read("%l4") == 2   # retry succeeded
        assert system.stats.get("csb.flush_conflicts") == 1
        assert system.stats.get("csb.flushes") == 1

    def test_burst_delivers_all_stores(self):
        values = "".join(
            f"set {i + 1}, %l0\nstx %l0, [%o1+{8 * i}]\n" for i in range(8)
        )
        system = run_asm(
            f"set {IO_COMBINING_BASE}, %o1\n"
            "set 8, %l4\n"
            + values
            + "swap [%o1], %l4\nhalt"
        )
        for i in range(8):
            assert system.backing.read_int(IO_COMBINING_BASE + 8 * i, 8) == i + 1
        assert system.stats.get("bus.bursts") == 1

    def test_padding_is_zero(self):
        from repro import System, assemble

        system = System(make_config())
        # Pre-dirty the target line in device space.
        system.backing.fill(IO_COMBINING_BASE, 64, 0xEE)
        system.add_process(
            assemble(
                f"set {IO_COMBINING_BASE}, %o1\n"
                "set 1, %l4\n"
                "set 0x42, %l0\n"
                "stx %l0, [%o1+16]\n"
                "swap [%o1], %l4\n"
                "halt"
            )
        )
        system.run()
        data = system.backing.read_bytes(IO_COMBINING_BASE, 64)
        assert data[16:24] == bytes(7) + b"\x42"
        assert data[:16] == bytes(16)    # overwritten with zero padding
        assert data[24:] == bytes(40)
