"""Corner paths of the core: disambiguation, stalls, degenerate configs."""

from dataclasses import replace


from repro import System, assemble
from repro.common.config import CoreConfig
from repro.memory.layout import IO_UNCACHED_BASE
from tests.conftest import make_config

ADDR = 0x4000


def run(source, core=None, **kwargs):
    config = make_config(**kwargs)
    if core is not None:
        config = replace(config, core=core)
    system = System(config)
    system.add_process(assemble(source))
    system.run()
    return system


class TestDisambiguation:
    def test_partial_overlap_load_waits_for_store(self):
        # A 4-byte store into the middle of an 8-byte load's range: the
        # load cannot forward and must wait, but the value must be right.
        system = run(
            "set 0x1122334455667788, %o1\n"
            f"stx %o1, [{ADDR}]\n"
            "set 0xAABBCCDD, %o2\n"
            f"st %o2, [{ADDR + 4}]\n"
            f"ldx [{ADDR}], %o3\n"
            "halt"
        )
        regs = system.scheduler.processes[0].registers
        assert regs.read("%o3") == 0x11223344_AABBCCDD

    def test_narrow_load_forwards_from_wide_store(self):
        system = run(
            "set 0x0102030405060708, %o1\n"
            "mulx %o1, 1, %o1\n"
            f"stx %o1, [{ADDR}]\n"
            f"ldub [{ADDR + 7}], %o2\n"
            "halt"
        )
        assert system.scheduler.processes[0].registers.read("%o2") == 0x08

    def test_load_past_store_to_different_address(self):
        # No overlap: the load may proceed out of order; value untouched.
        system = run(
            f"set 7, %o1\nstx %o1, [{ADDR}]\n"
            f"ldx [{ADDR + 0x100}], %o2\nhalt"
        )
        assert system.scheduler.processes[0].registers.read("%o2") == 0


class TestResourceStalls:
    def test_memq_full_stall_counted(self):
        stores = "".join(f"stx %l0, [{ADDR + 8 * i}]\n" for i in range(24))
        system = run(
            stores + "halt",
            core=CoreConfig(memq_entries=2),
        )
        assert system.stats.get("core.memq_full_stalls") > 0

    def test_rob_full_stall_counted(self):
        body = "".join(f"add %g0, {i}, %o1\n" for i in range(32))
        system = run(
            # A long cache miss at the head backs the ROB up.
            f"ldx [{ADDR}], %o5\n" + body + "halt",
            core=CoreConfig(rob_entries=8),
        )
        assert system.stats.get("core.rob_full_stalls") > 0

    def test_uncached_store_stall_counted_when_buffer_full(self):
        stores = "".join(
            f"stx %l0, [%o1+{8 * i}]\n" for i in range(32)
        )
        system = run(
            f"set {IO_UNCACHED_BASE}, %o1\n" + stores + "halt",
            combine_block=8,
        )
        assert system.stats.get("core.uncached_store_stalls") > 0


class TestDegenerateConfigs:
    def test_scalar_core_still_correct(self):
        system = run(
            "set 10, %o1\nset 0, %o2\n"
            "loop: add %o2, %o1, %o2\nsub %o1, 1, %o1\nbrnz %o1, loop\n"
            f"stx %o2, [{ADDR}]\nhalt",
            core=CoreConfig(
                dispatch_width=1, retire_width=1, int_units=1, fp_units=1
            ),
        )
        assert system.backing.read_int(ADDR, 8) == 55

    def test_tiny_rob_still_correct(self):
        system = run(
            "set 6, %o1\nmulx %o1, %o1, %o2\nmulx %o2, %o2, %o3\n"
            f"stx %o3, [{ADDR}]\nhalt",
            core=CoreConfig(rob_entries=4, memq_entries=1),
        )
        assert system.backing.read_int(ADDR, 8) == 6**4

    def test_ratio_one_bus(self):
        system = run(
            f"set {IO_UNCACHED_BASE}, %o1\n"
            "stx %l0, [%o1]\nstx %l0, [%o1+8]\nhalt",
            cpu_ratio=1,
        )
        assert system.stats.get("bus.transactions") == 2


class TestMisprediction_Knob:
    def test_penalty_knob_slows_branches(self):
        source = (
            "set 40, %o1\nmark a\n"
            "loop: sub %o1, 1, %o1\nbrnz %o1, loop\nmark b\nhalt"
        )
        fast = run(source).span("a", "b")
        slow_system = run(
            source,
            core=CoreConfig(
                perfect_branch_prediction=False, branch_mispredict_penalty=6
            ),
        )
        assert slow_system.span("a", "b") > fast
