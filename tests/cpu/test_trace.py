"""Pipeline trace facility."""

import pytest

from repro import System, assemble
from repro.cpu.trace import PipelineTrace
from repro.memory.layout import IO_UNCACHED_BASE
from tests.conftest import make_config


def traced_run(source, **kwargs):
    system = System(make_config(trace=True, **kwargs))
    system.add_process(assemble(source))
    system.run()
    return system


class TestTraceCollection:
    def test_disabled_by_default(self):
        system = System(make_config())
        assert system.trace is None

    def test_stage_order_per_instruction(self):
        system = traced_run("set 1, %o1\nadd %o1, 2, %o2\nhalt")
        trace = system.trace
        for seq in {e.seq for e in trace.events}:
            cycles = trace.stage_cycles(seq)
            if "issue" in cycles and "retire" in cycles:
                assert cycles["dispatch"] <= cycles["issue"] <= cycles["retire"]

    def test_every_retired_instruction_was_dispatched(self):
        system = traced_run("nop\nnop\nhalt")
        retired = {e.seq for e in system.trace.events if e.stage == "retire"}
        dispatched = {e.seq for e in system.trace.events if e.stage == "dispatch"}
        assert retired <= dispatched

    def test_uncached_store_logs_uncached_stage(self):
        system = traced_run(
            f"set {IO_UNCACHED_BASE}, %o1\nstx %l0, [%o1]\nhalt"
        )
        stages = [e.stage for e in system.trace.events]
        assert "uncached" in stages

    def test_cached_load_logs_cache_stage(self):
        system = traced_run("ldx [0x4000], %o1\nhalt")
        assert any(e.stage == "cache" for e in system.trace.events)

    def test_squash_events_on_interrupt(self):
        system = System(make_config(trace=True))
        process = system.add_process(
            assemble("set 100, %o1\nloop: sub %o1, 1, %o1\nbrnz %o1, loop\nhalt")
        )
        system.run_cycles(10)
        system.core.interrupt()
        while not system.core.drained:
            system.step()
        assert any(e.stage == "squash" for e in system.trace.events)

    def test_render_contains_disassembly(self):
        system = traced_run("set 7, %o1\nhalt")
        text = system.trace.render()
        assert "set 7, %r9" in text
        assert "retire" in text


class TestTraceMechanics:
    def test_capacity_bound(self):
        trace = PipelineTrace(capacity=2)
        from repro.isa.instructions import NopInstruction

        for i in range(5):
            trace.record(i, "dispatch", i, i, NopInstruction())
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_unknown_stage_rejected(self):
        trace = PipelineTrace()
        from repro.isa.instructions import NopInstruction

        with pytest.raises(ValueError):
            trace.record(0, "teleport", 0, 0, NopInstruction())

    def test_events_for(self):
        system = traced_run("set 1, %o1\nhalt")
        seqs = {e.seq for e in system.trace.events}
        for seq in seqs:
            assert all(e.seq == seq for e in system.trace.events_for(seq))
