"""Timing-plane behavior of the core: widths, latencies, ports."""

from dataclasses import replace

from repro.common.config import CoreConfig
from tests.conftest import make_config, run_asm


def span_of(source, core: CoreConfig = None) -> int:
    config = make_config()
    if core is not None:
        config = replace(config, core=core)
    system = run_asm(source, config=config)
    return system.span("a", "b")


class TestIssueWidth:
    def test_independent_ops_overlap(self):
        # 8 independent adds, 2 int units -> ~4 cycles of issue; a serial
        # chain of 8 takes ~8.
        independent = span_of(
            "mark a\n"
            + "".join(f"add %g0, {i}, %o{i % 6}\n" for i in range(8))
            + "mark b\nhalt"
        )
        serial = span_of(
            "mark a\n" + "add %g0, 1, %o1\n" + "add %o1, 1, %o1\n" * 7 + "mark b\nhalt"
        )
        assert serial > independent

    def test_fp_latency_longer_than_int(self):
        int_chain = span_of(
            "mark a\nadd %g0, 1, %o1\n" + "add %o1, 1, %o1\n" * 5 + "mark b\nhalt"
        )
        fp_chain = span_of(
            "mark a\nfadd %f0, %f0, %f2\n" + "fadd %f2, %f2, %f2\n" * 5 + "mark b\nhalt"
        )
        assert fp_chain > int_chain

    def test_single_int_unit_serializes(self):
        wide = span_of(
            "mark a\n"
            + "".join(f"add %g0, {i}, %o{i % 6}\n" for i in range(12))
            + "mark b\nhalt",
            core=CoreConfig(int_units=2),
        )
        narrow = span_of(
            "mark a\n"
            + "".join(f"add %g0, {i}, %o{i % 6}\n" for i in range(12))
            + "mark b\nhalt",
            core=CoreConfig(int_units=1),
        )
        assert narrow > wide


class TestDispatchWidth:
    def test_narrow_dispatch_slower(self):
        body = "".join(f"add %g0, {i}, %o{i % 6}\n" for i in range(16))
        four_wide = span_of("mark a\n" + body + "mark b\nhalt")
        one_wide = span_of(
            "mark a\n" + body + "mark b\nhalt",
            core=CoreConfig(dispatch_width=1, retire_width=1, int_units=1),
        )
        assert one_wide > four_wide


class TestUncachedPort:
    def test_one_uncached_store_per_cycle(self):
        # N uncached combining stores retire through one port: the span
        # grows by ~1 cycle per store (the paper's +1 cycle per dw).
        from repro.memory.layout import IO_COMBINING_BASE

        def csb_span(n):
            stores = "".join(
                f"stx %l0, [%o1+{8 * i}]\n" for i in range(n)
            )
            return span_of(
                f"set {IO_COMBINING_BASE}, %o1\n"
                f"set {n}, %l4\n"
                "mark a\n" + stores + f"swap [%o1], %l4\nmark b\nhalt"
            )

        assert csb_span(8) - csb_span(2) == 6

    def test_rob_capacity_bounds_inflight(self):
        body = "".join(f"add %g0, {i}, %o{i % 6}\n" for i in range(64))
        small_rob = span_of(
            "mark a\n" + body + "mark b\nhalt",
            core=CoreConfig(rob_entries=4),
        )
        big_rob = span_of("mark a\n" + body + "mark b\nhalt")
        assert small_rob >= big_rob


class TestBranchTiming:
    def test_loop_overhead_modest_with_resolved_branches(self):
        # 16 iterations of a 3-instruction loop: condition codes are
        # functionally resolved at dispatch, so the frontend never stalls.
        system = run_asm(
            "set 16, %o1\n"
            "mark a\n"
            "loop: sub %o1, 1, %o1\n"
            "brnz %o1, loop\n"
            "mark b\nhalt"
        )
        span = system.span("a", "b")
        assert span <= 16 * 3  # comfortably faster than serial execution
