"""Cached memory operations through the core: loads, stores, forwarding,
atomic swap, membar, alignment."""

import pytest

from repro.common.errors import SimulationError
from repro.memory.layout import IO_UNCACHED_BASE
from tests.conftest import make_config, run_asm

ADDR = 0x4000


class TestCachedLoadStore:
    def test_store_then_load(self):
        system = run_asm(
            f"set 77, %o1\nstx %o1, [{ADDR}]\nldx [{ADDR}], %o2\nhalt"
        )
        regs = system.scheduler.processes[0].registers
        assert regs.read("%o2") == 77
        assert system.backing.read_int(ADDR, 8) == 77

    def test_sub_word_sizes(self):
        system = run_asm(
            "set 0x11223344, %o1\n"
            f"st %o1, [{ADDR}]\n"
            f"ld [{ADDR}], %o2\n"
            f"ldub [{ADDR}], %o3\n"
            "halt"
        )
        regs = system.scheduler.processes[0].registers
        assert regs.read("%o2") == 0x11223344
        assert regs.read("%o3") == 0x11  # big-endian: MSB first

    def test_load_from_preinitialized_memory(self):
        config = make_config()
        from repro import System, assemble

        system = System(config)
        system.backing.write_int(ADDR, 123, 8)
        system.add_process(assemble(f"ldx [{ADDR}], %o2\nhalt"))
        system.run()
        assert system.scheduler.processes[0].registers.read("%o2") == 123

    def test_register_offset_addressing(self):
        system = run_asm(
            f"set {ADDR}, %o1\n"
            "set 16, %o3\n"
            "set 5, %o2\n"
            "stx %o2, [%o1+%o3]\n"
            f"ldx [{ADDR + 16}], %o4\n"
            "halt"
        )
        assert system.scheduler.processes[0].registers.read("%o4") == 5

    def test_unaligned_access_rejected(self):
        with pytest.raises(SimulationError):
            run_asm(f"ldx [{ADDR + 4}], %o2\nhalt")


class TestForwarding:
    def test_load_sees_older_inflight_store(self):
        # Dependent chain long enough that the store has not committed when
        # the load wants its value.
        system = run_asm(
            "set 9, %o1\n"
            "mulx %o1, %o1, %o1\n"
            "mulx %o1, %o1, %o1\n"
            f"stx %o1, [{ADDR}]\n"
            f"ldx [{ADDR}], %o2\n"
            "add %o2, 1, %o3\n"
            "halt"
        )
        assert system.scheduler.processes[0].registers.read("%o3") == 9**4 + 1


class TestCachedSwap:
    def test_swap_semantics(self):
        system = run_asm(
            f"set {ADDR}, %o0\n"
            "set 1, %l6\n"
            "swap [%o0], %l6\n"
            "halt"
        )
        regs = system.scheduler.processes[0].registers
        assert regs.read("%l6") == 0           # old value
        assert system.backing.read_int(ADDR, 8) == 1  # new value

    def test_spin_lock_acquires_free_lock(self):
        system = run_asm(
            f"set {ADDR}, %o0\n"
            ".ACQ:\n"
            "set 1, %l6\n"
            "swap [%o0], %l6\n"
            "brnz %l6, .ACQ\n"
            "set 1, %o5\n"
            "halt"
        )
        assert system.scheduler.processes[0].registers.read("%o5") == 1

    def test_swap_miss_costs_miss_latency(self):
        cold = run_asm(
            f"mark a\nset {ADDR}, %o0\nset 1, %l6\nswap [%o0], %l6\nmark b\nhalt"
        )
        warm = run_asm(
            f"mark a\nset {ADDR}, %o0\nset 1, %l6\nswap [%o0], %l6\nmark b\nhalt",
            warm=[ADDR],
        )
        cold_span = cold.span("a", "b")
        warm_span = warm.span("a", "b")
        assert cold_span - warm_span >= 90  # ~100-cycle miss difference


class TestMembar:
    def test_membar_delays_completion_until_buffer_drains(self):
        no_barrier = run_asm(
            f"mark a\nset {IO_UNCACHED_BASE}, %o1\n"
            "stx %l0, [%o1]\nstx %l0, [%o1+8]\n"
            "mark b\nhalt"
        )
        with_barrier = run_asm(
            f"mark a\nset {IO_UNCACHED_BASE}, %o1\n"
            "stx %l0, [%o1]\nstx %l0, [%o1+8]\n"
            "membar\nmark b\nhalt"
        )
        assert with_barrier.span("a", "b") > no_barrier.span("a", "b")

    def test_membar_noop_when_nothing_pending(self):
        system = run_asm("mark a\nmembar\nmark b\nhalt")
        assert system.span("a", "b") <= 2


class TestCacheTiming:
    def test_miss_slower_than_hit(self):
        source = f"mark a\nldx [{ADDR}], %o2\nadd %o2, 1, %o3\nmark b\nhalt"
        cold = run_asm(source)
        warm = run_asm(source, warm=[ADDR])
        assert cold.span("a", "b") - warm.span("a", "b") >= 90
