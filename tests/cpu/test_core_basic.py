"""Core functional behavior: ALU programs, branches, loops, dependencies."""

import pytest

from repro.common.errors import DeadlockError
from tests.conftest import run_asm


def regs_after(source, **kwargs):
    system = run_asm(source, **kwargs)
    return system.scheduler.processes[0].registers


class TestStraightLine:
    def test_set_and_add(self):
        regs = regs_after("set 5, %o1\nadd %o1, 3, %o2\nhalt")
        assert regs.read("%o2") == 8

    def test_dependency_chain(self):
        regs = regs_after(
            "set 1, %o1\n"
            "add %o1, %o1, %o2\n"
            "add %o2, %o2, %o3\n"
            "add %o3, %o3, %o4\n"
            "halt"
        )
        assert regs.read("%o4") == 8

    def test_rename_removes_false_dependencies(self):
        # Reuse of %o1 must not corrupt earlier consumers.
        regs = regs_after(
            "set 10, %o1\n"
            "add %o1, 0, %o2\n"
            "set 20, %o1\n"
            "add %o1, 0, %o3\n"
            "halt"
        )
        assert regs.read("%o2") == 10
        assert regs.read("%o3") == 20

    def test_g0_discards_writes(self):
        regs = regs_after("set 42, %g0\nadd %g0, 1, %o1\nhalt")
        assert regs.read("%o1") == 1

    def test_fp_ops(self):
        regs = regs_after(
            "set 6, %o1\n"
            "stx %o1, [0x100]\n"
            "ldd [0x100], %f0\n"
            "fadd %f0, %f0, %f2\n"
            "halt"
        )
        assert regs.read("%f2") == 12


class TestBranches:
    def test_forward_not_taken(self):
        regs = regs_after(
            "set 1, %o1\n"
            "cmp %o1, 2\n"
            "be skip\n"
            "set 99, %o2\n"
            "skip: halt"
        )
        assert regs.read("%o2") == 99

    def test_forward_taken_skips(self):
        regs = regs_after(
            "set 2, %o1\n"
            "cmp %o1, 2\n"
            "be skip\n"
            "set 99, %o2\n"
            "skip: halt"
        )
        assert regs.read("%o2") == 0

    def test_counted_loop(self):
        regs = regs_after(
            "set 10, %o1\n"
            "set 0, %o2\n"
            "loop:\n"
            "add %o2, 3, %o2\n"
            "sub %o1, 1, %o1\n"
            "brnz %o1, loop\n"
            "halt"
        )
        assert regs.read("%o2") == 30

    def test_nested_condition_codes(self):
        regs = regs_after(
            "set 5, %o1\n"
            "cmp %o1, 10\n"
            "bl less\n"
            "set 1, %o3\n"
            "ba out\n"
            "less: set 2, %o3\n"
            "out: halt"
        )
        assert regs.read("%o3") == 2

    def test_unsigned_branch(self):
        # -1 unsigned is huge: bgu taken.
        regs = regs_after(
            "set 0, %o1\n"
            "sub %o1, 1, %o1\n"
            "cmp %o1, 5\n"
            "bgu big\n"
            "set 1, %o2\n"
            "ba out\n"
            "big: set 2, %o2\n"
            "out: halt"
        )
        assert regs.read("%o2") == 2


class TestRetirement:
    def test_retired_instruction_count(self):
        system = run_asm("nop\nnop\nnop\nhalt")
        process = system.scheduler.processes[0]
        assert process.retired_instructions == 4
        assert process.halted

    def test_marks_record_retire_cycles_in_order(self):
        system = run_asm("mark a\nnop\nnop\nnop\nnop\nnop\nmark b\nhalt")
        assert system.stats.marks["b"] >= system.stats.marks["a"]

    def test_infinite_loop_hits_watchdog(self):
        with pytest.raises(DeadlockError):
            run_asm("loop: ba loop\nhalt", max_cycles=100_000)


class TestStats:
    def test_dispatch_issue_retire_counts_consistent(self):
        system = run_asm("set 1, %o1\nadd %o1, 1, %o2\nhalt")
        stats = system.stats
        assert stats.get("core.retired") == 3
        # halt never goes through a functional unit.
        assert stats.get("core.issued") == 2
