"""Load-linked / store-conditional through the pipeline."""

import pytest
from dataclasses import replace

from repro import System, assemble
from repro.common.errors import SimulationError
from repro.common.config import CoreConfig
from repro.memory.layout import IO_UNCACHED_BASE
from tests.conftest import make_config

LOCK = 0x4000


def build(source, sc_bus=True, **kwargs):
    config = replace(make_config(), core=CoreConfig(sc_bus_transaction=sc_bus))
    system = System(config, **kwargs)
    process = system.add_process(assemble(source))
    system.hierarchy.warm(LOCK)
    return system, process


class TestBasicSemantics:
    def test_ll_sc_pair_succeeds(self):
        system, process = build(
            f"set {LOCK}, %o0\n"
            "ll [%o0], %l6\n"
            "set 1, %l5\n"
            "sc %l5, [%o0], %l5\n"
            "halt"
        )
        system.run()
        assert process.registers.read("%l5") == 1       # SC succeeded
        assert system.backing.read_int(LOCK, 8) == 1    # value stored

    def test_intervening_store_breaks_link(self):
        system, process = build(
            f"set {LOCK}, %o0\n"
            "ll [%o0], %l6\n"
            f"stx %g0, [{LOCK + 8}]\n"    # same line!
            "set 1, %l5\n"
            "sc %l5, [%o0], %l5\n"
            "halt"
        )
        system.run()
        assert process.registers.read("%l5") == 0
        assert system.backing.read_int(LOCK, 8) == 0   # nothing stored

    def test_store_to_other_line_preserves_link(self):
        system, process = build(
            f"set {LOCK}, %o0\n"
            "ll [%o0], %l6\n"
            f"stx %g0, [{LOCK + 0x1000}]\n"
            "set 1, %l5\n"
            "sc %l5, [%o0], %l5\n"
            "halt"
        )
        system.run()
        assert process.registers.read("%l5") == 1

    def test_sc_without_ll_fails(self):
        system, process = build(
            f"set {LOCK}, %o0\nset 1, %l5\nsc %l5, [%o0], %l5\nhalt"
        )
        system.run()
        assert process.registers.read("%l5") == 0

    def test_sc_consumes_link(self):
        system, process = build(
            f"set {LOCK}, %o0\n"
            "ll [%o0], %l6\n"
            "set 1, %l5\n"
            "sc %l5, [%o0], %l5\n"
            "set 2, %l4\n"
            "sc %l4, [%o0], %l4\n"   # second SC: link already consumed
            "halt"
        )
        system.run()
        assert process.registers.read("%l5") == 1
        assert process.registers.read("%l4") == 0

    def test_ll_returns_memory_value(self):
        system, process = build(
            f"set {LOCK}, %o0\nll [%o0], %l6\nhalt"
        )
        system.backing.write_int(LOCK, 0x77, 8)
        system.run()
        assert process.registers.read("%l6") == 0x77

    def test_uncached_target_rejected(self):
        system, _ = build(
            f"set {IO_UNCACHED_BASE}, %o0\nll [%o0], %l6\nhalt"
        )
        with pytest.raises(SimulationError):
            system.run()


class TestInterruptInteraction:
    def test_context_switch_breaks_link(self):
        system, process = build(
            f"set {LOCK}, %o0\n"
            "ll [%o0], %l6\n"
            "mulx %l6, %l6, %l6\n"    # keep the pair apart
            "mulx %l6, %l6, %l6\n"
            "set 1, %l5\n"
            "sc %l5, [%o0], %l5\n"
            "brz %l5, .FAILED\n"
            "set 0, %o5\n"
            "ba .OUT\n"
            ".FAILED: set 1, %o5\n"
            ".OUT: halt"
        )
        # Interrupt after the LL retired but before the SC did.
        while system.stats.get("core.retired") < 2:
            system.step()
        system.core.interrupt()
        while not system.core.drained:
            system.step()
        system.core.install_context(process)
        system.run()
        assert process.registers.read("%o5") == 1  # SC observed the break


class TestSpinLock:
    LOCK_KERNEL = (
        f"set {LOCK}, %o0\n"
        ".ACQ:\n"
        "ll [%o0], %l6\n"
        "brnz %l6, .ACQ\n"
        "set 1, %l5\n"
        "sc %l5, [%o0], %l5\n"
        "brz %l5, .ACQ\n"
        "set 1, %o5\n"
        "halt"
    )

    def test_acquires_free_lock(self):
        system, process = build(self.LOCK_KERNEL)
        system.run()
        assert process.registers.read("%o5") == 1
        assert system.backing.read_int(LOCK, 8) == 1

    def test_sc_bus_transaction_appears_on_the_bus(self):
        system, _ = build(self.LOCK_KERNEL, sc_bus=True)
        system.run()
        assert any(r.kind == "sync" for r in system.stats.transactions)

    def test_local_sc_keeps_bus_quiet(self):
        system, _ = build(self.LOCK_KERNEL, sc_bus=False)
        system.run()
        assert all(r.kind != "sync" for r in system.stats.transactions)

    def test_bus_transaction_costs_cycles(self):
        def cycles(sc_bus):
            system, _ = build(
                "mark a\n" + self.LOCK_KERNEL.replace("halt", "mark b\nhalt"),
                sc_bus=sc_bus,
            )
            system.run()
            return system.span("a", "b")

        # "the store-conditional instruction results in a bus transaction
        # even for a cache hit, which would further increase the locking
        # overhead" — one full bus round trip at ratio 6.
        assert cycles(True) - cycles(False) >= 20
