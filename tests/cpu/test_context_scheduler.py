"""Process contexts and the round-robin scheduler."""

import pytest

from repro import System, assemble
from repro.cpu.context import ProcessContext
from tests.conftest import make_config


def counting_program(n: int, result_addr: int) -> str:
    return (
        f"set {n}, %o1\n"
        "set 0, %o2\n"
        "loop: add %o2, 1, %o2\n"
        "sub %o1, 1, %o1\n"
        "brnz %o1, loop\n"
        f"stx %o2, [{result_addr}]\n"
        "halt"
    )


class TestProcessContext:
    def test_pid_validation(self):
        with pytest.raises(ValueError):
            ProcessContext(-1, assemble("halt"))

    def test_set_register_chainable(self):
        context = ProcessContext(1, assemble("halt"))
        assert context.set_register("%o1", 5) is context
        assert context.registers.read("%o1") == 5

    def test_finalizes_program(self):
        from repro.isa.program import Program
        from repro.isa.instructions import HaltInstruction

        program = Program()
        program.add(HaltInstruction())
        ProcessContext(1, program)
        assert program.finalized


class TestSingleProcess:
    def test_runs_to_halt(self):
        system = System(make_config())
        system.add_process(assemble(counting_program(5, 0x4000)))
        system.run()
        assert system.backing.read_int(0x4000, 8) == 5

    def test_auto_pid_assignment(self):
        system = System(make_config())
        p1 = system.add_process(assemble("halt"))
        p2 = system.add_process(assemble("halt"))
        assert p1.pid != p2.pid


class TestMultiProcess:
    def test_two_processes_both_complete(self):
        system = System(make_config(quantum=500, switch_penalty=50))
        system.add_process(assemble(counting_program(100, 0x4000)), name="A")
        system.add_process(assemble(counting_program(100, 0x5000)), name="B")
        system.run()
        assert system.backing.read_int(0x4000, 8) == 100
        assert system.backing.read_int(0x5000, 8) == 100

    def test_quantum_produces_context_switches(self):
        system = System(make_config(quantum=200, switch_penalty=10))
        system.add_process(assemble(counting_program(400, 0x4000)))
        system.add_process(assemble(counting_program(400, 0x5000)))
        system.run()
        assert system.scheduler.context_switches > 2

    def test_no_quantum_runs_to_completion_then_switches(self):
        system = System(make_config())  # quantum=None
        system.add_process(assemble(counting_program(50, 0x4000)))
        system.add_process(assemble(counting_program(50, 0x5000)))
        system.run()
        # Exactly two installs: one per process.
        assert system.scheduler.context_switches == 2
        assert system.backing.read_int(0x5000, 8) == 50

    def test_register_state_isolated_across_switches(self):
        # Both processes hammer the same registers; preemption must not mix
        # their values.
        system = System(make_config(quantum=100, switch_penalty=10))
        system.add_process(assemble(counting_program(300, 0x4000)))
        system.add_process(assemble(counting_program(700, 0x5000)))
        system.run()
        assert system.backing.read_int(0x4000, 8) == 300
        assert system.backing.read_int(0x5000, 8) == 700


class TestSchedulerValidation:
    def test_bad_quantum(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            System(make_config(quantum=0))

    def test_install_with_inflight_instructions_rejected(self):
        from repro.common.errors import SimulationError

        system = System(make_config())
        system.add_process(assemble("set 1, %o1\nmulx %o1, %o1, %o1\nhalt"))
        system.run_cycles(3)  # mid-flight
        with pytest.raises(SimulationError):
            system.core.install_context(ProcessContext(9, assemble("halt")))
