"""VIS-style block stores through the full pipeline."""

import pytest

from repro import System, assemble
from repro.common.errors import SimulationError
from repro.memory.layout import IO_COMBINING_BASE, IO_UNCACHED_BASE
from tests.conftest import make_config


def run_blockstore(base, combine_block=8, preload=True):
    system = System(make_config(combine_block=combine_block))
    process = system.add_process(
        assemble(f"set {base}, %o1\nstblk [%o1]\nhalt")
    )
    if preload:
        for i in range(8):
            process.set_register(f"%f{i * 2}", 0xA0 + i)
    system.run()
    return system


class TestFunctional:
    def test_all_eight_registers_reach_the_device(self):
        system = run_blockstore(IO_UNCACHED_BASE)
        for i in range(8):
            assert system.backing.read_int(IO_UNCACHED_BASE + 8 * i, 8) == 0xA0 + i

    def test_single_atomic_burst_on_the_bus(self):
        system = run_blockstore(IO_UNCACHED_BASE)
        records = system.stats.transactions
        assert len(records) == 1
        assert records[0].size == 64 and records[0].burst

    def test_bypasses_csb_in_combining_space(self):
        system = run_blockstore(IO_COMBINING_BASE)
        assert system.stats.get("csb.stores") == 0
        assert system.stats.get("uncached.block_stores") == 1
        assert system.backing.read_int(IO_COMBINING_BASE, 8) == 0xA0

    def test_non_combining_buffer_still_bursts(self):
        # Even with a non-combining (8-byte) buffer configuration, the
        # block store is a pre-combined line and goes out as one burst.
        system = run_blockstore(IO_UNCACHED_BASE, combine_block=8)
        assert system.stats.get("bus.bursts") == 1

    def test_cached_target_rejected(self):
        with pytest.raises(SimulationError):
            run_blockstore(0x4000)

    def test_unaligned_target_rejected(self):
        with pytest.raises(SimulationError):
            run_blockstore(IO_UNCACHED_BASE + 8)


class TestMarshalling:
    def test_int_payload_marshalled_through_memory(self):
        from repro.workloads.blockstore import blockstore_marshalled_kernel

        system = System(make_config())
        process = system.add_process(assemble(blockstore_marshalled_kernel()))
        for i in range(4):
            process.set_register(f"%l{i}", 0x100 + i)
        system.run()
        # %l0..%l3 cycle through the 8 slots.
        for i in range(8):
            assert (
                system.backing.read_int(IO_UNCACHED_BASE + 8 * i, 8)
                == 0x100 + i % 4
            )


class TestAssembly:
    def test_stblk_parses(self):
        from repro.isa.instructions import BlockStoreInstruction

        program = assemble("stblk [%o1+64]\nhalt")
        instr = program[0]
        assert isinstance(instr, BlockStoreInstruction)
        assert instr.size == 64
        assert instr.offset == 64
        # Reads the base register plus the eight even FP registers.
        assert len(instr.sources()) == 9

    def test_ordering_against_other_uncached_stores(self):
        system = System(make_config())
        process = system.add_process(
            assemble(
                f"set {IO_UNCACHED_BASE}, %o1\n"
                f"set {IO_UNCACHED_BASE + 1024}, %o2\n"
                "stx %l0, [%o2]\n"
                "stblk [%o1]\n"
                "stx %l0, [%o2+8]\n"
                "halt"
            )
        )
        system.run()
        kinds_sizes = [(r.kind, r.size) for r in system.stats.transactions]
        assert kinds_sizes == [
            ("uncached_store", 8),
            ("uncached_store", 64),
            ("uncached_store", 8),
        ]


class TestComparisonStudy:
    def test_blockstore_vs_csb_vs_lock(self):
        from repro.evaluation.blockstore import blockstore_table

        table = blockstore_table()
        lock = table.lookup("mechanism", "lock_stores_unlock", "cycles")
        csb = table.lookup("mechanism", "csb", "cycles")
        pre = table.lookup("mechanism", "blockstore_preloaded", "cycles")
        assert pre < csb < lock
        # The marshalled path costs 16 extra dynamic instructions.
        assert table.lookup(
            "mechanism", "blockstore_marshalled", "instructions"
        ) - table.lookup(
            "mechanism", "blockstore_preloaded", "instructions"
        ) == 17
