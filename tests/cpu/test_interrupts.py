"""Precise interrupts: squash, undo, exactly-once for uncached work."""

from repro import System, assemble
from repro.memory.layout import IO_COMBINING_BASE, IO_UNCACHED_BASE
from tests.conftest import make_config

ADDR = 0x4000


def interrupt_after(source, cycles, registers=()):
    """Run ``cycles``, deliver an interrupt, squash, then resume and finish."""
    system = System(make_config())
    process = system.add_process(assemble(source))
    for name, value in registers:
        process.set_register(name, value)
    system.run_cycles(cycles)
    system.core.interrupt()
    # Let the squash complete, then keep running to completion.
    while not system.core.drained:
        system.step()
    # Simulate the OS returning to the same process.
    system.core.install_context(process)
    system.run()
    return system


class TestSquashCorrectness:
    def test_cached_stores_undone_and_replayed(self):
        source = (
            "set 1, %o1\n"
            "mulx %o1, %o1, %o1\n"    # pad so the store is in flight
            f"set {ADDR}, %o2\n"
            "set 7, %l0\n"
            "stx %l0, [%o2]\n"
            "set 9, %l1\n"
            f"stx %l1, [{ADDR + 8}]\n"
            "halt"
        )
        system = interrupt_after(source, cycles=3)
        assert system.backing.read_int(ADDR, 8) == 7
        assert system.backing.read_int(ADDR + 8, 8) == 9

    def test_loop_counter_correct_after_interrupt(self):
        source = (
            "set 100, %o1\n"
            "set 0, %o2\n"
            "loop: add %o2, 1, %o2\n"
            "sub %o1, 1, %o1\n"
            "brnz %o1, loop\n"
            f"stx %o2, [{ADDR}]\n"
            "halt"
        )
        system = interrupt_after(source, cycles=20)
        assert system.backing.read_int(ADDR, 8) == 100

    def test_uncached_store_is_not_duplicated(self):
        # An uncached store that retired before the interrupt must not be
        # re-executed; one that had not retired executes exactly once later.
        from repro.devices.sink import BurstSink
        from repro.memory.layout import PageAttr, Region

        system = System(make_config())
        region = Region(IO_UNCACHED_BASE, 8192, PageAttr.UNCACHED, "sink")
        sink = system.attach_device(BurstSink(region))
        process = system.add_process(
            assemble(
                f"set {IO_UNCACHED_BASE}, %o1\n"
                "set 1, %l0\nstx %l0, [%o1]\n"
                "set 2, %l0\nstx %l0, [%o1+8]\n"
                "set 3, %l0\nstx %l0, [%o1+16]\n"
                "halt"
            )
        )
        system.run_cycles(8)
        system.core.interrupt()
        while not system.core.drained:
            system.step()
        system.core.install_context(process)
        system.run()
        # Each of the three stores reached the device exactly once.
        offsets = sorted(offset for offset, _ in sink.log)
        assert offsets == [0, 8, 16]

    def test_interrupt_mid_csb_sequence_causes_conflict_then_retry(self):
        # The paper's §3.2 scenario, deterministically: interrupt after the
        # combining stores started retiring but before the flush retired.
        system = System(make_config())
        process = system.add_process(
            assemble(
                f"set {IO_COMBINING_BASE}, %o1\n"
                ".RETRY:\n"
                "set 4, %l4\n"
                "stx %l0, [%o1]\n"
                "stx %l0, [%o1+8]\n"
                "stx %l0, [%o1+16]\n"
                "stx %l0, [%o1+24]\n"
                "swap [%o1], %l4\n"
                "cmp %l4, 4\n"
                "bnz .RETRY\n"
                "halt"
            )
        )
        # Run until some (not all) combining stores retired.
        while system.stats.get("csb.stores") < 2:
            system.step()
        system.core.interrupt()
        while not system.core.drained:
            system.step()
        # A competitor touches the CSB while our process is descheduled.
        system.unit.issue_store(IO_COMBINING_BASE, 8, 0xFF, pid=99)
        system.core.install_context(process)
        system.run()
        assert system.stats.get("csb.flush_conflicts") >= 1
        assert system.stats.get("csb.flushes") == 1  # the retry succeeded

    def test_interrupt_waits_for_issued_uncached_op(self):
        # An uncached load already on the bus cannot be squashed.
        system = System(make_config())
        system.backing.write_int(IO_UNCACHED_BASE, 0xAA, 8)
        process = system.add_process(
            assemble(f"ldx [{IO_UNCACHED_BASE}], %o2\nhalt")
        )
        # Step until the load has been issued to the uncached unit.
        from repro.cpu.inflight import MemState

        while not any(
            f.mem_state is MemState.ISSUED_UNCACHED for f in system.core._rob
        ):
            system.step()
        system.core.interrupt()
        system.step()
        assert not system.core.drained  # squash deferred
        while not system.core.drained:
            system.step()
        system.core.install_context(process)
        system.run()
        # The load executed exactly once.
        loads = [r for r in system.stats.transactions if r.kind == "uncached_load"]
        assert len(loads) == 1
        assert process.registers.read("%o2") == 0xAA
