"""Stateful model checking of the uncached buffer.

A hypothesis rule-based state machine drives the real buffer (random
stores, loads, and bus drains) against a reference model that tracks, per
address, the order of writes.  Invariants checked continuously:

* occupancy never exceeds the configured depth;
* the device's final bytes equal a sequential application of accepted
  stores (per-address order preserved);
* every accepted load eventually returns, and returns the value that a
  sequentially consistent device would hold at that point.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.common.config import BusConfig, UncachedBufferConfig
from repro.common.stats import StatsCollector
from repro.bus.base import TargetRegistry
from repro.bus.multiplexed import MultiplexedBus
from repro.memory.backing import BackingStore
from repro.uncached.buffer import UncachedBuffer

BASE = 0x2000_0000
SLOTS = 16


class BufferMachine(RuleBasedStateMachine):
    @initialize(
        combine_block=st.sampled_from([8, 16, 64]),
        depth=st.integers(min_value=1, max_value=6),
    )
    def setup(self, combine_block, depth):
        self.stats = StatsCollector()
        self.backing = BackingStore()
        self.bus = MultiplexedBus(
            BusConfig(max_burst_bytes=64),
            self.stats,
            TargetRegistry(self.backing),
        )
        self.buffer = UncachedBuffer(
            UncachedBufferConfig(combine_block=combine_block, depth=depth),
            self.bus,
            self.stats,
        )
        self.depth = depth
        self.cycle = 0
        self.sequence = 0
        # Reference: per-slot last accepted value, and pending loads.
        self.reference = {}
        self.outstanding_loads = 0
        self.load_results = []
        self.counter = 0

    def _next_seq(self):
        self.sequence += 1
        return self.sequence

    @rule(slot=st.integers(min_value=0, max_value=SLOTS - 1))
    def store(self, slot):
        self.counter += 1
        value = self.counter
        accepted = self.buffer.accept_store(
            BASE + slot * 8, value.to_bytes(8, "big"), self._next_seq()
        )
        if accepted:
            self.reference[slot] = value

    @rule(slot=st.integers(min_value=0, max_value=SLOTS - 1))
    def load(self, slot):
        expected = self.reference.get(slot, 0)

        def on_data(data, _cycle, want=expected):
            self.outstanding_loads -= 1
            self.load_results.append((int.from_bytes(data, "big"), want))

        if self.buffer.accept_load(
            BASE + slot * 8, 8, self._next_seq(), on_data
        ):
            self.outstanding_loads += 1

    @rule(cycles=st.integers(min_value=1, max_value=20))
    def drain(self, cycles):
        for _ in range(cycles):
            self.bus.tick(self.cycle)
            self.buffer.tick_bus(self.cycle)
            self.cycle += 1

    @invariant()
    def occupancy_bounded(self):
        assert self.buffer.occupancy <= self.depth

    @invariant()
    def completed_loads_saw_ordered_values(self):
        # A load enqueued after a store to the same slot must observe that
        # store's value (all older stores drain first — strong ordering).
        for got, want in self.load_results:
            assert got == want

    def teardown(self):
        # Drain everything; the device must hold the reference values.
        guard = 0
        while not self.buffer.empty and guard < 5000:
            self.bus.tick(self.cycle)
            self.buffer.tick_bus(self.cycle)
            self.cycle += 1
            guard += 1
        self.bus.tick(self.cycle + 100)
        assert self.buffer.empty
        assert self.outstanding_loads == 0
        for slot, value in self.reference.items():
            assert self.backing.read_int(BASE + slot * 8, 8) == value


BufferMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestBufferMachine = BufferMachine.TestCase
