"""Differential testing: the out-of-order core vs. a sequential reference.

Random straight-line ALU/memory programs are run both through the full
out-of-order pipeline and through a trivial in-order interpreter; the
architectural register state and memory must agree.  This is the strongest
guard against dataflow bugs (renaming, forwarding, functional-first
execution) in the core.
"""

from hypothesis import given, settings, strategies as st

from repro import System, assemble
from repro.isa import semantics
from tests.conftest import make_config

REGS = ["%o0", "%o1", "%o2", "%o3", "%o4", "%o5"]
OPS = ["add", "sub", "and", "or", "xor", "mulx"]
MEM_BASE = 0x4000
SLOTS = 8


@st.composite
def straight_line_program(draw):
    lines = []
    for reg_index, reg in enumerate(REGS):
        lines.append(f"set {draw(st.integers(0, 1 << 32))}, {reg}")
    n = draw(st.integers(min_value=1, max_value=25))
    for _ in range(n):
        kind = draw(st.sampled_from(["alu", "alu_imm", "store", "load"]))
        if kind == "alu":
            op = draw(st.sampled_from(OPS))
            a, b, d = (draw(st.sampled_from(REGS)) for _ in range(3))
            lines.append(f"{op} {a}, {b}, {d}")
        elif kind == "alu_imm":
            op = draw(st.sampled_from(OPS))
            a, d = draw(st.sampled_from(REGS)), draw(st.sampled_from(REGS))
            imm = draw(st.integers(min_value=0, max_value=4095))
            lines.append(f"{op} {a}, {imm}, {d}")
        elif kind == "store":
            src = draw(st.sampled_from(REGS))
            slot = draw(st.integers(0, SLOTS - 1))
            lines.append(f"stx {src}, [{MEM_BASE + 8 * slot}]")
        else:
            dst = draw(st.sampled_from(REGS))
            slot = draw(st.integers(0, SLOTS - 1))
            lines.append(f"ldx [{MEM_BASE + 8 * slot}], {dst}")
    lines.append("halt")
    return "\n".join(lines)


def reference_run(source):
    """Sequential interpreter over the same assembly subset."""
    regs = {r: 0 for r in REGS}
    memory = {slot: 0 for slot in range(SLOTS)}
    for line in source.splitlines():
        parts = line.replace(",", " ").split()
        mnemonic = parts[0]
        if mnemonic == "halt":
            break
        if mnemonic == "set":
            regs[parts[2]] = int(parts[1]) & ((1 << 64) - 1)
        elif mnemonic == "stx":
            slot = (int(parts[2].strip("[]")) - MEM_BASE) // 8
            memory[slot] = regs[parts[1]]
        elif mnemonic == "ldx":
            slot = (int(parts[1].strip("[]")) - MEM_BASE) // 8
            regs[parts[2]] = memory[slot]
        else:
            a = regs[parts[1]]
            b = regs[parts[2]] if parts[2].startswith("%") else int(parts[2])
            regs[parts[3]] = semantics.alu(mnemonic, a, b)
    return regs, memory


@settings(max_examples=60, deadline=None)
@given(source=straight_line_program())
def test_core_matches_reference(source):
    system = System(make_config())
    system.add_process(assemble(source))
    system.run()
    ref_regs, ref_memory = reference_run(source)
    actual = system.scheduler.processes[0].registers
    for reg in REGS:
        assert actual.read(reg) == ref_regs[reg], f"{reg} diverged\n{source}"
    for slot, value in ref_memory.items():
        assert system.backing.read_int(MEM_BASE + 8 * slot, 8) == value


@settings(max_examples=30, deadline=None)
@given(
    source=straight_line_program(),
    interrupt_cycle=st.integers(min_value=1, max_value=40),
)
def test_core_matches_reference_across_interrupt(source, interrupt_cycle):
    """A precise interrupt anywhere in the program must not change results."""
    system = System(make_config())
    process = system.add_process(assemble(source))
    system.run_cycles(interrupt_cycle)
    if not process.halted:
        system.core.interrupt()
        while not system.core.drained:
            system.step()
        system.core.install_context(process)
    system.run()
    ref_regs, ref_memory = reference_run(source)
    for reg in REGS:
        assert process.registers.read(reg) == ref_regs[reg]
    for slot, value in ref_memory.items():
        assert system.backing.read_int(MEM_BASE + 8 * slot, 8) == value
