"""The CSB against an executable specification.

A tiny reference model implements §3.2's prose directly; hypothesis
drives both it and the real CSB through random interleavings of stores
and conditional flushes from multiple process IDs across multiple lines,
and every observable (flush outcomes, burst contents, hit counter) must
agree at every step.
"""

from hypothesis import given, settings, strategies as st

from repro.common.config import CSBConfig
from repro.common.stats import StatsCollector
from repro.uncached.csb import ConditionalStoreBuffer, FlushResult

LINE = 64
BASE = 0x3000_0000


class ReferenceCSB:
    """Direct transliteration of the paper's §3.2 rules."""

    def __init__(self):
        self.line = None
        self.pid = None
        self.counter = 0
        self.data = {}  # offset -> byte value (one per slot)

    def store(self, line, slot, value, pid):
        if line != self.line or pid != self.pid:
            self.data = {}
            self.line = line
            self.pid = pid
            self.counter = 0
        self.data[slot] = value
        self.counter += 1

    def flush(self, line, pid, expected):
        ok = (
            self.counter == expected
            and self.counter > 0
            and pid == self.pid
            and line == self.line
        )
        burst = dict(self.data) if ok else None
        self.data = {}
        self.counter = 0
        self.line = None
        self.pid = None
        return ok, burst


operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("store"),
            st.integers(min_value=0, max_value=2),   # line index
            st.integers(min_value=0, max_value=7),   # slot
            st.integers(min_value=1, max_value=255),  # value byte
            st.integers(min_value=1, max_value=3),   # pid
        ),
        st.tuples(
            st.just("flush"),
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=9),   # expected counter
            st.integers(min_value=1, max_value=3),   # pid
        ),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=150, deadline=None)
@given(ops=operations)
def test_csb_matches_reference(ops):
    stats = StatsCollector()
    csb = ConditionalStoreBuffer(CSBConfig(num_line_buffers=2), stats)
    reference = ReferenceCSB()
    for op in ops:
        if op[0] == "store":
            _, line_index, slot, value, pid = op
            if not csb.line_buffer_free:
                csb.pop_burst()  # hardware drained the pending burst
            line = BASE + line_index * LINE
            csb.store(line + slot * 8, bytes([value]) * 8, pid)
            reference.store(line, slot, value, pid)
            assert csb.hit_counter == reference.counter
        else:
            _, line_index, expected, pid = op
            if not csb.line_buffer_free:
                csb.pop_burst()
            line = BASE + line_index * LINE
            result = csb.conditional_flush(line, pid, expected)
            ref_ok, ref_burst = reference.flush(line, pid, expected)
            assert (result is FlushResult.SUCCESS) == ref_ok
            if ref_ok:
                burst = csb.pop_burst()
                assert burst.address == line
                for slot in range(8):
                    expected_byte = ref_burst.get(slot, 0)
                    actual = burst.data[slot * 8 : slot * 8 + 8]
                    assert actual == bytes([expected_byte] * 8) or (
                        expected_byte == 0 and actual == bytes(8)
                    )
                assert burst.useful_bytes == 8 * len(ref_burst)
