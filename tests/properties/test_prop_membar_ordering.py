"""Membar ordering property, end to end.

For ANY mix of uncached stores separated by membars, and ANY combining
configuration, every store before a membar must reach the bus before
every store after it — the ordering contract device drivers build on
(paper §4.1: a membar "is prevented from graduating until the uncached
buffer is empty").
"""

from hypothesis import given, settings, strategies as st

from repro import System, assemble
from repro.memory.layout import IO_UNCACHED_BASE
from tests.conftest import make_config

# A program shape: phases of store slot-lists separated by membars.
phases = st.lists(
    st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=6),
    min_size=2,
    max_size=4,
)


@settings(max_examples=40, deadline=None)
@given(
    phases=phases,
    combine_block=st.sampled_from([8, 16, 64]),
    policy=st.sampled_from(["block", "r10000"]),
)
def test_membar_separates_bus_phases(phases, combine_block, policy):
    system = System(make_config(combine_block=combine_block))
    # Rebuild with the requested policy (ppc620 needs block 16; skip it
    # here to keep the strategy space simple).
    from dataclasses import replace
    from repro.common.config import UncachedBufferConfig

    config = replace(
        system.config,
        uncached=UncachedBufferConfig(
            combine_block=combine_block, policy=policy
        ),
    )
    system = System(config)
    lines = [f"set {IO_UNCACHED_BASE}, %o1"]
    phase_of_store = {}
    for phase_index, slots in enumerate(phases):
        for slot in slots:
            # One address is only ever stored in one phase, so the bus
            # order check below is unambiguous.
            address = IO_UNCACHED_BASE + (phase_index * 16 + slot) * 8
            phase_of_store[address] = phase_index
            lines.append(f"set {phase_index + 1}, %l0")
            lines.append(f"stx %l0, [%o1+{(phase_index * 16 + slot) * 8}]")
        lines.append("membar")
    lines.append("halt")
    system.add_process(assemble("\n".join(lines)))
    system.run()

    # Walk the bus transactions in start order: the phase index of the
    # stores they carry must be non-decreasing.
    last_phase = -1
    for record in sorted(system.stats.transactions, key=lambda r: r.start_cycle):
        if record.kind != "uncached_store":
            continue
        # A combined transaction may carry several stores; all of its
        # bytes belong to one phase because phases use disjoint blocks.
        touched = {
            phase_of_store[a]
            for a in phase_of_store
            if record.address <= a < record.address + record.size
        }
        assert len(touched) <= 1, "a transaction combined across a membar"
        if touched:
            phase = touched.pop()
            assert phase >= last_phase, (
                f"phase {phase} store on the bus after phase {last_phase}"
            )
            last_phase = max(last_phase, phase)
