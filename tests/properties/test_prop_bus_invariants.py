"""Bus timing invariants under random transaction streams.

Whatever the configuration, the bus must never overlap transactions,
must honor the turnaround and minimum-address-delay spacing, and its
cycle accounting must agree with the closed-form cost model.
"""

from hypothesis import given, settings, strategies as st

from repro.common.config import BusConfig
from repro.common.stats import StatsCollector
from repro.bus.base import TargetRegistry
from repro.bus.factory import make_bus
from repro.bus.transaction import BusTransaction, KIND_UNCACHED_STORE
from repro.memory.backing import BackingStore
from repro.evaluation.analytic import transaction_cycles

bus_configs = st.builds(
    BusConfig,
    kind=st.sampled_from(["multiplexed", "split"]),
    width_bytes=st.sampled_from([8, 16, 32]),
    cpu_ratio=st.just(6),
    turnaround=st.integers(min_value=0, max_value=3),
    min_addr_delay=st.integers(min_value=0, max_value=10),
    max_burst_bytes=st.just(64),
)

size_streams = st.lists(
    st.sampled_from([8, 16, 32, 64]), min_size=1, max_size=30
)


def drive(config: BusConfig, sizes):
    """Issue a saturating stream; returns the recorded transactions."""
    stats = StatsCollector()
    bus = make_bus(config, stats, TargetRegistry(BackingStore()))
    cycle = 0
    for index, size in enumerate(sizes):
        txn = BusTransaction(
            address=index * 64,  # 64-aligned, hence aligned for any size
            size=size,
            kind=KIND_UNCACHED_STORE,
            data=bytes(size),
        )
        while not bus.try_issue(txn, cycle):
            cycle += 1
            assert cycle < 10_000, "bus never freed"
    bus.tick(cycle + 1000)
    assert bus.drain_complete()
    return config, stats.transactions


@settings(max_examples=60, deadline=None)
@given(config=bus_configs, sizes=size_streams)
def test_no_overlap_and_spacing(config, sizes):
    config, records = drive(config, sizes)
    for previous, current in zip(records, records[1:]):
        # Never overlapping, plus mandatory turnaround between them.
        assert current.start_cycle >= previous.end_cycle + 1 + config.turnaround
        # Address-to-address flow control.
        assert current.start_cycle >= previous.start_cycle + config.min_addr_delay


@settings(max_examples=60, deadline=None)
@given(config=bus_configs, sizes=size_streams)
def test_durations_match_cost_model(config, sizes):
    config, records = drive(config, sizes)
    for record in records:
        expected = transaction_cycles(config, record.size)
        assert record.end_cycle - record.start_cycle + 1 == expected


@settings(max_examples=40, deadline=None)
@given(config=bus_configs, sizes=size_streams)
def test_saturating_stream_is_back_to_back(config, sizes):
    """With a requester always ready, consecutive starts are exactly the
    analytic start period apart."""

    config, records = drive(config, sizes)
    for previous, current in zip(records, records[1:]):
        expected_gap = max(
            transaction_cycles(config, previous.size) + config.turnaround,
            config.min_addr_delay,
        )
        assert current.start_cycle - previous.start_cycle == expected_gap
