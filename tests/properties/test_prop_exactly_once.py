"""System-level exactly-once property for uncached stores.

For ANY combining configuration, every uncached store the program executes
must reach the device exactly once, in program order per address, with the
right bytes.  Combining may merge transactions but never duplicate, drop,
or reorder same-address stores.
"""

from hypothesis import given, settings, strategies as st

from repro import System, assemble
from repro.devices.sink import BurstSink
from repro.memory.layout import IO_UNCACHED_BASE, PageAttr, Region
from tests.conftest import make_config


@settings(max_examples=40, deadline=None)
@given(
    combine_block=st.sampled_from([8, 16, 32, 64]),
    slots=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=24),
)
def test_every_store_reaches_device_exactly_once(combine_block, slots):
    system = System(make_config(combine_block=combine_block))
    region = Region(IO_UNCACHED_BASE, 8192, PageAttr.UNCACHED, "sink")
    sink = system.attach_device(BurstSink(region))
    lines = [f"set {IO_UNCACHED_BASE}, %o1"]
    reference = {}
    for i, slot in enumerate(slots):
        value = (i << 8) | slot | 0x40_0000  # unique per dynamic store
        lines.append(f"set {value}, %l0")
        lines.append(f"stx %l0, [%o1+{slot * 8}]")
        reference[slot] = value
    lines.append("halt")
    system.add_process(assemble("\n".join(lines)))
    system.run()

    # Reassemble the device-visible byte stream from the write log.
    delivered = {}
    delivered_count = 0
    for offset, data in sink.log:
        for piece_start in range(0, len(data), 8):
            slot = (offset + piece_start) // 8
            word = int.from_bytes(data[piece_start : piece_start + 8], "big")
            if word:
                delivered[slot] = word
                delivered_count += 1
    # Final value per slot matches program order (last write wins).
    assert delivered == reference
    # No store was duplicated on the wire: the number of non-zero words
    # delivered equals the number of dynamic stores.
    assert delivered_count == len(slots)


@settings(max_examples=25, deadline=None)
@given(
    slots=st.lists(
        st.integers(min_value=0, max_value=7), min_size=1, max_size=8, unique=True
    )
)
def test_csb_burst_carries_exact_store_set(slots):
    system = System(make_config())
    from repro.memory.layout import IO_COMBINING_BASE

    region = Region(
        IO_COMBINING_BASE, 8192, PageAttr.UNCACHED_COMBINING, "sink"
    )
    sink = system.attach_device(BurstSink(region))
    lines = [f"set {IO_COMBINING_BASE}, %o1", f"set {len(slots)}, %l4"]
    for slot in slots:
        lines.append(f"set {slot + 1}, %l0")
        lines.append(f"stx %l0, [%o1+{slot * 8}]")
    lines += ["swap [%o1], %l4", "halt"]
    system.add_process(assemble("\n".join(lines)))
    system.run()
    # Single process: the flush must have succeeded on the first try.
    assert system.stats.get("csb.flush_conflicts") == 0
    assert len(sink.log) == 1
    offset, data = sink.log[0]
    assert offset == 0 and len(data) == 64
    for slot in range(8):
        word = int.from_bytes(data[slot * 8 : slot * 8 + 8], "big")
        assert word == (slot + 1 if slot in slots else 0)
