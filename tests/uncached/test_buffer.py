"""The conventional uncached buffer: FIFO order, combining rules, draining."""

import pytest

from repro.common.config import BusConfig, UncachedBufferConfig
from repro.common.stats import StatsCollector
from repro.bus.base import TargetRegistry
from repro.bus.multiplexed import MultiplexedBus
from repro.memory.backing import BackingStore
from repro.uncached.buffer import UncachedBuffer

BASE = 0x2000_0000


def make_buffer(combine_block=8, depth=8, **bus_kwargs):
    stats = StatsCollector()
    backing = BackingStore()
    bus = MultiplexedBus(
        BusConfig(**bus_kwargs), stats, TargetRegistry(backing)
    )
    buffer = UncachedBuffer(
        UncachedBufferConfig(combine_block=combine_block, depth=depth), bus, stats
    )
    return buffer, bus, backing, stats


def drain(buffer, bus, start_cycle=0, limit=1000):
    """Run bus cycles until the buffer empties; returns cycles used."""
    cycle = start_cycle
    while not buffer.empty and cycle < limit:
        bus.tick(cycle)
        buffer.tick_bus(cycle)
        cycle += 1
    bus.tick(cycle + 100)
    assert buffer.empty, "buffer failed to drain"
    return cycle


class TestFIFO:
    def test_stores_drain_in_order(self):
        buffer, bus, backing, _ = make_buffer()
        assert buffer.accept_store(BASE, b"AAAAAAAA", 1)
        assert buffer.accept_store(BASE + 8, b"BBBBBBBB", 2)
        drain(buffer, bus)
        assert backing.read_bytes(BASE, 16) == b"AAAAAAAA" + b"BBBBBBBB"

    def test_depth_limit(self):
        buffer, _, _, stats = make_buffer(depth=2)
        assert buffer.accept_store(BASE, bytes(8), 1)
        assert buffer.accept_store(BASE + 64, bytes(8), 2)
        assert not buffer.accept_store(BASE + 128, bytes(8), 3)
        assert stats.get("uncached.full_stalls") == 1

    def test_head_sequence(self):
        buffer, _, _, _ = make_buffer()
        assert buffer.head_sequence is None
        buffer.accept_store(BASE, bytes(8), 7)
        assert buffer.head_sequence == 7


class TestCombining:
    def test_non_combining_never_coalesces(self):
        buffer, _, _, _ = make_buffer(combine_block=8)
        buffer.accept_store(BASE, bytes(8), 1)
        buffer.accept_store(BASE + 8, bytes(8), 2)
        assert buffer.occupancy == 2

    def test_same_block_coalesces(self):
        buffer, _, _, stats = make_buffer(combine_block=64)
        buffer.accept_store(BASE, bytes(8), 1)
        buffer.accept_store(BASE + 8, bytes(8), 2)
        assert buffer.occupancy == 1
        assert stats.get("uncached.stores_combined") == 1

    def test_different_block_allocates(self):
        buffer, _, _, _ = make_buffer(combine_block=64)
        buffer.accept_store(BASE, bytes(8), 1)
        buffer.accept_store(BASE + 64, bytes(8), 2)
        assert buffer.occupancy == 2

    def test_overlapping_store_never_merges(self):
        # Overlapping uncached stores may have side effects: both must
        # reach the device.
        buffer, bus, _, _ = make_buffer(combine_block=64)
        buffer.accept_store(BASE, b"AAAAAAAA", 1)
        buffer.accept_store(BASE, b"BBBBBBBB", 2)
        assert buffer.occupancy == 2

    def test_store_combines_into_newest_matching_entry(self):
        buffer, _, _, _ = make_buffer(combine_block=64)
        buffer.accept_store(BASE, bytes(8), 1)        # entry A (block 0)
        buffer.accept_store(BASE + 64, bytes(8), 2)   # entry B (block 1)
        buffer.accept_store(BASE + 8, bytes(8), 3)    # combines into A
        assert buffer.occupancy == 2

    def test_load_blocks_combining_with_older_entries(self):
        results = []
        buffer, _, _, _ = make_buffer(combine_block=64)
        buffer.accept_store(BASE, bytes(8), 1)
        buffer.accept_load(BASE + 256, 8, 2, lambda d, c: results.append(d))
        # The next store matches entry 1's block but would have to bypass
        # the load: it must get its own entry instead.
        buffer.accept_store(BASE + 8, bytes(8), 3)
        assert buffer.occupancy == 3

    def test_no_combining_once_transfer_began(self):
        buffer, bus, _, _ = make_buffer(combine_block=64)
        buffer.accept_store(BASE, bytes(8), 1)
        bus.tick(0)
        assert buffer.tick_bus(0)  # first piece issued; entry frozen+gone
        assert buffer.empty
        buffer.accept_store(BASE + 8, bytes(8), 2)
        assert buffer.occupancy == 1  # new entry, no resurrection


class TestDrainTiming:
    def test_noncombining_txn_per_store(self):
        buffer, bus, _, stats = make_buffer(combine_block=8)
        for i in range(4):
            buffer.accept_store(BASE + 8 * i, bytes(8), i)
        drain(buffer, bus)
        assert stats.get("bus.transactions") == 4

    def test_combined_entry_single_burst(self):
        buffer, bus, _, stats = make_buffer(combine_block=64)
        for i in range(8):
            buffer.accept_store(BASE + 8 * i, bytes(8), i)
        drain(buffer, bus)
        assert stats.get("bus.transactions") == 1
        assert stats.get("bus.bursts") == 1

    def test_partial_entry_fragments_into_aligned_pieces(self):
        buffer, bus, _, stats = make_buffer(combine_block=64)
        for i in range(3):  # 24 bytes -> 16 + 8
            buffer.accept_store(BASE + 8 * i, bytes(8), i)
        drain(buffer, bus)
        assert stats.get("bus.transactions") == 2


class TestLoads:
    def test_load_returns_device_data(self):
        buffer, bus, backing, _ = make_buffer()
        backing.write_bytes(BASE, b"HELLOSIM")
        results = []
        buffer.accept_load(BASE, 8, 1, lambda data, cyc: results.append(data))
        drain(buffer, bus)
        assert results == [b"HELLOSIM"]

    def test_load_blocks_younger_stores(self):
        buffer, bus, backing, _ = make_buffer()
        order = []
        buffer.accept_load(BASE, 8, 1, lambda d, c: order.append(("load", c)))
        buffer.accept_store(BASE + 8, b"ZZZZZZZZ", 2)
        cycle = 0
        while not buffer.empty and cycle < 100:
            bus.tick(cycle)
            buffer.tick_bus(cycle)
            if backing.read_bytes(BASE + 8, 8) == b"ZZZZZZZZ" and not order:
                pytest.fail("store reached the device before the older load")
            cycle += 1
        assert order and order[0][0] == "load"

    def test_load_depth_limit(self):
        buffer, _, _, _ = make_buffer(depth=1)
        buffer.accept_store(BASE, bytes(8), 1)
        assert not buffer.accept_load(BASE, 8, 2, lambda d, c: None)
