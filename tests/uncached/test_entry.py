"""Uncached buffer store entries: coalescing rules and decomposition."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SimulationError
from repro.uncached.entry import StoreEntry


def entry(base: int = 0x1000, block: int = 64) -> StoreEntry:
    return StoreEntry(base, block, sequence=1)


class TestWrite:
    def test_base_must_be_aligned(self):
        with pytest.raises(SimulationError):
            StoreEntry(0x1008, 64, 1)

    def test_write_and_valid_bytes(self):
        e = entry()
        e.write(0x1000, bytes(8))
        e.write(0x1010, bytes(8))
        assert e.valid_bytes == 16

    def test_overlap_rejected(self):
        e = entry()
        e.write(0x1000, bytes(8))
        assert not e.can_accept(0x1000, 8)
        assert not e.can_accept(0x1004, 8)
        with pytest.raises(SimulationError):
            e.write(0x1000, bytes(8))

    def test_out_of_block_rejected(self):
        e = entry()
        assert not e.can_accept(0x1040, 8)   # next block
        assert not e.can_accept(0x0FF8, 8)   # previous block
        assert not e.can_accept(0x103C, 8)   # crosses the block end

    def test_frozen_rejects_all(self):
        e = entry()
        e.write(0x1000, bytes(8))
        e.frozen = True
        assert not e.can_accept(0x1008, 8)


class TestRuns:
    def test_single_run(self):
        e = entry()
        e.write(0x1000, bytes(16))
        assert e.runs() == [(0x1000, 16)]

    def test_gap_splits_runs(self):
        e = entry()
        e.write(0x1000, bytes(8))
        e.write(0x1010, bytes(8))
        assert e.runs() == [(0x1000, 8), (0x1010, 8)]

    def test_out_of_order_writes_merge(self):
        e = entry()
        e.write(0x1008, bytes(8))
        e.write(0x1000, bytes(8))
        assert e.runs() == [(0x1000, 16)]


class TestTransactions:
    def test_full_block_single_burst(self):
        e = entry()
        e.write(0x1000, bytes(64))
        assert [(a, s) for a, s, _ in e.transactions()] == [(0x1000, 64)]

    def test_three_doublewords_fragment(self):
        e = entry()
        e.write(0x1000, bytes(24))
        assert [(a, s) for a, s, _ in e.transactions()] == [
            (0x1000, 16),
            (0x1010, 8),
        ]

    def test_data_travels_with_pieces(self):
        e = entry()
        e.write(0x1000, b"AAAAAAAA")
        e.write(0x1008, b"BBBBBBBB")
        pieces = e.transactions()
        assert pieces == [(0x1000, 16, b"AAAAAAAA" + b"BBBBBBBB")]

    @given(
        offsets=st.lists(
            st.integers(min_value=0, max_value=7), min_size=1, max_size=8, unique=True
        )
    )
    def test_property_transactions_cover_exactly_valid_bytes(self, offsets):
        e = entry()
        for slot in offsets:
            e.write(0x1000 + slot * 8, bytes([slot + 1]) * 8)
        covered = set()
        for address, size, data in e.transactions():
            assert len(data) == size
            for i in range(size):
                covered.add(address + i)
        expected = {
            0x1000 + slot * 8 + i for slot in offsets for i in range(8)
        }
        assert covered == expected
