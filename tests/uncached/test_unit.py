"""The uncached unit: routing, ordering, flush-result timing."""

import pytest

from repro.common.config import BusConfig, CSBConfig, UncachedBufferConfig
from repro.common.errors import SimulationError
from repro.common.stats import StatsCollector
from repro.bus.base import TargetRegistry
from repro.bus.multiplexed import MultiplexedBus
from repro.memory.backing import BackingStore
from repro.memory.layout import default_address_space, IO_COMBINING_BASE, IO_UNCACHED_BASE
from repro.memory.tlb import AttributeTLB
from repro.uncached.buffer import UncachedBuffer
from repro.uncached.csb import ConditionalStoreBuffer
from repro.uncached.unit import UncachedUnit

RATIO = 6


def make_unit(combine_block=8, num_line_buffers=1, flush_latency=3):
    stats = StatsCollector()
    backing = BackingStore()
    bus = MultiplexedBus(
        BusConfig(cpu_ratio=RATIO), stats, TargetRegistry(backing)
    )
    csb_config = CSBConfig(
        num_line_buffers=num_line_buffers, flush_latency=flush_latency
    )
    csb = ConditionalStoreBuffer(csb_config, stats)
    buffer = UncachedBuffer(
        UncachedBufferConfig(combine_block=combine_block), bus, stats
    )
    tlb = AttributeTLB(default_address_space())
    unit = UncachedUnit(buffer, csb, bus, tlb, stats, RATIO, csb_config)
    return unit, backing, stats


def run(unit, cycles, start=0):
    for cycle in range(start, start + cycles):
        unit.tick(cycle)
    return start + cycles


class TestRouting:
    def test_uncached_store_goes_to_buffer(self):
        unit, backing, _ = make_unit()
        assert unit.issue_store(IO_UNCACHED_BASE, 8, 0xAABB, pid=1)
        assert unit.buffer.occupancy == 1
        run(unit, 50)
        assert backing.read_int(IO_UNCACHED_BASE, 8) == 0xAABB

    def test_combining_store_goes_to_csb(self):
        unit, _, _ = make_unit()
        assert unit.issue_store(IO_COMBINING_BASE, 8, 1, pid=1)
        assert unit.csb.hit_counter == 1
        assert unit.buffer.occupancy == 0

    def test_cached_store_rejected(self):
        unit, _, _ = make_unit()
        with pytest.raises(SimulationError):
            unit.issue_store(0x1000, 8, 1, pid=1)

    def test_load_in_combining_space_bypasses_csb(self):
        # Paper: uncached loads bypass the combined (uncommitted) stores.
        unit, backing, _ = make_unit()
        backing.write_int(IO_COMBINING_BASE, 0x77, 8)
        unit.issue_store(IO_COMBINING_BASE, 8, 0x99, pid=1)  # uncommitted
        results = []
        assert unit.issue_load(
            IO_COMBINING_BASE, 8, lambda value, cyc: results.append(value)
        )
        run(unit, 200)
        assert results == [0x77]  # old value: CSB content not visible


class TestFlush:
    def test_flush_result_arrives_after_flush_latency(self):
        unit, _, _ = make_unit(flush_latency=3)
        unit.issue_store(IO_COMBINING_BASE, 8, 1, pid=1)
        results = []
        unit.tick(0)
        assert unit.issue_swap(
            IO_COMBINING_BASE, pid=1, expected=1,
            callback=lambda v, c: results.append((v, c)),
        )
        run(unit, 2, start=1)
        assert results == []
        unit.tick(3)
        assert results == [(1, 3)]

    def test_failed_flush_returns_zero(self):
        unit, _, _ = make_unit()
        unit.issue_store(IO_COMBINING_BASE, 8, 1, pid=1)
        results = []
        unit.tick(0)
        unit.issue_swap(
            IO_COMBINING_BASE, pid=2, expected=1,
            callback=lambda v, c: results.append(v),
        )
        run(unit, 10, start=1)
        assert results == [0]

    def test_burst_reaches_device(self):
        unit, backing, stats = make_unit()
        for i in range(8):
            unit.issue_store(IO_COMBINING_BASE + 8 * i, 8, i + 1, pid=1)
        unit.issue_swap(IO_COMBINING_BASE, 1, 8, lambda v, c: None)
        run(unit, 200)
        for i in range(8):
            assert backing.read_int(IO_COMBINING_BASE + 8 * i, 8) == i + 1
        assert stats.get("bus.bursts") == 1

    def test_store_stalls_while_line_buffer_busy(self):
        unit, _, stats = make_unit(num_line_buffers=1)
        unit.issue_store(IO_COMBINING_BASE, 8, 1, pid=1)
        unit.issue_swap(IO_COMBINING_BASE, 1, 1, lambda v, c: None)
        # Burst not yet on the bus: the next combining store must stall.
        assert not unit.issue_store(IO_COMBINING_BASE, 8, 2, pid=1)
        assert stats.get("csb.store_stalls") == 1
        run(unit, RATIO + 1)  # one bus cycle: burst issued
        assert unit.issue_store(IO_COMBINING_BASE, 8, 2, pid=1)


class TestOrdering:
    def test_buffer_and_csb_issue_in_program_order(self):
        unit, _, stats = make_unit()
        # Uncached store first, then a CSB sequence: the doubleword store's
        # transaction must reach the bus before the flush burst.
        unit.issue_store(IO_UNCACHED_BASE, 8, 1, pid=1)
        unit.issue_store(IO_COMBINING_BASE, 8, 2, pid=1)
        unit.issue_swap(IO_COMBINING_BASE, 1, 1, lambda v, c: None)
        run(unit, 13)  # bus cycles 0, 1, 2
        records = stats.transactions
        assert [r.kind for r in records] == ["uncached_store", "csb_flush"]

    def test_csb_flush_before_buffer_when_older(self):
        unit, _, stats = make_unit()
        unit.issue_store(IO_COMBINING_BASE, 8, 2, pid=1)
        unit.issue_swap(IO_COMBINING_BASE, 1, 1, lambda v, c: None)
        unit.issue_store(IO_UNCACHED_BASE, 8, 1, pid=1)
        run(unit, 80)
        records = stats.transactions
        assert [r.kind for r in records] == ["csb_flush", "uncached_store"]


class TestUncachedSwap:
    def test_plain_uncached_swap_read_then_write(self):
        unit, backing, _ = make_unit()
        backing.write_int(IO_UNCACHED_BASE, 0, 8)
        results = []
        unit.issue_swap(
            IO_UNCACHED_BASE, pid=1, expected=1,
            callback=lambda v, c: results.append(v),
        )
        run(unit, 300)
        assert results == [0]                       # old value returned
        assert backing.read_int(IO_UNCACHED_BASE, 8) == 1  # new value stored


class TestBarrier:
    def test_barrier_waits_for_buffer(self):
        unit, _, _ = make_unit()
        unit.issue_store(IO_UNCACHED_BASE, 8, 1, pid=1)
        assert not unit.barrier_clear()
        run(unit, 50)
        assert unit.barrier_clear()

    def test_quiescent(self):
        unit, _, _ = make_unit()
        assert unit.quiescent()
        unit.issue_store(IO_UNCACHED_BASE, 8, 1, pid=1)
        assert not unit.quiescent()
        run(unit, 50)
        assert unit.quiescent()
