"""The conditional store buffer protocol (paper §3.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import CSBConfig
from repro.common.errors import SimulationError
from repro.common.stats import StatsCollector
from repro.uncached.csb import ConditionalStoreBuffer, FlushResult

LINE = 0x3000_0000


def make_csb(**kwargs) -> ConditionalStoreBuffer:
    return ConditionalStoreBuffer(CSBConfig(**kwargs), StatsCollector())


def fill(csb, n, pid=1, base=LINE, value=0xAB):
    for i in range(n):
        csb.store(base + 8 * i, bytes([value]) * 8, pid)


class TestHitCounter:
    def test_counts_consecutive_matching_stores(self):
        csb = make_csb()
        fill(csb, 3)
        assert csb.hit_counter == 3

    def test_stores_in_any_order(self):
        csb = make_csb()
        csb.store(LINE + 40, bytes(8), 1)
        csb.store(LINE, bytes(8), 1)
        csb.store(LINE + 16, bytes(8), 1)
        assert csb.hit_counter == 3

    def test_pid_mismatch_resets_to_one(self):
        csb = make_csb()
        fill(csb, 3, pid=1)
        csb.store(LINE, bytes(8), 2)
        assert csb.hit_counter == 1
        assert csb.pid == 2

    def test_line_mismatch_resets_to_one(self):
        csb = make_csb()
        fill(csb, 3)
        csb.store(LINE + 64, bytes(8), 1)
        assert csb.hit_counter == 1
        assert csb.line_addr == LINE + 64

    def test_conflict_clears_old_data(self):
        csb = make_csb()
        fill(csb, 8, pid=1, value=0xFF)
        csb.store(LINE, bytes(8), 2)  # conflict clears the buffer
        assert csb.valid_bytes == 8   # only the new store's bytes


class TestConditionalFlush:
    def test_success_requires_exact_count(self):
        csb = make_csb()
        fill(csb, 4)
        assert csb.conditional_flush(LINE, 1, expected=4) is FlushResult.SUCCESS

    def test_wrong_count_conflicts(self):
        csb = make_csb()
        fill(csb, 4)
        assert csb.conditional_flush(LINE, 1, expected=3) is FlushResult.CONFLICT

    def test_wrong_pid_conflicts(self):
        csb = make_csb()
        fill(csb, 4, pid=1)
        assert csb.conditional_flush(LINE, 2, expected=4) is FlushResult.CONFLICT

    def test_wrong_address_conflicts_when_checked(self):
        csb = make_csb(check_address=True)
        fill(csb, 4)
        assert (
            csb.conditional_flush(LINE + 64, 1, expected=4) is FlushResult.CONFLICT
        )

    def test_address_check_can_be_disabled(self):
        csb = make_csb(check_address=False)
        fill(csb, 4)
        assert (
            csb.conditional_flush(LINE + 64, 1, expected=4) is FlushResult.SUCCESS
        )

    def test_flush_of_empty_buffer_conflicts(self):
        csb = make_csb()
        assert csb.conditional_flush(LINE, 1, expected=0) is FlushResult.CONFLICT

    def test_conflict_resets_everything(self):
        csb = make_csb()
        fill(csb, 4)
        csb.conditional_flush(LINE, 1, expected=99)
        assert csb.hit_counter == 0
        assert csb.valid_bytes == 0
        assert csb.line_addr is None

    def test_success_clears_for_next_sequence(self):
        csb = make_csb(num_line_buffers=2)
        fill(csb, 2)
        csb.conditional_flush(LINE, 1, expected=2)
        assert csb.hit_counter == 0
        fill(csb, 3)
        assert csb.hit_counter == 3

    def test_interrupted_sequence_scenario(self):
        # Paper §3.2: process A stores, is preempted, process B stores;
        # A's flush then fails and B's succeeds.
        csb = make_csb(num_line_buffers=2)
        fill(csb, 8, pid=1)
        csb.store(LINE, bytes(8), pid=2)  # B's first store clears the buffer
        assert csb.conditional_flush(LINE, 1, expected=8) is FlushResult.CONFLICT
        # B finishes its own sequence and flushes successfully.
        fill(csb, 8, pid=2)
        assert csb.conditional_flush(LINE, 2, expected=8) is FlushResult.SUCCESS


class TestBurstPayload:
    def test_full_line_with_zero_padding(self):
        csb = make_csb()
        csb.store(LINE + 8, b"\xff" * 8, 1)
        csb.conditional_flush(LINE, 1, expected=1)
        burst = csb.pop_burst()
        assert burst.address == LINE
        assert len(burst.data) == 64
        assert burst.data[8:16] == b"\xff" * 8
        assert burst.data[:8] == bytes(8)      # zero padded
        assert burst.data[16:] == bytes(48)
        assert burst.useful_bytes == 8

    def test_no_data_leak_between_processes(self):
        # The clear-on-first-store rule is the security defense: a new
        # sequence must never see the previous process's bytes as padding.
        csb = make_csb(num_line_buffers=2)
        fill(csb, 8, pid=1, value=0x55)
        csb.conditional_flush(LINE, 1, expected=8)
        csb.pop_burst()
        csb.store(LINE, b"\x11" * 8, pid=2)
        csb.conditional_flush(LINE, 2, expected=1)
        burst = csb.pop_burst()
        assert burst.data[8:] == bytes(56)  # no 0x55 remnants

    def test_relaxed_variant_issues_covering_span(self):
        csb = make_csb(pad_to_full_line=False)
        csb.store(LINE, bytes(8), 1)
        csb.store(LINE + 8, bytes(8), 1)
        csb.conditional_flush(LINE, 1, expected=2)
        burst = csb.pop_burst()
        assert burst.address == LINE
        assert len(burst.data) == 16


class TestLineBufferOccupancy:
    def test_single_buffer_busy_after_flush(self):
        csb = make_csb(num_line_buffers=1)
        fill(csb, 2)
        csb.conditional_flush(LINE, 1, expected=2)
        assert not csb.line_buffer_free
        with pytest.raises(SimulationError):
            csb.store(LINE, bytes(8), 1)
        with pytest.raises(SimulationError):
            csb.conditional_flush(LINE, 1, expected=0)

    def test_pop_frees_buffer(self):
        csb = make_csb(num_line_buffers=1)
        fill(csb, 2)
        csb.conditional_flush(LINE, 1, expected=2)
        csb.pop_burst()
        assert csb.line_buffer_free

    def test_second_line_buffer_allows_overlap(self):
        csb = make_csb(num_line_buffers=2)
        fill(csb, 2)
        csb.conditional_flush(LINE, 1, expected=2)
        assert csb.line_buffer_free  # second buffer available
        fill(csb, 2)
        csb.conditional_flush(LINE, 1, expected=2)
        assert not csb.line_buffer_free
        assert csb.pending_bursts == 2

    def test_pop_without_burst_raises(self):
        with pytest.raises(SimulationError):
            make_csb().pop_burst()

    def test_store_crossing_line_rejected(self):
        csb = make_csb()
        with pytest.raises(SimulationError):
            csb.store(LINE + 60, bytes(8), 1)


class TestProtocolProperty:
    @given(
        stores=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),   # slot in line
                st.integers(min_value=1, max_value=3),   # pid
            ),
            min_size=1,
            max_size=20,
        ),
        flush_pid=st.integers(min_value=1, max_value=3),
    )
    def test_property_flush_succeeds_iff_counter_and_pid_match(
        self, stores, flush_pid
    ):
        csb = make_csb()
        # Reference model of the spec: track the run of consecutive
        # same-pid stores (same line always, here).
        run_pid = None
        run_length = 0
        for slot, pid in stores:
            csb.store(LINE + slot * 8, bytes(8), pid)
            if pid == run_pid:
                run_length += 1
            else:
                run_pid, run_length = pid, 1
        expected_success = flush_pid == run_pid
        result = csb.conditional_flush(LINE, flush_pid, expected=run_length)
        assert (result is FlushResult.SUCCESS) == expected_success
