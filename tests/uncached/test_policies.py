"""Hardware combining policies: R10000 pattern buffer, PowerPC 620 pairs."""

import pytest

from repro.common.config import UncachedBufferConfig, BusConfig
from repro.common.errors import ConfigError
from repro.common.stats import StatsCollector
from repro.bus.base import TargetRegistry
from repro.bus.multiplexed import MultiplexedBus
from repro.memory.backing import BackingStore
from repro.uncached.buffer import UncachedBuffer
from repro.uncached.entry import StoreEntry
from repro.uncached.policies import (
    BlockCombining,
    PowerPC620Pairs,
    R10000Accelerated,
    make_policy,
)

BASE = 0x2000_0000


def make_buffer(policy="block", combine_block=64, depth=8):
    stats = StatsCollector()
    bus = MultiplexedBus(
        BusConfig(max_burst_bytes=64), stats, TargetRegistry(BackingStore())
    )
    config = UncachedBufferConfig(
        combine_block=combine_block, depth=depth, policy=policy
    )
    return UncachedBuffer(config, bus, stats), bus, stats


def drain(buffer, bus, limit=500):
    cycle = 0
    while not buffer.empty and cycle < limit:
        bus.tick(cycle)
        buffer.tick_bus(cycle)
        cycle += 1
    assert buffer.empty


class TestFactory:
    def test_names(self):
        assert make_policy(UncachedBufferConfig(combine_block=8)).name == "none"
        assert (
            make_policy(UncachedBufferConfig(combine_block=32)).name == "combine32"
        )
        assert (
            make_policy(
                UncachedBufferConfig(combine_block=64, policy="r10000")
            ).name
            == "r10000"
        )

    def test_ppc620_requires_16_byte_block(self):
        with pytest.raises(ConfigError):
            UncachedBufferConfig(combine_block=64, policy="ppc620")
        with pytest.raises(ConfigError):
            PowerPC620Pairs(entry_block=64)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            UncachedBufferConfig(policy="mystery")


class TestR10000:
    def test_sequential_stream_forms_full_line_burst(self):
        buffer, bus, stats = make_buffer(policy="r10000")
        for i in range(8):
            buffer.accept_store(BASE + 8 * i, bytes(8), i)
        assert buffer.occupancy == 1
        drain(buffer, bus)
        assert stats.get("bus.transactions") == 1
        assert stats.get("bus.bursts") == 1

    def test_non_sequential_store_breaks_pattern(self):
        buffer, bus, stats = make_buffer(policy="r10000")
        buffer.accept_store(BASE, bytes(8), 1)
        buffer.accept_store(BASE + 8, bytes(8), 2)
        buffer.accept_store(BASE + 24, bytes(8), 3)  # skips one slot
        assert buffer.occupancy == 2

    def test_broken_pattern_entry_stops_combining(self):
        buffer, _, _ = make_buffer(policy="r10000")
        buffer.accept_store(BASE, bytes(8), 1)
        buffer.accept_store(BASE + 64, bytes(8), 2)   # new line; closes entry 1
        # Even the "right" next sequential address no longer combines.
        buffer.accept_store(BASE + 8, bytes(8), 3)
        assert buffer.occupancy == 3

    def test_partial_line_drains_as_single_beats(self):
        # Unlike the generic block model (which would use an aligned
        # 16-byte piece), the R10000 issues one single-beat per store.
        buffer, bus, stats = make_buffer(policy="r10000")
        for i in range(3):
            buffer.accept_store(BASE + 8 * i, bytes(8), i)
        drain(buffer, bus)
        assert stats.get("bus.transactions") == 3
        assert stats.get("bus.bursts") == 0

    def test_descending_stream_never_combines(self):
        buffer, _, _ = make_buffer(policy="r10000")
        for i in reversed(range(4)):
            buffer.accept_store(BASE + 8 * i, bytes(8), i)
        assert buffer.occupancy == 4


class TestPowerPC620:
    def test_combines_exactly_one_pair(self):
        buffer, bus, stats = make_buffer(policy="ppc620", combine_block=16)
        for i in range(4):
            buffer.accept_store(BASE + 8 * i, bytes(8), i)
        assert buffer.occupancy == 2  # two pairs
        drain(buffer, bus)
        assert stats.get("bus.transactions") == 2

    def test_pair_must_be_naturally_aligned(self):
        buffer, _, _ = make_buffer(policy="ppc620", combine_block=16)
        buffer.accept_store(BASE + 8, bytes(8), 1)
        buffer.accept_store(BASE + 16, bytes(8), 2)  # consecutive, misaligned
        assert buffer.occupancy == 2

    def test_pair_must_be_same_size(self):
        buffer, _, _ = make_buffer(policy="ppc620", combine_block=16)
        buffer.accept_store(BASE, bytes(4), 1)
        buffer.accept_store(BASE + 4, bytes(8), 2)
        assert buffer.occupancy == 2

    def test_no_triples(self):
        buffer, _, _ = make_buffer(policy="ppc620", combine_block=16)
        buffer.accept_store(BASE, bytes(4), 1)
        buffer.accept_store(BASE + 4, bytes(4), 2)   # pair complete
        buffer.accept_store(BASE + 8, bytes(4), 3)   # must start a new entry
        assert buffer.occupancy == 2


class TestBlockPolicyUnchanged:
    def test_out_of_order_within_block_still_combines(self):
        # The generic model accepts any order; the R10000 model does not.
        buffer, _, _ = make_buffer(policy="block")
        buffer.accept_store(BASE + 24, bytes(8), 1)
        buffer.accept_store(BASE, bytes(8), 2)
        assert buffer.occupancy == 1

    def test_plan_uses_aligned_pieces(self):
        entry = StoreEntry(BASE, 64, 1)
        for i in range(3):
            entry.write(BASE + 8 * i, bytes(8))
        policy = BlockCombining(64)
        assert [(a, s) for a, s, _ in policy.plan(entry)] == [
            (BASE, 16),
            (BASE + 16, 8),
        ]

    def test_r10000_plan_full_line(self):
        entry = StoreEntry(BASE, 64, 1)
        for i in range(8):
            entry.write(BASE + 8 * i, bytes(8))
        policy = R10000Accelerated(64)
        assert [(a, s) for a, s, _ in policy.plan(entry)] == [(BASE, 64)]
