"""Randomized differential harness (ISSUE 5 satellite).

Fifty seeded, lint-clean random guest programs cross-check the
simulator's modes against each other:

* the generator's output assembles, passes the protocol lint oracle with
  zero error findings, and halts;
* tracing is passive — an attached event observer and the pipeline
  trace flag change *nothing* measurable (cycles, counters, final
  memory);
* the content-addressed runner cache is transparent — cached results
  are byte-identical to fresh simulation;
* a 2-core system running the program on core 0 leaves main memory in
  exactly the state the single-core system does.

Every assertion is exact equality: the simulator is deterministic, so
any divergence between modes is a bug, not noise.
"""

from __future__ import annotations

import pytest

from repro.analysis import SEVERITY_ERROR, lint_source
from repro.evaluation.runner import ResultCache, SimJob, SweepRunner
from repro.isa.assembler import assemble
from repro.observability.sinks import RingBufferSink
from repro.sim.system import System
from repro.workloads.random_programs import (
    MARK_END,
    MARK_START,
    generate_program,
)

from tests.conftest import make_config

SEEDS = tuple(range(50))

MAX_CYCLES = 2_000_000


def _run(source, *, trace=False, observe=False, num_cores=1):
    """Run ``source`` to completion, returning the finished system."""
    system = System(make_config(trace=trace, num_cores=num_cores))
    system.add_process(assemble(source, name="rand"), core_id=0)
    if observe:
        system.attach_observer(RingBufferSink())
    system.run(max_cycles=MAX_CYCLES)
    return system


def _state(system):
    """Everything a mode may not change: timing, counters, memory."""
    return (
        system.cycle,
        system.stats.as_dict(),
        dict(system.stats.marks),
        system.backing.snapshot(),
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_generator_is_deterministic_and_lint_clean(seed):
    source = generate_program(seed)
    assert source == generate_program(seed)
    findings = lint_source(source, name=f"rand{seed}")
    errors = [f for f in findings if f.severity == SEVERITY_ERROR]
    assert not errors, [f.render() for f in errors]


@pytest.mark.parametrize("seed", SEEDS)
def test_trace_modes_are_passive(seed):
    source = generate_program(seed)
    baseline = _state(_run(source))
    assert _state(_run(source, observe=True)) == baseline
    assert _state(_run(source, trace=True)) == baseline


@pytest.mark.parametrize("seed", SEEDS)
def test_smp_core0_matches_single_core_memory(seed):
    source = generate_program(seed)
    single = _run(source)
    smp = _run(source, num_cores=2)
    assert smp.backing.snapshot() == single.backing.snapshot()


@pytest.mark.parametrize("seed", SEEDS[::5])
def test_cached_runner_matches_fresh(seed, tmp_path):
    job = SimJob(
        config=make_config(),
        kernel=generate_program(seed),
        measurement="span",
        args=(MARK_START, MARK_END),
        name=f"rand{seed}",
    )
    fresh = SweepRunner(jobs=1).run([job])
    cache = ResultCache(str(tmp_path))
    cold = SweepRunner(jobs=1, cache=cache).run([job])
    warm_runner = SweepRunner(jobs=1, cache=cache)
    warm = warm_runner.run([job])
    assert fresh == cold == warm
    assert warm_runner.simulated == 0  # second pass resolved from cache
