"""Shared test helpers: one-call system construction and program runs."""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import pytest

from repro.common.config import (
    BusConfig,
    CSBConfig,
    MemoryHierarchyConfig,
    SystemConfig,
    UncachedBufferConfig,
)
from repro.common.stats import StatsCollector
from repro.isa.assembler import assemble
from repro.sim.system import System


def make_config(
    bus_kind: str = "multiplexed",
    bus_width: int = 8,
    cpu_ratio: int = 6,
    line_size: int = 64,
    combine_block: int = 8,
    turnaround: int = 0,
    min_addr_delay: int = 0,
    **kwargs,
) -> SystemConfig:
    """A SystemConfig with the knobs tests most often turn."""
    return SystemConfig(
        memory=MemoryHierarchyConfig.with_line_size(line_size),
        bus=BusConfig(
            kind=bus_kind,
            width_bytes=bus_width,
            cpu_ratio=cpu_ratio,
            turnaround=turnaround,
            min_addr_delay=min_addr_delay,
            max_burst_bytes=max(line_size, bus_width),
        ),
        uncached=UncachedBufferConfig(combine_block=combine_block),
        csb=CSBConfig(line_size=line_size),
        **kwargs,
    )


def run_asm(
    source: str,
    config: Optional[SystemConfig] = None,
    registers: Iterable[Tuple[str, int]] = (),
    warm: Iterable[int] = (),
    max_cycles: int = 2_000_000,
) -> System:
    """Assemble, run to completion, and return the finished system."""
    system = System(config or make_config())
    process = system.add_process(assemble(source))
    for name, value in registers:
        process.set_register(name, value)
    for address in warm:
        system.hierarchy.warm(address)
    system.run(max_cycles=max_cycles)
    return system


def registry_targets() -> dict:
    """The shipped-kernel lint registry, walked once: ``name -> target``.

    The single canonical walk behind every suite that sweeps "all
    registered kernels" (disassembler round-trips, fast-forward
    differentials, the lint gate, campaign manifests over the registry).
    """
    from repro.analysis.registry import lint_targets

    return {target.name: target for target in lint_targets()}


def registry_source_params() -> list:
    """Every registered kernel's source as a ``pytest.param`` id'd by
    its registry name, for ``@pytest.mark.parametrize``."""
    return [
        pytest.param(target.source, id=target.name)
        for target in registry_targets().values()
    ]


def smp_dephased_sources(
    num_cores: int,
    iterations: int,
    base: Optional[int] = None,
    n_doublewords: int = 8,
    **kwargs,
) -> list:
    """Per-core de-phased SMP CSB kernel sources for an N-core system.

    Encodes the repo-wide contention idiom in one place: every core gets
    a distinct entry stagger, backoff base, and backoff cap (identical
    bases would lock the deterministic cores' retry periods in phase and
    livelock — see :func:`repro.workloads.smp.smp_csb_kernel`), plus a
    distinct payload signature so device logs can attribute lines.
    """
    from repro.memory.layout import IO_COMBINING_BASE
    from repro.workloads.smp import DEFAULT_STAGGER_STEP, smp_csb_kernel

    if base is None:
        base = IO_COMBINING_BASE
    return [
        smp_csb_kernel(
            iterations,
            base,
            n_doublewords=n_doublewords,
            signature=(core + 1) << 16,
            stagger=core * DEFAULT_STAGGER_STEP,
            backoff_base=2 * core + 1,
            backoff_cap=64 * (core + 1),
            **kwargs,
        )
        for core in range(num_cores)
    ]


@pytest.fixture
def stats() -> StatsCollector:
    return StatsCollector()


@pytest.fixture(autouse=True)
def _hermetic_result_cache(tmp_path, monkeypatch):
    """Keep the csb-figures result cache out of the user's home directory:
    anything in the suite that falls back to the default cache location
    lands in this test's tmp dir instead."""
    monkeypatch.setenv("CSB_CACHE_DIR", str(tmp_path / "result-cache"))
