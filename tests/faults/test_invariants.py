"""Conservation-law invariants over the experiment registry.

Two bookkeeping identities must survive every workload — and every
injected fault, since faults redistribute cycles but may not create or
destroy them:

* the bus-cycle decomposition is exhaustive and disjoint:
  ``address + data + wait + turnaround + idle == total``
  (:meth:`BusCycleAccount.checks_out`), and the per-core busy cycles sum
  to the whole-run busy figure;
* the per-core sections of a :class:`MetricsSnapshot` sum to its global
  counters (transaction count, wire bytes, useful bytes).

The profiled figure experiments are checked through their registered
jobs; the extension studies (which do not decompose into independent
jobs) are covered by live representative systems, including faulted and
SMP ones.
"""

from __future__ import annotations

import pytest

from repro.evaluation.fault_sweep import fault_sweep_system
from repro.evaluation.panels import FIG3_PANELS, FIG4_PANELS
from repro.evaluation.smp_contention import smp_contention_system
from repro.observability.profile import profile_job, profile_jobs
from repro.observability.report import BusCycleReporter

PROFILED_EXPERIMENTS = (
    tuple(f"fig3{panel}" for panel in FIG3_PANELS)
    + tuple(f"fig4{panel}" for panel in FIG4_PANELS)
    + ("fig5a", "fig5b")
)


@pytest.mark.parametrize("experiment_id", PROFILED_EXPERIMENTS)
def test_every_profiled_experiment_conserves_bus_cycles(experiment_id):
    for scheme, job in profile_jobs(experiment_id):
        account = profile_job(job)
        assert account.checks_out(), (experiment_id, scheme, account)
        assert account.transactions > 0, (experiment_id, scheme)
        assert account.busy == account.address + account.data + account.wait
        assert 0.0 < account.utilization <= 1.0
        assert 0.0 < account.efficiency <= 1.0


def _observed_run(system, max_cycles=50_000_000):
    reporter = BusCycleReporter()
    system.attach_observer(reporter)
    system.run(max_cycles=max_cycles)
    return system, reporter.account(), reporter


def _assert_account(account):
    assert account.checks_out(), account
    assert account.transactions > 0
    assert min(
        account.address,
        account.data,
        account.wait,
        account.turnaround,
        account.idle,
    ) >= 0


def _assert_per_core_sums(system, account, reporter):
    snapshot = system.metrics()
    per_core = snapshot.per_core
    assert (
        sum(e["transactions"] for e in per_core.values())
        == snapshot.bus_transactions
        == account.transactions
    )
    assert sum(e["wire_bytes"] for e in per_core.values()) == sum(
        snapshot.wire_bytes_by_kind.values()
    )
    assert sum(e["useful_bytes"] for e in per_core.values()) == sum(
        r.useful_bytes for r in system.stats.transactions
    )
    # The reporter's per-core view agrees with the stats collector's.
    breakdown = reporter.core_breakdown()
    assert sum(e["busy_cycles"] for e in breakdown.values()) == (
        system.stats.bus_busy_cycles()
    )
    for core, entry in breakdown.items():
        assert per_core[core]["transactions"] == entry["transactions"]
        assert per_core[core]["wire_bytes"] == entry["wire_bytes"]


@pytest.mark.parametrize("mechanism", ("lock", "csb"))
@pytest.mark.parametrize("rate", (0.0, 0.1))
def test_fault_sweep_runs_conserve_bus_cycles(mechanism, rate):
    """Injected NACKs, stalls, and timeouts reshuffle the decomposition
    but the identity holds at every fault rate."""
    system, account, reporter = _observed_run(
        fault_sweep_system(mechanism, rate, seed=7)
    )
    _assert_account(account)
    _assert_per_core_sums(system, account, reporter)
    if rate > 0.0:
        assert system.metrics().fault_injections


@pytest.mark.parametrize("mechanism", ("lock", "csb"))
def test_smp_contention_conserves_bus_cycles(mechanism):
    system, account, reporter = _observed_run(
        smp_contention_system(mechanism, num_cores=2, iterations=3)
    )
    _assert_account(account)
    _assert_per_core_sums(system, account, reporter)
    cores = {c for c in system.metrics().per_core if c >= 0}
    assert cores == {0, 1}


def test_injected_stall_cycles_stay_inside_the_window():
    """A bus_stall fault stretches a transaction's wait bucket; the
    faulted account still decomposes exactly, and its busy share can
    only grow relative to the fault-free run of the same workload."""
    _, clean, _ = _observed_run(fault_sweep_system("lock", 0.0, seed=7))
    _, faulted, _ = _observed_run(fault_sweep_system("lock", 0.1, seed=7))
    _assert_account(clean)
    _assert_account(faulted)
    assert faulted.wait >= clean.wait
    assert faulted.total > clean.total
