"""The fault-sweep experiment: golden pin, determinism, and the paper's
graceful-degradation claim (the lock must degrade at least as fast as
the CSB at every nonzero fault rate)."""

from __future__ import annotations

import os

import pytest

from repro.common.errors import ConfigError
from repro.evaluation.experiments import EXPERIMENTS
from repro.evaluation.fault_sweep import (
    DEFAULT_RATES,
    fault_sweep_cycles,
    fault_sweep_table,
)

GOLDEN = os.path.join(
    os.path.dirname(__file__), "..", "..", "expected_results",
    "fault-sweep.csv",
)


def test_registered_and_matches_golden_csv():
    """One simulated table call pins registration, seed determinism, and
    the checked-in golden rows all at once."""
    assert "fault-sweep" in EXPERIMENTS
    with open(GOLDEN) as handle:
        expected = handle.read()
    assert fault_sweep_table().to_csv() == expected


def test_lock_degrades_at_least_as_fast_as_csb():
    lock0 = fault_sweep_cycles("lock", 0.0)
    csb0 = fault_sweep_cycles("csb", 0.0)
    for rate in DEFAULT_RATES[1:]:
        lock_slowdown = fault_sweep_cycles("lock", rate) / lock0
        csb_slowdown = fault_sweep_cycles("csb", rate) / csb0
        assert lock_slowdown > 1.0, rate
        assert csb_slowdown > 1.0, rate
        assert lock_slowdown >= csb_slowdown, (
            rate, lock_slowdown, csb_slowdown
        )


def test_sweep_is_seed_sensitive_but_seed_deterministic():
    rate = 0.1
    with_seed_7 = fault_sweep_cycles("lock", rate, seed=7)
    assert with_seed_7 == fault_sweep_cycles("lock", rate, seed=7)
    assert with_seed_7 != fault_sweep_cycles("lock", rate, seed=8)


def test_rates_must_start_at_zero():
    with pytest.raises(ConfigError):
        fault_sweep_table(rates=(0.05, 0.1))
    with pytest.raises(ConfigError):
        fault_sweep_table(rates=())


def test_unknown_mechanism_rejected():
    with pytest.raises(ConfigError):
        fault_sweep_cycles("tm", 0.0)
