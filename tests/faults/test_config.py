"""FaultConfig validation and FaultPlan stream determinism/independence."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.faults import FaultConfig, FaultPlan
from repro.faults.config import RATE_FIELDS


def test_default_config_is_disabled():
    assert not FaultConfig().enabled


@pytest.mark.parametrize("field", RATE_FIELDS)
def test_any_nonzero_rate_enables(field):
    assert FaultConfig(**{field: 0.5}).enabled


@pytest.mark.parametrize("bad", (-0.1, 1.5, "lots", None))
@pytest.mark.parametrize("field", RATE_FIELDS)
def test_rates_must_be_probabilities(field, bad):
    with pytest.raises(ConfigError):
        FaultConfig(**{field: bad})


@pytest.mark.parametrize(
    "field",
    ("bus_stall_cycles", "device_timeout_cycles", "refill_stall_cycles",
     "max_retries"),
)
def test_durations_must_be_positive(field):
    with pytest.raises(ConfigError):
        FaultConfig(**{field: 0})


def _draws(plan, n=200):
    """A reproducible transcript of every site's fire/duration decisions."""
    out = []
    for _ in range(n):
        out.append(
            (
                plan.bus_nack(),
                plan.bus_stall(),
                plan.device_timeout(),
                plan.link_drop(),
                plan.csb_spurious_abort(),
                plan.refill_stall(),
                plan.nic_tx_fault(),
                plan.dma_fault(),
            )
        )
    return out


def test_same_seed_same_schedule():
    config = FaultConfig(
        seed=11,
        bus_nack_rate=0.3,
        bus_stall_rate=0.2,
        device_timeout_rate=0.1,
        link_drop_rate=0.25,
        csb_spurious_abort_rate=0.15,
        refill_stall_rate=0.05,
        nic_tx_fault_rate=0.2,
        dma_fault_rate=0.1,
    )
    a, b = FaultPlan(config), FaultPlan(config)
    assert _draws(a) == _draws(b)
    assert a.injected == b.injected
    assert a.total_injected == sum(a.injected.values())


def test_different_seeds_differ():
    kwargs = dict(bus_nack_rate=0.3, link_drop_rate=0.3)
    a = FaultPlan(FaultConfig(seed=1, **kwargs))
    b = FaultPlan(FaultConfig(seed=2, **kwargs))
    assert _draws(a) != _draws(b)


def test_sites_draw_from_independent_streams():
    """Enabling a second site must not perturb the first site's schedule."""
    alone = FaultPlan(FaultConfig(seed=5, bus_nack_rate=0.3))
    both = FaultPlan(
        FaultConfig(seed=5, bus_nack_rate=0.3, csb_spurious_abort_rate=0.9)
    )
    schedule_alone = []
    schedule_both = []
    for _ in range(500):
        schedule_alone.append(alone.bus_nack())
        schedule_both.append(both.bus_nack())
        # Interleave heavy drawing on the other site.
        both.csb_spurious_abort()
        both.csb_spurious_abort()
    assert schedule_alone == schedule_both


def test_zero_rate_never_fires_and_never_draws():
    plan = FaultPlan(FaultConfig(seed=3))
    for _ in range(100):
        assert not plan.bus_nack()
        assert plan.bus_stall() == 0
        assert plan.device_timeout() == 0
        assert not plan.link_drop()
    assert plan.injected == {}
    assert plan.total_injected == 0
    assert plan._streams == {}  # rate 0: no stream is even created


def test_injected_counts_match_fires():
    plan = FaultPlan(FaultConfig(seed=9, bus_nack_rate=0.4))
    fires = sum(plan.bus_nack() for _ in range(1000))
    assert fires > 0
    assert plan.injected == {"bus_nack": fires}


def test_durations_come_from_config():
    config = FaultConfig(
        seed=2,
        bus_stall_rate=1.0,
        device_timeout_rate=1.0,
        refill_stall_rate=1.0,
        bus_stall_cycles=3,
        device_timeout_cycles=17,
        refill_stall_cycles=5,
    )
    plan = FaultPlan(config)
    assert plan.bus_stall() == 3
    assert plan.device_timeout() == 17
    assert plan.refill_stall() == 5
