"""Run-level fault determinism: a seed names a faulted run forever.

Same config (seed included) => byte-identical results; different seeds
=> different fault schedules but — because every injected fault is
masked by a retry path — the *functional* outcome (final memory, final
device contents) is seed-independent.
"""

from __future__ import annotations

import pytest

from repro.evaluation.fault_sweep import (
    DEFAULT_ITERATIONS,
    fault_profile,
    fault_sweep_system,
)

RATE = 0.1


def _finish(mechanism, rate, seed):
    system = fault_sweep_system(mechanism, rate, seed=seed)
    system.run(max_cycles=50_000_000)
    return system


def _full_state(system):
    snapshot = system.metrics()
    return (
        system.cycle,
        snapshot.counters,
        snapshot.fault_injections,
        system.backing.snapshot(),
        [(d.name, bytes(d._memory)) for d in system.devices],
    )


def _functional_state(system):
    return (
        system.backing.snapshot(),
        [(d.name, bytes(d._memory)) for d in system.devices],
    )


@pytest.mark.parametrize("mechanism", ("lock", "csb"))
def test_same_seed_is_byte_identical(mechanism):
    assert _full_state(_finish(mechanism, RATE, seed=7)) == _full_state(
        _finish(mechanism, RATE, seed=7)
    )


@pytest.mark.parametrize("mechanism", ("lock", "csb"))
def test_different_seeds_change_timing_not_outcome(mechanism):
    """The retry paths mask every injected fault: the final memory and
    device images match across seeds even though the fault schedules
    (and therefore the cycle counts) differ."""
    a = _finish(mechanism, RATE, seed=7)
    b = _finish(mechanism, RATE, seed=8)
    assert a.metrics().fault_injections != b.metrics().fault_injections
    assert _functional_state(a) == _functional_state(b)


@pytest.mark.parametrize("mechanism", ("lock", "csb"))
def test_faulted_run_matches_fault_free_outcome(mechanism):
    assert _functional_state(_finish(mechanism, RATE, seed=7)) == (
        _functional_state(_finish(mechanism, 0.0, seed=7))
    )


def test_injections_fire_and_are_reported():
    system = _finish("csb", RATE, seed=7)
    injected = system.metrics().fault_injections
    assert injected  # a 10% rate over ~40 accesses must fire
    assert set(injected) <= {
        "bus_nack",
        "bus_stall",
        "device_timeout",
        "csb_spurious_abort",
    }
    assert sum(injected.values()) == system.faults.total_injected
    # The counter taxonomy mirrors the plan's ledger for bus/CSB sites.
    counters = system.metrics().counters
    for site, count in injected.items():
        assert counters.get(f"faults.{site}", 0) == count


def test_spurious_aborts_are_retried_not_lost():
    """Every spuriously aborted flush is retried by software: the device
    still sees every payload exactly once per *successful* access."""
    system = _finish("csb", RATE, seed=7)
    injected = system.metrics().fault_injections
    assert injected.get("csb_spurious_abort", 0) > 0
    csb_dev = next(
        d for d in system.devices if d.region.name == "csb-dev"
    )
    # One 64B burst per completed access, plus one per masked abort retry
    # would still land exactly DEFAULT_ITERATIONS *final* payloads; the
    # log never shrinks, so at least one write per iteration arrived.
    assert len(csb_dev.log) >= DEFAULT_ITERATIONS


def test_fault_free_system_has_no_plan():
    system = fault_sweep_system("csb", 0.0)
    assert system.faults is None
    assert system.bus.faults is None
    system.run(max_cycles=50_000_000)
    assert system.metrics().fault_injections == {}


def test_profile_zero_rate_is_disabled():
    assert not fault_profile(0.0).enabled
    assert fault_profile(0.05).enabled
