"""Device retry/timeout/backoff state machines under injected faults.

Covers the three recovery paths the fault layer forces devices to grow —
NIC transmit retry, DMA re-run, link stop-and-wait ARQ — plus the
negative result that motivates them: on a fire-and-forget wire a single
lost packet hangs a polling receiver forever (pinned with a cycle-budget
:class:`DeadlockError` guard), while the ARQ link recovers and the same
exchange completes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import DeadlockError
from repro.devices.base import DeviceAlias
from repro.devices.dma import DmaEngine
from repro.devices.link import Link
from repro.devices.nic import NetworkInterface
from repro.evaluation.fault_sweep import fault_sweep_system
from repro.faults import FaultConfig, FaultPlan
from repro.isa.assembler import assemble
from repro.memory.backing import BackingStore
from repro.memory.layout import (
    IO_COMBINING_BASE,
    IO_UNCACHED_BASE,
    PageAttr,
    Region,
)
from repro.sim.cluster import Cluster
from repro.sim.system import System
from repro.workloads.lockbench import DEFAULT_LOCK_ADDR
from repro.workloads.pingpong import ping_kernel, pong_kernel

NIC_REGION = Region(IO_UNCACHED_BASE, 16 * 1024, PageAttr.UNCACHED, "nic")
DMA_REGION = Region(
    IO_UNCACHED_BASE + 0x20000, 0x1000, PageAttr.UNCACHED, "dma"
)


class ScriptedPlan:
    """FaultPlan stand-in with a scripted fire sequence per site.

    Gives the protocol tests cycle-exact control over *which* attempt
    fails; the seeded-plan tests elsewhere cover the probabilistic path.
    """

    def __init__(self, config: FaultConfig, **scripts) -> None:
        self.config = config
        self._scripts = {site: deque(seq) for site, seq in scripts.items()}
        self.injected = {}

    def _fires(self, site: str) -> bool:
        queue = self._scripts.get(site)
        fired = bool(queue) and queue.popleft()
        if fired:
            self.injected[site] = self.injected.get(site, 0) + 1
        return fired

    def nic_tx_fault(self) -> bool:
        return self._fires("nic_tx_fault")

    def dma_fault(self) -> bool:
        return self._fires("dma_fault")

    def link_drop(self) -> bool:
        return self._fires("link_drop")


# -- NIC transmit retry -------------------------------------------------------


def _nic(plan=None, tx_cycles=8):
    nic = NetworkInterface(NIC_REGION, tx_cycles=tx_cycles)
    nic.faults = plan
    return nic


PAYLOAD = bytes(range(64))


def test_nic_retries_failed_serialization_with_backoff():
    plan = ScriptedPlan(
        FaultConfig(seed=0, nic_tx_fault_rate=0.5), nic_tx_fault=[True]
    )
    nic = _nic(plan)
    nic.handle_write(0, PAYLOAD)  # inline packet
    for cycle in range(64):
        nic.tick(cycle)
    assert nic.tx_retries == 1
    assert nic.tx_failed == 0
    assert len(nic.sent) == 1
    # The retry waited out the exponential hold-off: 2 * tx_cycles after
    # the failed attempt at cycle 0.
    assert nic.sent[0].sent_at == 2 * nic.tx_cycles
    assert nic.sent[0].payload == PAYLOAD


def test_nic_abandons_after_retry_budget():
    plan = ScriptedPlan(
        FaultConfig(seed=0, nic_tx_fault_rate=0.5, max_retries=3),
        nic_tx_fault=[True] * 10,
    )
    nic = _nic(plan)
    nic.handle_write(0, PAYLOAD)
    for cycle in range(400):
        nic.tick(cycle)
    assert nic.sent == []
    assert nic.tx_failed == 1
    assert nic.tx_retries == 2  # attempts 1 and 2 retried, 3rd gave up
    assert nic.pending == 0


def test_nic_retry_preserves_packet_order():
    plan = ScriptedPlan(
        FaultConfig(seed=0, nic_tx_fault_rate=0.5), nic_tx_fault=[True]
    )
    nic = _nic(plan)
    first = bytes([1]) * 64
    second = bytes([2]) * 64
    nic.handle_write(0, first)
    nic.handle_write(0, second)
    for cycle in range(128):
        nic.tick(cycle)
    assert [p.payload for p in nic.sent] == [first, second]


def test_nic_fault_free_path_untouched_by_plan_attribute():
    nic = _nic(plan=None)
    nic.handle_write(0, PAYLOAD)
    for cycle in range(32):
        nic.tick(cycle)
    assert len(nic.sent) == 1
    assert nic.tx_retries == 0 and nic.tx_failed == 0


# -- DMA re-run ---------------------------------------------------------------


def _dma(plan, nic=None):
    memory = BackingStore()
    memory.write_bytes(0x100, bytes(range(64)))
    dma = DmaEngine(DMA_REGION, memory, nic=nic)
    dma.faults = plan
    return dma


def _program(dma, src=0x100, length=64):
    dma.handle_write(0x00, src.to_bytes(8, "big"))
    dma.handle_write(0x08, length.to_bytes(8, "big"))
    dma.handle_write(0x10, (0).to_bytes(8, "big"))  # doorbell: use SRC/LEN


def test_dma_reruns_failed_transfer_with_backoff():
    plan = ScriptedPlan(
        FaultConfig(seed=0, dma_fault_rate=0.5), dma_fault=[True]
    )
    nic = _nic()
    dma = _dma(plan, nic=nic)
    dma.tick(0)
    _program(dma)
    clean_done = dma.setup_cycles + dma.cycles_per_line  # one 64B line
    for cycle in range(1, 600):
        dma.tick(cycle)
    assert dma.retries == 1
    assert dma.failed == 0
    assert len(dma.transfers) == 1
    # Re-run from scratch after a doubled setup hold-off: strictly later
    # than the clean completion.
    assert dma.transfers[0][2] > clean_done
    assert not dma.busy
    assert nic.pending == 1  # the payload still reached the NIC exactly once


def test_dma_abandons_after_retry_budget():
    plan = ScriptedPlan(
        FaultConfig(seed=0, dma_fault_rate=0.5, max_retries=2),
        dma_fault=[True] * 5,
    )
    dma = _dma(plan)
    dma.tick(0)
    _program(dma)
    for cycle in range(1, 600):
        dma.tick(cycle)
    assert dma.failed == 1
    assert dma.retries == 1
    assert dma.transfers == []
    assert not dma.busy  # the engine is usable again after giving up


# -- Link stop-and-wait ARQ ---------------------------------------------------

LATENCY = 4


def _linked_pair(plan):
    nic_a = _nic()
    nic_b = NetworkInterface(NIC_REGION)
    link = Link(nic_a, nic_b, latency=LATENCY)
    nic_a.faults = plan
    return link, nic_a, nic_b


def _drive(link, nics, cycles):
    for cycle in range(cycles):
        link.tick(cycle)
        for nic in nics:
            nic.tick(cycle)


def test_link_retransmits_dropped_data_frame():
    plan = ScriptedPlan(
        FaultConfig(seed=0, link_drop_rate=0.5), link_drop=[True]
    )
    link, nic_a, nic_b = _linked_pair(plan)
    nic_a.handle_write(0, PAYLOAD)
    _drive(link, (nic_a, nic_b), 200)
    assert link.wire_drops == 1
    assert link.retransmits == 1
    assert link.delivered == 1
    assert link.duplicates == 0
    assert link.lost == 0
    assert nic_b.rx_pending == 1
    assert link.in_flight == 0


def test_link_dropped_ack_causes_duplicate_not_double_delivery():
    # Draw order: data frame (kept), its ack (dropped), the retransmitted
    # data (kept), its ack (kept).
    plan = ScriptedPlan(
        FaultConfig(seed=0, link_drop_rate=0.5),
        link_drop=[False, True, False, False],
    )
    link, nic_a, nic_b = _linked_pair(plan)
    nic_a.handle_write(0, PAYLOAD)
    _drive(link, (nic_a, nic_b), 200)
    assert link.wire_drops == 1
    assert link.retransmits == 1
    assert link.duplicates == 1
    # Exactly-once delivery despite the duplicate on the wire.
    assert link.delivered == 1
    assert nic_b.received_total == 1
    assert link.in_flight == 0


def test_link_abandons_packet_after_retry_budget_and_recovers():
    plan = ScriptedPlan(
        FaultConfig(seed=0, link_drop_rate=0.5, max_retries=3),
        link_drop=[True] * 3,  # initial attempt + retries 1 and 2 all drop
    )
    link, nic_a, nic_b = _linked_pair(plan)
    nic_a.handle_write(0, bytes([1]) * 64)
    nic_a.handle_write(0, bytes([2]) * 64)
    _drive(link, (nic_a, nic_b), 600)
    assert link.lost == 1
    assert link.wire_drops == 3
    # The sequence number advanced past the abandoned packet, so the
    # second one still gets through.
    assert link.delivered == 1
    assert nic_b.rx_pending == 1
    assert nic_b._rx_queue[0] == bytes([2]) * 64
    assert link.in_flight == 0


def test_lossless_link_never_engages_arq():
    link, nic_a, nic_b = _linked_pair(plan=None)
    nic_a.handle_write(0, PAYLOAD)
    _drive(link, (nic_a, nic_b), 64)
    assert link.delivered == 1
    assert link.retransmits == 0 and link.wire_drops == 0
    assert nic_b.rx_pending == 1


# -- Device ack-timeout bookkeeping ------------------------------------------


def test_device_timeout_lands_on_the_targeted_device():
    system = fault_sweep_system("lock", 0.1, seed=7)
    system.run(max_cycles=50_000_000)
    injected = system.metrics().fault_injections.get("device_timeout", 0)
    assert injected > 0
    delays = sum(d.ack_delays for d in system.devices)
    cycles = sum(d.ack_delay_cycles for d in system.devices)
    assert delays == injected
    assert cycles == injected * system.config.faults.device_timeout_cycles


# -- The hang the retry machinery exists to prevent ---------------------------


def _pingpong_cluster(faults=None, latency=6):
    def node(node_faults):
        config = SystemConfig()
        if node_faults is not None:
            config = replace(config, faults=node_faults)
        system = System(config)
        nic = NetworkInterface(NIC_REGION)
        system.attach_device(nic)
        system.attach_device(
            DeviceAlias(
                Region(
                    IO_COMBINING_BASE,
                    16 * 1024,
                    PageAttr.UNCACHED_COMBINING,
                    "nic-tx",
                ),
                nic,
            )
        )
        system.hierarchy.warm(DEFAULT_LOCK_ADDR)
        return system, nic

    node_a, nic_a = node(faults)
    node_b, nic_b = node(None)
    cluster = Cluster([node_a, node_b])
    link = cluster.connect(Link(nic_a, nic_b, latency=latency))
    node_a.add_process(
        assemble(
            ping_kernel("csb", 4, IO_UNCACHED_BASE, IO_COMBINING_BASE),
            name="ping",
        )
    )
    node_b.add_process(
        assemble(
            pong_kernel("csb", 4, IO_UNCACHED_BASE, IO_COMBINING_BASE),
            name="pong",
        )
    )
    return cluster, link, nic_a, nic_b


def test_lost_packet_hangs_fire_and_forget_pingpong():
    """Without ARQ there is no recovery: drop the one in-flight packet of
    a lossless (fire-and-forget) wire and both polling nodes spin until
    the cycle budget trips."""
    cluster, link, _, _ = _pingpong_cluster(faults=None)
    while not link._in_flight:
        cluster.step()
    link._in_flight.clear()  # the wire eats the packet
    with pytest.raises(DeadlockError):
        cluster.run(max_cycles=200_000)


def test_arq_link_recovers_the_same_exchange():
    """Same ping-pong, but on a lossy wire with the ARQ engaged: the
    first data frame drops (seed 13 fires on its first draw at rate 0.4)
    and the exchange still completes exactly once per side."""
    faults = FaultConfig(seed=13, link_drop_rate=0.4)
    cluster, link, nic_a, nic_b = _pingpong_cluster(faults=faults)
    cluster.run(max_cycles=2_000_000)
    assert link.wire_drops >= 1
    assert link.retransmits >= 1
    assert nic_a.received_total == 1
    assert nic_b.received_total == 1
    assert link.in_flight == 0


def test_arq_pingpong_is_seed_deterministic():
    def total_cycles():
        cluster, _, _, _ = _pingpong_cluster(
            faults=FaultConfig(seed=13, link_drop_rate=0.4)
        )
        cluster.run(max_cycles=2_000_000)
        return cluster.cycle

    assert total_cycles() == total_cycles()


def test_plan_reaches_link_through_nic():
    faults = FaultConfig(seed=13, link_drop_rate=0.4)
    cluster, link, nic_a, _ = _pingpong_cluster(faults=faults)
    assert nic_a.faults is not None
    assert link._plan() is nic_a.faults
