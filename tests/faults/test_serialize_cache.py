"""Fault configs must travel with the system config and key the cache.

The content-addressed result cache hashes the *whole* serialized
SystemConfig; these tests pin the two properties that make cached fault
campaigns safe: the faults section round-trips losslessly, and any
change to it (enabling, reseeding, re-rating) yields a distinct job key —
a faulted run can never alias a fault-free one.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.common.serialize import (
    config_from_dict,
    config_from_json,
    config_to_dict,
    config_to_json,
)
from repro.evaluation.runner import SimJob, job_key
from repro.faults import FaultConfig

FAULTED = FaultConfig(
    seed=7,
    bus_nack_rate=0.1,
    bus_stall_rate=0.05,
    bus_stall_cycles=4,
    device_timeout_rate=0.02,
    link_drop_rate=0.3,
    max_retries=5,
)


def test_faults_section_round_trips():
    config = SystemConfig(faults=FAULTED)
    rebuilt = config_from_dict(config_to_dict(config))
    assert rebuilt == config
    assert rebuilt.faults == FAULTED


def test_default_faults_round_trip_disabled():
    rebuilt = config_from_dict(config_to_dict(SystemConfig()))
    assert rebuilt.faults == FaultConfig()
    assert not rebuilt.faults.enabled


def test_json_round_trip():
    config = SystemConfig(faults=FAULTED)
    assert config_from_json(config_to_json(config)) == config


def test_unknown_fault_field_rejected():
    data = config_to_dict(SystemConfig())
    data["faults"]["gamma_ray_rate"] = 0.5
    with pytest.raises(ConfigError):
        config_from_dict(data)


def test_invalid_fault_rate_rejected_on_the_way_in():
    data = config_to_dict(SystemConfig())
    data["faults"]["bus_nack_rate"] = 2.0
    with pytest.raises(ConfigError):
        config_from_dict(data)


def _job(faults):
    return SimJob(
        config=SystemConfig(faults=faults),
        kernel="halt",
        measurement="span",
        args=("a", "b"),
        name="probe",
    )


def test_job_key_is_stable():
    job = _job(FAULTED)
    assert job_key(job) == job_key(job)
    assert job_key(job) == job_key(_job(FAULTED))


def test_job_key_never_aliases_fault_campaigns():
    """Off, seed 7, seed 8, and a different rate: four distinct keys."""
    keys = {
        job_key(_job(FaultConfig())),
        job_key(_job(replace(FAULTED, seed=7))),
        job_key(_job(replace(FAULTED, seed=8))),
        job_key(_job(replace(FAULTED, bus_nack_rate=0.2))),
    }
    assert len(keys) == 4
