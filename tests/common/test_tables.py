"""Table rendering and access."""

import pytest

from repro.common.tables import Table


class TestConstruction:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_row_arity_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_add_mapping_fills_missing_with_none(self):
        table = Table(["a", "b"])
        table.add_mapping({"a": 1})
        assert table.rows == [[1, None]]


class TestRendering:
    def test_render_aligns_columns(self):
        table = Table(["scheme", "16"], title="t")
        table.add_row("none", 4.0)
        table.add_row("combine16", 5.25)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "scheme" in lines[1]
        # All data lines are the same width (right-justified columns).
        assert len(lines[3]) == len(lines[4])
        assert "5.25" in text

    def test_precision(self):
        table = Table(["x"])
        table.add_row(1 / 3)
        assert "0.333" in table.render(precision=3)
        assert "0.33\n" in table.render(precision=2)

    def test_none_renders_blank(self):
        table = Table(["x", "y"])
        table.add_row(None, 1)
        assert table.render().splitlines()[-1].strip().startswith("1") or (
            "1" in table.render()
        )

    def test_csv(self):
        table = Table(["a", "b"])
        table.add_row(1, "x")
        assert table.to_csv() == "a,b\n1,x\n"


class TestAccess:
    def test_column(self):
        table = Table(["k", "v"])
        table.add_row("x", 1)
        table.add_row("y", 2)
        assert table.column("v") == [1, 2]

    def test_lookup(self):
        table = Table(["scheme", "bw"])
        table.add_row("none", 4.0)
        table.add_row("csb", 7.11)
        assert table.lookup("scheme", "csb", "bw") == 7.11
        assert table.lookup("scheme", "absent", "bw") is None

    def test_str_is_render(self):
        table = Table(["a"])
        table.add_row(1)
        assert str(table) == table.render()
