"""Latency helpers: histogram, reservoir, and transaction condensation."""

import random

import pytest

from repro.common.stats import (
    LatencyHistogram,
    ReservoirSample,
    StatsCollector,
    TAIL_PERCENTILES,
    TransactionRecord,
    percentile_label,
)


class TestPercentileLabel:
    def test_integral_percentiles_drop_the_decimal(self):
        assert percentile_label(50.0) == "p50"
        assert percentile_label(99.0) == "p99"

    def test_tenths_are_kept(self):
        assert percentile_label(99.9) == "p99.9"

    def test_tail_set_is_stable(self):
        assert [percentile_label(p) for p in TAIL_PERCENTILES] == [
            "p50",
            "p90",
            "p95",
            "p99",
            "p99.9",
        ]


class TestLatencyHistogram:
    def test_small_values_are_exact(self):
        histogram = LatencyHistogram()
        histogram.extend([5, 1, 3, 2, 4])
        assert histogram.percentile(50) == 3
        assert histogram.percentile(100) == 5
        assert histogram.mean == 3.0
        assert histogram.max == 5

    def test_matches_nearest_rank_on_sorted_data(self):
        values = list(range(1, 101))
        histogram = LatencyHistogram()
        histogram.extend(values)
        # Nearest rank: p-th percentile of 1..100 is exactly p.
        for p in (1, 25, 50, 90, 99, 100):
            assert histogram.percentile(p) == p

    def test_large_values_quantize_with_bounded_error(self):
        histogram = LatencyHistogram(precision_bits=10)
        value = 1_234_567
        histogram.add(value)
        got = histogram.percentile(50)
        assert got <= value
        assert (value - got) / value < 2 ** (1 - 10)

    def test_bucket_count_stays_bounded(self):
        histogram = LatencyHistogram(precision_bits=4)
        rng = random.Random(7)
        for _ in range(20_000):
            histogram.add(rng.randrange(1, 1_000_000_000))
        # 4 significant bits -> at most 16 buckets per power of two.
        assert len(histogram.buckets) < 16 * 31
        assert histogram.count == 20_000

    def test_percentiles_dict_shape(self):
        histogram = LatencyHistogram()
        assert histogram.percentiles() == {}
        histogram.add(10)
        assert histogram.percentiles() == {
            "p50": 10,
            "p90": 10,
            "p95": 10,
            "p99": 10,
            "p99.9": 10,
        }

    def test_rejects_negative_and_empty(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.add(-1)
        with pytest.raises(ValueError):
            histogram.percentile(50)
        histogram.add(1)
        with pytest.raises(ValueError):
            histogram.percentile(0)
        with pytest.raises(ValueError):
            histogram.percentile(101)


class TestReservoirSample:
    def test_exact_below_capacity(self):
        reservoir = ReservoirSample(capacity=16)
        for value in [9, 1, 5, 3]:
            reservoir.add(value)
        assert sorted(reservoir.values) == [1, 3, 5, 9]
        assert reservoir.percentile(50) == 3
        assert reservoir.percentile(100) == 9

    def test_seeded_and_deterministic(self):
        def fill(seed):
            reservoir = ReservoirSample(capacity=8, seed=seed)
            for value in range(1000):
                reservoir.add(value)
            return reservoir.values

        assert fill(3) == fill(3)
        assert fill(3) != fill(4)

    def test_capacity_bound_holds(self):
        reservoir = ReservoirSample(capacity=8, seed=0)
        for value in range(10_000):
            reservoir.add(value)
        assert len(reservoir.values) == 8
        assert reservoir.count == 10_000

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            ReservoirSample().percentile(50)


def _record(start, end, size, kind="uncached_store", core=0, useful=None):
    return TransactionRecord(
        start_cycle=start,
        end_cycle=end,
        address=0x3000_0000,
        size=size,
        useful_bytes=size if useful is None else useful,
        kind=kind,
        burst=size > 8,
        core_id=core,
    )


def _populate(stats):
    stats.record_transaction(_record(10, 12, 8, core=0))
    stats.record_transaction(_record(20, 28, 64, kind="csb_flush", core=1))
    stats.record_transaction(_record(40, 44, 32, kind="refill", core=-1))


class TestCondenseTransactions:
    def test_analysis_is_identical_after_condensing(self):
        live = StatsCollector()
        condensed = StatsCollector()
        _populate(live)
        _populate(condensed)
        assert condensed.condense_transactions() == 3
        assert condensed.transactions == []
        for method in (
            "size_histogram",
            "bytes_by_kind",
            "transactions_by_core",
            "bus_busy_cycles",
            "bus_utilization",
            "efficiency",
        ):
            assert getattr(condensed, method)() == getattr(live, method)()

    def test_condense_merges_with_later_records(self):
        stats = StatsCollector()
        _populate(stats)
        stats.condense_transactions()
        stats.record_transaction(_record(50, 52, 8, core=0))
        assert stats.transaction_count == 4
        assert stats.transactions_by_core()[0]["transactions"] == 2
        assert stats.size_histogram()[8] == 2

    def test_repeated_condense_is_idempotent(self):
        stats = StatsCollector()
        _populate(stats)
        stats.condense_transactions()
        assert stats.condense_transactions() == 0
        assert stats.transaction_count == 3

    def test_transaction_count_without_condensing(self):
        stats = StatsCollector()
        assert stats.transaction_count == 0
        _populate(stats)
        assert stats.transaction_count == 3
