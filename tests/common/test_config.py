"""Configuration validation and derivation."""

import pytest

from repro.common.config import (
    BusConfig,
    CacheConfig,
    CoreConfig,
    CSBConfig,
    MemoryHierarchyConfig,
    SystemConfig,
    UncachedBufferConfig,
)
from repro.common.errors import ConfigError


class TestCoreConfig:
    def test_defaults_match_paper(self):
        core = CoreConfig()
        assert core.dispatch_width == 4
        assert core.retire_width == 4
        assert core.int_units == 2
        assert core.fp_units == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dispatch_width": 0},
            {"retire_width": 0},
            {"int_units": 0},
            {"rob_entries": 2},
            {"int_latency": 0},
            {"branch_mispredict_penalty": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            CoreConfig(**kwargs)


class TestCacheConfig:
    def test_num_sets(self):
        cache = CacheConfig(16 * 1024, 64, 2, 1)
        assert cache.num_sets == 128

    def test_rejects_non_pow2_size(self):
        with pytest.raises(ConfigError):
            CacheConfig(10_000, 64, 2, 1)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig(16 * 1024, 64, 3, 1)


class TestBusConfig:
    def test_data_beats(self):
        bus = BusConfig(width_bytes=8)
        assert bus.data_beats(8) == 1
        assert bus.data_beats(64) == 8
        assert bus.data_beats(1) == 1
        wide = BusConfig(kind="split", width_bytes=16)
        assert wide.data_beats(8) == 1  # wasted width still costs a beat
        assert wide.data_beats(64) == 4

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            BusConfig(kind="token-ring")

    def test_rejects_burst_below_width(self):
        with pytest.raises(ConfigError):
            BusConfig(width_bytes=16, max_burst_bytes=8)


class TestUncachedBufferConfig:
    def test_no_combining_flag(self):
        assert not UncachedBufferConfig(combine_block=8).combining
        assert UncachedBufferConfig(combine_block=16).combining

    def test_rejects_sub_doubleword_block(self):
        with pytest.raises(ConfigError):
            UncachedBufferConfig(combine_block=4)


class TestCSBConfig:
    def test_rejects_three_line_buffers(self):
        with pytest.raises(ConfigError):
            CSBConfig(num_line_buffers=3)


class TestSystemConfig:
    def test_default_is_consistent(self):
        config = SystemConfig()
        assert config.csb.line_size == config.memory.line_size

    def test_rejects_csb_line_mismatch(self):
        with pytest.raises(ConfigError):
            SystemConfig(csb=CSBConfig(line_size=32))

    def test_rejects_bus_without_line_bursts(self):
        with pytest.raises(ConfigError):
            SystemConfig(bus=BusConfig(max_burst_bytes=32))

    def test_with_line_size_rederives_everything(self):
        config = SystemConfig().with_line_size(128)
        assert config.memory.line_size == 128
        assert config.csb.line_size == 128
        assert config.bus.max_burst_bytes >= 128

    def test_with_line_size_clamps_combining_block(self):
        base = SystemConfig(
            memory=MemoryHierarchyConfig.with_line_size(64),
            uncached=UncachedBufferConfig(combine_block=64),
        )
        derived = base.with_line_size(32)
        assert derived.uncached.combine_block == 32
