"""Bus-activity analysis on the stats collector."""

import pytest

from repro.common.stats import StatsCollector, TransactionRecord


def record(start, end, size, kind="uncached_store", useful=None):
    return TransactionRecord(
        start_cycle=start,
        end_cycle=end,
        address=0x1000,
        size=size,
        useful_bytes=size if useful is None else useful,
        kind=kind,
        burst=size > 8,
    )


@pytest.fixture
def busy_stats():
    stats = StatsCollector()
    stats.record_transaction(record(0, 1, 8))
    stats.record_transaction(record(2, 3, 8))
    stats.record_transaction(record(10, 18, 64, kind="csb_flush", useful=16))
    stats.record_transaction(record(20, 28, 64, kind="refill"))
    return stats


class TestHistograms:
    def test_size_histogram_all(self, busy_stats):
        assert busy_stats.size_histogram() == {8: 2, 64: 2}

    def test_size_histogram_by_kind(self, busy_stats):
        assert busy_stats.size_histogram("uncached_store") == {8: 2}
        assert busy_stats.size_histogram("csb_flush") == {64: 1}

    def test_bytes_by_kind(self, busy_stats):
        assert busy_stats.bytes_by_kind() == {
            "csb_flush": 64,
            "refill": 64,
            "uncached_store": 16,
        }


class TestUtilization:
    def test_busy_cycles(self, busy_stats):
        assert busy_stats.bus_busy_cycles() == 2 + 2 + 9 + 9

    def test_utilization_over_span(self, busy_stats):
        # Span 0..28 inclusive = 29 cycles, 22 busy.
        assert busy_stats.bus_utilization() == pytest.approx(22 / 29)

    def test_empty_collector(self):
        stats = StatsCollector()
        assert stats.bus_utilization() == 0.0
        assert stats.efficiency() == 0.0

    def test_efficiency_counts_padding(self, busy_stats):
        # 8+8+16+64 useful over 8+8+64+64 wire.
        assert busy_stats.efficiency() == pytest.approx(96 / 144)


class TestEndToEnd:
    def test_csb_histogram_is_all_lines(self):
        from repro import System, assemble
        from repro.workloads import store_kernel_csb
        from tests.conftest import make_config

        system = System(make_config())
        system.add_process(assemble(store_kernel_csb(512, 64)))
        system.run()
        assert system.stats.size_histogram() == {64: 8}
        assert system.stats.efficiency() == 1.0

    def test_noncombining_histogram_is_all_doublewords(self):
        from repro import System, assemble
        from repro.workloads import store_kernel_uncached
        from tests.conftest import make_config

        system = System(make_config(combine_block=8))
        system.add_process(assemble(store_kernel_uncached(128)))
        system.run()
        assert system.stats.size_histogram() == {8: 16}

    def test_partial_csb_line_lowers_efficiency(self):
        from repro import System, assemble
        from repro.workloads import store_kernel_csb
        from tests.conftest import make_config

        system = System(make_config())
        system.add_process(assemble(store_kernel_csb(16, 64)))
        system.run()
        assert system.stats.efficiency() == pytest.approx(16 / 64)
