"""Alignment and block arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitops import (
    align_down,
    align_up,
    block_base,
    block_offset,
    decompose_aligned,
    is_aligned,
    is_power_of_two,
)
from repro.common.errors import AlignmentError


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for exp in range(20):
            assert is_power_of_two(1 << exp)

    def test_rejects_non_powers(self):
        for value in (0, -1, -8, 3, 6, 12, 100):
            assert not is_power_of_two(value)


class TestAlign:
    def test_align_down(self):
        assert align_down(0x47, 16) == 0x40
        assert align_down(0x40, 16) == 0x40
        assert align_down(7, 8) == 0

    def test_align_up(self):
        assert align_up(0x41, 16) == 0x50
        assert align_up(0x40, 16) == 0x40
        assert align_up(0, 8) == 0

    def test_is_aligned(self):
        assert is_aligned(64, 64)
        assert not is_aligned(65, 64)

    def test_rejects_non_power_alignment(self):
        with pytest.raises(AlignmentError):
            align_down(10, 3)
        with pytest.raises(AlignmentError):
            is_aligned(10, 0)

    def test_block_helpers(self):
        assert block_base(0x1234, 64) == 0x1200
        assert block_offset(0x1234, 64) == 0x34


class TestDecompose:
    def test_aligned_run_single_piece(self):
        assert decompose_aligned(0, 64, 64) == [(0, 64)]

    def test_paper_style_fragmentation(self):
        # 3 doublewords at offset 0: one 16-byte and one 8-byte transaction.
        assert decompose_aligned(0, 24, 64) == [(0, 16), (16, 8)]

    def test_misaligned_start(self):
        assert decompose_aligned(8, 24, 64) == [(8, 8), (16, 16)]

    def test_respects_max_size(self):
        assert decompose_aligned(0, 64, 16) == [(0, 16), (16, 16), (32, 16), (48, 16)]

    def test_seven_doublewords_needs_three_transactions(self):
        # The fig5 effect: 7 dw = 32+16+8, 8 dw = one burst.
        assert decompose_aligned(0, 56, 64) == [(0, 32), (32, 16), (48, 8)]
        assert decompose_aligned(0, 64, 64) == [(0, 64)]

    def test_empty_run(self):
        assert decompose_aligned(128, 0, 64) == []

    def test_negative_length_rejected(self):
        with pytest.raises(AlignmentError):
            decompose_aligned(0, -8, 64)

    @given(
        address=st.integers(min_value=0, max_value=1 << 20),
        length=st.integers(min_value=0, max_value=512),
        max_exp=st.integers(min_value=0, max_value=8),
    )
    def test_property_exact_cover(self, address, length, max_exp):
        max_size = 1 << max_exp
        pieces = decompose_aligned(address, length, max_size)
        # Pieces tile [address, address+length) exactly, in order.
        cursor = address
        for piece_addr, piece_size in pieces:
            assert piece_addr == cursor
            assert is_power_of_two(piece_size)
            assert piece_size <= max_size
            assert piece_addr % piece_size == 0  # natural alignment
            cursor += piece_size
        assert cursor == address + length

    @given(
        address=st.integers(min_value=0, max_value=1 << 20),
        length=st.integers(min_value=1, max_value=512),
    )
    def test_property_greedy_is_minimal_for_pow2_runs(self, address, length):
        # An aligned power-of-two run always becomes one transaction.
        if is_power_of_two(length) and address % length == 0:
            assert decompose_aligned(address, length, length) == [(address, length)]
