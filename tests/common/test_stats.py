"""Counters, marks, and the paper-style bandwidth window."""

import pytest

from repro.common.stats import (
    BandwidthWindow,
    Counter,
    StatsCollector,
    TransactionRecord,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)


class TestBandwidthWindow:
    def test_empty_window(self):
        window = BandwidthWindow()
        assert window.cycles == 0
        assert window.bytes_per_cycle == 0.0

    def test_single_transaction(self):
        window = BandwidthWindow()
        window.open(10)
        window.close(11, 8)
        assert window.cycles == 2
        assert window.bytes_per_cycle == 4.0

    def test_window_spans_first_open_to_last_close(self):
        window = BandwidthWindow()
        window.open(0)
        window.close(1, 8)
        window.open(2)
        window.close(3, 8)
        # 16 bytes over cycles 0..3 inclusive -> 4 bytes/cycle.
        assert window.cycles == 4
        assert window.bytes_per_cycle == 4.0

    def test_close_before_open_rejected(self):
        with pytest.raises(ValueError):
            BandwidthWindow().close(0, 8)

    def test_turnaround_after_last_txn_not_counted(self):
        # Three 2-cycle transactions with a turnaround between them start
        # at 0, 3, 6: the window is 0..7 = 8 cycles (paper's "three
        # transactions take 8 cycles").
        window = BandwidthWindow()
        for start in (0, 3, 6):
            window.open(start)
            window.close(start + 1, 8)
        assert window.cycles == 8


class TestStatsCollector:
    def test_counter_reuse(self, stats: StatsCollector):
        stats.bump("a")
        stats.bump("a", 2)
        assert stats.get("a") == 3

    def test_known_but_unbumped_counter_reads_zero(self, stats: StatsCollector):
        assert stats.get("csb.flushes") == 0
        assert stats["bus.transactions"] == 0

    def test_unknown_counter_read_raises_with_known_names(
        self, stats: StatsCollector
    ):
        with pytest.raises(KeyError, match=r"csb\.flushes"):
            stats.get("csb.flushs")  # typo'd lookup must fail loudly
        with pytest.raises(KeyError):
            stats["missing"]

    def test_ad_hoc_counters_stay_readable_once_bumped(
        self, stats: StatsCollector
    ):
        stats.bump("experiment.custom", 7)
        assert stats.get("experiment.custom") == 7

    def test_marks_and_span(self, stats: StatsCollector):
        stats.mark("start", 100)
        stats.mark("end", 142)
        assert stats.span("start", "end") == 42

    def test_span_missing_mark(self, stats: StatsCollector):
        stats.mark("start", 0)
        with pytest.raises(KeyError):
            stats.span("start", "never")

    def test_uncached_store_window_tracks_stores_and_flushes(
        self, stats: StatsCollector
    ):
        stats.record_transaction(
            TransactionRecord(0, 1, 0x100, 8, 8, "uncached_store", False)
        )
        stats.record_transaction(
            TransactionRecord(2, 10, 0x140, 64, 16, "csb_flush", True)
        )
        window = stats.uncached_store_window
        assert window.transactions == 2
        # Useful bytes, not wire bytes: 8 + 16.
        assert window.total_bytes == 24
        assert window.cycles == 11

    def test_loads_do_not_enter_store_window(self, stats: StatsCollector):
        stats.record_transaction(
            TransactionRecord(0, 5, 0x100, 8, 8, "uncached_load", False)
        )
        assert stats.uncached_store_window.transactions == 0

    def test_as_dict_sorted_snapshot(self, stats: StatsCollector):
        stats.bump("b")
        stats.bump("a")
        assert list(stats.as_dict()) == ["a", "b"]
