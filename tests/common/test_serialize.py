"""Config serialization round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import (
    BusConfig,
    CSBConfig,
    MemoryHierarchyConfig,
    SystemConfig,
    UncachedBufferConfig,
)
from repro.common.errors import ConfigError
from repro.common.serialize import (
    config_from_dict,
    config_from_json,
    config_to_dict,
    config_to_json,
)


class TestRoundTrip:
    def test_default_config(self):
        config = SystemConfig()
        assert config_from_dict(config_to_dict(config)) == config

    def test_json_round_trip(self):
        config = SystemConfig(
            memory=MemoryHierarchyConfig.with_line_size(128),
            bus=BusConfig(kind="split", width_bytes=16, cpu_ratio=4,
                          max_burst_bytes=128),
            uncached=UncachedBufferConfig(combine_block=16, policy="ppc620"),
            csb=CSBConfig(line_size=128, num_line_buffers=2),
        )
        assert config_from_json(config_to_json(config)) == config

    @given(
        ratio=st.integers(min_value=1, max_value=12),
        turnaround=st.integers(min_value=0, max_value=3),
        delay=st.integers(min_value=0, max_value=8),
        block=st.sampled_from([8, 16, 32, 64]),
        line=st.sampled_from([32, 64, 128]),
    )
    def test_property_any_valid_config_round_trips(
        self, ratio, turnaround, delay, block, line
    ):
        config = SystemConfig(
            memory=MemoryHierarchyConfig.with_line_size(line),
            bus=BusConfig(
                cpu_ratio=ratio,
                turnaround=turnaround,
                min_addr_delay=delay,
                max_burst_bytes=max(64, line),
            ),
            uncached=UncachedBufferConfig(combine_block=min(block, line)),
            csb=CSBConfig(line_size=line),
        )
        assert config_from_dict(config_to_dict(config)) == config


class TestValidation:
    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigError):
            config_from_dict({"turbo": {}})

    def test_unknown_field_rejected(self):
        data = config_to_dict(SystemConfig())
        data["bus"]["warp_factor"] = 9
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_invalid_values_rejected_by_dataclass_validation(self):
        data = config_to_dict(SystemConfig())
        data["bus"]["cpu_ratio"] = 0
        with pytest.raises(ConfigError):
            config_from_dict(data)

    def test_partial_document_uses_defaults(self):
        config = config_from_dict({"bus": {"cpu_ratio": 3}})
        assert config.bus.cpu_ratio == 3
        assert config.core.dispatch_width == 4

    def test_bad_json(self):
        with pytest.raises(ConfigError):
            config_from_json("{not json")

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError):
            config_from_dict([1, 2, 3])
        with pytest.raises(ConfigError):
            config_from_dict({"bus": 7})


class TestUsableInSystems:
    def test_deserialized_config_builds_a_system(self):
        from repro import System, assemble

        text = config_to_json(SystemConfig())
        system = System(config_from_json(text))
        system.add_process(assemble("set 1, %o1\nhalt"))
        system.run()
        assert system.scheduler.processes[0].registers.read("%o1") == 1
