"""Markdown rendering of tables and the CLI flag that uses it."""

from repro.common.tables import Table
from repro.evaluation.cli import main


class TestMarkdown:
    def test_basic_shape(self):
        table = Table(["scheme", "bw"], title="t")
        table.add_row("csb", 7.111)
        text = table.to_markdown()
        lines = text.splitlines()
        assert lines[0] == "**t**"
        assert lines[2] == "| scheme | bw |"
        assert lines[3] == "|---|---|"
        assert lines[4] == "| csb | 7.11 |"

    def test_untitled(self):
        table = Table(["a"])
        table.add_row(1)
        assert table.to_markdown().startswith("| a |")

    def test_precision(self):
        table = Table(["x"])
        table.add_row(1 / 3)
        assert "| 0.3333 |" in table.to_markdown(precision=4)


class TestCliMarkdownFlag:
    def test_markdown_output(self, capsys):
        assert main(["ablation-depth", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| depth |" in out
        assert "|---|" in out
