"""The FIFO-descriptor network interface."""

import pytest

from repro.devices.nic import (
    NetworkInterface,
    PACKET_MEMORY_OFFSET,
    STATUS_OFFSET,
    TX_COUNT_OFFSET,
)
from repro.memory.layout import PageAttr, Region

BASE = 0x2000_0000


def make_nic(**kwargs) -> NetworkInterface:
    region = Region(BASE, 64 * 1024, PageAttr.UNCACHED, "nic")
    return NetworkInterface(region, **kwargs)


def run_ticks(nic, n, start=0):
    for cycle in range(start, start + n):
        nic.tick(cycle)


class TestInlineSend:
    def test_burst_to_fifo_window_is_inline_packet(self):
        nic = make_nic()
        payload = bytes(range(64))
        nic.bus_write(BASE, payload)
        run_ticks(nic, 20)
        assert len(nic.sent) == 1
        packet = nic.sent[0]
        assert packet.inline and packet.payload == payload

    def test_tx_serialization_rate(self):
        nic = make_nic(tx_cycles=8)
        nic.bus_write(BASE, bytes(64))
        nic.bus_write(BASE, bytes(64))
        run_ticks(nic, 8)  # cycles 0..7: the link is busy with packet 1
        assert len(nic.sent) == 1  # second packet still serializing
        run_ticks(nic, 8, start=8)
        assert len(nic.sent) == 2
        assert nic.sent[1].sent_at - nic.sent[0].sent_at == 8


class TestDescriptorSend:
    def test_descriptor_references_packet_memory(self):
        nic = make_nic()
        payload = b"M" * 24
        nic.bus_write(BASE + PACKET_MEMORY_OFFSET + 0x40, payload)
        descriptor = (0x40 << 16) | len(payload)
        nic.bus_write(BASE, descriptor.to_bytes(8, "big"))
        run_ticks(nic, 20)
        assert nic.sent[0].payload == payload
        assert not nic.sent[0].inline


class TestRegisters:
    def test_status_reports_free_slots(self):
        nic = make_nic(fifo_depth=4)
        assert nic.bus_read(BASE + STATUS_OFFSET, 8) == (4).to_bytes(8, "big")
        nic.bus_write(BASE, bytes(64))
        assert nic.bus_read(BASE + STATUS_OFFSET, 8) == (3).to_bytes(8, "big")

    def test_tx_count(self):
        nic = make_nic()
        nic.bus_write(BASE, bytes(64))
        run_ticks(nic, 20)
        assert nic.bus_read(BASE + TX_COUNT_OFFSET, 8) == (1).to_bytes(8, "big")

    def test_packet_memory_readback(self):
        nic = make_nic()
        nic.bus_write(BASE + PACKET_MEMORY_OFFSET, b"hello___")
        assert nic.bus_read(BASE + PACKET_MEMORY_OFFSET, 8) == b"hello___"

    def test_write_to_register_window_rejected(self):
        from repro.common.errors import MemoryError_

        nic = make_nic()
        with pytest.raises(MemoryError_):
            nic.bus_write(BASE + STATUS_OFFSET, bytes(8))


class TestBackpressure:
    def test_full_fifo_drops_and_counts(self):
        nic = make_nic(fifo_depth=1, tx_cycles=100)
        nic.bus_write(BASE, bytes(64))
        nic.bus_write(BASE, bytes(64))
        assert nic.dropped == 1
        assert nic.pending == 1

    def test_dma_delivery(self):
        nic = make_nic()
        nic.deliver_dma_payload(b"dma-data", bus_cycle=5)
        run_ticks(nic, 20, start=6)
        assert nic.last_payload() == b"dma-data"
