"""DescriptorRing: enqueue, drain rate, drops, occupancy integral."""

import struct

import pytest

from repro.common.errors import ConfigError
from repro.devices.ring import (
    REG_DRAINED,
    REG_DROPS,
    REG_ENQUEUED,
    REG_PENDING,
    DescriptorRing,
)
from repro.memory.layout import PageAttr, Region


def make_ring(capacity=4, service_cycles=10):
    region = Region(0x3010_0000, 0x1000, PageAttr.UNCACHED, "ring")
    return DescriptorRing(
        region, capacity=capacity, service_cycles=service_cycles
    )


def read_reg(ring, offset):
    return struct.unpack("<Q", ring.handle_read(offset, 8))[0]


class TestEnqueueAndDrops:
    def test_writes_enqueue_up_to_capacity(self):
        ring = make_ring(capacity=2)
        ring.handle_write(0, b"\0" * 8)
        ring.handle_write(8, b"\0" * 8)
        assert ring.pending == 2
        assert ring.high_water == 2
        ring.handle_write(16, b"\0" * 8)
        assert ring.pending == 2
        assert ring.drops == 1
        assert ring.enqueued == 2

    def test_registers_read_back_counters(self):
        ring = make_ring(capacity=2)
        ring.handle_write(0, b"\0" * 8)
        ring.handle_write(0, b"\0" * 8)
        ring.handle_write(0, b"\0" * 8)
        assert read_reg(ring, REG_PENDING) == 2
        assert read_reg(ring, REG_ENQUEUED) == 2
        assert read_reg(ring, REG_DROPS) == 1
        assert read_reg(ring, REG_DRAINED) == 0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            make_ring(capacity=0)
        with pytest.raises(ConfigError):
            make_ring(service_cycles=0)


class TestDrainRate:
    def test_one_drain_per_service_period(self):
        ring = make_ring(capacity=8, service_cycles=10)
        for _ in range(3):
            ring.handle_write(0, b"\0" * 8)
        for cycle in range(1, 10):
            ring.tick(cycle)
        assert ring.drained == 0
        ring.tick(10)
        assert ring.drained == 1
        ring.tick(20)  # a 10-cycle gap in one tick still drains exactly one
        assert ring.drained == 2

    def test_idle_ring_banks_no_credit(self):
        ring = make_ring(service_cycles=10)
        for cycle in range(1, 50):
            ring.tick(cycle)  # empty the whole time
        ring.handle_write(0, b"\0" * 8)
        ring.tick(55)
        assert ring.drained == 0  # only 5 cycles of service so far
        ring.tick(60)
        assert ring.drained == 1


class TestOccupancyIntegral:
    def test_constant_occupancy_integrates_exactly(self):
        ring = make_ring(capacity=8, service_cycles=100)
        ring.handle_write(0, b"\0" * 8)
        ring.handle_write(0, b"\0" * 8)
        for cycle in range(1, 11):
            ring.tick(cycle)
        assert ring.ticks == 10
        assert ring.occupancy_integral == 20
        assert ring.mean_occupancy() == 2.0

    def test_gap_integration_matches_cycle_by_cycle(self):
        # The same schedule ticked in one jump and cycle-by-cycle must
        # integrate to the same occupancy (piecewise-exact drains).
        def run(step):
            ring = make_ring(capacity=8, service_cycles=7)
            ring.tick(0)  # establish the device's epoch
            for _ in range(5):
                ring.handle_write(0, b"\0" * 8)
            cycle = 0
            while cycle < 70:
                cycle += step
                ring.tick(cycle)
            return ring.occupancy_integral, ring.drained

        assert run(1) == run(70)

    def test_mean_occupancy_never_exceeds_capacity(self):
        ring = make_ring(capacity=4, service_cycles=1000)
        for _ in range(20):
            ring.handle_write(0, b"\0" * 8)
        for cycle in range(1, 100):
            ring.tick(cycle)
        assert ring.mean_occupancy() <= ring.capacity

    def test_empty_ring_mean_is_zero(self):
        assert make_ring().mean_occupancy() == 0.0
