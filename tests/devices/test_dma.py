"""The DMA engine."""

import pytest

from repro.common.errors import MemoryError_
from repro.devices.dma import (
    DmaEngine,
    DOORBELL_OFFSET,
    LEN_OFFSET,
    SRC_OFFSET,
    STATUS_OFFSET,
)
from repro.devices.nic import NetworkInterface
from repro.memory.backing import BackingStore
from repro.memory.layout import PageAttr, Region

DMA_BASE = 0x2001_0000
NIC_BASE = 0x2002_0000


def make_engine(**kwargs):
    memory = BackingStore()
    nic = NetworkInterface(
        Region(NIC_BASE, 64 * 1024, PageAttr.UNCACHED, "nic")
    )
    dma = DmaEngine(
        Region(DMA_BASE, 8192, PageAttr.UNCACHED, "dma"),
        memory,
        nic,
        **kwargs,
    )
    return dma, nic, memory


def write_reg(dma, offset, value):
    dma.bus_write(DMA_BASE + offset, value.to_bytes(8, "big"))


class TestTransfer:
    def test_registers_then_doorbell(self):
        dma, nic, memory = make_engine(setup_cycles=10, cycles_per_line=2)
        memory.write_bytes(0x1000, b"payload!" * 8)
        write_reg(dma, SRC_OFFSET, 0x1000)
        write_reg(dma, LEN_OFFSET, 64)
        write_reg(dma, DOORBELL_OFFSET, 0)
        assert dma.busy
        for cycle in range(20):
            dma.tick(cycle)
            nic.tick(cycle)
        assert not dma.busy
        for cycle in range(20, 40):
            nic.tick(cycle)
        assert nic.last_payload() == b"payload!" * 8

    def test_packed_descriptor_doorbell(self):
        # Atoll-style: one write carries source and length.
        dma, nic, memory = make_engine(setup_cycles=1, cycles_per_line=1)
        memory.write_bytes(0x2000, b"x" * 16)
        write_reg(dma, DOORBELL_OFFSET, (0x2000 << 16) | 16)
        for cycle in range(10):
            dma.tick(cycle)
            nic.tick(cycle)
        assert dma.transfers[0][:2] == (0x2000, 16)

    def test_setup_cost_dominates_short_transfers(self):
        dma, _, memory = make_engine(setup_cycles=40, cycles_per_line=10)
        memory.write_bytes(0, bytes(8))
        write_reg(dma, DOORBELL_OFFSET, (0 << 16) | 8)
        cycle = 0
        while dma.busy:
            dma.tick(cycle)
            cycle += 1
        assert dma.completion_cycle() == 40 + 10  # setup + one line


class TestStatus:
    def test_status_register(self):
        dma, _, memory = make_engine(setup_cycles=5, cycles_per_line=1)
        assert dma.bus_read(DMA_BASE + STATUS_OFFSET, 8)[-1] == 1  # idle
        memory.write_bytes(0, bytes(8))
        write_reg(dma, DOORBELL_OFFSET, 8)
        assert dma.bus_read(DMA_BASE + STATUS_OFFSET, 8)[-1] == 0  # busy

    def test_register_readback(self):
        dma, _, _ = make_engine()
        write_reg(dma, SRC_OFFSET, 0x1234)
        assert dma.bus_read(DMA_BASE + SRC_OFFSET, 8) == (0x1234).to_bytes(8, "big")


class TestErrors:
    def test_doorbell_while_busy_rejected(self):
        dma, _, memory = make_engine(setup_cycles=100)
        memory.write_bytes(0, bytes(8))
        write_reg(dma, DOORBELL_OFFSET, 8)
        with pytest.raises(MemoryError_):
            write_reg(dma, DOORBELL_OFFSET, 8)

    def test_zero_length_rejected(self):
        dma, _, _ = make_engine()
        with pytest.raises(MemoryError_):
            write_reg(dma, DOORBELL_OFFSET, 0)

    def test_unknown_register(self):
        dma, _, _ = make_engine()
        with pytest.raises(MemoryError_):
            dma.bus_write(DMA_BASE + 0x80, bytes(8))
