"""Burst sink device."""

import pytest

from repro.common.errors import MemoryError_
from repro.devices.sink import BurstSink
from repro.memory.layout import PageAttr, Region


def make_sink(base=0x2000_0000, size=8192) -> BurstSink:
    return BurstSink(Region(base, size, PageAttr.UNCACHED, "sink"))


class TestSink:
    def test_write_logged_in_order(self):
        sink = make_sink()
        sink.bus_write(0x2000_0000, b"AAAA")
        sink.bus_write(0x2000_0010, b"BBBBBBBB")
        assert sink.log == [(0, b"AAAA"), (0x10, b"BBBBBBBB")]
        assert sink.writes == 2
        assert sink.bytes_written == 12

    def test_read_returns_written_data(self):
        sink = make_sink()
        sink.bus_write(0x2000_0000, b"12345678")
        assert sink.bus_read(0x2000_0004, 4) == b"5678"
        assert sink.reads == 1

    def test_contents_does_not_count_as_read(self):
        sink = make_sink()
        sink.bus_write(0x2000_0000, b"xy")
        assert sink.contents(0, 2) == b"xy"
        assert sink.reads == 0

    def test_out_of_region_rejected(self):
        sink = make_sink()
        with pytest.raises(MemoryError_):
            sink.bus_write(0x2000_0000 + 8192, b"x")
        with pytest.raises(MemoryError_):
            sink.bus_read(0x2000_0000 + 8190, 4)  # crosses the end

    def test_burst_write_accepted(self):
        sink = make_sink()
        sink.bus_write(0x2000_0000, bytes(range(64)))
        assert sink.contents(0, 64) == bytes(range(64))
