"""Bus-cycle accounting: every cycle of the bus window is accounted for."""

import pytest

from repro.common.errors import ConfigError
from repro.observability.profile import profile_job, profile_jobs, profile_table
from repro.observability.report import ACCOUNT_COLUMNS, BusCycleReporter
from repro.evaluation.runner import run_system
from repro.evaluation.latency import latency_job


class TestAccountIdentity:
    @pytest.mark.parametrize("experiment_id", ["fig3c", "fig3g", "fig5a"])
    def test_every_cycle_lands_in_exactly_one_bucket(self, experiment_id):
        for scheme, job in profile_jobs(experiment_id):
            account = profile_job(job)
            assert account.transactions > 0, scheme
            total = (
                account.address
                + account.data
                + account.wait
                + account.turnaround
                + account.idle
            )
            assert total == account.total, scheme
            assert account.checks_out(), scheme

    def test_turnaround_appears_only_when_configured(self):
        # fig3g's panel runs with bus turnaround cycles; fig3c's does not.
        with_turnaround = dict(
            (scheme, profile_job(job)) for scheme, job in profile_jobs("fig3g")
        )
        without = dict(
            (scheme, profile_job(job)) for scheme, job in profile_jobs("fig3c")
        )
        assert all(acc.turnaround == 0 for acc in without.values())
        assert with_turnaround["none"].turnaround > 0

    def test_utilization_and_efficiency_are_fractions(self):
        for _, job in profile_jobs("fig5a"):
            account = profile_job(job)
            assert 0.0 < account.utilization <= 1.0
            assert 0.0 < account.efficiency <= 1.0


class TestProfileTable:
    def test_fig3c_table_shape(self):
        table = profile_table("fig3c")
        rendered = table.render(2)
        assert "scheme" in rendered
        for column in ACCOUNT_COLUMNS:
            assert column in rendered
        # one row per scheme of the 64B panel (none/combine8..64/csb)
        schemes = [scheme for scheme, _ in profile_jobs("fig3c")]
        for scheme in schemes:
            assert scheme in rendered

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigError):
            profile_jobs("tab1")
        with pytest.raises(ConfigError):
            profile_table("nope")


class TestReporterOnLiveRun:
    def test_occupancy_histogram_and_kind_breakdown_cover_all(self):
        reporter = BusCycleReporter()
        run_system(latency_job("csb", 4, lock_hits_l1=True), (reporter,))
        account = reporter.account()
        kinds = reporter.kind_breakdown()
        assert (
            sum(entry["transactions"] for entry in kinds.values())
            == account.transactions
        )
        histogram = reporter.occupancy_histogram(16)
        assert sum(histogram.values()) == account.address + account.data + account.wait
