"""Tracing is passive: observed runs measure exactly what blind runs do.

The acceptance bar for the observability layer: turning every event on
must not move a single number.  These tests regenerate a full figure
table with and without sinks attached and require byte identity, and
pin the JSONL event schema against a golden trace.
"""

import io
import os

from repro.evaluation.experiments import run_experiment
from repro.evaluation.latency import latency_job
from repro.evaluation.runner import SweepRunner, execute_job
from repro.evaluation.bandwidth import bandwidth_job
from repro.evaluation.panels import panel_by_id
from repro.observability import JsonlSink, RingBufferSink
from repro.observability.profile import PROFILE_TRANSFER_BYTES

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "fig5a_csb_trace.jsonl")


def observed_runner(stream):
    return SweepRunner(
        jobs=1,
        cache=None,
        observer_factory=lambda job: [JsonlSink(stream, extra={"job": job.name})],
        collect_metrics=True,
    )


class TestTraceIdentity:
    def test_fig5a_table_bytes_identical_with_tracing_on(self):
        blind = run_experiment("fig5a").render(2)
        stream = io.StringIO()
        runner = observed_runner(stream)
        traced = run_experiment("fig5a", runner).render(2)
        assert traced == blind
        assert stream.getvalue().count("\n") > 100  # the trace really ran
        assert runner.metrics  # and metrics were collected per job

    def test_execute_job_measurement_unchanged_by_observers(self):
        panel = panel_by_id("fig3c")
        for job in (
            latency_job("csb", 4, lock_hits_l1=True),
            bandwidth_job(panel, "csb", PROFILE_TRANSFER_BYTES),
            bandwidth_job(panel, "none", PROFILE_TRANSFER_BYTES),
        ):
            blind = execute_job(job)
            ring = RingBufferSink()
            observed = execute_job(job, observers=(ring,))
            assert observed == blind
            assert ring.seen > 0


class TestGoldenTrace:
    def make_trace(self) -> str:
        stream = io.StringIO()
        job = latency_job("csb", 1, lock_hits_l1=True)
        execute_job(job, observers=(JsonlSink(stream),))
        return stream.getvalue()

    def test_fig5a_csb_trace_matches_golden(self):
        """The full event stream of one fig5a point, byte for byte.  A
        diff here means the event schema or the simulated timing moved —
        regenerate with tests/observability/regen_golden.py if that was
        intentional."""
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            expected = handle.read()
        assert self.make_trace() == expected

    def test_trace_is_deterministic(self):
        assert self.make_trace() == self.make_trace()
