"""Event taxonomy, bus, and sinks: the observability layer itself."""

import io
import json

import pytest

from repro import System, assemble, simulate
from repro.observability import (
    BusDataCycle,
    CacheMiss,
    DeviceWrite,
    EventBus,
    FlushCommitted,
    JsonlSink,
    RingBufferSink,
    SequenceStarted,
    StoreIssued,
    TransactionAccepted,
)
from repro.workloads import store_kernel_csb, store_kernel_uncached
from tests.conftest import make_config


class TestEventShape:
    def test_kind_is_type_name(self):
        event = StoreIssued(address=0x100, size=8, target="csb")
        assert event.kind == "StoreIssued"

    def test_cycle_defaults_unstamped(self):
        assert StoreIssued(address=0, size=8, target="csb").cycle == -1

    def test_to_dict_leads_with_event_and_cycle(self):
        event = CacheMiss(address=0x2000, level="l1")
        event.cycle = 7
        keys = list(event.to_dict())
        assert keys[:2] == ["event", "cycle"]
        assert event.to_dict() == {
            "event": "CacheMiss",
            "cycle": 7,
            "address": 0x2000,
            "level": "l1",
        }


class TestEventBus:
    def test_publish_stamps_current_cycle(self):
        bus = EventBus()
        ring = bus.subscribe(RingBufferSink())
        bus.now = 42
        bus.publish(SequenceStarted(address=0x100, pid=1))
        assert ring.events[0].cycle == 42

    def test_fan_out_to_every_sink(self):
        bus = EventBus()
        a, b = bus.subscribe(RingBufferSink()), bus.subscribe(RingBufferSink())
        bus.publish(SequenceStarted(address=0, pid=1))
        assert len(a) == len(b) == 1


class TestRingBufferSink:
    def test_capacity_keeps_most_recent(self):
        ring = RingBufferSink(capacity=2)
        for address in (1, 2, 3):
            ring.handle(StoreIssued(address=address, size=8, target="csb"))
        assert [e.address for e in ring.events] == [2, 3]
        assert ring.seen == 3

    def test_predicate_filters(self):
        ring = RingBufferSink(predicate=lambda e: isinstance(e, CacheMiss))
        ring.handle(StoreIssued(address=0, size=8, target="csb"))
        ring.handle(CacheMiss(address=0, level="l1"))
        assert ring.counts() == {"CacheMiss": 1}

    def test_of_kind(self):
        ring = RingBufferSink()
        ring.handle(StoreIssued(address=0, size=8, target="csb"))
        ring.handle(CacheMiss(address=0, level="l2"))
        assert [e.kind for e in ring.of_kind("CacheMiss")] == ["CacheMiss"]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_fixed_key_order_with_extras(self):
        stream = io.StringIO()
        sink = JsonlSink(stream, extra={"job": "fig5a-csb-1"})
        event = FlushCommitted(address=0x100, useful_bytes=32, stores=4)
        event.cycle = 9
        sink.handle(event)
        record = stream.getvalue().strip()
        assert record == (
            '{"event":"FlushCommitted","cycle":9,"job":"fig5a-csb-1",'
            '"address":256,"useful_bytes":32,"stores":4,"core_id":0}'
        )
        assert json.loads(record)["stores"] == 4
        assert sink.written == 1


class TestZeroOverheadWiring:
    def test_uninstrumented_system_has_no_bus(self):
        system = System(make_config())
        assert not system.observability.enabled
        for component in (
            system.unit,
            system.buffer,
            system.csb,
            system.bus,
            system.core,
            system.hierarchy,
            system.scheduler,
        ):
            assert component.events is None

    def test_attach_observer_wires_every_component(self):
        system = System(make_config())
        ring = system.attach_observer(RingBufferSink())
        assert system.observability.enabled
        bus = system.events
        for component in (system.unit, system.csb, system.bus, system.core):
            assert component.events is bus
        assert ring in bus.sinks


class TestLiveEmission:
    def test_csb_run_emits_the_expected_taxonomy(self):
        ring = RingBufferSink()
        simulate(
            make_config(),
            store_kernel_csb(128, 64),
            observers=[ring],
        )
        counts = ring.counts()
        assert counts["StoreIssued"] == 16  # 128B of doubleword stores
        assert counts["SequenceStarted"] == 2  # two 64B lines
        assert counts["FlushCommitted"] == 2
        assert counts["TransactionAccepted"] == 2  # one burst per line
        for event in ring.of_kind("FlushCommitted"):
            assert event.useful_bytes == 64

    def test_transaction_breakdown_matches_span(self):
        ring = RingBufferSink(predicate=lambda e: isinstance(e, TransactionAccepted))
        simulate(make_config(), store_kernel_uncached(64), observers=[ring])
        assert ring.events
        for txn in ring.events:
            span = txn.end_cycle - txn.bus_cycle + 1
            assert txn.addr_cycles + txn.wait_cycles + txn.data_cycles == span

    def test_per_cycle_bus_events_align_with_transactions(self):
        ring = RingBufferSink()
        simulate(make_config(), store_kernel_uncached(32), observers=[ring])
        accepted = ring.of_kind("TransactionAccepted")
        data_cycles = ring.of_kind("BusDataCycle")
        assert sum(t.data_cycles for t in accepted) == len(data_cycles)
        assert all(isinstance(e, BusDataCycle) for e in data_cycles)

    def test_device_write_observed(self):
        from repro.devices.sink import BurstSink
        from repro.memory.layout import IO_COMBINING_BASE, PageAttr, Region

        system = System(make_config())
        ring = system.attach_observer(
            RingBufferSink(predicate=lambda e: isinstance(e, DeviceWrite))
        )
        system.attach_device(
            BurstSink(
                Region(IO_COMBINING_BASE, 8192, PageAttr.UNCACHED_COMBINING, "dev")
            )
        )
        system.add_process(assemble(store_kernel_csb(64, 64)))
        system.run()
        assert ring.seen >= 1
        assert ring.events[0].device == "sink"
