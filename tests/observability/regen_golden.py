#!/usr/bin/env python
"""Regenerate the golden event trace used by test_trace_identity.py.

Run from the repo root after an *intentional* schema or timing change::

    PYTHONPATH=src python tests/observability/regen_golden.py

and commit the refreshed golden/fig5a_csb_trace.jsonl together with the
change that moved it.
"""

import os

from repro.evaluation.latency import latency_job
from repro.evaluation.runner import execute_job
from repro.observability import JsonlSink

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "fig5a_csb_trace.jsonl")


def main() -> None:
    os.makedirs(os.path.dirname(GOLDEN), exist_ok=True)
    with open(GOLDEN, "w", encoding="utf-8") as handle:
        job = latency_job("csb", 1, lock_hits_l1=True)
        execute_job(job, observers=(JsonlSink(handle),))
    with open(GOLDEN, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    print(f"wrote {GOLDEN}: {len(lines)} events")


if __name__ == "__main__":
    main()
