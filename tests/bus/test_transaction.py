"""Bus transaction validation."""

import pytest

from repro.common.errors import AlignmentError
from repro.bus.transaction import (
    BusTransaction,
    KIND_CSB_FLUSH,
    KIND_UNCACHED_LOAD,
    KIND_UNCACHED_STORE,
)


class TestValidation:
    def test_store_needs_data(self):
        with pytest.raises(ValueError):
            BusTransaction(0x100, 8, KIND_UNCACHED_STORE)

    def test_data_length_must_match(self):
        with pytest.raises(ValueError):
            BusTransaction(0x100, 8, KIND_UNCACHED_STORE, data=b"abc")

    def test_load_needs_no_data(self):
        txn = BusTransaction(0x100, 8, KIND_UNCACHED_LOAD)
        assert txn.is_read and not txn.is_write

    def test_size_must_be_power_of_two(self):
        with pytest.raises(AlignmentError):
            BusTransaction(0x100, 24, KIND_UNCACHED_LOAD)

    def test_natural_alignment_enforced(self):
        with pytest.raises(AlignmentError):
            BusTransaction(0x104, 8, KIND_UNCACHED_LOAD)
        BusTransaction(0x104, 4, KIND_UNCACHED_LOAD)  # aligned to its size

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            BusTransaction(0x100, 8, "dma")

    def test_useful_bytes_defaults_to_size(self):
        txn = BusTransaction(0x100, 8, KIND_UNCACHED_STORE, data=bytes(8))
        assert txn.useful_bytes == 8

    def test_useful_bytes_bounded(self):
        with pytest.raises(ValueError):
            BusTransaction(
                0x100, 8, KIND_UNCACHED_STORE, data=bytes(8), useful_bytes=16
            )

    def test_csb_flush_is_write_burst(self):
        txn = BusTransaction(
            0x100, 64, KIND_CSB_FLUSH, data=bytes(64), useful_bytes=16
        )
        assert txn.is_write and txn.is_burst

    def test_doubleword_is_not_burst(self):
        txn = BusTransaction(0x100, 8, KIND_UNCACHED_STORE, data=bytes(8))
        assert not txn.is_burst
