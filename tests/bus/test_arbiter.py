"""Bus arbitration: priority classes, fairness policies, grant accounting."""

import pytest

from repro.bus.arbiter import BusArbiter
from repro.common.errors import ConfigError


class FakeBus:
    """Stands in for SystemBus: records that it ticked first."""

    def __init__(self):
        self.ticks = []

    def tick(self, bus_cycle):
        self.ticks.append(bus_cycle)


class Requester:
    """An initiator that wants the bus whenever ``ready`` is True."""

    def __init__(self, ready=True):
        self.ready = ready
        self.granted = []

    def tick_bus(self, bus_cycle):
        if self.ready:
            self.granted.append(bus_cycle)
            return True
        return False


def make_arbiter(policy="round_robin"):
    return BusArbiter(FakeBus(), policy)


class TestPolicyValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            BusArbiter(FakeBus(), "lottery")


class TestRoundRobin:
    def test_rotates_among_ready_initiators(self):
        arbiter = make_arbiter()
        names = ("a", "b", "c")
        for name in names:
            arbiter.add_initiator(Requester(), name=name)
        winners = [arbiter.tick_bus(cycle) for cycle in range(6)]
        assert winners == ["a", "b", "c", "a", "b", "c"]

    def test_skips_idle_initiators(self):
        arbiter = make_arbiter()
        idle = Requester(ready=False)
        busy = Requester()
        arbiter.add_initiator(idle, name="idle")
        arbiter.add_initiator(busy, name="busy")
        assert [arbiter.tick_bus(c) for c in range(3)] == ["busy"] * 3
        assert idle.granted == []

    def test_no_starvation_under_saturation(self):
        arbiter = make_arbiter()
        requesters = [Requester() for _ in range(4)]
        for i, requester in enumerate(requesters):
            arbiter.add_initiator(requester, name=f"core{i}")
        for cycle in range(40):
            arbiter.tick_bus(cycle)
        assert all(count == 10 for count in arbiter.grants.values())

    def test_idle_cycle_returns_none(self):
        arbiter = make_arbiter()
        arbiter.add_initiator(Requester(ready=False), name="idle")
        assert arbiter.tick_bus(0) is None
        assert arbiter.grants["idle"] == 0


class TestPriorityPolicy:
    def test_registration_order_wins(self):
        arbiter = make_arbiter("priority")
        first = Requester()
        second = Requester()
        arbiter.add_initiator(first, name="first")
        arbiter.add_initiator(second, name="second")
        assert [arbiter.tick_bus(c) for c in range(4)] == ["first"] * 4
        assert second.granted == []  # daisy-chain starvation is the model

    def test_later_slot_runs_when_front_is_idle(self):
        arbiter = make_arbiter("priority")
        arbiter.add_initiator(Requester(ready=False), name="first")
        arbiter.add_initiator(Requester(), name="second")
        assert arbiter.tick_bus(0) == "second"


class TestPriorityClasses:
    def test_lower_class_preempts_every_cycle(self):
        # Refill registers at priority 0 and must beat any core.
        arbiter = make_arbiter()
        refill = Requester()
        core = Requester()
        arbiter.add_initiator(refill, priority=0, name="refill")
        arbiter.add_initiator(core, priority=1, name="core0")
        assert [arbiter.tick_bus(c) for c in range(3)] == ["refill"] * 3
        assert core.granted == []

    def test_falls_through_to_next_class(self):
        arbiter = make_arbiter()
        arbiter.add_initiator(Requester(ready=False), priority=0, name="refill")
        core = Requester()
        arbiter.add_initiator(core, priority=1, name="core0")
        assert arbiter.tick_bus(5) == "core0"
        assert core.granted == [5]


class TestAccounting:
    def test_bus_ticks_before_any_grant(self):
        bus = FakeBus()
        arbiter = BusArbiter(bus, "round_robin")
        arbiter.add_initiator(Requester(), name="a")
        arbiter.tick_bus(3)
        assert bus.ticks == [3]

    def test_grants_count_per_name(self):
        arbiter = make_arbiter()
        arbiter.add_initiator(Requester(), name="a")
        arbiter.add_initiator(Requester(ready=False), name="b")
        for cycle in range(5):
            arbiter.tick_bus(cycle)
        assert arbiter.grants == {"a": 5, "b": 0}
