"""Bus timing: the paper's cycle-count anchors, flow control, pipelining.

Key anchors from §4.3.1:

* multiplexed 8-byte bus: a doubleword transaction takes 2 cycles;
* with a turnaround cycle: 1 txn = 2 cycles, 2 txns = 5, 3 txns = 8;
* a 64-byte burst takes 9 cycles (1 address + 8 data);
* min-addr-delay 8 completely overlaps an 8-data-cycle burst;
* split 128-bit bus: a 64-byte burst takes 4 data cycles; a doubleword
  still takes 1 (wasted width).
"""

import pytest

from repro.common.config import BusConfig
from repro.common.stats import StatsCollector
from repro.bus.base import TargetRegistry
from repro.bus.multiplexed import MultiplexedBus
from repro.bus.split import SplitBus
from repro.bus.transaction import (
    BusTransaction,
    KIND_UNCACHED_LOAD,
    KIND_UNCACHED_STORE,
)
from repro.memory.backing import BackingStore


def make_mux(**kwargs) -> MultiplexedBus:
    config = BusConfig(kind="multiplexed", width_bytes=8, **kwargs)
    stats = StatsCollector()
    return MultiplexedBus(config, stats, TargetRegistry(BackingStore()))


def make_split(width: int = 16, **kwargs) -> SplitBus:
    config = BusConfig(kind="split", width_bytes=width, **kwargs)
    stats = StatsCollector()
    return SplitBus(config, stats, TargetRegistry(BackingStore()))


def store(address: int, size: int) -> BusTransaction:
    return BusTransaction(address, size, KIND_UNCACHED_STORE, data=bytes(size))


class TestMultiplexedTiming:
    def test_doubleword_takes_two_cycles(self):
        bus = make_mux()
        txn = store(0x100, 8)
        assert bus.try_issue(txn, 0)
        assert (txn.start_cycle, txn.end_cycle) == (0, 1)

    def test_line_burst_takes_nine_cycles(self):
        bus = make_mux()
        txn = store(0x100, 64)
        bus.try_issue(txn, 0)
        assert txn.end_cycle == 8  # cycles 0..8 inclusive = 9 cycles

    def test_back_to_back_without_turnaround(self):
        bus = make_mux()
        first, second = store(0x100, 8), store(0x108, 8)
        assert bus.try_issue(first, 0)
        assert not bus.try_issue(second, 1)  # bus busy
        assert bus.try_issue(second, 2)
        assert second.end_cycle == 3  # paper: two txns complete in 4 cycles

    def test_turnaround_spacing(self):
        # Paper: 1 txn = 2 cycles, 2 = 5, 3 = 8.
        bus = make_mux(turnaround=1)
        ends = []
        cycle = 0
        for i in range(3):
            txn = store(0x100 + 8 * i, 8)
            while not bus.try_issue(txn, cycle):
                cycle += 1
            ends.append(txn.end_cycle)
        assert ends == [1, 4, 7]  # completes at end of cycles 2, 5, 8

    def test_min_addr_delay_spaces_short_transactions(self):
        bus = make_mux(min_addr_delay=4)
        first, second = store(0x100, 8), store(0x108, 8)
        bus.try_issue(first, 0)
        assert not bus.try_issue(second, 2)
        assert bus.try_issue(second, 4)

    def test_min_addr_delay_overlapped_by_burst(self):
        # An 8-data-cycle burst completely overlaps a delay of 8.
        bus = make_mux(min_addr_delay=8)
        first, second = store(0x100, 64), store(0x140, 64)
        bus.try_issue(first, 0)
        assert bus.try_issue(second, 9)  # immediately after the burst

    def test_read_latency(self):
        bus = make_mux()
        bus.read_latency = 3
        txn = BusTransaction(0x100, 8, KIND_UNCACHED_LOAD)
        bus.try_issue(txn, 0)
        assert txn.end_cycle == 0 + 1 + 3 + 1 - 1


class TestSplitTiming:
    def test_doubleword_takes_one_data_cycle(self):
        bus = make_split(16)
        txn = store(0x100, 8)
        bus.try_issue(txn, 0)
        assert txn.end_cycle == 0

    def test_line_burst_128bit_takes_four_cycles(self):
        bus = make_split(16)
        txn = store(0x100, 64)
        bus.try_issue(txn, 0)
        assert txn.end_cycle == 3

    def test_line_burst_256bit_takes_two_cycles(self):
        bus = make_split(32)
        txn = store(0x100, 64)
        bus.try_issue(txn, 0)
        assert txn.end_cycle == 1

    def test_back_to_back_data_cycles(self):
        bus = make_split(16)
        bus.try_issue(store(0x100, 8), 0)
        assert bus.try_issue(store(0x108, 8), 1)


class TestCompletionAndDelivery:
    def test_store_data_reaches_backing(self):
        backing = BackingStore()
        bus = MultiplexedBus(
            BusConfig(), StatsCollector(), TargetRegistry(backing)
        )
        txn = BusTransaction(
            0x100, 8, KIND_UNCACHED_STORE, data=b"\x01\x02\x03\x04\x05\x06\x07\x08"
        )
        bus.try_issue(txn, 0)
        bus.tick(5)
        assert backing.read_bytes(0x100, 8) == b"\x01\x02\x03\x04\x05\x06\x07\x08"

    def test_completion_callback_fires_once_with_end_cycle(self):
        bus = make_mux()
        seen = []
        txn = store(0x100, 8)
        txn.on_complete = seen.append
        bus.try_issue(txn, 0)
        bus.tick(0)  # not yet complete
        assert seen == []
        bus.tick(1)
        bus.tick(2)
        assert seen == [1]

    def test_load_result_data(self):
        backing = BackingStore()
        backing.write_bytes(0x100, b"ABCDEFGH")
        bus = MultiplexedBus(
            BusConfig(), StatsCollector(), TargetRegistry(backing)
        )
        txn = BusTransaction(0x100, 8, KIND_UNCACHED_LOAD)
        bus.try_issue(txn, 0)
        bus.tick(20)
        assert txn.result_data == b"ABCDEFGH"

    def test_drain_complete(self):
        bus = make_mux()
        assert bus.drain_complete()
        bus.try_issue(store(0x100, 8), 0)
        assert not bus.drain_complete()
        bus.tick(1)
        assert bus.drain_complete()

    def test_oversized_transaction_rejected(self):
        from repro.common.errors import SimulationError

        bus = make_mux()
        with pytest.raises(SimulationError):
            bus.try_issue(store(0x0, 128), 0)

    def test_stats_recorded(self):
        bus = make_mux()
        bus.try_issue(store(0x100, 64), 0)
        assert bus.stats.get("bus.transactions") == 1
        assert bus.stats.get("bus.bursts") == 1
        assert bus.stats.get("bus.bytes_wire") == 64


class TestTargetRegistry:
    def test_unclaimed_addresses_hit_backing(self):
        backing = BackingStore()
        registry = TargetRegistry(backing)
        registry.write(0x50, b"xy")
        assert backing.read_bytes(0x50, 2) == b"xy"
        assert registry.read(0x50, 2) == b"xy"

    def test_device_routing(self):
        from repro.devices.sink import BurstSink
        from repro.memory.layout import PageAttr, Region

        backing = BackingStore()
        registry = TargetRegistry(backing)
        region = Region(0x1000, 0x1000, PageAttr.UNCACHED, "dev")
        sink = BurstSink(region)
        registry.register(region, sink)
        registry.write(0x1008, b"hi")
        assert sink.log == [(8, b"hi")]
        assert backing.read_bytes(0x1008, 2) == b"\x00\x00"  # not in backing
        assert registry.read(0x1008, 2) == b"hi"

    def test_overlapping_device_rejected(self):
        from repro.common.errors import SimulationError
        from repro.devices.sink import BurstSink
        from repro.memory.layout import PageAttr, Region

        registry = TargetRegistry(BackingStore())
        r1 = Region(0x1000, 0x1000, PageAttr.UNCACHED, "a")
        r2 = Region(0x1800, 0x1000, PageAttr.UNCACHED, "b")
        registry.register(r1, BurstSink(r1))
        with pytest.raises(SimulationError):
            registry.register(r2, BurstSink(r2))
