"""Instruction construction, classification, and dataflow interface."""

import pytest

from repro.isa.instructions import (
    AluInstruction,
    BranchInstruction,
    CompareInstruction,
    HaltInstruction,
    InstructionError,
    LoadInstruction,
    MarkInstruction,
    MembarInstruction,
    NopInstruction,
    SetInstruction,
    StoreInstruction,
    SwapInstruction,
)


class TestAlu:
    def test_sources_and_destination(self):
        add = AluInstruction("add", "%o1", "%o2", "%o3")
        assert add.sources() == ("r9", "r10")
        assert add.destination() == "r11"
        assert add.fu == "int"

    def test_immediate_operand(self):
        add = AluInstruction("add", "%o1", 8, "%o2")
        assert add.sources() == ("r9",)
        assert add.operand2 == 8

    def test_unknown_op_rejected(self):
        with pytest.raises(InstructionError):
            AluInstruction("frobnicate", "%o1", 0, "%o2")

    def test_fp_op_requires_fp_registers(self):
        with pytest.raises(InstructionError):
            AluInstruction("fadd", "%o1", "%f2", "%f4")
        fadd = AluInstruction("fadd", "%f0", "%f2", "%f4")
        assert fadd.fu == "fp"


class TestCompareAndSet:
    def test_cmp_writes_icc(self):
        cmp_ = CompareInstruction("%l4", 8)
        assert cmp_.destination() == "icc"
        assert cmp_.sources() == ("r20",)

    def test_set_has_no_sources(self):
        set_ = SetInstruction(8, "%l4")
        assert set_.sources() == ()
        assert set_.destination() == "r20"
        assert set_.fu == "int"


class TestBranches:
    def test_cc_branch_reads_icc(self):
        bne = BranchInstruction("bne", ".RETRY")
        assert bne.sources() == ("icc",)
        assert bne.is_branch

    def test_register_branch(self):
        brnz = BranchInstruction("brnz", ".SPIN", rs1="%l6")
        assert brnz.sources() == ("r22",)

    def test_register_branch_needs_register(self):
        with pytest.raises(InstructionError):
            BranchInstruction("brz", "x")

    def test_cc_branch_rejects_register(self):
        with pytest.raises(InstructionError):
            BranchInstruction("be", "x", rs1="%o1")

    def test_ba_reads_nothing(self):
        assert BranchInstruction("ba", "x").sources() == ()


class TestMemoryOps:
    def test_load_shape(self):
        load = LoadInstruction(base="%o1", offset=8, rd="%o2", size=8)
        assert load.is_mem and load.is_load and not load.is_store
        assert load.sources() == ("r9",)
        assert load.destination() == "r10"

    def test_register_offset_is_a_source(self):
        load = LoadInstruction(base="%o1", offset="%o3", rd="%o2", size=4)
        assert set(load.sources()) == {"r9", "r11"}

    def test_store_reads_data_register(self):
        store = StoreInstruction(base="%o1", offset=0, rs="%l0", size=8)
        assert store.is_store and not store.is_load
        assert store.sources() == ("r9", "r16")
        assert store.destination() is None

    def test_bad_size_rejected(self):
        with pytest.raises(InstructionError):
            LoadInstruction(base="%o1", rd="%o2", size=3)

    def test_fp_store_must_be_doubleword(self):
        with pytest.raises(InstructionError):
            StoreInstruction(base="%o1", rs="%f0", size=4)
        StoreInstruction(base="%o1", rs="%f0", size=8)  # fine

    def test_swap_is_load_and_store(self):
        swap = SwapInstruction(base="%o1", offset=0, rd="%l4")
        assert swap.is_swap and swap.is_load and swap.is_store
        assert swap.size == 8
        # Reads the address base and its own data register; writes it too.
        assert set(swap.sources()) == {"r9", "r20"}
        assert swap.destination() == "r20"


class TestPseudoOps:
    def test_membar(self):
        membar = MembarInstruction()
        assert membar.is_mem and membar.is_membar
        assert membar.sources() == () and membar.destination() is None

    def test_mark(self):
        mark = MarkInstruction(label="t0")
        assert mark.is_mark and mark.fu == "none"

    def test_halt_and_nop(self):
        assert HaltInstruction().is_halt
        assert NopInstruction().fu == "int"
