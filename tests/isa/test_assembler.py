"""The textual assembler, including the paper's own listing."""

import pytest

from repro.common.errors import AssemblyError
from repro.isa.assembler import assemble
from repro.isa.instructions import (
    AluInstruction,
    BranchInstruction,
    CompareInstruction,
    LoadInstruction,
    MarkInstruction,
    MembarInstruction,
    SetInstruction,
    StoreInstruction,
    SwapInstruction,
)

PAPER_LISTING = """
.RETRY:
set 8, %l4          ! expected value
std %f0, [%o1]
std %f10, [%o1+40]
std %f12, [%o1+8]
swap [%o1], %l4     ! conditional flush
cmp %l4, 8          ! compare values
bnz .RETRY          ! retry on failure
halt
"""


class TestPaperListing:
    def test_assembles(self):
        program = assemble(PAPER_LISTING)
        assert len(program) == 8
        assert isinstance(program[0], SetInstruction)
        assert isinstance(program[1], StoreInstruction)
        assert program[1].size == 8
        assert isinstance(program[4], SwapInstruction)
        assert isinstance(program[5], CompareInstruction)
        branch = program[6]
        assert isinstance(branch, BranchInstruction)
        assert branch.op == "bne"  # bnz alias
        assert program.target_of(branch) == 0

    def test_offsets_parsed(self):
        program = assemble(PAPER_LISTING)
        assert program[2].offset == 40


class TestMemoryOperands:
    def test_plain(self):
        program = assemble("ld [%o1], %o2\nhalt")
        load = program[0]
        assert isinstance(load, LoadInstruction)
        assert load.base == "r9" and load.offset == 0 and load.size == 4

    def test_negative_offset(self):
        program = assemble("st %o2, [%o1-8]\nhalt")
        assert program[0].offset == -8

    def test_register_offset(self):
        program = assemble("ldx [%o1+%o3], %o2\nhalt")
        assert program[0].offset == "r11"

    def test_absolute_address(self):
        program = assemble("ldx [0x2000], %o2\nhalt")
        assert program[0].base == "r0" and program[0].offset == 0x2000

    def test_hex_offset(self):
        program = assemble("ldx [%o1+0x10], %o2\nhalt")
        assert program[0].offset == 16

    def test_bad_memref(self):
        with pytest.raises(AssemblyError):
            assemble("ld %o1, %o2\nhalt")


class TestSizes:
    @pytest.mark.parametrize(
        "mnemonic,size",
        [("ldub", 1), ("lduh", 2), ("ld", 4), ("ldx", 8), ("ldd", 8)],
    )
    def test_load_sizes(self, mnemonic, size):
        program = assemble(f"{mnemonic} [%o1], %o2\nhalt")
        assert program[0].size == size

    @pytest.mark.parametrize(
        "mnemonic,size",
        [("stb", 1), ("sth", 2), ("st", 4), ("stx", 8), ("std", 8)],
    )
    def test_store_sizes(self, mnemonic, size):
        program = assemble(f"{mnemonic} %o2, [%o1]\nhalt")
        assert program[0].size == size


class TestDirectivesAndSugar:
    def test_comments_and_blank_lines(self):
        program = assemble("\n! leading comment\n  nop // trailing\n\nhalt\n")
        assert len(program) == 2

    def test_label_shares_line(self):
        program = assemble("L1: nop\nba L1\nhalt")
        assert program.label_index("L1") == 0

    def test_mov_register_becomes_or(self):
        program = assemble("mov %o1, %o2\nhalt")
        alu = program[0]
        assert isinstance(alu, AluInstruction) and alu.op == "or"

    def test_mov_immediate_becomes_set(self):
        program = assemble("mov 42, %o2\nhalt")
        assert isinstance(program[0], SetInstruction)

    def test_membar_accepts_constraint_operand(self):
        program = assemble("membar #Sync\nhalt")
        assert isinstance(program[0], MembarInstruction)

    def test_mark(self):
        program = assemble("mark begin\nhalt")
        mark = program[0]
        assert isinstance(mark, MarkInstruction) and mark.label == "begin"

    def test_alu_three_operand_sparc_order(self):
        program = assemble("add %o1, 8, %o2\nhalt")
        alu = program[0]
        assert alu.rs1 == "r9" and alu.operand2 == 8 and alu.rd == "r10"


class TestErrors:
    def test_unknown_mnemonic_reports_line(self):
        with pytest.raises(AssemblyError) as exc:
            assemble("nop\nfrobnicate %o1\nhalt")
        assert exc.value.line == 2

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("add %o1, %o2\nhalt")

    def test_undefined_label_caught_at_finalize(self):
        with pytest.raises(AssemblyError):
            assemble("ba .NOWHERE\nhalt")

    def test_bad_register_wrapped_as_assembly_error(self):
        with pytest.raises(AssemblyError):
            assemble("add %q1, 1, %o1\nhalt")

    def test_bad_integer(self):
        with pytest.raises(AssemblyError):
            assemble("set banana, %o1\nhalt")
