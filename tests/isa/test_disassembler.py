"""Disassembler: rendering and assemble/disassemble round-trips."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, disassemble_instruction
from repro.isa.instructions import (
    AluInstruction,
    BlockStoreInstruction,
    LoadInstruction,
    SetInstruction,
    StoreInstruction,
    SwapInstruction,
)
from repro.workloads import (
    contending_csb_kernel,
    csb_access_kernel,
    csb_send_kernel,
    locked_access_kernel,
    store_kernel_csb,
    store_kernel_uncached,
)
from repro.workloads.blockstore import blockstore_marshalled_kernel
from tests.conftest import registry_source_params


class TestInstructionRendering:
    def test_alu(self):
        text = disassemble_instruction(AluInstruction("add", "%o1", 8, "%o2"))
        assert text == "add %r9, 8, %r10"

    def test_set(self):
        assert disassemble_instruction(SetInstruction(5, "%l0")) == "set 5, %r16"

    def test_memrefs(self):
        load = LoadInstruction(base="%o1", offset=-8, rd="%o2", size=8)
        assert disassemble_instruction(load) == "ldx [%r9-8], %r10"
        store = StoreInstruction(base="%o1", offset="%o3", rs="%f0", size=8)
        assert disassemble_instruction(store) == "std %f0, [%r9+%r11]"

    def test_swap_and_blockstore(self):
        swap = SwapInstruction(base="%o1", offset=0, rd="%l4")
        assert disassemble_instruction(swap) == "swap [%r9], %r20"
        blk = BlockStoreInstruction(base="%o1", offset=64)
        assert disassemble_instruction(blk) == "stblk [%r9+64]"


def structurally_equal(a, b) -> bool:
    """Same instruction sequence and same resolved branch targets."""
    from repro.isa.instructions import BranchInstruction

    if len(a) != len(b):
        return False
    for left, right in zip(a, b):
        if type(left) is not type(right):
            return False
        if isinstance(left, BranchInstruction):
            if left.op != right.op or a.target_of(left) != b.target_of(right):
                return False
            if left.rs1 != right.rs1:
                return False
        elif left != right:
            return False
    return True


KERNELS = [
    pytest.param(store_kernel_uncached(256), id="storebw"),
    pytest.param(store_kernel_csb(256, 64), id="storebw-csb"),
    pytest.param(locked_access_kernel(8), id="lock"),
    pytest.param(csb_access_kernel(8), id="csb-access"),
    pytest.param(contending_csb_kernel(5, 0x3000_0000, backoff=True), id="backoff"),
    pytest.param(csb_send_kernel(32, 0x3000_0000), id="nic-send"),
    pytest.param(blockstore_marshalled_kernel(), id="blockstore"),
]


def _llsc_kernel() -> str:
    from repro.evaluation.sync_mechanisms import llsc_access_kernel

    return llsc_access_kernel(4)


KERNELS.append(pytest.param(_llsc_kernel(), id="llsc"))


@pytest.mark.parametrize("source", KERNELS)
def test_round_trip(source):
    original = assemble(source)
    text = disassemble(original)
    rebuilt = assemble(text)
    assert structurally_equal(original, rebuilt), text


@pytest.mark.parametrize("source", registry_source_params())
def test_every_registered_kernel_round_trips(source):
    """Every shipped kernel, across its parameter sweep, survives
    ``assemble(disassemble(assemble(text)))`` with an identical
    instruction sequence."""
    original = assemble(source)
    rebuilt = assemble(disassemble(original))
    assert structurally_equal(original, rebuilt)


def test_disassembly_is_readable():
    listing = disassemble(assemble(csb_access_kernel(2)))
    assert "swap [%r9], %r20" in listing
    assert "L2:" in listing  # the retry label
