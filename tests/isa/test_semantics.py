"""Functional semantics: 64-bit ALU, condition codes, branch predicates."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import semantics
from repro.common.errors import SimulationError

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestAlu:
    def test_basic_ops(self):
        assert semantics.alu("add", 2, 3) == 5
        assert semantics.alu("sub", 2, 3) == (1 << 64) - 1
        assert semantics.alu("and", 0b1100, 0b1010) == 0b1000
        assert semantics.alu("or", 0b1100, 0b1010) == 0b1110
        assert semantics.alu("xor", 0b1100, 0b1010) == 0b0110
        assert semantics.alu("sll", 1, 4) == 16
        assert semantics.alu("srl", 16, 4) == 1
        assert semantics.alu("mulx", 3, 5) == 15

    def test_sra_preserves_sign(self):
        minus_two = semantics.to_unsigned(-2)
        assert semantics.to_signed(semantics.alu("sra", minus_two, 1)) == -1

    def test_shift_amount_masked_to_6_bits(self):
        assert semantics.alu("sll", 1, 64) == 1  # 64 & 63 == 0

    def test_unknown_op(self):
        with pytest.raises(SimulationError):
            semantics.alu("div", 1, 1)

    @given(a=U64, b=U64)
    def test_property_add_matches_python_mod_2_64(self, a, b):
        assert semantics.alu("add", a, b) == (a + b) % (1 << 64)

    @given(a=U64, b=U64)
    def test_property_sub_then_add_roundtrips(self, a, b):
        assert semantics.alu("add", semantics.alu("sub", a, b), b) == a


class TestSignConversion:
    @given(value=st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_property_signed_roundtrip(self, value):
        assert semantics.to_signed(semantics.to_unsigned(value)) == value


class TestCompare:
    def test_equal_sets_z(self):
        assert semantics.compare(5, 5) & semantics.CC_Z

    def test_less_than_sets_borrow(self):
        flags = semantics.compare(3, 5)
        assert flags & semantics.CC_C
        assert not flags & semantics.CC_Z

    @given(
        a=st.integers(min_value=-(1 << 62), max_value=(1 << 62) - 1),
        b=st.integers(min_value=-(1 << 62), max_value=(1 << 62) - 1),
    )
    def test_property_signed_branches_agree_with_python(self, a, b):
        flags = semantics.compare(
            semantics.to_unsigned(a), semantics.to_unsigned(b)
        )
        assert semantics.branch_taken("be", flags) == (a == b)
        assert semantics.branch_taken("bne", flags) == (a != b)
        assert semantics.branch_taken("bl", flags) == (a < b)
        assert semantics.branch_taken("bge", flags) == (a >= b)
        assert semantics.branch_taken("bg", flags) == (a > b)
        assert semantics.branch_taken("ble", flags) == (a <= b)

    @given(a=U64, b=U64)
    def test_property_unsigned_branches_agree_with_python(self, a, b):
        flags = semantics.compare(a, b)
        assert semantics.branch_taken("bgu", flags) == (a > b)
        assert semantics.branch_taken("bleu", flags) == (a <= b)


class TestBranchPredicates:
    def test_ba_always(self):
        assert semantics.branch_taken("ba", 0)

    def test_register_branches(self):
        assert semantics.branch_taken("brz", reg_value=0)
        assert not semantics.branch_taken("brz", reg_value=1)
        assert semantics.branch_taken("brnz", reg_value=7)

    def test_unknown_branch(self):
        with pytest.raises(SimulationError):
            semantics.branch_taken("bonkers", 0)
