"""Register naming and the architectural register file."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.registers import (
    RegisterFile,
    canonical_register,
    is_fp_register,
    register_names,
    RegisterError,
)


class TestCanonicalNames:
    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("%g0", "r0"),
            ("%g7", "r7"),
            ("%o0", "r8"),
            ("%o1", "r9"),
            ("%l0", "r16"),
            ("%i7", "r31"),
            ("o1", "r9"),
            ("%r5", "r5"),
            ("r31", "r31"),
            ("%f0", "f0"),
            ("%f31", "f31"),
            ("%icc", "icc"),
            ("%sp", "r14"),
            ("%fp", "r30"),
        ],
    )
    def test_aliases(self, alias, expected):
        assert canonical_register(alias) == expected

    def test_case_and_whitespace(self):
        assert canonical_register("  %O1 ") == "r9"

    @pytest.mark.parametrize("bad", ["%q1", "%r32", "%f32", "", "%"])
    def test_unknown_rejected(self, bad):
        with pytest.raises(RegisterError):
            canonical_register(bad)

    def test_register_names_complete(self):
        names = register_names()
        assert len(names) == 32 + 32 + 1
        assert "r0" in names and "f31" in names and "icc" in names

    def test_fp_classification(self):
        assert is_fp_register("f3")
        assert not is_fp_register("r3")
        assert not is_fp_register("fp")  # the frame pointer is integer


class TestRegisterFile:
    def test_initially_zero(self):
        regs = RegisterFile()
        assert regs.read("%o1") == 0

    def test_write_read_roundtrip(self):
        regs = RegisterFile()
        regs.write("%o1", 0x1234)
        assert regs.read("%o1") == 0x1234
        assert regs.read("r9") == 0x1234  # same register

    def test_g0_hardwired_zero(self):
        regs = RegisterFile()
        regs.write("%g0", 99)
        assert regs.read("%g0") == 0

    def test_values_wrap_to_64_bits(self):
        regs = RegisterFile()
        regs.write("%o1", 1 << 70)
        assert regs.read("%o1") == 0

    @given(value=st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_property_any_64bit_value_survives(self, value):
        regs = RegisterFile()
        regs.write("%l3", value)
        assert regs.read("%l3") == value

    def test_snapshot_restore(self):
        regs = RegisterFile()
        regs.write("%o1", 7)
        snap = regs.snapshot()
        regs.write("%o1", 8)
        regs.restore(snap)
        assert regs.read("%o1") == 7

    def test_restore_rejects_partial_snapshot(self):
        regs = RegisterFile()
        with pytest.raises(RegisterError):
            regs.restore({"r1": 1})
