"""Program container: labels, finalization, fetch."""

import pytest

from repro.isa.instructions import (
    BranchInstruction,
    HaltInstruction,
    NopInstruction,
)
from repro.isa.program import Program, ProgramError


def small_program() -> Program:
    program = Program("t")
    program.label("top")
    program.add(NopInstruction())
    program.add(BranchInstruction("ba", "top"))
    program.add(HaltInstruction())
    return program


class TestBuilding:
    def test_add_returns_index(self):
        program = Program()
        assert program.add(NopInstruction()) == 0
        assert program.add(HaltInstruction()) == 1

    def test_duplicate_label_rejected(self):
        program = Program()
        program.label("x")
        with pytest.raises(ProgramError):
            program.label("x")

    def test_finalized_program_is_immutable(self):
        program = small_program().finalize()
        with pytest.raises(ProgramError):
            program.add(NopInstruction())
        with pytest.raises(ProgramError):
            program.label("y")

    def test_finalize_idempotent(self):
        program = small_program()
        assert program.finalize() is program.finalize()


class TestValidation:
    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            Program().finalize()

    def test_undefined_branch_target_rejected(self):
        program = Program()
        program.add(BranchInstruction("ba", "nowhere"))
        program.add(HaltInstruction())
        with pytest.raises(ProgramError):
            program.finalize()

    def test_must_end_with_halt(self):
        program = Program()
        program.add(NopInstruction())
        with pytest.raises(ProgramError):
            program.finalize()

    def test_label_past_end_rejected(self):
        program = Program()
        program.add(BranchInstruction("ba", "end"))
        program.add(HaltInstruction())
        program.label("end")  # points past the last instruction
        with pytest.raises(ProgramError):
            program.finalize()


class TestAccess:
    def test_target_resolution(self):
        program = small_program().finalize()
        branch = program[1]
        assert isinstance(branch, BranchInstruction)
        assert program.target_of(branch) == 0
        assert program.label_index("top") == 0

    def test_fetch_in_and_out_of_range(self):
        program = small_program().finalize()
        assert program.fetch(0) is not None
        assert program.fetch(len(program)) is None
        assert program.fetch(-1) is None

    def test_iteration_and_len(self):
        program = small_program()
        assert len(program) == 3
        assert len(list(program)) == 3
