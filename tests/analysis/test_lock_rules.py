"""Lock-discipline rules: each has a violating program (pinning the rule id
and the instruction it anchors to) and a conforming program that must stay
clean."""

from repro.analysis import lint_source
from repro.workloads.lockbench import locked_access_kernel

from tests.analysis.helpers import LOCK, rules_at, rules_of


class TestDoubleAcquire:
    def test_second_acquire_of_held_lock_fires(self):
        findings = lint_source(
            f"""
            set {LOCK}, %o0
            .A: set 1, %l6
            swap [%o0], %l6
            brnz %l6, .A
            membar
            .B: set 1, %l6
            swap [%o0], %l6
            brnz %l6, .B
            membar
            stx %g0, [%o0]
            halt
            """
        )
        assert ("lock.double-acquire", 6) in rules_at(findings)

    def test_spin_loop_back_edge_is_not_a_double_acquire(self):
        # The retry edge of a normal spin loop re-executes the swap while
        # the lock is NOT held by this path; it must not fire.
        findings = lint_source(
            f"""
            set {LOCK}, %o0
            .A: set 1, %l6
            swap [%o0], %l6
            brnz %l6, .A
            membar
            stx %g0, [%o0]
            halt
            """
        )
        assert "lock.double-acquire" not in rules_of(findings)


class TestReleaseWithoutAcquire:
    def test_release_on_unacquired_path_fires(self):
        findings = lint_source(
            f"""
            set {LOCK}, %o0
            set 1, %l6
            swap [%o0], %l6
            brnz %l6, .SKIP
            membar
            stx %g0, [%o0]
            .SKIP: stx %g0, [%o0]
            halt
            """
        )
        assert ("lock.release-without-acquire", 6) in rules_at(findings)

    def test_paired_acquire_release_is_clean(self):
        findings = lint_source(
            f"""
            set {LOCK}, %o0
            .A: set 1, %l6
            swap [%o0], %l6
            brnz %l6, .A
            membar
            stx %g0, [%o0]
            halt
            """
        )
        assert findings == []


class TestNonzeroStore:
    def test_storing_nonzero_constant_into_lock_fires(self):
        findings = lint_source(
            f"""
            set {LOCK}, %o0
            .A: set 1, %l6
            swap [%o0], %l6
            brnz %l6, .A
            membar
            set 7, %l1
            stx %l1, [%o0]
            halt
            """
        )
        rules = rules_at(findings)
        assert ("lock.nonzero-store", 6) in rules
        # The bogus store does not release, so the lock is still held.
        assert ("lock.held-at-halt", 7) in rules

    def test_zero_store_release_is_clean(self):
        findings = lint_source(locked_access_kernel(4))
        assert "lock.nonzero-store" not in rules_of(findings)


class TestHeldAtHalt:
    def test_halting_with_lock_held_fires(self):
        findings = lint_source(
            f"""
            set {LOCK}, %o0
            .A: set 1, %l6
            swap [%o0], %l6
            brnz %l6, .A
            membar
            halt
            """
        )
        assert rules_at(findings) == [("lock.held-at-halt", 5)]

    def test_shipped_locked_kernel_releases_before_halt(self):
        findings = lint_source(locked_access_kernel(8))
        assert findings == []
