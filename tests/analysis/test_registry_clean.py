"""The lint gate: every shipped kernel, across its parameter sweep, must be
protocol-clean.  A finding here means a workload generator regressed into
emitting programs the simulated hardware would mishandle (lost stores,
deadlock, livelock)."""

import pytest

from repro.analysis import lint_source
from tests.conftest import registry_targets


TARGETS = list(registry_targets().values())


def test_registry_is_nonempty_and_names_are_unique():
    names = [target.name for target in TARGETS]
    assert len(names) >= 80
    assert len(set(names)) == len(names)


@pytest.mark.parametrize("target", TARGETS, ids=lambda t: t.name)
def test_shipped_kernel_lints_clean(target):
    findings = lint_source(
        target.source, context=target.context, name=target.name
    )
    assert findings == [], "\n".join(f.render() for f in findings)
