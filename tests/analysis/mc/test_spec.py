"""The abstract CSB spec: single transitions, combining, flush, locks."""

import pytest

from repro.analysis.mc.spec import (
    MUTATIONS,
    AddReg,
    BranchNZ,
    BranchZ,
    CombStore,
    CondFlush,
    DevLoad,
    DevStore,
    Goto,
    Halt,
    LockRelease,
    LockSwap,
    Membar,
    SetReg,
    SpecMachine,
    SpecProgram,
    is_local,
    spec_program,
)
from repro.common.errors import ConfigError
from repro.memory.layout import DRAM_BASE, IO_COMBINING_BASE, IO_UNCACHED_BASE

LINE0 = IO_COMBINING_BASE
LINE1 = IO_COMBINING_BASE + 64
LOCK = DRAM_BASE + 0x9000
DEV = IO_UNCACHED_BASE + 0x100


def run_one(machine, state, core=0):
    steps = machine.step(state, core)
    assert len(steps) == 1
    return steps[0][1]


def machine_of(*programs, **kwargs):
    return SpecMachine([spec_program(*p) for p in programs], **kwargs)


class TestSpecProgram:
    def test_requires_trailing_halt(self):
        with pytest.raises(ConfigError):
            SpecProgram((SetReg("l0", 1),), {})

    def test_rejects_unknown_register(self):
        with pytest.raises(ConfigError):
            spec_program(SetReg("g1", 1), Halt())

    def test_rejects_undefined_label(self):
        with pytest.raises(ConfigError):
            spec_program(Goto(".NOWHERE"), Halt())

    def test_labels_resolve_to_indices(self):
        program = spec_program(".TOP", SetReg("l0", 1), Goto(".TOP"), Halt())
        assert program.labels[".TOP"] == 0

    def test_is_local_classification(self):
        assert is_local(SetReg("l0", 1))
        assert is_local(AddReg("l0", 1))
        assert is_local(Membar())
        assert is_local(Halt())
        assert is_local(BranchZ("l0", ".X"))
        assert not is_local(CombStore(LINE0, 1))
        assert not is_local(CondFlush(LINE0, 1, "l0"))
        assert not is_local(LockSwap(LOCK, "l0"))
        assert not is_local(DevStore(DEV, 1))
        assert not is_local(DevLoad(DEV, "l0"))


class TestCombining:
    def test_stores_combine_and_count(self):
        m = machine_of([
            CombStore(LINE0, 0xA1),
            CombStore(LINE0 + 8, 0xB1),
            Halt(),
        ])
        s = m.initial_state()
        s = run_one(m, s)
        line, owner, words, counter = s.csb
        assert (line, owner, counter) == (LINE0, 0, 1)
        s = run_one(m, s)
        line, owner, words, counter = s.csb
        assert counter == 2
        assert dict(words) == {0: 0xA1, 8: 0xB1}

    def test_cross_line_store_clears_window(self):
        m = machine_of([CombStore(LINE0, 1), CombStore(LINE1, 2), Halt()])
        s = run_one(m, run_one(m, m.initial_state()))
        line, owner, words, counter = s.csb
        assert line == LINE1
        assert counter == 1
        assert dict(words) == {0: 2}

    def test_other_core_store_steals_window(self):
        m = machine_of(
            [CombStore(LINE0, 1), Halt()],
            [CombStore(LINE0 + 8, 2), Halt()],
        )
        s = run_one(m, m.initial_state(), core=0)
        s = run_one(m, s, core=1)
        line, owner, words, counter = s.csb
        assert owner == 1
        assert counter == 1
        assert dict(words) == {8: 2}


class TestConditionalFlush:
    def test_matching_flush_writes_line_and_returns_expected(self):
        m = machine_of([
            CombStore(LINE0, 0xA1),
            CombStore(LINE0 + 8, 0xB1),
            CondFlush(LINE0, 2, "l6"),
            Halt(),
        ])
        s = m.initial_state()
        for _ in range(3):
            s = run_one(m, s)
        assert s.reg(0, "l6") == 2
        assert s.word(LINE0) == 0xA1
        assert s.word(LINE0 + 8) == 0xB1
        assert s.word(LINE0 + 16) == 0  # untouched words flush as zero
        assert s.csb == (None, None, (), 0)

    def test_expected_mismatch_conflicts(self):
        m = machine_of([
            CombStore(LINE0, 0xA1),
            CondFlush(LINE0, 2, "l6"),
            Halt(),
        ])
        s = run_one(m, run_one(m, m.initial_state()))
        assert s.reg(0, "l6") == 0
        assert s.word(LINE0) == 0
        assert s.csb == (None, None, (), 0)

    def test_wrong_pid_conflicts(self):
        m = machine_of(
            [CombStore(LINE0, 1), Halt()],
            [CondFlush(LINE0, 1, "l6"), Halt()],
        )
        s = run_one(m, m.initial_state(), core=0)
        s = run_one(m, s, core=1)
        assert s.reg(1, "l6") == 0

    def test_wrong_line_conflicts(self):
        m = machine_of([
            CombStore(LINE0, 1),
            CondFlush(LINE1, 1, "l6"),
            Halt(),
        ])
        s = run_one(m, run_one(m, m.initial_state()))
        assert s.reg(0, "l6") == 0

    def test_empty_flush_conflicts(self):
        m = machine_of([CondFlush(LINE0, 0, "l6"), Halt()])
        s = run_one(m, m.initial_state())
        assert s.reg(0, "l6") == 0


class TestLocksAndDevices:
    def test_lock_swap_and_release(self):
        m = machine_of([
            LockSwap(LOCK, "l0"),
            LockRelease(LOCK),
            Halt(),
        ])
        s = run_one(m, m.initial_state())
        assert s.reg(0, "l0") == 0  # old value: lock was free
        assert s.word(LOCK) == 1
        s = run_one(m, s)
        assert s.word(LOCK) == 0

    def test_contended_swap_returns_one(self):
        m = machine_of(
            [LockSwap(LOCK, "l0"), Halt()],
            [LockSwap(LOCK, "l0"), Halt()],
        )
        s = run_one(m, m.initial_state(), core=0)
        s = run_one(m, s, core=1)
        assert s.reg(0, "l0") == 0
        assert s.reg(1, "l0") == 1

    def test_dev_store_and_load(self):
        m = machine_of([
            DevStore(DEV, 0x55),
            DevLoad(DEV, "l1"),
            Halt(),
        ])
        s = run_one(m, run_one(m, m.initial_state()))
        assert s.reg(0, "l1") == 0x55

    def test_uncached_load_bypasses_open_window(self):
        # A combining-space load reads backing memory, not the CSB window.
        m = machine_of([
            CombStore(LINE0, 0x77),
            DevLoad(LINE0, "l1"),
            Halt(),
        ])
        s = run_one(m, run_one(m, m.initial_state()))
        assert s.reg(0, "l1") == 0


class TestNacks:
    def test_nack_branch_appears_within_budget(self):
        m = machine_of(
            [CombStore(LINE0, 1), CondFlush(LINE0, 1, "l6"), Halt()],
            max_nacks=1,
        )
        s = run_one(m, m.initial_state())
        steps = m.step(s, 0)
        assert len(steps) == 2  # success and spurious-abort branches
        outcomes = sorted(ns.reg(0, "l6") for _, ns in steps)
        assert outcomes == [0, 1]
        nacked = [ns for _, ns in steps if ns.reg(0, "l6") == 0]
        assert nacked[0].nacks == 1

    def test_nack_budget_exhausts(self):
        m = machine_of(
            [CombStore(LINE0, 1), CondFlush(LINE0, 1, "l6"), Halt()],
            max_nacks=0,
        )
        s = run_one(m, m.initial_state())
        assert len(m.step(s, 0)) == 1  # deterministic: no NACK branch


class TestControlFlow:
    def test_branch_and_goto(self):
        m = machine_of([
            SetReg("l0", 2),
            ".LOOP",
            AddReg("l0", -1),
            BranchNZ("l0", ".LOOP"),
            Halt(),
        ])
        s = m.initial_state()
        while not s.all_halted:
            s = run_one(m, s)
        assert s.reg(0, "l0") == 0

    def test_mutation_names_are_stable(self):
        assert MUTATIONS == (
            "skip-expected-check",
            "skip-pid-check",
            "skip-line-check",
            "no-clear-on-conflict",
            "lock-drop",
            "lost-store",
        )

    def test_unknown_mutation_is_rejected(self):
        with pytest.raises(ConfigError):
            machine_of([Halt()], mutation="no-such-mutation")

    def test_state_render_is_json_friendly(self):
        m = machine_of([CombStore(LINE0, 1), Halt()])
        view = run_one(m, m.initial_state()).render()
        assert view["csb"]["owner"] == 0
        assert view["csb"]["line"] == f"0x{LINE0:x}"
        assert view["cores"][0]["pc"] == 1
