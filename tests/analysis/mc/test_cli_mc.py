"""The ``csb-figures mc`` subcommand: filters, JSON contract, exit codes."""

import json

from repro.evaluation.cli import main


class TestMcSelection:
    def test_list_prints_litmus_names(self, capsys):
        assert main(["mc", "--list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert "combining-order" in out
        assert "flush-flush-conflict" in out
        assert len(out) >= 12

    def test_name_filter_restricts_the_run(self, capsys):
        assert main(["mc", "window-split-local"]) == 0
        out = capsys.readouterr().out
        assert "window-split-local: ok" in out
        assert "combining-order" not in out

    def test_unknown_filter_is_a_usage_error(self, capsys):
        assert main(["mc", "no-such-test"]) == 2

    def test_unknown_mutation_is_a_usage_error(self, capsys):
        assert main(["mc", "--spec-mutation", "bogus"]) == 2

    def test_bad_budget_is_a_usage_error(self, capsys):
        assert main(["mc", "--max-states", "0"]) == 2


class TestMcChecking:
    def test_clean_suite_exits_zero(self, capsys):
        assert main(["mc", "window-split", "stale-line-flush"]) == 0

    def test_seeded_bug_exits_nonzero_with_violation(self, capsys):
        code = main(
            ["mc", "window-split-local", "--spec-mutation",
             "skip-expected-check"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out

    def test_json_report_contract(self, capsys):
        code = main(
            ["mc", "window-split-local", "--json", "--spec-mutation",
             "skip-expected-check"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "csb-mc-1"
        assert payload["total_violations"] >= 1
        [result] = payload["results"]
        assert result["mutation"] == "skip-expected-check"
        assert result["ok"] is False
        violation = result["violations"][0]
        assert set(violation) >= {
            "kind", "test", "message", "depth", "schedule", "trace", "state",
        }

    def test_json_is_byte_stable(self, capsys):
        assert main(["mc", "combining-order", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["mc", "combining-order", "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_replay_flag_cross_validates(self, capsys):
        code = main(["mc", "flush-empty", "--replay"])
        assert code == 0
        out = capsys.readouterr().out
        assert "replay ok" in out

    def test_replay_appears_in_json(self, capsys):
        assert main(["mc", "flush-empty", "--replay", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["replays"][0]["ok"] is True


class TestMcPromotion:
    def test_promote_writes_counterexample_json(self, tmp_path, capsys):
        code = main(
            ["mc", "window-split-local", "--spec-mutation",
             "skip-expected-check", "--promote", str(tmp_path)]
        )
        assert code == 1
        path = tmp_path / "cx-window-split-local.json"
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["litmus"] == "window-split-local"
        assert payload["found_with"] == "skip-expected-check"
        assert payload["schedule"]  # completed core id sequence

    def test_promoted_file_round_trips_as_a_workload(self, tmp_path, capsys):
        from repro.workloads.counterexamples import CounterexampleWorkload

        main(
            ["mc", "window-split-local", "--spec-mutation",
             "skip-expected-check", "--promote", str(tmp_path)]
        )
        payload = json.loads(
            (tmp_path / "cx-window-split-local.json").read_text()
        )
        workload = CounterexampleWorkload.from_dict(payload)
        assert workload.replay().ok  # divergence-free on the correct spec
        assert workload.check_still_violates()  # still trips under mutation
