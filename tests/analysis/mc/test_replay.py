"""Cross-validation: the detailed simulator against the abstract spec.

The acceptance bar: for several litmus tests, *every* enumerated schedule
replays through the out-of-order simulator with registers, CSB window,
and memory equal to the spec after every abstract op.
"""

import pytest

from repro.analysis.mc import (
    Budget,
    get_test,
    replay_schedule,
    replay_test,
    watched_words,
)
from repro.analysis.mc.litmus import LINE_SIZE
from repro.common.errors import ConfigError

#: Tests whose complete schedule set is replayed end to end.
EXHAUSTIVE = [
    "combining-order",
    "window-split-local",
    "stale-line-flush",
    "conflict-clears",
    "flush-empty",
    "pid-isolation",
    "lock-handoff",
]

#: Contention tests with large schedule spaces: replay a capped sample.
SAMPLED = ["window-split-cross", "flush-flush-conflict", "mixed-lock-csb"]


class TestExhaustiveReplay:
    @pytest.mark.parametrize("name", EXHAUSTIVE)
    def test_every_schedule_matches_the_spec(self, name):
        report = replay_test(get_test(name))
        assert report.ok, [d.render() for d in report.divergences]
        assert report.schedules >= 1
        assert report.steps >= report.schedules


class TestSampledReplay:
    @pytest.mark.parametrize("name", SAMPLED)
    def test_sampled_schedules_match_the_spec(self, name):
        report = replay_test(get_test(name), max_schedules=10)
        assert report.ok, [d.render() for d in report.divergences]
        assert report.schedules == 10


class TestReplayMechanics:
    def test_nack_tests_are_rejected(self):
        with pytest.raises(ConfigError, match="not.*replayable"):
            replay_test(get_test("nack-retry"))

    def test_report_serializes(self):
        report = replay_test(get_test("flush-empty"))
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["test"] == "flush-empty"
        assert payload["divergences"] == []

    def test_watched_words_cover_whole_combining_lines(self):
        words = watched_words(get_test("combining-order"))
        assert len(words) == LINE_SIZE // 8
        assert words == sorted(words)

    def test_watched_words_include_lock_and_device(self):
        words = watched_words(get_test("mixed-lock-csb"))
        test = get_test("mixed-lock-csb")
        # Every non-combining address any op touches must be watched.
        for program in test.programs:
            for op in program.ops:
                addr = getattr(op, "addr", None)
                if addr is not None:
                    line = addr & ~(LINE_SIZE - 1)
                    assert addr in words or line in words

    def test_incomplete_schedule_is_rejected(self):
        test = get_test("combining-order")
        from repro.analysis.mc import enumerate_schedules

        [schedule] = enumerate_schedules(test.machine())
        with pytest.raises(ConfigError, match="before every core halted"):
            replay_schedule(test, schedule[:-1])
