"""The explorer: litmus suite, mutations, budgets, POR, schedules."""

import json

import pytest

from repro.analysis.mc import (
    Budget,
    enumerate_schedules,
    get_test,
    litmus_tests,
    results_to_json,
)
from repro.analysis.mc.spec import MUTATIONS
from repro.common.errors import ConfigError

#: Generous budget: every litmus test completes well inside it.
FULL = Budget(max_states=50_000, max_depth=200)


class TestCorrectSpec:
    def test_every_litmus_test_is_violation_free(self):
        for test in litmus_tests():
            result = test.run(FULL)
            assert result.ok, (
                f"{test.name} violated on the correct spec: "
                f"{[v.message for v in result.violations]}"
            )
            assert result.complete, f"{test.name} truncated by budget"

    def test_default_budget_is_also_clean(self):
        for test in litmus_tests():
            result = test.run()
            assert result.ok and result.complete, test.name


class TestMutations:
    def test_every_mutation_is_caught_by_its_litmus_tests(self):
        for test in litmus_tests():
            for mutation in test.caught_by:
                result = test.run(FULL, mutation=mutation)
                assert not result.ok, (
                    f"{test.name} failed to catch mutation {mutation}"
                )

    def test_every_mutation_is_covered_by_some_test(self):
        covered = set()
        for test in litmus_tests():
            covered.update(test.caught_by)
        assert covered == set(MUTATIONS)

    def test_violation_carries_a_replayable_trace(self):
        result = get_test("window-split-local").run(
            FULL, mutation="skip-expected-check"
        )
        violation = result.violations[0]
        assert violation.schedule  # core ids, replayable via promote
        assert violation.trace  # labelled steps for humans
        assert violation.depth == len(violation.trace)
        rendered = violation.render()
        assert "window-split-local" in rendered


class TestBudgets:
    def test_state_budget_truncates_and_flags_incomplete(self):
        result = get_test("flush-flush-conflict").run(
            Budget(max_states=10, max_depth=200)
        )
        assert not result.complete
        assert result.states <= 10

    def test_depth_budget_truncates_and_flags_incomplete(self):
        result = get_test("flush-flush-conflict").run(
            Budget(max_states=50_000, max_depth=2)
        )
        assert not result.complete
        assert result.max_depth_seen <= 2

    def test_invalid_budget_is_rejected(self):
        with pytest.raises(ConfigError):
            Budget(max_states=0)
        with pytest.raises(ConfigError):
            Budget(max_depth=-1)


class TestPartialOrderReduction:
    def test_local_ops_collapse_into_chains(self):
        # combining-order is one core with 3 stores + flush + branch +
        # halt; POR fuses the trailing local ops so the state count is
        # the shared-op count plus the initial state, not one per op.
        result = get_test("combining-order").run(FULL)
        assert result.states <= 7

    def test_interleaving_count_is_reduced_but_exhaustive(self):
        # Two 5-op cores naively give C(10,5)=252 interleavings of ops;
        # POR must stay well under that while still finding every
        # violation (mutation coverage above proves the latter).
        result = get_test("flush-flush-conflict").run(FULL)
        assert result.states < 252


class TestEnumerateSchedules:
    def test_single_core_test_has_one_schedule(self):
        schedules = enumerate_schedules(get_test("combining-order").machine())
        assert len(schedules) == 1

    def test_schedules_cover_both_orders(self):
        schedules = enumerate_schedules(get_test("pid-isolation").machine())
        first_cores = {schedule[0].core for schedule in schedules}
        assert first_cores == {0, 1}

    def test_max_schedules_caps_enumeration(self):
        schedules = enumerate_schedules(
            get_test("flush-flush-conflict").machine(), max_schedules=5
        )
        assert len(schedules) == 5

    def test_spin_loops_are_pruned_to_finite_schedules(self):
        # lock-handoff spins on the lock word; stutter-equivalent revisits
        # are pruned so enumeration terminates.
        schedules = enumerate_schedules(get_test("lock-handoff").machine())
        assert 0 < len(schedules) < 100


class TestJsonReport:
    def test_report_is_stable_sorted_json(self):
        results = [get_test("combining-order").run(FULL)]
        text = results_to_json(results, FULL)
        payload = json.loads(text)
        assert payload["schema"] == "csb-mc-1"
        assert payload["total_violations"] == 0
        assert payload["results"][0]["test"] == "combining-order"
        # Byte-stable: serializing twice gives identical text.
        assert text == results_to_json(results, FULL)
        keys = [
            line.split('"')[1]
            for line in text.splitlines()
            if '":' in line
        ]
        top = payload.keys()
        assert list(top) == sorted(top)

    def test_violations_serialize_with_schedule_and_state(self):
        result = get_test("window-split-local").run(
            FULL, mutation="skip-expected-check"
        )
        payload = json.loads(results_to_json([result], FULL))
        violation = payload["results"][0]["violations"][0]
        assert violation["schedule"] == [0, 0, 0, 0]
        assert violation["kind"] == "final"
        assert "state" in violation
