"""Finding objects: JSON contract, ordering, rendering."""

import json

import pytest

from repro.analysis import (
    RULES,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    all_rules,
    findings_to_json,
    sort_findings,
)


def make(rule="csb.flush-empty", index=3, program="p", message="m", hint="h"):
    return Finding(
        rule=rule,
        severity=SEVERITY_ERROR,
        index=index,
        instruction="swap [%o1], %l4",
        message=message,
        hint=hint,
        program=program,
    )


class TestFinding:
    def test_to_dict_shape_is_stable(self):
        # This key set is the machine-readable contract CI consumes;
        # fields may be added, never renamed or removed.
        assert set(make().to_dict()) == {
            "rule",
            "severity",
            "index",
            "instruction",
            "message",
            "hint",
            "program",
        }

    def test_unknown_severity_is_rejected(self):
        with pytest.raises(ValueError):
            Finding(
                rule="csb.flush-empty",
                severity="fatal",
                index=0,
                instruction="halt",
                message="m",
            )

    def test_render_mentions_rule_location_and_hint(self):
        line = make().render()
        assert "p:3" in line
        assert "[csb.flush-empty]" in line
        assert "hint: h" in line

    def test_program_name_does_not_affect_equality(self):
        assert make(program="a") == make(program="b")


class TestOrdering:
    def test_sorted_by_program_then_index_then_rule(self):
        findings = [
            make(program="b", index=1),
            make(program="a", index=9),
            make(program="a", index=2, rule="lock.held-at-halt"),
            make(program="a", index=2, rule="csb.no-retry"),
        ]
        ordered = sort_findings(findings)
        assert [(f.program, f.index, f.rule) for f in ordered] == [
            ("a", 2, "csb.no-retry"),
            ("a", 2, "lock.held-at-halt"),
            ("a", 9, "csb.flush-empty"),
            ("b", 1, "csb.flush-empty"),
        ]


class TestJson:
    def test_round_trips_through_json(self):
        payload = json.loads(findings_to_json([make()]))
        assert payload == [make().to_dict()]

    def test_empty_findings_is_an_empty_array(self):
        assert json.loads(findings_to_json([])) == []


class TestRuleCatalog:
    def test_every_rule_has_a_valid_severity(self):
        assert set(RULES.values()) <= {SEVERITY_ERROR, SEVERITY_WARNING}

    def test_all_rules_is_sorted_and_complete(self):
        assert all_rules() == sorted(RULES)
        assert len(all_rules()) == 16

    def test_smp_group_rule_is_registered(self):
        assert RULES["smp.unpaired-lock"] == SEVERITY_ERROR


#: Byte-for-byte golden serialization of one finding.  If this test
#: breaks, the JSON contract changed: bump docs/static_analysis.md and the
#: consumers before touching the expectation.
GOLDEN_JSON = """\
[
  {
    "hint": "h",
    "index": 3,
    "instruction": "swap [%o1], %l4",
    "message": "m",
    "program": "p",
    "rule": "csb.flush-empty",
    "severity": "error"
  }
]"""


class TestJsonStability:
    def test_golden_serialization_is_byte_stable(self):
        assert findings_to_json([make()]) == GOLDEN_JSON

    def test_keys_are_sorted(self):
        text = findings_to_json([make()])
        keys = [line.split('"')[1] for line in text.splitlines() if '":' in line]
        assert keys == sorted(keys)

    def test_from_dict_round_trip(self):
        finding = make()
        clone = Finding.from_dict(finding.to_dict())
        assert clone == finding
        assert clone.program == finding.program

    def test_from_dict_rejects_unknown_fields(self):
        data = make().to_dict()
        data["extra"] = 1
        with pytest.raises(ValueError):
            Finding.from_dict(data)

    def test_severity_values_are_pinned(self):
        # The wire values are part of the contract: exactly these strings.
        assert make().to_dict()["severity"] == "error"
        warn = Finding(
            rule="cfg.unreachable",
            severity=SEVERITY_WARNING,
            index=0,
            instruction="halt",
            message="m",
        )
        assert warn.to_dict()["severity"] == "warning"
