"""Membar-placement rules (the paper's Figure 5 fences)."""

from repro.analysis import lint_source
from repro.workloads.messaging import pio_send_kernel

from tests.analysis.helpers import DEVICE, LOCK, rules_at, rules_of


class TestMembarAfterAcquire:
    def test_device_store_right_after_acquire_fires(self):
        findings = lint_source(
            f"""
            set {LOCK}, %o0
            set {DEVICE}, %o1
            .A: set 1, %l6
            swap [%o0], %l6
            brnz %l6, .A
            stx %l0, [%o1]
            membar
            stx %g0, [%o0]
            halt
            """
        )
        assert ("membar.missing-after-acquire", 5) in rules_at(findings)

    def test_membar_between_acquire_and_device_store_is_clean(self):
        findings = lint_source(
            f"""
            set {LOCK}, %o0
            set {DEVICE}, %o1
            .A: set 1, %l6
            swap [%o0], %l6
            brnz %l6, .A
            membar
            stx %l0, [%o1]
            membar
            stx %g0, [%o0]
            halt
            """
        )
        assert findings == []


class TestMembarBeforeRelease:
    def test_release_right_after_device_store_fires(self):
        findings = lint_source(
            f"""
            set {LOCK}, %o0
            set {DEVICE}, %o1
            .A: set 1, %l6
            swap [%o0], %l6
            brnz %l6, .A
            membar
            stx %l0, [%o1]
            stx %g0, [%o0]
            halt
            """
        )
        assert rules_at(findings) == [("membar.missing-before-release", 7)]

    def test_shipped_pio_send_fences_both_sides(self):
        findings = lint_source(pio_send_kernel(32, DEVICE))
        assert "membar.missing-after-acquire" not in rules_of(findings)
        assert "membar.missing-before-release" not in rules_of(findings)
        assert findings == []
