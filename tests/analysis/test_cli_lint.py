"""The ``csb-figures lint`` subcommand: exit codes and output formats."""

import json

from repro.analysis.protocol import LintContext
from repro.analysis.registry import LintTarget
from repro.evaluation.cli import main

from tests.analysis.helpers import CSB


VIOLATING = LintTarget(
    name="violating-kernel",
    source=f"set {CSB}, %o1\nstx %l0, [%o1]\nhalt",
    context=LintContext(),
)


def test_clean_registry_exits_zero(capsys):
    assert main(["lint"]) == 0
    captured = capsys.readouterr()
    assert "0 finding(s)" in captured.err


def test_json_format_is_parseable_and_empty_when_clean(capsys):
    assert main(["lint", "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out) == []


def test_findings_force_nonzero_exit(monkeypatch, capsys):
    import repro.analysis

    monkeypatch.setattr(
        repro.analysis, "iter_lint_targets", lambda: iter([VIOLATING])
    )
    assert main(["lint"]) == 1
    captured = capsys.readouterr()
    assert "csb.unflushed-window" in captured.out


def test_json_format_carries_the_finding(monkeypatch, capsys):
    import repro.analysis

    monkeypatch.setattr(
        repro.analysis, "iter_lint_targets", lambda: iter([VIOLATING])
    )
    assert main(["lint", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["rule"] for f in payload] == ["csb.unflushed-window"]
    assert payload[0]["program"] == "violating-kernel"
    assert payload[0]["index"] == 1


def test_name_filter_narrows_targets(capsys):
    assert main(["lint", "blockstore", "--list"]) == 0
    names = capsys.readouterr().out.split()
    assert names == ["blockstore", "blockstore-marshalled"]


def test_unmatched_filter_is_an_error(capsys):
    assert main(["lint", "no-such-kernel"]) == 2


def test_rules_listing_matches_catalog(capsys):
    from repro.analysis import all_rules

    assert main(["lint", "--rules"]) == 0
    assert capsys.readouterr().out.split() == all_rules()
