"""Combining-window and conditional-flush rules."""

from repro.analysis import LintContext, lint_source
from repro.workloads.contention import contending_csb_kernel
from repro.workloads.messaging import csb_send_kernel
from repro.workloads.storebw import store_kernel_csb

from tests.analysis.helpers import CSB, DEVICE, rules_at, rules_of


class TestFlushEmpty:
    def test_flush_with_no_store_in_flight_fires(self):
        findings = lint_source(
            f"""
            set {CSB}, %o1
            .R: set 1, %l4
            swap [%o1], %l4
            cmp %l4, 1
            bnz .R
            halt
            """
        )
        assert ("csb.flush-empty", 2) in rules_at(findings)

    def test_store_then_flush_is_clean(self):
        findings = lint_source(
            f"""
            set {CSB}, %o1
            .R: set 1, %l4
            stx %l0, [%o1]
            swap [%o1], %l4
            cmp %l4, 1
            bnz .R
            halt
            """
        )
        assert findings == []


class TestStoreOutsideWindow:
    def test_store_past_the_open_line_fires(self):
        findings = lint_source(
            f"""
            set {CSB}, %o1
            .R: set 2, %l4
            stx %l0, [%o1]
            stx %l0, [%o1+64]
            swap [%o1], %l4
            cmp %l4, 2
            bnz .R
            halt
            """
        )
        assert ("csb.store-outside-window", 3) in rules_at(findings)

    def test_wider_context_line_accepts_the_same_stores(self):
        # The identical store pair fits one 128-byte line.
        findings = lint_source(
            f"""
            set {CSB}, %o1
            .R: set 2, %l4
            stx %l0, [%o1]
            stx %l0, [%o1+64]
            swap [%o1], %l4
            cmp %l4, 2
            bnz .R
            halt
            """,
            context=LintContext(line_size=128),
        )
        assert findings == []

    def test_shipped_csb_store_kernel_stays_in_window(self):
        for line_size in (64, 128):
            findings = lint_source(
                store_kernel_csb(256, line_size),
                context=LintContext(line_size=line_size),
            )
            assert findings == []


class TestFlushWrongLine:
    def test_flush_of_a_different_line_fires(self):
        findings = lint_source(
            f"""
            set {CSB}, %o1
            .R: set 1, %l4
            stx %l0, [%o1]
            swap [%o1+64], %l4
            cmp %l4, 1
            bnz .R
            halt
            """
        )
        assert ("csb.flush-wrong-line", 3) in rules_at(findings)


class TestExpectedMismatch:
    def test_wrong_expected_count_fires(self):
        findings = lint_source(
            f"""
            set {CSB}, %o1
            .R: set 3, %l4
            stx %l0, [%o1]
            stx %l0, [%o1+8]
            swap [%o1], %l4
            cmp %l4, 3
            bnz .R
            halt
            """
        )
        assert rules_at(findings) == [("csb.expected-mismatch", 4)]

    def test_matching_count_is_clean(self):
        findings = lint_source(csb_send_kernel(16, CSB))
        assert findings == []


class TestSplitSequence:
    def test_interleaved_plain_uncached_store_fires(self):
        findings = lint_source(
            f"""
            set {CSB}, %o1
            set {DEVICE}, %o2
            .R: set 2, %l4
            stx %l0, [%o1]
            stx %l0, [%o2]
            stx %l0, [%o1+8]
            swap [%o1], %l4
            cmp %l4, 2
            bnz .R
            halt
            """
        )
        assert ("csb.split-sequence", 4) in rules_at(findings)

    def test_device_store_after_the_flush_is_clean(self):
        findings = lint_source(
            f"""
            set {CSB}, %o1
            set {DEVICE}, %o2
            .R: set 1, %l4
            stx %l0, [%o1]
            swap [%o1], %l4
            cmp %l4, 1
            bnz .R
            stx %l0, [%o2]
            halt
            """
        )
        assert findings == []


class TestNoRetry:
    def test_unchecked_flush_fires_at_the_flush_site(self):
        findings = lint_source(
            f"""
            set {CSB}, %o1
            set 1, %l4
            stx %l0, [%o1]
            swap [%o1], %l4
            halt
            """
        )
        assert rules_at(findings) == [("csb.no-retry", 3)]

    def test_brz_retry_loop_is_clean(self):
        # Checking the raw flush result with brz (zero = conflict) is the
        # branch idiom the contention kernel uses.
        findings = lint_source(contending_csb_kernel(2, CSB, n_doublewords=4))
        assert findings == []


class TestUnflushedWindow:
    def test_halting_with_open_window_fires_at_open_site(self):
        findings = lint_source(
            f"""
            set {CSB}, %o1
            stx %l0, [%o1]
            halt
            """
        )
        assert rules_at(findings) == [("csb.unflushed-window", 1)]

    def test_flushed_window_is_clean(self):
        findings = lint_source(csb_send_kernel(64, CSB))
        assert "csb.unflushed-window" not in rules_of(findings)
        assert findings == []
