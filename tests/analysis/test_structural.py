"""Structural warnings: unreachable code and use-before-def."""

from repro.analysis import lint_source
from repro.workloads.lockbench import csb_access_kernel

from tests.analysis.helpers import rules_at, rules_of


class TestUnreachable:
    def test_code_after_unconditional_branch_fires(self):
        findings = lint_source(
            """
            set 1, %l0
            ba .END
            set 2, %l1
            .END: halt
            """
        )
        assert rules_at(findings) == [("cfg.unreachable", 2)]

    def test_code_after_halt_fires(self):
        findings = lint_source(
            """
            set 1, %l0
            halt
            set 2, %l1
            halt
            """
        )
        assert ("cfg.unreachable", 2) in rules_at(findings)

    def test_diamond_with_both_arms_reachable_is_clean(self):
        findings = lint_source(
            """
            set 1, %l0
            cmp %l0, 1
            be .THEN
            set 2, %l1
            ba .END
            .THEN: set 3, %l1
            .END: halt
            """
        )
        assert findings == []


class TestUseBeforeDef:
    def test_read_before_program_definition_fires(self):
        findings = lint_source(
            """
            add %l4, 1, %l3
            set 5, %l4
            halt
            """
        )
        assert rules_at(findings) == [("reg.use-before-def", 0)]

    def test_defined_on_one_arm_only_fires_at_merge(self):
        findings = lint_source(
            """
            set 1, %l0
            cmp %l0, 1
            be .SKIP
            set 2, %l1
            .SKIP: add %l1, 1, %l2
            halt
            """
        )
        assert ("reg.use-before-def", 4) in rules_at(findings)

    def test_never_written_registers_are_harness_inputs(self):
        # Shipped kernels read %l0..%l3 payload registers the harness
        # preloads; a register the program never writes must not fire.
        findings = lint_source(csb_access_kernel(4))
        assert "reg.use-before-def" not in rules_of(findings)
        assert findings == []

    def test_defined_on_every_arm_is_clean(self):
        findings = lint_source(
            """
            set 1, %l0
            cmp %l0, 1
            be .THEN
            set 2, %l1
            ba .JOIN
            .THEN: set 3, %l1
            .JOIN: add %l1, 1, %l2
            halt
            """
        )
        assert findings == []
