"""Shared helpers for the static-analysis tests.

Address constants follow the default memory map: cached DRAM at 0x0,
plain-uncached device space at 0x2000_0000, uncached-combining (CSB)
space at 0x3000_0000.  ``rules_at`` collapses a findings list to
``(rule, index)`` pairs so violating-program tests can pin both the rule
id and the instruction it anchors to.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis import Finding
from repro.memory.layout import DRAM_BASE, IO_COMBINING_BASE, IO_UNCACHED_BASE

LOCK = DRAM_BASE + 0x8000
DEVICE = IO_UNCACHED_BASE
CSB = IO_COMBINING_BASE


def rules_at(findings: List[Finding]) -> List[Tuple[str, int]]:
    return [(finding.rule, finding.index) for finding in findings]


def rules_of(findings: List[Finding]) -> List[str]:
    return [finding.rule for finding in findings]
