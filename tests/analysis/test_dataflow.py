"""The worklist engine itself, exercised with a tiny custom analysis."""

import pytest

from repro.analysis import Analysis, build_cfg, report_pass, solve
from repro.isa.assembler import assemble
from repro.isa.instructions import BranchInstruction, HaltInstruction

DIAMOND = """
set 1, %l0
cmp %l0, 1
be .THEN
set 2, %l1
ba .JOIN
.THEN: set 3, %l1
.JOIN: halt
"""

LOOP = """
set 0, %l0
.LOOP: add %l0, 1, %l0
cmp %l0, 5
bne .LOOP
halt
"""


class PathBits(Analysis):
    """State = frozenset of block ids any path to here has executed.

    Join is set union, so the analysis converges and the merge point of a
    diamond must see both arms.
    """

    def initial_state(self):
        return frozenset()

    def join(self, left, right):
        return left | right

    def transfer(self, cfg, block, state, report=None):
        out = state | {block.block_id}
        if report is not None:
            report("cfg.unreachable", block.start, f"visited {block.block_id}", "")
        last = cfg.program[block.end - 1]
        successors = {}
        if isinstance(last, BranchInstruction):
            taken = cfg.block_starting_at(
                cfg.program.target_of(last)
            ).block_id
            successors[taken] = out
            if last.op != "ba" and block.end < len(cfg.program):
                successors[block.block_id + 1] = out
        elif not isinstance(last, HaltInstruction) and block.end < len(
            cfg.program
        ):
            successors[block.block_id + 1] = out
        return successors


class NonMonotone(PathBits):
    """Deliberately broken: the out-state flips every visit."""

    def __init__(self):
        self.flip = 0

    def transfer(self, cfg, block, state, report=None):
        self.flip += 1
        successors = super().transfer(cfg, block, state, report)
        return {k: frozenset({self.flip}) for k in successors}


class TestSolve:
    def test_diamond_merge_joins_both_arms(self):
        cfg = build_cfg(assemble(DIAMOND))
        in_states = solve(cfg, PathBits())
        join_block = cfg.block_starting_at(6)
        then_block = cfg.block_starting_at(5)
        fall_block = cfg.block_starting_at(3)
        merged = in_states[join_block.block_id]
        assert then_block.block_id in merged
        assert fall_block.block_id in merged

    def test_loop_reaches_fixpoint(self):
        cfg = build_cfg(assemble(LOOP))
        in_states = solve(cfg, PathBits())
        # The loop header's in-state includes the loop body itself (via the
        # back edge) once converged.
        header = cfg.block_starting_at(1)
        assert header.block_id in in_states[header.block_id]

    def test_unreachable_blocks_get_no_in_state(self):
        cfg = build_cfg(assemble("set 1, %l0\nhalt\nset 2, %l1\nhalt"))
        in_states = solve(cfg, PathBits())
        assert set(in_states) == {0}

    def test_non_monotone_transfer_is_detected(self):
        cfg = build_cfg(assemble(LOOP))
        with pytest.raises(RuntimeError, match="did not converge"):
            solve(cfg, NonMonotone(), max_iterations=50)


NESTED_SPIN = """
set 0, %l0
.OUTER: add %l0, 1, %l0
set 0, %l1
.INNER: add %l1, 1, %l1
cmp %l1, 3
bne .INNER
cmp %l0, 5
bne .OUTER
halt
"""

#: A jump over dead code inside a loop: the block after ``ba`` is
#: unreachable even though it sits between two reachable blocks.
DEAD_IN_LOOP = """
set 0, %l0
.LOOP: add %l0, 1, %l0
ba .SKIP
set 99, %l7
.SKIP: cmp %l0, 4
bne .LOOP
halt
"""


class TestNestedLoops:
    def test_nested_spin_loops_reach_fixpoint(self):
        # Both back edges (inner and outer) must be iterated to
        # convergence; the outer header's in-state eventually includes the
        # inner body flowing around the outer back edge.
        cfg = build_cfg(assemble(NESTED_SPIN))
        in_states = solve(cfg, PathBits())
        outer_header = cfg.block_starting_at(1)
        inner_header = cfg.block_starting_at(3)
        assert inner_header.block_id in in_states[outer_header.block_id]
        assert outer_header.block_id in in_states[inner_header.block_id]

    def test_nested_spin_loops_converge_under_protocol_lattice(self):
        # The protocol domain widens loop-carried register values to TOP
        # rather than tracking each iterate, so a nested spin loop must
        # converge in few iterations and without findings.
        from repro.analysis import lint_source

        assert lint_source(NESTED_SPIN) == []

    def test_nested_loop_iteration_count_is_bounded(self):
        # Convergence must come from the join, not from max_iterations:
        # a nested two-loop CFG (6 blocks) has to settle well under 100
        # worklist pops.
        cfg = build_cfg(assemble(NESTED_SPIN))
        with pytest.raises(RuntimeError):
            solve(cfg, NonMonotone(), max_iterations=100)
        solve(cfg, PathBits(), max_iterations=100)  # must not raise


class TestUnreachablePruning:
    def test_block_jumped_over_inside_loop_gets_no_in_state(self):
        cfg = build_cfg(assemble(DEAD_IN_LOOP))
        in_states = solve(cfg, PathBits())
        dead = cfg.block_starting_at(3)  # set 99, %l7
        assert dead.block_id not in in_states

    def test_report_pass_skips_pruned_blocks(self):
        cfg = build_cfg(assemble(DEAD_IN_LOOP))
        analysis = PathBits()
        in_states = solve(cfg, analysis)
        seen = []
        report_pass(
            cfg, analysis, in_states, lambda rule, i, m, h: seen.append(i)
        )
        dead = cfg.block_starting_at(3)
        assert dead.start not in seen

    def test_dead_block_is_still_flagged_by_the_linter(self):
        # Pruning is an engine property; the structural check still tells
        # the user about the dead code.
        from repro.analysis import lint_source

        findings = lint_source(DEAD_IN_LOOP)
        assert any(f.rule == "cfg.unreachable" for f in findings)
        assert all(f.rule == "cfg.unreachable" for f in findings)


class TestReportPass:
    def test_reports_each_reachable_block_once_after_convergence(self):
        cfg = build_cfg(assemble("set 1, %l0\nhalt\nset 2, %l1\nhalt"))
        analysis = PathBits()
        in_states = solve(cfg, analysis)
        seen = []

        def report(rule, index, message, hint):
            seen.append(index)

        report_pass(cfg, analysis, in_states, report)
        # Only the reachable entry block reports; the dead block does not.
        assert seen == [0]
