"""The cross-program ``smp.unpaired-lock`` group rule."""

from repro.analysis import LintTarget, lint_group, lint_groups
from repro.memory.layout import DRAM_BASE, IO_UNCACHED_BASE

LOCK = DRAM_BASE + 0x9000
DEV = IO_UNCACHED_BASE + 0x100


def acquirer(membar_after: bool) -> str:
    fence = "membar\n" if membar_after else ""
    return (
        f".SPIN:\n"
        f"set {LOCK}, %o0\n"
        f"set 1, %l0\n"
        f"swap [%o0], %l0\n"
        f"brnz %l0, .SPIN\n"
        f"{fence}"
        f"set {DEV}, %o1\n"
        f"set 7, %o2\n"
        f"stx %o2, [%o1]\n"
        f"halt\n"
    )


def releaser(membar_before: bool) -> str:
    fence = "membar\n" if membar_before else ""
    return f"{fence}set {LOCK}, %o0\nstx %g0, [%o0]\nhalt\n"


def group(acq_fenced: bool, rel_fenced: bool):
    return [
        LintTarget("acq", acquirer(acq_fenced)),
        LintTarget("rel", releaser(rel_fenced)),
    ]


class TestUnpairedLock:
    def test_unfenced_handoff_flags_both_sides(self):
        findings = lint_group(group(False, False))
        assert [f.rule for f in findings] == ["smp.unpaired-lock"] * 2
        assert {f.program for f in findings} == {"acq", "rel"}
        assert all(f.severity == "error" for f in findings)

    def test_unfenced_acquire_flags_only_the_acquirer(self):
        findings = lint_group(group(False, True))
        assert [f.program for f in findings] == ["acq"]
        assert "no membar after" in findings[0].message

    def test_unfenced_release_flags_only_the_releaser(self):
        findings = lint_group(group(True, False))
        assert [f.program for f in findings] == ["rel"]
        assert "no membar before" in findings[0].message

    def test_fenced_handoff_is_clean(self):
        assert lint_group(group(True, True)) == []

    def test_findings_carry_disassembly_and_location(self):
        [finding] = lint_group(group(True, False))
        assert "stx" in finding.instruction
        assert finding.index >= 0


class TestNotAHandoff:
    def test_self_contained_lock_user_is_not_flagged(self):
        # A program that acquires AND releases its own lock pairs locally;
        # running two copies together is not a handoff.
        source = (
            f".SPIN:\n"
            f"set {LOCK}, %o0\n"
            f"set 1, %l0\n"
            f"swap [%o0], %l0\n"
            f"brnz %l0, .SPIN\n"
            f"membar\n"
            f"set {DEV}, %o1\n"
            f"stx %l0, [%o1]\n"
            f"membar\n"
            f"stx %g0, [%o0]\n"
            f"halt\n"
        )
        findings = lint_group(
            [LintTarget("core0", source), LintTarget("core1", source)]
        )
        assert findings == []

    def test_release_with_no_foreign_acquire_is_not_flagged(self):
        # A lone release (no other program acquires the lock) is the
        # single-program linter's lock.release-without-acquire, not a
        # cross-program handoff.
        findings = lint_group([LintTarget("rel", releaser(False))])
        assert findings == []

    def test_lockless_programs_are_clean(self):
        source = f"set {DEV}, %o0\nset 1, %o1\nstx %o1, [%o0]\nhalt\n"
        assert lint_group([LintTarget("a", source)]) == []


class TestRegistryGroups:
    def test_registry_groups_exist_and_are_clean(self):
        groups = lint_groups()
        names = [g.name for g in groups]
        assert "smp-csb" in names
        assert any(name.startswith("smp-locked") for name in names)
        assert any(name.startswith("cx-") for name in names)
        for g in groups:
            assert lint_group(g.targets) == [], g.name
