"""Promoted counterexample workloads: the permanent regression set."""

import json

import pytest

from repro.analysis.mc import Budget, get_test
from repro.analysis.mc.promote import (
    complete_schedule,
    promote_violation,
    realize_schedule,
    write_counterexamples,
)
from repro.common.errors import ConfigError
from repro.workloads.counterexamples import (
    COUNTEREXAMPLES,
    CounterexampleWorkload,
    get_counterexample,
)


class TestPromotedSet:
    def test_exactly_the_two_promoted_interleavings(self):
        assert [w.name for w in COUNTEREXAMPLES] == [
            "cx-window-split-cross",
            "cx-flush-flush-conflict",
        ]

    @pytest.mark.parametrize("workload", COUNTEREXAMPLES, ids=lambda w: w.name)
    def test_schedule_is_complete_on_the_correct_spec(self, workload):
        trace, state = workload.trace()
        assert state.all_halted
        assert len(trace) == len(workload.schedule)

    @pytest.mark.parametrize("workload", COUNTEREXAMPLES, ids=lambda w: w.name)
    def test_replays_divergence_free_through_the_simulator(self, workload):
        report = workload.replay()
        assert report.ok, [d.render() for d in report.divergences]
        assert report.steps > 0

    @pytest.mark.parametrize("workload", COUNTEREXAMPLES, ids=lambda w: w.name)
    def test_still_violates_under_its_mutation(self, workload):
        message = workload.check_still_violates()
        assert message.startswith(("invariant:", "final:"))

    @pytest.mark.parametrize("workload", COUNTEREXAMPLES, ids=lambda w: w.name)
    def test_round_trips_through_json(self, workload):
        clone = CounterexampleWorkload.from_dict(
            json.loads(json.dumps(workload.to_dict()))
        )
        assert clone == workload

    def test_flush_flush_schedule_exercises_real_contention(self):
        workload = get_counterexample("cx-flush-flush-conflict")
        trace, _ = workload.trace()
        conflicts = sum("conflict" in step.label for step in trace)
        assert conflicts >= 2

    def test_sources_compile_to_assembly_per_core(self):
        from repro.isa.assembler import assemble

        for workload in COUNTEREXAMPLES:
            sources = workload.sources()
            assert len(sources) == len(workload.test().programs)
            for name, source in sources:
                assert name.startswith(workload.name)
                assemble(source, name=name)  # must not raise

    def test_unknown_name_is_rejected(self):
        with pytest.raises(ConfigError, match="unknown counterexample"):
            get_counterexample("cx-nope")


class TestPromotionPath:
    def test_promote_completes_the_violating_prefix(self):
        test = get_test("window-split-cross")
        result = test.run(
            Budget(max_states=50_000, max_depth=200),
            mutation="skip-expected-check",
        )
        workload = promote_violation(
            test, result.violations[0], mutation="skip-expected-check"
        )
        assert workload.name == "cx-window-split-cross"
        assert workload.found_with == "skip-expected-check"
        trace, state = realize_schedule(test.machine(), workload.schedule)
        assert state.all_halted
        # The violating prefix survives completion verbatim.
        prefix = result.violations[0].schedule
        assert tuple(workload.schedule[: len(prefix)]) == tuple(prefix)

    def test_complete_schedule_rejects_livelock(self):
        # An empty prefix of a spinning machine completes fine (the
        # round-robin completion makes progress), so instead check the
        # bound triggers on a machine that cannot halt: core 0 spinning on
        # a lock core 1 never releases because it halted holding it.
        from repro.analysis.mc.spec import (
            BranchNZ,
            Halt,
            LockSwap,
            SetReg,
            SpecMachine,
            spec_program,
        )
        from repro.memory.layout import DRAM_BASE

        lock = DRAM_BASE + 0x9000
        machine = SpecMachine(
            [
                spec_program(
                    ".SPIN",
                    LockSwap(lock, "l0"),
                    BranchNZ("l0", ".SPIN"),
                    Halt(),
                ),
                spec_program(LockSwap(lock, "l1"), Halt()),
            ]
        )
        with pytest.raises(ConfigError, match="did not complete"):
            complete_schedule(machine, [1, 1, 0])

    def test_write_counterexamples_emits_sorted_json(self, tmp_path):
        paths = write_counterexamples(list(COUNTEREXAMPLES), str(tmp_path))
        assert len(paths) == 2
        for path, workload in zip(paths, COUNTEREXAMPLES):
            payload = json.loads(open(path).read())
            assert payload == workload.to_dict()
            keys = list(payload)
            assert keys == sorted(keys)
