"""CFG construction: leaders, edges, reachability."""

import pytest

from repro.analysis import build_cfg
from repro.analysis.cfg import CfgError, fallthrough_successor, taken_successor
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.lockbench import locked_access_kernel


def cfg_of(source):
    return build_cfg(assemble(source))


class TestBlocks:
    def test_straight_line_program_is_one_block(self):
        cfg = cfg_of("set 1, %l0\nadd %l0, 1, %l1\nhalt")
        assert len(cfg) == 1
        assert (cfg.entry.start, cfg.entry.end) == (0, 3)
        assert cfg.entry.successors == []

    def test_branch_splits_blocks_at_target_and_fallthrough(self):
        cfg = cfg_of(
            """
            set 1, %l0
            .LOOP: add %l0, 1, %l0
            cmp %l0, 5
            bne .LOOP
            halt
            """
        )
        # Blocks: [0,1) entry, [1,4) loop body, [4,5) halt.
        assert [(b.start, b.end) for b in cfg.blocks] == [(0, 1), (1, 4), (4, 5)]
        loop = cfg.blocks[1]
        assert sorted(loop.successors) == [1, 2]
        assert 1 in loop.predecessors

    def test_ba_has_only_the_taken_edge(self):
        cfg = cfg_of(
            """
            set 1, %l0
            ba .END
            set 2, %l1
            .END: halt
            """
        )
        branch_block = cfg.blocks[0]
        assert branch_block.successors == [2]
        assert fallthrough_successor(cfg, branch_block) is None
        assert taken_successor(cfg, branch_block) == 2

    def test_conditional_branch_has_both_edges(self):
        cfg = cfg_of(
            """
            set 1, %l0
            cmp %l0, 1
            be .END
            set 2, %l1
            .END: halt
            """
        )
        branch_block = cfg.blocks[0]
        assert taken_successor(cfg, branch_block) == 2
        assert fallthrough_successor(cfg, branch_block) == 1

    def test_halt_terminates_a_block_with_no_successors(self):
        cfg = cfg_of("set 1, %l0\nhalt\nset 2, %l1\nhalt")
        assert cfg.blocks[0].successors == []
        assert cfg.blocks[1].predecessors == []


class TestReachability:
    def test_dead_block_is_unreachable(self):
        cfg = cfg_of("set 1, %l0\nhalt\nset 2, %l1\nhalt")
        assert cfg.reachable() == {0}

    def test_loop_back_edges_do_not_hide_blocks(self):
        cfg = build_cfg(assemble(locked_access_kernel(2)))
        assert cfg.reachable() == {b.block_id for b in cfg.blocks}


class TestInvariants:
    def test_unfinalized_program_is_rejected(self):
        program = Program("p")
        with pytest.raises(CfgError):
            build_cfg(program)

    def test_block_starting_at_mid_block_index_is_an_error(self):
        cfg = cfg_of("set 1, %l0\nadd %l0, 1, %l1\nhalt")
        with pytest.raises(CfgError):
            cfg.block_starting_at(1)

    def test_instructions_yield_program_order_pairs(self):
        cfg = cfg_of("set 1, %l0\nadd %l0, 1, %l1\nhalt")
        indices = [index for index, _ in cfg.instructions(cfg.entry)]
        assert indices == [0, 1, 2]
