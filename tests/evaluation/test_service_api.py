"""CampaignStore persistence and the HTTP/JSON results API.

The server binds port 0 (ephemeral) so the suite is parallel-safe; the
headline assertion is that results fetched over HTTP are byte-for-byte
the stored ``csb-campaign-1`` document — which other suites pin against
direct SweepRunner execution.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.common.errors import ConfigError
from repro.evaluation.campaign import results_to_json, run_campaign
from repro.evaluation.service import (
    CampaignService,
    CampaignStore,
    default_state_dir,
    make_server,
)
from tests.evaluation.test_campaign import tiny_manifest

BAD_KEY = "f" * 64


@pytest.fixture
def store(tmp_path):
    return CampaignStore(str(tmp_path / "state"))


@pytest.fixture
def api(store, tmp_path):
    """A live server + its background executor; yields the base URL."""
    service = CampaignService(
        store, workers=2, cache_dir=str(tmp_path / "cache")
    )
    server = make_server(service, port=0)
    threads = [
        threading.Thread(target=server.serve_forever, daemon=True),
        threading.Thread(target=service.run_queued_forever, daemon=True),
    ]
    for thread in threads:
        thread.start()
    host, port = server.server_address
    yield f"http://{host}:{port}"
    service.drain.set()
    service.wake.set()
    server.shutdown()
    server.server_close()


def get(url):
    with urllib.request.urlopen(url) as response:
        return response.status, json.load(response)


def get_bytes(url):
    with urllib.request.urlopen(url) as response:
        return response.read()


def post(url, body):
    request = urllib.request.Request(url, data=body, method="POST")
    with urllib.request.urlopen(request) as response:
        return response.status, json.load(response)


def wait_for_state(base, key, states, tries=300):
    for _ in range(tries):
        _, document = get(f"{base}/campaigns/{key}")
        if document["state"] in states:
            return document
        import time

        time.sleep(0.1)
    raise AssertionError(f"campaign never reached {states}: {document}")


class TestCampaignStore:
    def test_enqueue_then_describe(self, store):
        key = store.enqueue(tiny_manifest())
        assert key == tiny_manifest().cache_key()
        description = store.describe(key)
        assert description["state"] == "queued"
        assert description["name"] == "tiny"
        assert description["jobs"] == 2
        assert description["results_ready"] is False

    def test_results_round_trip_bytes_verbatim(self, store):
        manifest = tiny_manifest()
        key = store.enqueue(manifest)
        document = run_campaign(manifest)
        store.write_results(key, document)
        assert store.results_bytes(key) == results_to_json(document).encode()

    def test_reenqueue_with_results_is_a_noop(self, store):
        manifest = tiny_manifest()
        key = store.enqueue(manifest)
        store.write_results(key, run_campaign(manifest))
        store.write_status(key, {"state": "done"})
        assert store.enqueue(manifest) == key
        assert store.status(key)["state"] == "done"  # not re-queued

    def test_bad_keys_rejected(self, store):
        with pytest.raises(ConfigError):
            store.describe("../escape")
        with pytest.raises(ConfigError):
            store.write_status("zz", {"state": "queued"})

    def test_unknown_state_rejected(self, store):
        key = store.enqueue(tiny_manifest())
        with pytest.raises(ConfigError):
            store.write_status(key, {"state": "napping"})

    def test_missing_campaign_is_none(self, store):
        assert store.describe(BAD_KEY) is None
        assert store.manifest(BAD_KEY) is None
        assert store.results_bytes(BAD_KEY) is None

    def test_default_state_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("CSB_STATE_DIR", str(tmp_path / "elsewhere"))
        assert default_state_dir() == str(tmp_path / "elsewhere")
        monkeypatch.delenv("CSB_STATE_DIR")
        assert default_state_dir().endswith("csb-campaigns")


class TestHttpApi:
    def test_end_to_end_post_poll_fetch(self, api, store):
        manifest = tiny_manifest()
        status, posted = post(
            f"{api}/campaigns", manifest.to_json().encode()
        )
        assert status == 202
        assert posted["campaign"] == manifest.cache_key()
        document = wait_for_state(api, posted["campaign"], ("done", "failed"))
        assert document["state"] == "done"
        assert document["results_ready"] is True
        served = get_bytes(f"{api}/campaigns/{posted['campaign']}/results")
        # Byte-identity across the whole service: HTTP == store == serial.
        assert served == store.results_bytes(posted["campaign"])
        assert served == results_to_json(run_campaign(manifest)).encode()

    def test_listing_includes_the_campaign(self, api):
        manifest = tiny_manifest()
        post(f"{api}/campaigns", manifest.to_json().encode())
        _, listing = get(f"{api}/campaigns")
        keys = [entry["campaign"] for entry in listing["campaigns"]]
        assert manifest.cache_key() in keys

    def test_unknown_campaign_404(self, api):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(f"{api}/campaigns/{BAD_KEY}")
        assert excinfo.value.code == 404

    def test_results_before_completion_404(self, api, store):
        store.enqueue(tiny_manifest())  # queued, never executed yet
        key = tiny_manifest().cache_key()
        # The background runner may complete it; only assert the 404 when
        # results are genuinely absent.
        if store.results_bytes(key) is None:
            try:
                get_bytes(f"{api}/campaigns/{key}/results")
            except urllib.error.HTTPError as error:
                assert error.code == 404

    def test_malformed_key_and_route_404(self, api):
        for path in ("/campaigns/nothex", "/nope", "/campaigns/abc/extra"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(f"{api}{path}")
            assert excinfo.value.code == 404

    def test_invalid_manifest_post_400(self, api):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(f"{api}/campaigns", b'{"version": "nope"}')
        assert excinfo.value.code == 400

    def test_post_to_wrong_route_404(self, api):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(f"{api}/somewhere", b"{}")
        assert excinfo.value.code == 404


class TestServiceDrain:
    def test_drained_service_leaves_campaign_queued_or_drained(
        self, store, tmp_path
    ):
        service = CampaignService(
            store, workers=1, cache_dir=str(tmp_path / "cache")
        )
        key = store.enqueue(tiny_manifest())
        service.drain.set()  # drain before the executor ever dispatches
        service.run_one(key)
        state = store.status(key)["state"]
        assert state == "drained"
        assert store.results_bytes(key) is None  # partial results not stored
