"""Cross-process concurrency stress: one cache directory, many runners.

The satellite contract: worker processes sharing a cache directory over
the same manifest produce results byte-identical to a serial run, and
the shared cache keeps duplicate simulations inside a bounded race
allowance — asserted through the cache hit/miss counters, not timing.
"""

import threading

from repro.evaluation.campaign import (
    example_manifest,
    results_to_json,
    run_campaign,
)
from repro.evaluation.runner import ResultCache, job_key
from repro.evaluation.service import WorkerPool, run_campaign_pooled
from tests.evaluation.test_campaign import tiny_manifest


class TestSharedCacheStress:
    def test_pool_vs_serial_byte_identity_with_shared_cache(self, tmp_path):
        manifest = example_manifest()
        serial = results_to_json(run_campaign(manifest))
        cache_dir = str(tmp_path / "cache")
        for round_number in range(2):  # cold then warm
            pooled = results_to_json(
                run_campaign_pooled(manifest, workers=3, cache_dir=cache_dir)
            )
            assert pooled == serial, f"diverged on round {round_number}"

    def test_duplicate_simulations_bounded_by_the_race_allowance(
        self, tmp_path
    ):
        manifest = example_manifest()
        jobs = manifest.expand()
        distinct = len({job_key(job) for job in jobs})
        cache_dir = str(tmp_path / "cache")
        pool = WorkerPool(workers=3, cache_dir=cache_dir)
        pool.run(jobs)
        # Every worker checks the cache before simulating; two workers can
        # race the same key at most once each, so waste is bounded by the
        # pool width, never by the job count.
        assert distinct <= pool.simulated <= distinct + pool.workers
        rerun = WorkerPool(workers=3, cache_dir=cache_dir)
        rerun.run(jobs)
        assert rerun.simulated == 0  # warm cache: zero duplicates

    def test_concurrent_pools_on_one_cache_dir_stay_byte_identical(
        self, tmp_path
    ):
        manifest = example_manifest()
        serial = results_to_json(run_campaign(manifest))
        cache_dir = str(tmp_path / "cache")
        documents = [None, None]

        def run(slot):
            documents[slot] = results_to_json(
                run_campaign_pooled(manifest, workers=2, cache_dir=cache_dir)
            )

        threads = [
            threading.Thread(target=run, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        assert documents[0] == serial
        assert documents[1] == serial

    def test_counters_account_for_every_resolution(self, tmp_path):
        # hits + simulated must cover every job: nothing silently skipped.
        jobs = tiny_manifest().expand()
        cache_dir = str(tmp_path / "cache")
        first = WorkerPool(workers=2, cache_dir=cache_dir)
        first.run(jobs)
        reader = ResultCache(cache_dir)
        hits = sum(1 for job in jobs if reader.get(job_key(job)) is not None)
        assert hits == len(jobs)
        assert first.simulated == len(jobs)
