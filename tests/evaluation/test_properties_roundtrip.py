"""Seeded property tests for the serialization layer (stdlib random only).

Randomly generated ``CampaignManifest``/``SystemConfig``/``FaultConfig``/
workload-spec documents must survive ``to_dict`` → JSON → ``from_dict``
unchanged, independent of JSON key order, reject unknown keys, and keep
their cache keys stable under display-name renames.  Seeds are pinned so
a failure reproduces exactly; bump ``ROUNDS`` locally to fuzz harder.
"""

import dataclasses
import json
import random

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.common.serialize import config_from_dict, config_to_dict
from repro.evaluation.campaign import CampaignManifest, JobSpec
from repro.evaluation.runner import TRACE_MEASUREMENTS
from repro.faults.config import FaultConfig
from repro.workloads.spec import (
    ProgramWorkload,
    TraceWorkload,
    workload_from_dict,
)

ROUNDS = 12
SEEDS = range(ROUNDS)


def shuffled_json(document, rng):
    """Re-encode a document with every object's key order randomized."""

    def shuffle(node):
        if isinstance(node, dict):
            items = [(key, shuffle(value)) for key, value in node.items()]
            rng.shuffle(items)
            return dict(items)
        if isinstance(node, list):
            return [shuffle(item) for item in node]
        return node

    return json.dumps(shuffle(document))


def random_program_workload(rng, processes=None):
    """``processes=None`` picks 1-3; manifests need exactly 1 (a JobSpec
    lowers to a single-kernel SimJob; SMP workloads don't fit one)."""
    stores = "\n".join(
        f"stx %l0, [%o1+{8 * i}]" for i in range(rng.randint(1, 4))
    )
    source = f"set {rng.randint(1, 512)}, %l0\nset 64, %o1\n{stores}\nhalt"
    if processes is None:
        processes = rng.randint(1, 3)
    return ProgramWorkload(
        name=f"prog-{rng.randint(0, 10_000)}",
        sources=tuple(
            (f"p{i}", source) for i in range(processes)
        ),
        warm=tuple(sorted(rng.sample(range(0, 4096, 64), rng.randint(0, 3)))),
    )


def random_trace_workload(rng):
    return TraceWorkload(
        name=f"trace-{rng.randint(0, 10_000)}",
        source=(
            f"synth:n={rng.randint(1, 200)},seed={rng.randint(0, 99)},"
            f"gap={rng.randint(1, 80)},devices={rng.randint(1, 4)}"
        ),
        discipline=rng.choice(("csb", "lock", "uncached")),
        window=rng.randint(1, 512),
        devices=rng.randint(0, 4),
    )


def random_fault_config(rng):
    return FaultConfig(
        seed=rng.randint(0, 2**31),
        bus_nack_rate=round(rng.random() * 0.2, 4),
        bus_stall_rate=round(rng.random() * 0.2, 4),
        bus_stall_cycles=rng.randint(1, 16),
        device_timeout_rate=round(rng.random() * 0.1, 4),
        device_timeout_cycles=rng.randint(1, 32),
        max_retries=rng.randint(1, 16),
    )


def random_system_config(rng):
    return SystemConfig(
        num_cores=rng.randint(1, 4),
        quantum=rng.choice((None, 50, 120, 500)),
        switch_penalty=rng.randint(0, 40),
        faults=random_fault_config(rng),
    )


def random_manifest(rng):
    jobs = []
    for _ in range(rng.randint(1, 4)):
        if rng.random() < 0.5:
            workload = random_program_workload(rng, processes=1)
            measurement = "store_bandwidth"
        else:
            workload = random_trace_workload(rng)
            measurement = rng.choice(sorted(TRACE_MEASUREMENTS))
        # Per-device measurements take the device index as an argument.
        args = (
            (str(rng.randint(0, 3)),)
            if measurement in ("device_share", "mean_occupancy")
            else ()
        )
        jobs.append(
            JobSpec(
                workload=workload,
                config=random_system_config(rng),
                measurement=measurement,
                args=args,
                name=f"job-{rng.randint(0, 10_000)}",
            )
        )
    return CampaignManifest(
        name=f"campaign-{rng.randint(0, 10_000)}", jobs=tuple(jobs)
    )


@pytest.mark.parametrize("seed", SEEDS)
class TestRoundTrips:
    def test_manifest_survives_json_with_shuffled_keys(self, seed):
        rng = random.Random(seed)
        manifest = random_manifest(rng)
        revived = CampaignManifest.from_dict(
            json.loads(shuffled_json(manifest.to_dict(), rng))
        )
        assert revived == manifest
        assert revived.cache_key() == manifest.cache_key()

    def test_system_config_survives_json_with_shuffled_keys(self, seed):
        rng = random.Random(1000 + seed)
        config = random_system_config(rng)
        revived = config_from_dict(
            json.loads(shuffled_json(config_to_dict(config), rng))
        )
        assert revived == config

    def test_fault_config_survives_the_config_section(self, seed):
        rng = random.Random(2000 + seed)
        faults = random_fault_config(rng)
        config = SystemConfig(faults=faults)
        revived = config_from_dict(json.loads(json.dumps(config_to_dict(config))))
        assert revived.faults == faults

    def test_workloads_survive_json_with_shuffled_keys(self, seed):
        rng = random.Random(3000 + seed)
        for workload in (
            random_program_workload(rng),
            random_trace_workload(rng),
        ):
            revived = workload_from_dict(
                json.loads(shuffled_json(workload.to_dict(), rng))
            )
            assert revived == workload
            assert revived.cache_key() == workload.cache_key()


@pytest.mark.parametrize("seed", SEEDS)
class TestUnknownKeyRejection:
    def test_manifest_and_spec_reject_random_unknown_keys(self, seed):
        rng = random.Random(4000 + seed)
        manifest = random_manifest(rng)
        bogus = f"field_{rng.randint(0, 10_000)}"
        top = manifest.to_dict()
        top[bogus] = 1
        with pytest.raises(ConfigError, match=bogus):
            CampaignManifest.from_dict(top)
        nested = manifest.to_dict()
        nested["jobs"][0][bogus] = 1
        with pytest.raises(ConfigError, match=bogus):
            CampaignManifest.from_dict(nested)

    def test_config_rejects_random_unknown_sections_and_fields(self, seed):
        rng = random.Random(5000 + seed)
        bogus = f"field_{rng.randint(0, 10_000)}"
        document = config_to_dict(random_system_config(rng))
        document[bogus] = {}
        with pytest.raises(ConfigError):
            config_from_dict(document)
        document = config_to_dict(random_system_config(rng))
        document["faults"][bogus] = 0.5
        with pytest.raises(ConfigError):
            config_from_dict(document)


@pytest.mark.parametrize("seed", SEEDS)
class TestRenameStability:
    def test_display_renames_never_move_cache_keys(self, seed):
        rng = random.Random(6000 + seed)
        manifest = random_manifest(rng)
        renamed = CampaignManifest(
            name=manifest.name + "-renamed",
            jobs=tuple(
                dataclasses.replace(spec, name=spec.name + "-renamed")
                for spec in manifest.jobs
            ),
        )
        assert renamed.cache_key() == manifest.cache_key()
        for original, spec in zip(manifest.jobs, renamed.jobs):
            assert spec.cache_key() == original.cache_key()

    def test_workload_renames_never_move_cache_keys(self, seed):
        rng = random.Random(7000 + seed)
        program = random_program_workload(rng)
        trace = random_trace_workload(rng)
        assert (
            dataclasses.replace(program, name="other").cache_key()
            == program.cache_key()
        )
        assert (
            dataclasses.replace(trace, name="other").cache_key()
            == trace.cache_key()
        )
