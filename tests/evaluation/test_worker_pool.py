"""WorkerPool: sharding, heartbeats, crash-requeue, graceful drain.

Crash injection relies on the fork start method (Linux): the injected
executor function rides into the child by memory inheritance, and a
sentinel file on disk distinguishes "first attempt" from "retry".
"""

import os
import threading

import pytest

from repro.common.errors import ConfigError
from repro.evaluation.campaign import example_manifest, results_to_json, run_campaign
from repro.evaluation.runner import execute_job
from repro.evaluation.service import WorkerPool, run_campaign_pooled
from tests.evaluation.test_campaign import tiny_manifest


class TestPooledExecution:
    def test_pooled_results_byte_identical_to_serial(self, tmp_path):
        manifest = example_manifest()
        serial = results_to_json(run_campaign(manifest))
        pooled = results_to_json(
            run_campaign_pooled(
                manifest, workers=2, cache_dir=str(tmp_path / "cache")
            )
        )
        assert pooled == serial

    def test_outcomes_in_input_order_with_worker_attribution(self):
        pool = WorkerPool(workers=2, heartbeat_interval=0.1)
        outcomes = pool.run(tiny_manifest().expand())
        assert [o.index for o in outcomes] == [0, 1]
        assert all(o.status == "done" and o.worker >= 0 for o in outcomes)

    def test_shared_cache_eliminates_resimulation(self, tmp_path):
        jobs = tiny_manifest().expand()
        first = WorkerPool(workers=2, cache_dir=str(tmp_path))
        first.run(jobs)
        assert first.simulated == len(jobs)
        second = WorkerPool(workers=2, cache_dir=str(tmp_path))
        second.run(jobs)
        assert second.simulated == 0

    def test_empty_job_list(self):
        assert WorkerPool(workers=2).run([]) == []

    def test_deterministic_job_error_is_failed_not_requeued(self):
        def explode(job):
            raise ValueError("synthetic failure")

        pool = WorkerPool(workers=1, executor=explode, heartbeat_interval=0.1)
        outcomes = pool.run(tiny_manifest().expand()[:1])
        assert outcomes[0].status == "failed"
        assert "synthetic failure" in outcomes[0].error
        assert outcomes[0].attempts == 1
        assert pool.requeues == 0

    def test_heartbeats_recorded_per_worker(self):
        pool = WorkerPool(workers=2, heartbeat_interval=0.05)
        pool.run(tiny_manifest().expand())
        assert pool.heartbeats  # at least one worker reported liveness
        assert all(stamp > 0 for stamp in pool.heartbeats.values())

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            WorkerPool(workers=0)
        with pytest.raises(ConfigError):
            WorkerPool(max_requeues=-1)


class TestCrashRequeue:
    def test_job_lost_to_a_crash_is_requeued_and_completes(self, tmp_path):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()

        def crash_once(job):
            marker = marker_dir / job.name.replace("/", "_")
            if not marker.exists():
                marker.touch()
                os._exit(1)  # simulate a worker dying mid-job
            return execute_job(job)

        jobs = tiny_manifest().expand()
        pool = WorkerPool(workers=2, executor=crash_once, heartbeat_interval=0.1)
        outcomes = pool.run(jobs)
        assert [o.status for o in outcomes] == ["done", "done"]
        assert all(o.attempts == 2 for o in outcomes)
        assert pool.requeues == len(jobs)
        # The recovered values are the real ones, not placeholders.
        serial = run_campaign(tiny_manifest())["results"]
        assert [o.value for o in outcomes] == [e["value"] for e in serial]

    def test_permanent_crasher_fails_after_the_requeue_budget(self):
        def always_crash(job):
            os._exit(1)

        pool = WorkerPool(
            workers=1,
            executor=always_crash,
            max_requeues=2,
            heartbeat_interval=0.1,
        )
        outcomes = pool.run(tiny_manifest().expand()[:1])
        assert outcomes[0].status == "failed"
        assert outcomes[0].attempts == 3  # 1 initial + 2 requeues
        assert "died" in outcomes[0].error
        assert pool.requeues == 2

    def test_crash_does_not_lose_the_other_jobs(self):
        # One permanent crasher among healthy jobs must not poison its
        # neighbours.
        def crash_only_first_index(job):
            if job.name.endswith("none-16"):
                os._exit(1)
            return execute_job(job)

        pool = WorkerPool(
            workers=2,
            executor=crash_only_first_index,
            max_requeues=1,
            heartbeat_interval=0.1,
        )
        outcomes = pool.run(tiny_manifest().expand())
        statuses = {o.index: o.status for o in outcomes}
        assert statuses[0] == "failed"
        assert statuses[1] == "done"


class TestDrain:
    def test_pre_set_drain_reports_every_job_drained(self):
        drain = threading.Event()
        drain.set()
        pool = WorkerPool(workers=2, drain=drain, heartbeat_interval=0.1)
        outcomes = pool.run(example_manifest().expand())
        assert {o.status for o in outcomes} == {"drained"}
        assert all(o.value is None for o in outcomes)

    def test_drain_mid_run_finishes_in_flight_work(self):
        drain = threading.Event()
        released = 0

        pool = WorkerPool(
            workers=1, drain=drain, heartbeat_interval=0.05
        )
        progress = []

        def on_progress(snapshot):
            progress.append(snapshot)
            # After the first job settles, drain: the remaining jobs must
            # come back drained, and the settled one must stay done.
            drain.set()

        pool.on_progress = on_progress
        outcomes = pool.run(example_manifest().expand())
        statuses = [o.status for o in outcomes]
        assert "done" in statuses and "drained" in statuses
        done = [o for o in outcomes if o.status == "done"]
        assert all(isinstance(o.value, (int, float)) for o in done)

    def test_progress_snapshots_count_up(self):
        snapshots = []
        pool = WorkerPool(
            workers=2, heartbeat_interval=0.1, on_progress=snapshots.append
        )
        pool.run(tiny_manifest().expand())
        assert snapshots[-1]["completed"] == 2
        assert snapshots[-1]["total"] == 2
        assert snapshots[-1]["failed"] == 0
