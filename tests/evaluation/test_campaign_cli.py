"""The ``csb-figures campaign {run,status,example}`` subcommand.

(`campaign serve` is exercised through its building blocks in
test_service_api.py and end-to-end by the CI campaign-smoke job.)
"""

import json

import pytest

from repro.evaluation.campaign import (
    CampaignManifest,
    example_manifest,
    results_to_json,
    run_campaign,
)
from repro.evaluation.cli import main
from tests.evaluation.test_campaign import tiny_manifest


@pytest.fixture
def dirs(tmp_path, monkeypatch):
    state = tmp_path / "state"
    cache = tmp_path / "cache"
    monkeypatch.setenv("CSB_STATE_DIR", str(state))
    monkeypatch.setenv("CSB_CACHE_DIR", str(cache))
    return state, cache


def run_cli(argv, capsys):
    status = main(argv)
    captured = capsys.readouterr()
    return status, captured.out


class TestExample:
    def test_example_prints_a_loadable_manifest(self, capsys):
        status, out = run_cli(["campaign", "example"], capsys)
        assert status == 0
        assert CampaignManifest.from_json(out) == example_manifest()


class TestRun:
    def test_run_prints_bytes_identical_to_serial(self, dirs, tmp_path, capsys):
        manifest = tiny_manifest()
        path = tmp_path / "manifest.json"
        path.write_text(manifest.to_json())
        status, out = run_cli(
            ["campaign", "run", str(path), "--workers", "2"], capsys
        )
        assert status == 0
        assert out == results_to_json(run_campaign(manifest))

    def test_second_run_serves_stored_results(self, dirs, tmp_path, capsys):
        manifest = tiny_manifest()
        path = tmp_path / "manifest.json"
        path.write_text(manifest.to_json())
        _, first = run_cli(["campaign", "run", str(path)], capsys)
        status, second = run_cli(["campaign", "run", str(path)], capsys)
        assert status == 0
        assert second == first

    def test_missing_manifest_file_errors(self, dirs, capsys):
        status, _ = run_cli(["campaign", "run", "/nonexistent.json"], capsys)
        assert status == 2

    def test_invalid_manifest_errors(self, dirs, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"version": "other"}')
        status, _ = run_cli(["campaign", "run", str(path)], capsys)
        assert status == 2


class TestStatus:
    def test_listing_and_single_campaign(self, dirs, tmp_path, capsys):
        manifest = tiny_manifest()
        path = tmp_path / "manifest.json"
        path.write_text(manifest.to_json())
        run_cli(["campaign", "run", str(path)], capsys)
        status, out = run_cli(["campaign", "status"], capsys)
        assert status == 0
        listing = json.loads(out)
        assert [c["state"] for c in listing["campaigns"]] == ["done"]
        key = listing["campaigns"][0]["campaign"]
        status, out = run_cli(["campaign", "status", key], capsys)
        assert status == 0
        document = json.loads(out)
        assert document["campaign"] == manifest.cache_key()
        assert document["results_ready"] is True

    def test_unknown_key_errors(self, dirs, capsys):
        status, _ = run_cli(["campaign", "status", "f" * 64], capsys)
        assert status == 2

    def test_malformed_key_errors(self, dirs, capsys):
        status, _ = run_cli(["campaign", "status", "not-a-key"], capsys)
        assert status == 2
