"""ResultCache hardening: atomic writes, integrity checks, LRU eviction.

The shared-store contract the campaign service relies on: a killed
writer can never leave a truncated entry under a final name, a corrupt
entry is detected, evicted, recomputed, and counted — never served — and
a byte budget is enforced in least-recently-used order.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.common.errors import ConfigError
from repro.evaluation.runner import ResultCache, entry_digest


def entry_path(cache, key):
    return os.path.join(cache.directory, f"{key}.json")


def corrupt_value(cache, key, value=99.0):
    """Edit an entry's payload without refreshing its digest."""
    path = entry_path(cache, key)
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    document["value"] = value
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


class TestIntegrity:
    def test_corrupt_entry_detected_evicted_and_counted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k", 1.25)
        corrupt_value(cache, "k")
        assert cache.get("k") is None  # never served
        assert cache.integrity_failures == 1
        assert not os.path.exists(entry_path(cache, "k"))  # evicted
        # Recompute path: a fresh put makes the key healthy again.
        cache.put("k", 1.25)
        assert cache.get("k") == 1.25
        assert cache.integrity_failures == 1

    def test_truncated_entry_is_an_integrity_failure(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k", 2.0)
        with open(entry_path(cache, "k"), "w", encoding="utf-8") as handle:
            handle.write('{"version": "csb-sim')  # torn JSON
        assert cache.get("k") is None
        assert cache.integrity_failures == 1

    def test_legacy_entry_without_digest_still_hits(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with open(entry_path(cache, "old"), "w", encoding="utf-8") as handle:
            json.dump({"version": "csb-sim-2", "name": "", "value": 3.5}, handle)
        assert cache.get("old") == 3.5
        assert cache.integrity_failures == 0

    def test_missing_entry_is_a_plain_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("absent") is None
        assert cache.misses == 1
        assert cache.integrity_failures == 0

    def test_entry_digest_ignores_the_digest_field(self):
        document = {"version": "v", "name": "", "value": 1.0}
        stamped = dict(document, sha256=entry_digest(document))
        assert entry_digest(stamped) == entry_digest(document)


class TestAtomicWrites:
    def test_no_temp_debris_after_normal_writes(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for i in range(5):
            cache.put(f"k{i}", float(i))
        assert not [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]

    def test_kill_mid_write_never_leaves_a_truncated_entry(self, tmp_path):
        """SIGKILL a writer stuck inside the write path: the final name
        either doesn't exist or holds a complete, verifiable entry."""
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        script = f"""
import os, sys
sys.path.insert(0, {repr(src_dir)})
import repro.evaluation.runner as runner

real_replace = os.replace
def slow_replace(src, dst):
    print("REPLACING", flush=True)
    import time
    time.sleep(30)  # parked inside the critical window until SIGKILL
    real_replace(src, dst)

os.replace = slow_replace
cache = runner.ResultCache({repr(str(tmp_path))})
cache.put("victim", 1.0)
"""
        process = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            cwd=os.getcwd(),
            text=True,
        )
        assert process.stdout is not None
        line = process.stdout.readline()  # writer is inside the window
        assert "REPLACING" in line
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=10)
        cache = ResultCache(str(tmp_path))
        # The entry never made it to its final name — a miss, not a
        # torn read the integrity machinery has to rescue.
        assert cache.get("victim") is None
        assert cache.integrity_failures == 0
        # And a new writer is not blocked by the dead one's lock.
        cache.put("victim", 2.0)
        assert cache.get("victim") == 2.0


class TestEviction:
    def entry_size(self, tmp_path):
        probe = ResultCache(str(tmp_path / "probe"))
        probe.put("k", 1.0)
        return os.path.getsize(entry_path(probe, "k"))

    def test_budget_enforced_in_lru_order(self, tmp_path):
        size = self.entry_size(tmp_path)
        cache = ResultCache(str(tmp_path), max_bytes=3 * size + 3)
        stamp = time.time() - 100
        for i, key in enumerate(("a", "b", "c")):
            cache.put(key, 1.0)
            # Deterministic LRU order without sleeping between writes.
            os.utime(entry_path(cache, key), (stamp + i, stamp + i))
        # Touch "a": it becomes most-recently-used, so "b" is now oldest.
        assert cache.get("a") == 1.0
        cache.put("d", 1.0)
        assert cache.evictions == 1
        assert not os.path.exists(entry_path(cache, "b"))
        for survivor in ("a", "c", "d"):
            assert os.path.exists(entry_path(cache, survivor)), survivor

    def test_oversized_single_entry_survives_its_own_write(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_bytes=1)
        cache.put("big", 1.0)
        assert cache.get("big") == 1.0  # keep=just-written always survives
        cache.put("next", 2.0)
        # The budget still applies to everything else.
        assert not os.path.exists(entry_path(cache, "big"))
        assert cache.evictions == 1

    def test_unbudgeted_cache_never_evicts(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for i in range(10):
            cache.put(f"k{i}", float(i))
        assert cache.evictions == 0

    def test_bad_budget_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            ResultCache(str(tmp_path), max_bytes=0)


class TestCounters:
    def test_stats_snapshot_names(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_bytes=10_000)
        cache.put("k", 1.0)
        cache.get("k")
        cache.get("absent")
        corrupt_value(cache, "k")
        cache.get("k")
        assert cache.stats() == {
            "cache.hits": 1,
            "cache.misses": 2,
            "cache.stores": 1,
            "cache.evictions": 0,
            "cache.integrity_failures": 1,
        }
