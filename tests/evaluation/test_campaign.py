"""Campaign manifests: lowering, content addressing, serial execution."""

import json

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.evaluation.bandwidth import bandwidth_job, bandwidth_workload, config_for
from repro.evaluation.campaign import (
    MANIFEST_VERSION,
    CampaignManifest,
    JobOutcome,
    JobSpec,
    example_manifest,
    results_document,
    run_campaign,
)
from repro.evaluation.panels import FIG3_PANELS
from repro.evaluation.runner import SimJob, TraceJob, job_key
from repro.workloads.spec import ProgramWorkload, TraceWorkload
from tests.conftest import registry_targets, smp_dephased_sources

PANEL = FIG3_PANELS["e"]


def small_spec(size=16, scheme="none", name=""):
    return JobSpec(
        workload=bandwidth_workload(PANEL, scheme, size),
        config=config_for(PANEL, scheme),
        measurement="store_bandwidth",
        name=name,
    )


def tiny_manifest(name="tiny"):
    return CampaignManifest(
        name=name, jobs=(small_spec(16), small_spec(16, "csb"))
    )


class TestJobSpec:
    def test_lowers_to_the_same_job_as_the_figure_harness(self):
        spec = small_spec(16)
        job = spec.to_job()
        assert isinstance(job, SimJob)
        # A manifest point and the hand-built figure job share the cache.
        assert job_key(job) == job_key(bandwidth_job(PANEL, "none", 16))

    def test_trace_workload_lowers_to_a_trace_job(self):
        spec = JobSpec(
            workload=TraceWorkload(
                name="t", source="synth:n=10,seed=1,gap=40", window=8
            )
        )
        job = spec.to_job()
        assert isinstance(job, TraceJob)
        assert spec.measurement == "latency_p99"  # trace default

    def test_program_default_measurement_is_store_bandwidth(self):
        spec = JobSpec(workload=bandwidth_workload(PANEL, "none", 16))
        assert spec.measurement == "store_bandwidth"

    def test_bad_measurement_rejected_at_construction(self):
        with pytest.raises(ConfigError):
            JobSpec(
                workload=bandwidth_workload(PANEL, "none", 16),
                measurement="nonsense",
            )

    def test_workload_type_checked(self):
        with pytest.raises(ConfigError):
            JobSpec(workload="not a workload")

    def test_round_trip_preserves_identity_and_key(self):
        spec = small_spec(64, "csb", name="renamed")
        revived = JobSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert revived == spec
        assert revived.cache_key() == spec.cache_key()

    def test_unknown_fields_rejected(self):
        document = small_spec().to_dict()
        document["bogus"] = 1
        with pytest.raises(ConfigError, match="bogus"):
            JobSpec.from_dict(document)

    def test_display_name_never_reaches_the_cache_key(self):
        a = small_spec(16, name="one")
        b = small_spec(16, name="two")
        assert a.cache_key() == b.cache_key()

    def test_registry_kernel_becomes_a_spec(self):
        # Any shipped kernel from the shared registry walk is campaignable.
        target = next(iter(registry_targets().values()))
        spec = JobSpec(
            workload=ProgramWorkload(
                name=target.name, sources=((target.name, target.source),)
            ),
            config=SystemConfig(),
        )
        assert spec.cache_key()

    def test_smp_dephased_workload_round_trips(self):
        # The shared SMP de-phase idiom produces a serializable workload
        # (multi-source workloads ride in manifests once JobSpec grows an
        # SMP lowering; the spec layer already round-trips them).
        sources = smp_dephased_sources(2, 3)
        workload = ProgramWorkload(
            name="smp-pair",
            sources=tuple((f"core{i}", s) for i, s in enumerate(sources)),
        )
        revived = ProgramWorkload.from_dict(
            json.loads(json.dumps(workload.to_dict()))
        )
        assert revived == workload
        assert revived.cache_key() == workload.cache_key()
        assert ".STAGGER" in sources[1] and ".STAGGER" not in sources[0]


class TestCampaignManifest:
    def test_requires_name_and_jobs(self):
        with pytest.raises(ConfigError):
            CampaignManifest(name="", jobs=(small_spec(),))
        with pytest.raises(ConfigError):
            CampaignManifest(name="x", jobs=())
        with pytest.raises(ConfigError):
            CampaignManifest(name="x", jobs=("not a spec",))

    def test_expand_preserves_manifest_order(self):
        manifest = tiny_manifest()
        names = [job.name for job in manifest.expand()]
        assert names == [spec.display_name for spec in manifest.jobs]

    def test_json_round_trip(self):
        manifest = example_manifest()
        revived = CampaignManifest.from_json(manifest.to_json())
        assert revived == manifest
        assert revived.cache_key() == manifest.cache_key()

    def test_rename_keeps_the_cache_key(self):
        assert (
            tiny_manifest("alpha").cache_key()
            == tiny_manifest("beta").cache_key()
        )

    def test_content_change_moves_the_cache_key(self):
        bigger = CampaignManifest(
            name="tiny", jobs=(small_spec(32), small_spec(16, "csb"))
        )
        assert bigger.cache_key() != tiny_manifest().cache_key()

    def test_unknown_fields_and_versions_rejected(self):
        document = tiny_manifest().to_dict()
        document["extra"] = True
        with pytest.raises(ConfigError, match="extra"):
            CampaignManifest.from_dict(document)
        document = tiny_manifest().to_dict()
        document["version"] = "campaign-manifest-99"
        with pytest.raises(ConfigError, match="version"):
            CampaignManifest.from_dict(document)

    def test_serialized_version_tag(self):
        assert tiny_manifest().to_dict()["version"] == MANIFEST_VERSION


class TestResultsDocument:
    def test_outcomes_must_cover_every_index_exactly_once(self):
        manifest = tiny_manifest()
        with pytest.raises(ConfigError):
            results_document(manifest, [JobOutcome(index=0, value=1.0)])
        with pytest.raises(ConfigError):
            results_document(
                manifest,
                [JobOutcome(index=0, value=1.0), JobOutcome(index=0, value=2.0)],
            )

    def test_done_outcome_needs_a_numeric_value(self):
        with pytest.raises(ConfigError):
            JobOutcome(index=0, status="done", value=None)
        with pytest.raises(ConfigError):
            JobOutcome(index=0, status="unheard-of")

    def test_counts_and_null_values(self):
        manifest = tiny_manifest()
        document = results_document(
            manifest,
            [
                JobOutcome(index=0, status="done", value=2.5),
                JobOutcome(index=1, status="failed", error="boom", attempts=3),
            ],
        )
        assert (document["total"], document["completed"], document["failed"]) == (
            2,
            1,
            1,
        )
        failed = document["results"][1]
        assert failed["value"] is None
        assert failed["error"] == "boom"
        assert failed["attempts"] == 3


class TestRunCampaign:
    def test_serial_run_produces_done_results(self):
        document = run_campaign(tiny_manifest())
        assert document["completed"] == document["total"] == 2
        assert all(
            isinstance(entry["value"], (int, float))
            for entry in document["results"]
        )

    def test_example_manifest_is_valid_and_mixed(self):
        manifest = example_manifest()
        kinds = {type(spec.workload).__name__ for spec in manifest.jobs}
        assert kinds == {"ProgramWorkload", "TraceWorkload"}
        assert CampaignManifest.from_json(manifest.to_json()) == manifest
