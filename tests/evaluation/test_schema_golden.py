"""Golden-bytes pin of the ``csb-campaign-1`` results schema.

Mirrors the PR-8 Finding golden test: the document below is the exact
serialization API consumers (and `GET /campaigns/<key>/results`) rely
on.  If this test fails, either revert the change or bump the schema
tag and document the migration in docs/campaigns.md — never silently
reshape the bytes.  The ``job``/``campaign`` keys hash the full default
``SystemConfig`` plus ``SIM_VERSION``, so an intentional simulator or
config-default change moves them; regenerate with the snippet in this
file's history and review the diff like any expected-results update.
"""

import json

from repro.evaluation.campaign import (
    RESULTS_SCHEMA,
    CampaignManifest,
    JobOutcome,
    JobSpec,
    results_document,
    results_to_json,
)
from repro.workloads.spec import ProgramWorkload, TraceWorkload

KERNEL = "set 1, %l0\nset 64, %o1\nstx %l0, [%o1+0]\nhalt"


def golden_manifest():
    return CampaignManifest(
        name="golden-campaign",
        jobs=(
            JobSpec(
                workload=ProgramWorkload(
                    name="golden-kernel",
                    sources=(("golden-kernel", KERNEL),),
                ),
                measurement="store_bandwidth",
                name="point-a",
            ),
            JobSpec(
                workload=TraceWorkload(
                    name="golden-trace",
                    source="synth:n=8,seed=1,gap=10",
                    window=4,
                ),
                name="point-b",
            ),
        ),
    )


def golden_document():
    return results_document(
        golden_manifest(),
        [
            JobOutcome(index=0, status="done", value=2.5, attempts=1),
            JobOutcome(index=1, status="failed", error="boom", attempts=2),
        ],
    )


GOLDEN_JSON = """\
{
  "campaign": "08896ada42db88209ca107dff09763c7b4031fe643525c1a642eff64cfd77c8b",
  "completed": 1,
  "failed": 1,
  "name": "golden-campaign",
  "results": [
    {
      "args": [],
      "attempts": 1,
      "error": "",
      "index": 0,
      "job": "e24b3b4ced844ebdc235bd783d84ac3d2a1c5a81edda585f27052857288ea9ea",
      "measurement": "store_bandwidth",
      "name": "point-a",
      "status": "done",
      "value": 2.5
    },
    {
      "args": [],
      "attempts": 2,
      "error": "boom",
      "index": 1,
      "job": "3bb8fe90878cc812504fdfaac3a52762a4d527e156f60a7af4f5f8285c7c6cae",
      "measurement": "latency_p99",
      "name": "point-b",
      "status": "failed",
      "value": null
    }
  ],
  "schema": "csb-campaign-1",
  "total": 2
}
"""


class TestGoldenBytes:
    def test_results_document_bytes_are_pinned(self):
        assert results_to_json(golden_document()) == GOLDEN_JSON

    def test_schema_tag_matches_the_constant(self):
        assert json.loads(GOLDEN_JSON)["schema"] == RESULTS_SCHEMA

    def test_keys_are_sorted_at_every_level(self):
        document = json.loads(GOLDEN_JSON)
        assert list(document) == sorted(document)
        for entry in document["results"]:
            assert list(entry) == sorted(entry)

    def test_manifest_bytes_round_trip_through_the_golden_shape(self):
        manifest = golden_manifest()
        assert CampaignManifest.from_json(manifest.to_json()) == manifest


class TestPinnedTypes:
    """The wire types consumers may rely on, field by field."""

    def test_field_types(self):
        document = json.loads(results_to_json(golden_document()))
        assert isinstance(document["campaign"], str)
        assert len(document["campaign"]) == 64
        assert isinstance(document["total"], int)
        assert isinstance(document["completed"], int)
        assert isinstance(document["failed"], int)
        done, failed = document["results"]
        assert isinstance(done["value"], float)
        assert failed["value"] is None
        assert isinstance(done["job"], str) and len(done["job"]) == 64
        assert isinstance(done["args"], list)
        assert isinstance(failed["error"], str)
        assert isinstance(failed["attempts"], int)

    def test_statuses_are_the_documented_vocabulary(self):
        document = json.loads(results_to_json(golden_document()))
        assert {entry["status"] for entry in document["results"]} <= {
            "done",
            "failed",
            "drained",
        }
