#!/usr/bin/env python
"""Two processes sharing the CSB: optimistic non-blocking synchronization.

Recreates the paper's §3.2 interleaving.  Two processes run under a
preemptive round-robin scheduler, each repeatedly filling the conditional
store buffer and committing with a conditional flush.  When a timer
interrupt lands between a process's combining stores and its flush, the
competitor's first store clears the buffer; the interrupted process's
flush returns zero and its software retry loop re-issues the sequence.
No locks, no blocking — and every committed line reaches the device
exactly once and un-torn.

Run:  python examples/csb_contention.py
"""

from repro import System, SystemConfig, assemble
from repro.devices.sink import BurstSink
from repro.memory.layout import IO_COMBINING_BASE, PageAttr, Region
from repro.workloads.contention import contending_csb_kernel

ITERATIONS = 50
QUANTUM = 180


def main() -> None:
    print(__doc__)
    system = System(SystemConfig(quantum=QUANTUM, switch_penalty=40))
    sink = system.attach_device(
        BurstSink(
            Region(IO_COMBINING_BASE, 8192, PageAttr.UNCACHED_COMBINING, "dev")
        )
    )
    system.add_process(
        assemble(contending_csb_kernel(ITERATIONS, IO_COMBINING_BASE,
                                       signature=0x1_0000)),
        name="A",
    )
    system.add_process(
        assemble(contending_csb_kernel(ITERATIONS, IO_COMBINING_BASE + 64,
                                       signature=0x2_0000)),
        name="B",
    )
    system.run(max_cycles=50_000_000)

    stats = system.stats
    print(f"iterations per process : {ITERATIONS}")
    print(f"context switches       : {system.scheduler.context_switches}")
    print(f"squashed instructions  : {stats.get('core.squashed')}")
    print(f"flush conflicts        : {stats.get('csb.flush_conflicts')}")
    print(f"successful flushes     : {stats.get('csb.flushes')}")
    print(f"lines at the device    : {len(sink.log)}")

    torn = 0
    per_process = {1: set(), 2: set()}
    for _, data in sink.log:
        words = {data[i : i + 8] for i in range(0, 64, 8)}
        if len(words) != 1:
            torn += 1
            continue
        value = int.from_bytes(data[:8], "big")
        per_process[value >> 16].add(value & 0xFFFF)
    print(f"torn lines             : {torn}")
    print(f"A iterations delivered : {len(per_process[1])}/{ITERATIONS}")
    print(f"B iterations delivered : {len(per_process[2])}/{ITERATIONS}")
    assert torn == 0
    assert per_process[1] == set(range(ITERATIONS))
    assert per_process[2] == set(range(ITERATIONS))
    print("\nEvery sequence committed atomically, exactly once, despite "
          "preemption —\nwithout a single lock acquisition.")


if __name__ == "__main__":
    main()
