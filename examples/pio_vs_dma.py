#!/usr/bin/env python
"""Where does DMA start to beat programmed I/O — and how far does the CSB
move that point?

The paper's §5 argues that the CSB "moves the break-even point between
PIO and DMA towards bigger messages, potentially completely eliminating
the need for DMA on the send side for many applications."  This example
sweeps message sizes over three send paths (locked PIO, CSB bursts, and
descriptor DMA) and reports the measured break-even points.

Run:  python examples/pio_vs_dma.py
"""

from repro.evaluation.crossover import (
    break_even,
    crossover_table,
)


def main() -> None:
    print(__doc__)
    table = crossover_table()
    print(table.render(0))
    pio_cross = break_even("pio_locked")
    csb_cross = break_even("csb")
    print(f"DMA overtakes locked PIO at : {pio_cross} bytes")
    print(f"DMA overtakes the CSB at    : {csb_cross} bytes")
    print(
        f"\nThe CSB moves the PIO/DMA break-even {csb_cross // pio_cross}x "
        "towards larger messages.\nFor the 19-230 byte messages the paper "
        "cites as typical of parallel\napplications, the CSB send path wins "
        "outright."
    )


if __name__ == "__main__":
    main()
