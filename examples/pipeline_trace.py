#!/usr/bin/env python
"""Watching the pipeline execute the paper's CSB sequence, cycle by cycle.

Runs the §3.2 kernel (combining stores + conditional flush + check) with
the pipeline trace enabled and prints every dispatch / issue / uncached /
retire event.  The trace makes the CSB's timing story visible: the eight
stores leave the head of the ROB one per cycle through the uncached port,
the flush's swap waits for its result, and the dependent compare-and-branch
stall the frontend until it arrives.

Run:  python examples/pipeline_trace.py
"""

from repro import SystemConfig, simulate
from repro.workloads.lockbench import csb_access_kernel


def main() -> None:
    print(__doc__)
    result = simulate(SystemConfig(trace=True), csb_access_kernel(4))
    system = result.system
    print(system.trace.render())
    swap_events = [
        e for e in system.trace.events if e.text.startswith("swap")
    ]
    dispatch = next(e for e in swap_events if e.stage == "dispatch")
    retire = next(e for e in swap_events if e.stage == "retire")
    print(
        f"\nThe conditional flush dispatched at cycle {dispatch.cycle} and "
        f"retired at cycle {retire.cycle}:\nits result had to come back from "
        "the CSB before the dependent compare\ncould resolve — that gap is "
        "the flush overhead Figure 5 measures."
    )


if __name__ == "__main__":
    main()
