#!/usr/bin/env python
"""Two simulated nodes exchanging messages over a link.

Builds the paper's motivating scenario end to end: two complete systems
(out-of-order core, caches, uncached unit + CSB, bus, NIC) joined by a
point-to-point link.  Node A sends a short message; node B polls its NIC,
consumes the message, and echoes the first payload word back; node A
measures the round trip.  Three send paths are compared: conventional
locked PIO, the CSB (always a full-line burst), and the CSB with the
paper's §3.2 multiple-burst-size relaxation.

Run:  python examples/two_node_pingpong.py
"""

from repro.evaluation.rtt import pingpong_rtt, rtt_table


def main() -> None:
    print(__doc__)
    table = rtt_table(link_latency=10)
    print(table.render(0))
    base = pingpong_rtt("csb", 4, link_latency=10)
    slow = pingpong_rtt("csb", 4, link_latency=50)
    print(
        "RTT scales with the wire exactly twice per exchange: a "
        f"{50 - 10}-bus-cycle\nlonger link adds {slow - base} CPU cycles "
        f"(= 2 x 40 x ratio 6).\n"
    )
    print(
        "The always-full-line CSB pays the Figure 3 small-transfer penalty\n"
        "end to end (PIO wins below ~32 B), while the multi-burst-size\n"
        "relaxation makes the CSB the fastest send path at every size."
    )


if __name__ == "__main__":
    main()
