#!/usr/bin/env python
"""Quickstart: measure uncached store bandwidth with and without the CSB.

Builds three systems — non-combining uncached buffer, R10000-style
full-line hardware combining, and the conditional store buffer — runs the
paper's store-bandwidth microbenchmark on each, and prints the comparison.

Run:  python examples/quickstart.py
"""

from repro import (
    BusConfig,
    CSBConfig,
    MemoryHierarchyConfig,
    SystemConfig,
    UncachedBufferConfig,
    simulate,
)
from repro.common.tables import Table
from repro.workloads import store_kernel_csb, store_kernel_uncached

LINE_SIZE = 64
TRANSFERS = (16, 64, 256, 1024)


def make_config(combine_block: int) -> SystemConfig:
    """A 600 MHz-class 4-wide core over a 100 MHz 8-byte multiplexed bus."""
    return SystemConfig(
        memory=MemoryHierarchyConfig.with_line_size(LINE_SIZE),
        bus=BusConfig(kind="multiplexed", width_bytes=8, cpu_ratio=6),
        uncached=UncachedBufferConfig(combine_block=combine_block),
        csb=CSBConfig(line_size=LINE_SIZE),
    )


def measure(scheme: str, transfer_bytes: int) -> float:
    if scheme == "csb":
        config = make_config(combine_block=8)
        source = store_kernel_csb(transfer_bytes, LINE_SIZE)
    else:
        block = 8 if scheme == "none" else LINE_SIZE
        config = make_config(combine_block=block)
        source = store_kernel_uncached(transfer_bytes)
    return simulate(config, source).store_bandwidth


def main() -> None:
    print(__doc__)
    table = Table(
        ["scheme"] + [f"{s}B" for s in TRANSFERS],
        title="Uncached store bandwidth [bytes per bus cycle]",
    )
    for scheme in ("none", "combine64", "csb"):
        table.add_row(scheme, *[measure(scheme, s) for s in TRANSFERS])
    print(table.render())
    print(
        "The non-combining buffer is pinned at half the peak (every\n"
        "doubleword store pays an address cycle), hardware combining only\n"
        "helps once the buffer backs up, and the CSB reaches one full\n"
        f"cache-line burst per flush — {LINE_SIZE / 9:.2f} bytes/cycle on "
        "this bus —\nat every transfer size of a line or more."
    )


if __name__ == "__main__":
    main()
