#!/usr/bin/env python
"""User-level message send: locked PIO vs one atomic CSB burst.

Recreates the scenario from the paper's motivation (§2) and qualitative
evaluation (§5): a user-level process pushes a short message into a
Medusa/Atoll-style network interface.  The conventional path takes a spin
lock, assembles the payload in NIC packet memory with uncached stores,
pushes a descriptor, and releases the lock.  The CSB path combines the
payload stores in the conditional store buffer and commits them with a
single conditional flush — one atomic bus burst straight into the NIC's
TX FIFO, no lock at all.

Run:  python examples/nic_message_send.py
"""

from repro import System, assemble
from repro.common.tables import Table
from repro.devices.nic import NetworkInterface
from repro.observability import DeviceWrite, RingBufferSink
from repro.memory.layout import (
    IO_COMBINING_BASE,
    IO_UNCACHED_BASE,
    PageAttr,
    Region,
)
from repro.workloads.lockbench import DEFAULT_LOCK_ADDR, MARK_DONE, MARK_START
from repro.workloads.messaging import csb_send_kernel, pio_send_kernel

MESSAGE_SIZES = (16, 32, 64)


def locked_pio_send(payload_bytes: int):
    system = System()
    nic = system.attach_device(
        NetworkInterface(
            Region(IO_UNCACHED_BASE, 64 * 1024, PageAttr.UNCACHED, "nic")
        )
    )
    process = system.add_process(
        assemble(pio_send_kernel(payload_bytes, IO_UNCACHED_BASE))
    )
    process.set_register("%l0", 0xDEAD).set_register("%l1", 0xBEEF)
    system.hierarchy.warm(DEFAULT_LOCK_ADDR)  # lock hits in the L1
    system.run()
    return system.span(MARK_START, MARK_DONE), nic


def csb_send(payload_bytes: int):
    system = System()
    # Observe the device traffic: every write that reaches the NIC shows
    # up as a DeviceWrite event with the CPU cycle it landed on.
    events = system.attach_observer(
        RingBufferSink(predicate=lambda e: isinstance(e, DeviceWrite))
    )
    nic = system.attach_device(
        NetworkInterface(
            Region(
                IO_COMBINING_BASE, 64 * 1024, PageAttr.UNCACHED_COMBINING, "nic"
            )
        )
    )
    process = system.add_process(
        assemble(csb_send_kernel(payload_bytes, IO_COMBINING_BASE))
    )
    process.set_register("%l0", 0xDEAD).set_register("%l1", 0xBEEF)
    system.run()
    return system.span(MARK_START, MARK_DONE), nic, events


def main() -> None:
    print(__doc__)
    table = Table(
        ["payload", "locked PIO [cycles]", "CSB [cycles]", "speedup"],
        title="Per-message send overhead (CPU cycles, lock hits in L1)",
    )
    for size in MESSAGE_SIZES:
        pio_cycles, pio_nic = locked_pio_send(size)
        csb_cycles, csb_nic, _ = csb_send(size)
        assert pio_nic.sent and csb_nic.sent, "both sends must reach the NIC"
        table.add_row(
            f"{size}B", pio_cycles, csb_cycles, round(pio_cycles / csb_cycles, 1)
        )
    print(table.render(1))
    _, nic, events = csb_send(32)
    packet = nic.sent[0]
    print(
        f"The CSB message arrived as one {'inline' if packet.inline else ''} "
        f"burst of {len(packet.payload)} bytes;\nfirst payload word: "
        f"{packet.payload[:8].hex()} (the 0xDEAD the program stored)."
    )
    for event in events:
        print(
            f"  cycle {event.cycle}: DeviceWrite {event.size}B to "
            f"{event.device} @ {event.address:#x}"
        )


if __name__ == "__main__":
    main()
