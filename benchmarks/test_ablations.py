"""Ablation benches for the CSB design choices called out in DESIGN.md.

Each bench regenerates one ablation table (paper §3.2's design
alternatives: second line buffer, multiple burst sizes, address check) and
asserts the qualitative conclusion the design section draws.
"""

from repro.evaluation.ablations import (
    address_check_table,
    buffer_depth_table,
    burst_padding_table,
    flush_latency_table,
    line_buffer_table,
)


def test_second_line_buffer_recovers_fast_bus_peak(regenerate):
    table = regenerate(line_buffer_table)
    one = table.lookup("line_buffers", "1", "1024")
    two = table.lookup("line_buffers", "2", "1024")
    assert two >= one


def test_multi_size_bursts_remove_small_transfer_penalty(regenerate):
    table = regenerate(burst_padding_table)
    assert table.lookup("flush_policy", "multi_size", "16") > table.lookup(
        "flush_policy", "full_line", "16"
    )
    # Identical at and above one line.
    assert table.lookup("flush_policy", "multi_size", "1024") == table.lookup(
        "flush_policy", "full_line", "1024"
    )


def test_address_check_catches_same_pid_thread_conflicts(regenerate):
    table = regenerate(address_check_table)
    assert table.lookup("address_check", "on", "thread_A_flush") == "conflict"
    assert table.lookup("address_check", "off", "commits_wrong_line") == "yes"


def test_buffer_depth_decouples_the_core(regenerate):
    table = regenerate(buffer_depth_table)
    spans = table.column("cpu_cycles_to_retire_stores")
    assert spans[-1] < spans[0]


def test_flush_latency_shifts_access_time_linearly(regenerate):
    table = regenerate(flush_latency_table)
    two_dw = table.column("2dw")
    # Raising the flush latency from 1 to 10 raises latency accordingly.
    assert two_dw[-1] - two_dw[0] >= 5
