"""Simulator performance benchmarks (not a paper figure).

These measure the host cost of the simulator itself — simulated
instructions per second through the full out-of-order pipeline, and raw
bus-model throughput — so regressions in simulation speed are visible in
benchmark history.
"""

from repro import System, assemble
from tests.conftest import make_config


def test_core_instruction_throughput(benchmark):
    source = (
        "set 2000, %o1\n"
        "set 0, %o2\n"
        "loop: add %o2, 1, %o2\n"
        "xor %o2, %o1, %o3\n"
        "sub %o1, 1, %o1\n"
        "brnz %o1, loop\n"
        "halt"
    )
    program = assemble(source)

    def run():
        system = System(make_config())
        system.add_process(program)
        system.run()
        return system.scheduler.processes[0].retired_instructions

    retired = benchmark(run)
    assert retired == 2000 * 4 + 3


def test_uncached_store_stream_throughput(benchmark):
    from repro.workloads.storebw import store_kernel_uncached

    program = assemble(store_kernel_uncached(1024))

    def run():
        system = System(make_config(combine_block=64))
        system.add_process(program)
        system.run()
        return system.stats.get("bus.transactions")

    transactions = benchmark(run)
    assert transactions > 0


def test_smp_instruction_throughput(benchmark):
    """Four cores contending on the shared bus and CSB — the hot path the
    Cluster/System stepper hoists target."""
    from tests.conftest import smp_dephased_sources

    programs = [
        assemble(source, name=f"core{core}")
        for core, source in enumerate(smp_dephased_sources(4, 8))
    ]

    def run():
        system = System(make_config(num_cores=4))
        for core_id, program in enumerate(programs):
            system.add_process(program, core_id=core_id)
        system.run()
        return sum(p.retired_instructions for p in system.scheduler.processes)

    retired = benchmark(run)
    assert retired > 0


def test_fault_injected_throughput(benchmark):
    """Detailed run with the fault plan active: bus NACK/stall injection
    plus device-free retry bookkeeping on the uncached store stream."""
    from repro.faults.config import FaultConfig
    from repro.workloads.storebw import store_kernel_csb

    program = assemble(store_kernel_csb(4096, 64))
    faults = FaultConfig(
        seed=7, bus_nack_rate=0.01, bus_stall_rate=0.02, bus_stall_cycles=3
    )

    def run():
        system = System(make_config(faults=faults))
        system.add_process(program)
        system.run()
        return system.scheduler.processes[0].retired_instructions

    retired = benchmark(run)
    assert retired > 0


def test_fast_forward_throughput(benchmark):
    """The functional tier alone: instructions per second through the
    pre-decoded closure interpreter (no ROB, no per-cycle events)."""
    from repro.sim.fastforward import FastForwarder

    source = (
        "set 20000, %o1\n"
        "set 0, %o2\n"
        "loop: add %o2, 1, %o2\n"
        "xor %o2, %o1, %o3\n"
        "sub %o1, 1, %o1\n"
        "brnz %o1, loop\n"
        "halt"
    )
    program = assemble(source)

    def run():
        system = System(make_config())
        system.add_process(program)
        system.step()  # install the context; pipeline still drained
        return FastForwarder(system).fast_forward(10**9)

    executed = benchmark(run)
    assert executed == 20000 * 4 + 3


def test_sampled_tier_throughput(benchmark):
    """The full tiered engine on a Figure 3 style store kernel: detailed
    windows + fast-forward gaps, end to end through run_sampled."""
    import dataclasses

    from repro.common.config import SamplingConfig
    from repro.sim.sampling import run_sampled
    from repro.workloads.storebw import store_kernel_csb

    program = assemble(store_kernel_csb(65536, 64))
    config = dataclasses.replace(
        make_config(), sampling=SamplingConfig(enabled=True)
    )

    def run():
        system = System(config)
        system.add_process(program)
        run_sampled(system)
        return len(system.sampling_report.windows)

    windows = benchmark(run)
    assert windows >= 2


def test_trace_replay_throughput(benchmark):
    """Streaming trace replay: transactions per host second through the
    window compiler, the assembler, and the detailed simulator — the
    whole trace-to-latency pipeline."""
    from repro.common.config import SystemConfig
    from repro.workloads.spec import TraceWorkload
    from repro.workloads.traces import replay_trace

    workload = TraceWorkload(
        name="bench-replay",
        source="synth:n=400,seed=11,gap=40,devices=2,sizes=8:3/64:1",
        discipline="uncached",
        window=128,
    )

    def run():
        return replay_trace(workload, SystemConfig()).replayed

    replayed = benchmark(run)
    assert replayed == 400


def test_sweep_throughput(benchmark):
    """End-to-end sweep cost through the SweepRunner job path: one
    Figure 3 scheme row (seven transfer sizes) resolved serially with no
    cache, the unit the parallel engine fans out."""
    from repro.evaluation.bandwidth import bandwidth_job
    from repro.evaluation.panels import FIG3_PANELS
    from repro.evaluation.runner import SweepRunner
    from repro.workloads.storebw import TRANSFER_SIZES

    jobs = [
        bandwidth_job(FIG3_PANELS["e"], "combine64", size)
        for size in TRANSFER_SIZES
    ]

    def run():
        return SweepRunner(jobs=1).run(jobs)

    values = benchmark(run)
    assert len(values) == len(TRANSFER_SIZES)
    assert all(value > 0 for value in values)
