"""Simulator performance benchmarks (not a paper figure).

These measure the host cost of the simulator itself — simulated
instructions per second through the full out-of-order pipeline, and raw
bus-model throughput — so regressions in simulation speed are visible in
benchmark history.
"""

from repro import System, assemble
from tests.conftest import make_config


def test_core_instruction_throughput(benchmark):
    source = (
        "set 2000, %o1\n"
        "set 0, %o2\n"
        "loop: add %o2, 1, %o2\n"
        "xor %o2, %o1, %o3\n"
        "sub %o1, 1, %o1\n"
        "brnz %o1, loop\n"
        "halt"
    )
    program = assemble(source)

    def run():
        system = System(make_config())
        system.add_process(program)
        system.run()
        return system.scheduler.processes[0].retired_instructions

    retired = benchmark(run)
    assert retired == 2000 * 4 + 3


def test_uncached_store_stream_throughput(benchmark):
    from repro.workloads.storebw import store_kernel_uncached

    program = assemble(store_kernel_uncached(1024))

    def run():
        system = System(make_config(combine_block=64))
        system.add_process(program)
        system.run()
        return system.stats.get("bus.transactions")

    transactions = benchmark(run)
    assert transactions > 0
