"""Simulator performance benchmarks (not a paper figure).

These measure the host cost of the simulator itself — simulated
instructions per second through the full out-of-order pipeline, and raw
bus-model throughput — so regressions in simulation speed are visible in
benchmark history.
"""

from repro import System, assemble
from tests.conftest import make_config


def test_core_instruction_throughput(benchmark):
    source = (
        "set 2000, %o1\n"
        "set 0, %o2\n"
        "loop: add %o2, 1, %o2\n"
        "xor %o2, %o1, %o3\n"
        "sub %o1, 1, %o1\n"
        "brnz %o1, loop\n"
        "halt"
    )
    program = assemble(source)

    def run():
        system = System(make_config())
        system.add_process(program)
        system.run()
        return system.scheduler.processes[0].retired_instructions

    retired = benchmark(run)
    assert retired == 2000 * 4 + 3


def test_uncached_store_stream_throughput(benchmark):
    from repro.workloads.storebw import store_kernel_uncached

    program = assemble(store_kernel_uncached(1024))

    def run():
        system = System(make_config(combine_block=64))
        system.add_process(program)
        system.run()
        return system.stats.get("bus.transactions")

    transactions = benchmark(run)
    assert transactions > 0


def test_sweep_throughput(benchmark):
    """End-to-end sweep cost through the SweepRunner job path: one
    Figure 3 scheme row (seven transfer sizes) resolved serially with no
    cache, the unit the parallel engine fans out."""
    from repro.evaluation.bandwidth import bandwidth_job
    from repro.evaluation.panels import FIG3_PANELS
    from repro.evaluation.runner import SweepRunner
    from repro.workloads.storebw import TRANSFER_SIZES

    jobs = [
        bandwidth_job(FIG3_PANELS["e"], "combine64", size)
        for size in TRANSFER_SIZES
    ]

    def run():
        return SweepRunner(jobs=1).run(jobs)

    values = benchmark(run)
    assert len(values) == len(TRANSFER_SIZES)
    assert all(value > 0 for value in values)
