"""§5 extension study — PIO vs DMA message-send crossover.

Regenerates the break-even analysis the paper argues qualitatively: DMA's
setup cost loses to programmed I/O for short messages, and the CSB moves
the PIO/DMA break-even point towards bigger messages, "potentially
completely eliminating the need for DMA on the send side".
"""

from repro.evaluation.crossover import (
    MESSAGE_SIZES,
    break_even,
    crossover_table,
)


def test_crossover_table(regenerate):
    table = regenerate(lambda: crossover_table(), precision=0)
    sizes = [str(s) for s in MESSAGE_SIZES]
    pio = {s: table.lookup("method", "pio_locked", s) for s in sizes}
    csb = {s: table.lookup("method", "csb", s) for s in sizes}
    dma = {s: table.lookup("method", "dma", s) for s in sizes}
    # Short messages: PIO paths beat DMA; long messages: DMA wins over PIO.
    assert pio["16"] < dma["16"] and csb["16"] < dma["16"]
    assert dma["2048"] < pio["2048"]


def test_csb_moves_break_even_towards_bigger_messages(benchmark, capsys):
    def compute():
        return break_even("pio_locked"), break_even("csb")

    pio_cross, csb_cross = benchmark.pedantic(compute, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\nbreak-even vs DMA: locked PIO at {pio_cross} B, "
              f"CSB at {csb_cross} B\n")
    assert csb_cross > pio_cross
