"""Figure 3 — uncached store bandwidth on a multiplexed bus (9 panels).

Each benchmark regenerates one panel: bytes per bus cycle for every
combining scheme over transfer sizes 16 B .. 1 KB.  Panel parameters are
recorded in DESIGN.md §6; the shape checks live in
tests/integration/test_paper_anchors.py.
"""

import pytest

from repro.evaluation.bandwidth import panel_table
from repro.evaluation.panels import FIG3_PANELS


@pytest.mark.parametrize("panel", sorted(FIG3_PANELS), ids=lambda p: f"fig3{p}")
def test_fig3_panel(regenerate, panel):
    spec = FIG3_PANELS[panel]
    table = regenerate(lambda: panel_table(spec))
    assert len(table.rows) >= 3
