#!/usr/bin/env python
"""Export (and regression-check) simulator speed benchmarks.

``run`` executes ``benchmarks/test_simulator_speed.py`` under
pytest-benchmark, condenses the raw report into a small, diff-friendly
JSON document, and writes it to ``BENCH_<pr>.json``::

    python benchmarks/export_bench.py run --pr 6

``check`` re-runs the same benchmarks and compares the *detailed-tier*
throughput (simulated instructions per host second through the full
out-of-order core) against a committed baseline, failing when it has
regressed by more than ``--threshold`` (default 15%)::

    python benchmarks/export_bench.py check --baseline benchmarks/BENCH_6.json

Only the detailed-core number gates: it is the throughput every
experiment pays, and the quantity the hot-loop hoists and the tiered
engine exist to respect.  The other benchmarks (SMP, fault-injected,
fast-forward, sampled, sweep) are recorded for history but advisory, as
their wall-clock cost varies more across hosts.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_FILE = os.path.join(REPO_ROOT, "benchmarks", "test_simulator_speed.py")

#: Simulated instructions retired by the fixed-work benchmarks, used to
#: convert mean wall-clock seconds into instructions per second.  These
#: mirror the loop bounds in test_simulator_speed.py.
INSTRUCTION_COUNTS = {
    "test_core_instruction_throughput": 2000 * 4 + 3,
    "test_fast_forward_throughput": 20000 * 4 + 3,
}

#: Trace records replayed by the streaming-replay benchmark, used to
#: derive transactions per host second.  Mirrors the synth spec's n.
TRACE_RECORD_COUNTS = {
    "test_trace_replay_throughput": 400,
}

#: The benchmark whose regression fails ``check``.
GATED = "test_core_instruction_throughput"


def _run_benchmarks() -> dict:
    """Run the speed benchmarks, returning pytest-benchmark's raw report."""
    with tempfile.TemporaryDirectory() as tmp:
        report_path = os.path.join(tmp, "report.json")
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, REPO_ROOT, env.get("PYTHONPATH")) if p
        )
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                BENCH_FILE,
                "--benchmark-only",
                f"--benchmark-json={report_path}",
                "-q",
            ],
            cwd=REPO_ROOT,
            env=env,
        )
        if result.returncode != 0:
            raise SystemExit(f"benchmark run failed (exit {result.returncode})")
        with open(report_path, "r", encoding="utf-8") as handle:
            return json.load(handle)


def _condense(report: dict, pr: int) -> dict:
    """The committed document: per-benchmark stats plus derived rates."""
    benchmarks = {}
    for bench in report["benchmarks"]:
        stats = bench["stats"]
        benchmarks[bench["name"]] = {
            "mean": stats["mean"],
            "stddev": stats["stddev"],
            "rounds": stats["rounds"],
        }
    derived = {}
    for name, instructions in INSTRUCTION_COUNTS.items():
        if name in benchmarks and benchmarks[name]["mean"] > 0:
            rate = instructions / benchmarks[name]["mean"]
            key = (
                "detailed_core_ips"
                if name == GATED
                else "fast_forward_ips"
            )
            derived[key] = rate
    for name, records in TRACE_RECORD_COUNTS.items():
        if name in benchmarks and benchmarks[name]["mean"] > 0:
            derived["trace_replay_tps"] = records / benchmarks[name]["mean"]
    if "detailed_core_ips" in derived and "fast_forward_ips" in derived:
        derived["ff_speedup"] = (
            derived["fast_forward_ips"] / derived["detailed_core_ips"]
        )
    return {
        "pr": pr,
        "machine": report.get("machine_info", {}).get("node", ""),
        "benchmarks": benchmarks,
        "derived": derived,
    }


def _cmd_run(args: argparse.Namespace) -> int:
    document = _condense(_run_benchmarks(), args.pr)
    out = args.out or os.path.join(
        REPO_ROOT, "benchmarks", f"BENCH_{args.pr}.json"
    )
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out}")
    for key, value in sorted(document["derived"].items()):
        print(f"  {key}: {value:,.0f}" if value > 100 else f"  {key}: {value:.2f}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    current = _condense(_run_benchmarks(), baseline.get("pr", 0))
    base_ips = baseline["derived"]["detailed_core_ips"]
    current_ips = current["derived"]["detailed_core_ips"]
    change = (current_ips - base_ips) / base_ips
    print(
        f"detailed-tier throughput: {current_ips:,.0f} instr/s "
        f"(baseline {base_ips:,.0f}, {change:+.1%})"
    )
    for name, stats in sorted(current["benchmarks"].items()):
        base = baseline["benchmarks"].get(name)
        note = ""
        if base and base["mean"] > 0:
            note = f"  ({stats['mean'] / base['mean'] - 1.0:+.1%} vs baseline)"
        print(f"  {name}: {stats['mean'] * 1e3:.1f} ms{note}")
    if change < -args.threshold:
        print(
            f"FAIL: throughput regressed more than {args.threshold:.0%}",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)
    run_parser = sub.add_parser("run", help="run benchmarks and write BENCH_<pr>.json")
    run_parser.add_argument("--pr", type=int, default=9, help="PR number tag")
    run_parser.add_argument("--out", help="output path (default benchmarks/BENCH_<pr>.json)")
    check_parser = sub.add_parser(
        "check", help="fail if detailed throughput regressed vs a baseline"
    )
    check_parser.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "benchmarks", "BENCH_9.json"),
        help="committed baseline JSON (default benchmarks/BENCH_9.json)",
    )
    check_parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="maximum tolerated fractional regression (default 0.15)",
    )
    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_check(args)


if __name__ == "__main__":
    sys.exit(main())
