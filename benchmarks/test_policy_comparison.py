"""Extension study — faithful processor combining policies vs the CSB.

Backs the paper's §6 comparison: the R10000 uncached-accelerated buffer
is "limited to strictly sequential access patterns" and issues a burst
"only if an entire cache line could be combined"; the PowerPC 620 pairs
at most two stores; the CSB accepts stores in any order and always bursts.
"""

from repro.evaluation.policy_comparison import policy_table


def test_sequential_stream(regenerate):
    table = regenerate(lambda: policy_table(interleaved=False))
    # With a perfectly sequential stream, the R10000 model approaches the
    # generic full-line combiner at large transfers.
    assert table.lookup("scheme", "r10000", "1024") > 6.0
    # The 620's pairing caps it near two doublewords per transaction.
    assert table.lookup("scheme", "ppc620", "1024") < table.lookup(
        "scheme", "combine64", "1024"
    )


def test_out_of_order_stream(regenerate):
    table = regenerate(lambda: policy_table(interleaved=True))
    # Pattern detection breaks: the R10000 degenerates to non-combining...
    assert table.lookup("scheme", "r10000", "1024") == table.lookup(
        "scheme", "none", "1024"
    )
    # ...while the software-controlled CSB is completely order-insensitive.
    assert table.lookup("scheme", "csb", "1024") > 7.0
