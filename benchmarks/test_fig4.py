"""Figure 4 — uncached store bandwidth on a split address/data bus
(5 panels: 128/256-bit widths, turnaround, min-delay 4 and 8)."""

import pytest

from repro.evaluation.bandwidth import panel_table
from repro.evaluation.panels import FIG4_PANELS


@pytest.mark.parametrize("panel", sorted(FIG4_PANELS), ids=lambda p: f"fig4{p}")
def test_fig4_panel(regenerate, panel):
    spec = FIG4_PANELS[panel]
    table = regenerate(lambda: panel_table(spec))
    assert len(table.rows) >= 3
