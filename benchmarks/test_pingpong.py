"""Extension study — two-node ping-pong round-trip time (paper §5).

The per-message overhead the paper argues limits fine-grain parallel
scalability, measured end to end across a two-node cluster: locked PIO vs
the CSB send path vs the CSB with the §3.2 multiple-burst-size relaxation.
"""

from repro.evaluation.rtt import rtt_table


def test_pingpong_rtt(regenerate):
    table = regenerate(lambda: rtt_table(), precision=0)
    # The always-full-line CSB wins at a full line, loses at tiny payloads
    # (the Figure 3 small-transfer penalty, end to end)...
    assert table.lookup("method", "csb", "64B") < table.lookup(
        "method", "pio", "64B"
    )
    assert table.lookup("method", "pio", "8B") < table.lookup(
        "method", "csb", "8B"
    )
    # ...while the multi-size relaxation wins everywhere.
    for column in ("8B", "16B", "32B", "64B"):
        best = min(
            table.lookup("method", "pio", column),
            table.lookup("method", "csb", column),
        )
        assert table.lookup("method", "csb_multisize", column) <= best
