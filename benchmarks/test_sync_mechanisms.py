"""Extension study — synchronization mechanisms (paper §4.3.2 discussion).

swap spin lock vs LL/SC (store-conditional local or broadcasting on the
bus) vs the lock-free CSB, for the Figure 5 atomic device access.
"""

from repro.evaluation.sync_mechanisms import sync_mechanism_table


def test_sync_mechanisms(regenerate):
    table = regenerate(lambda: sync_mechanism_table(), precision=0)
    swap = table.lookup("mechanism", "swap_lock", "32B")
    local = table.lookup("mechanism", "llsc_local", "32B")
    bus = table.lookup("mechanism", "llsc_bus", "32B")
    csb = table.lookup("mechanism", "csb", "32B")
    # "the store-conditional instruction results in a bus transaction even
    # for a cache hit, which would further increase the locking overhead."
    assert bus > swap
    assert abs(local - swap) <= 4   # a local SC costs about what swap does
    assert csb < swap               # and the CSB needs no lock at all
