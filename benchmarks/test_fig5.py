"""Figure 5 — atomic I/O access: lock/store/unlock vs the CSB, in CPU
cycles, for 2..8 doubleword transfers, with the lock variable hitting (a)
or missing (b) in the L1 cache."""

import pytest

from repro.evaluation.latency import fig5_table


@pytest.mark.parametrize("lock_hits_l1", [True, False], ids=["hit", "miss"])
def test_fig5_panel(regenerate, lock_hits_l1):
    table = regenerate(lambda: fig5_table(lock_hits_l1), precision=0)
    csb = [r for r in table.rows if r[0] == "csb"][0]
    none = [r for r in table.rows if r[0] == "none"][0]
    assert all(c < n for c, n in zip(csb[1:], none[1:]))
