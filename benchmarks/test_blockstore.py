"""Extension study — atomic line-write mechanisms (paper §6).

VIS-style block stores vs the CSB vs conventional locking, for one atomic
64-byte device write.  The block store wins on raw latency once its
payload sits in FP registers; its costs are the marshalling instructions
(measured here) and the pinned FP registers (architectural, not a cycle
count).
"""

from repro.evaluation.blockstore import blockstore_table


def test_atomic_line_write_mechanisms(regenerate):
    table = regenerate(blockstore_table, precision=0)
    lock = table.lookup("mechanism", "lock_stores_unlock", "cycles")
    csb = table.lookup("mechanism", "csb", "cycles")
    assert csb < lock  # the paper's headline result survives the new rival
