"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's figure panels and prints
the resulting table (rows = combining schemes, columns = transfer sizes),
so running ``pytest benchmarks/ --benchmark-only -s`` reproduces the whole
evaluation section on stdout.  Simulations are deterministic, so each
table is generated once per benchmark (``rounds=1``) and the benchmark
value is the wall-clock cost of regenerating that panel.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run a table factory once under the benchmark clock and print it."""

    def run(factory, precision: int = 2):
        table = benchmark.pedantic(factory, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(table.render(precision=precision))
        return table

    return run
