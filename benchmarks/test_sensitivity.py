"""Sensitivity studies (paper §4.3.2 discussion).

Superscalar width barely moves the lock overhead (short dependence
chains), while the CPU/bus frequency ratio sets the locking path's
per-doubleword slope exactly (2 bus cycles per doubleword) and leaves the
CSB slope at 1 CPU cycle per doubleword.
"""

from repro.evaluation.sensitivity import (
    ratio_sensitivity_table,
    width_sensitivity_table,
)


def test_width_sensitivity(regenerate):
    table = regenerate(width_sensitivity_table, precision=0)
    lock = table.column("lock_cycles")
    # "did not change the lock overhead at all" — within ~15% here.
    assert max(lock) - min(lock) <= 0.15 * max(lock)


def test_ratio_sensitivity(regenerate):
    table = regenerate(ratio_sensitivity_table, precision=1)
    for row in table.rows:
        ratio, lock_slope, csb_slope = row
        assert lock_slope == 2 * ratio  # one 2-cycle bus txn per doubleword
        assert csb_slope == 1           # one uncached-port cycle per doubleword
