"""Extension study — uncached store bandwidth on a non-idle bus.

The paper's bandwidth figures assume an idle bus and approximate load with
a turnaround cycle; here refill traffic occupies the bus for real.  Burst
schemes (hardware full-line combining and the CSB) use the slots left
between refills far better than single-beat stores.
"""

from repro.evaluation.loaded_bus import loaded_bus_table, miss_interleaved_table


def test_injected_refill_traffic(regenerate):
    table = regenerate(lambda: loaded_bus_table())
    assert table.lookup("scheme", "csb", "1/12") > table.lookup(
        "scheme", "none", "1/12"
    )


def test_miss_interleaved_stream(regenerate):
    table = regenerate(lambda: miss_interleaved_table())
    rows = {(row[0], row[1]): row[2:] for row in table.rows}
    # Every scheme has both an idle and a loaded row.
    assert ("csb", "idle") in rows and ("csb", "loaded") in rows
