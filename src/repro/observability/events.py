"""The typed event taxonomy.

Every event is a small mutable dataclass.  Emitters never fill in the
``cycle`` field: :meth:`~repro.observability.hooks.EventBus.publish`
stamps it with the current CPU cycle at publication, so all events share
one clock regardless of which component produced them.  Bus-model events
additionally carry their own *bus*-cycle coordinates (``bus_cycle``),
because bus occupancy accounting is done in bus cycles (one bus cycle =
``BusConfig.cpu_ratio`` CPU cycles).

Events produced by per-core hardware carry a ``core_id`` (default 0, the
only core of a uniprocessor; ``-1`` on bus transactions started by
non-core initiators such as the refill engine), so SMP runs can attribute
every store, flush, conflict, and bus transaction to the core that caused
it.

The taxonomy (see docs/observability.md for the full field reference):

===================  ========================================================
event                emitted by / when
===================  ========================================================
StoreIssued          uncached unit — an uncached store was accepted
CombineHit           uncached buffer — a store coalesced into a live entry
SequenceStarted      CSB — a combining store began a new sequence
FlushCommitted       CSB — a conditional flush succeeded
ConflictAbort        CSB — a conditional flush failed the conflict check
TransactionAccepted  bus — a transaction was accepted, with its full
                     address/wait/data cycle breakdown
BusAddressCycle      bus — one address cycle (multiplexed path only)
BusDataCycle         bus — one data beat
Turnaround           bus — mandatory idle cycles after a transaction
LockAcquire          core — a cached atomic swap began (a lock acquire)
CacheMiss            memory hierarchy / D-cache — an access missed
CacheRefill          D-cache — a refill installed a line
CacheWriteback       D-cache — a dirty victim left for main memory
ContextSwitch        scheduler — a new process was installed
PipelineSquash       core — a precise interrupt squashed in-flight work
DeviceWrite          device — a bus write reached the device
DeviceRead           device — a bus read was served by the device
FaultInjected        fault plan — an injected fault fired at some site
===================  ========================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass
class Event:
    """Base event.  ``cycle`` (CPU cycles) is stamped by the EventBus."""

    cycle: int = field(default=-1, init=False)

    @property
    def kind(self) -> str:
        """The event's type name, used as the JSONL discriminator."""
        return type(self).__name__

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-compatible dictionary, ``event`` key first."""
        document: Dict[str, Any] = {"event": self.kind}
        document.update(dataclasses.asdict(self))
        return document


# -- uncached path ------------------------------------------------------------


@dataclass
class StoreIssued(Event):
    """An uncached store left the core and was accepted by its target
    path (``target``: ``buffer``, ``csb``, or ``block`` for a VIS-style
    block store)."""

    address: int
    size: int
    target: str
    core_id: int = 0


@dataclass
class CombineHit(Event):
    """A store coalesced into an existing uncached-buffer entry instead
    of allocating a new one — the race the combining schemes win."""

    address: int
    size: int
    core_id: int = 0


@dataclass
class SequenceStarted(Event):
    """The CSB accepted the first store of a new combining sequence
    (clearing whatever the previous owner left behind)."""

    address: int
    pid: int
    core_id: int = 0


@dataclass
class FlushCommitted(Event):
    """A conditional flush matched and queued an atomic burst.
    ``stores`` is the hit-counter value (number of combined stores)."""

    address: int
    useful_bytes: int
    stores: int
    core_id: int = 0


@dataclass
class ConflictAbort(Event):
    """A conditional flush failed: counter/pid/address mismatch.
    ``counter`` is the hit counter the CSB actually held."""

    address: int
    pid: int
    expected: int
    counter: int
    core_id: int = 0


# -- bus models ---------------------------------------------------------------


@dataclass
class TransactionAccepted(Event):
    """The bus accepted a transaction at address cycle ``bus_cycle``.

    Carries the complete per-transaction cycle breakdown so accounting
    sinks need no knowledge of the concrete bus model:
    ``addr_cycles + wait_cycles + data_cycles == end_cycle - bus_cycle + 1``.
    ``turnaround_after`` is the mandatory idle time the bus will enforce
    after ``end_cycle``.
    """

    bus_cycle: int
    end_cycle: int
    address: int
    size: int
    useful_bytes: int
    txn_kind: str
    burst: bool
    addr_cycles: int
    wait_cycles: int
    data_cycles: int
    turnaround_after: int
    core_id: int = -1


@dataclass
class BusAddressCycle(Event):
    """One address cycle on the shared path (multiplexed buses only; a
    split bus overlaps the address transfer with earlier data)."""

    bus_cycle: int
    address: int
    txn_kind: str


@dataclass
class BusDataCycle(Event):
    """One data beat of a transaction (``beat`` counts from 0)."""

    bus_cycle: int
    address: int
    txn_kind: str
    beat: int


@dataclass
class Turnaround(Event):
    """Mandatory idle cycles the bus enforces starting at ``bus_cycle``
    (immediately after a transaction's last data beat)."""

    bus_cycle: int
    cycles: int


# -- core / memory / scheduler / devices --------------------------------------


@dataclass
class LockAcquire(Event):
    """A cached atomic swap started its read-modify-write at the head of
    the ROB — the paper's lock-acquire primitive."""

    address: int
    pid: int
    core_id: int = 0


@dataclass
class CacheMiss(Event):
    """A cached access missed; ``level`` is the deepest level that
    missed (``l1``: served by the L2, ``l2``: went to main memory, or a
    D-cache name like ``dcache0`` for a non-blocking-cache primary miss)."""

    address: int
    level: str


@dataclass
class CacheRefill(Event):
    """A data-cache refill landed and installed its line.  ``cache`` is
    the owning cache's name (``dcache<core>``)."""

    address: int
    cache: str


@dataclass
class CacheWriteback(Event):
    """A dirty victim was evicted from a data cache and queued for main
    memory (bus traffic only when ``MemoryConfig.bus_traffic`` is on)."""

    address: int
    cache: str


@dataclass
class ContextSwitch(Event):
    """The scheduler installed a new process on the core."""

    pid: int
    name: str
    core_id: int = 0


@dataclass
class PipelineSquash(Event):
    """A precise interrupt squashed ``count`` in-flight instructions."""

    count: int
    core_id: int = 0


@dataclass
class DeviceWrite(Event):
    """A bus write transaction terminated at a device."""

    device: str
    address: int
    size: int


@dataclass
class DeviceRead(Event):
    """A bus read transaction was served by a device."""

    device: str
    address: int
    size: int


# -- fault injection ----------------------------------------------------------


@dataclass
class FaultInjected(Event):
    """An injected fault fired (see :mod:`repro.faults`).

    ``site`` names the injection point (``bus_nack``, ``link_drop``,
    ``csb_spurious_abort``, ...); ``address`` is the affected address
    where one exists (0 otherwise); ``cycles`` is the injected delay for
    stall-type faults (0 for drop/abort faults)."""

    site: str
    address: int = 0
    cycles: int = 0
