"""Event sinks: where published events go.

A sink is anything with ``handle(event)``.  The stock sinks:

* :class:`RingBufferSink` — keep the last N events in memory (or all of
  them) for interactive inspection and tests.
* :class:`JsonlSink` — stream every event as one JSON line (the schema
  is ``{"event": <type>, "cycle": <cpu cycle>, ...fields}``), suitable
  for offline timeline tooling and the golden-trace tests.
* :class:`~repro.observability.report.BusCycleReporter` (in report.py)
  — aggregate bus events into a cycle-accounting table.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional, Protocol, TextIO

from repro.observability.events import Event


class EventSink(Protocol):
    """Anything that can receive published events."""

    def handle(self, event: Event) -> None: ...


class RingBufferSink:
    """Keeps the most recent ``capacity`` events (all events if None).

    ``predicate`` optionally filters what is kept — e.g.
    ``RingBufferSink(predicate=lambda e: isinstance(e, FlushCommitted))``.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        predicate: Optional[Callable[[Event], bool]] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("ring buffer capacity must be >= 1")
        self._events: Deque[Event] = deque(maxlen=capacity)
        self._predicate = predicate
        self.seen = 0

    def handle(self, event: Event) -> None:
        if self._predicate is not None and not self._predicate(event):
            return
        self.seen += 1
        self._events.append(event)

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def of_kind(self, kind: str) -> List[Event]:
        """All buffered events whose type name is ``kind``."""
        return [event for event in self._events if event.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Event-type name -> number buffered."""
        histogram: Dict[str, int] = {}
        for event in self._events:
            histogram[event.kind] = histogram.get(event.kind, 0) + 1
        return dict(sorted(histogram.items()))

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)


class JsonlSink:
    """Writes each event as one JSON line to a stream.

    ``extra`` keys (e.g. ``{"job": "fig3c-csb-1024"}``) are merged into
    every record, which lets several runs share one output file and
    still be separable.  Keys are emitted in a fixed order (``event``,
    ``cycle``, extras, then event fields) so traces diff cleanly.
    """

    def __init__(self, stream: TextIO, extra: Optional[Dict[str, object]] = None):
        self._stream = stream
        self._extra = dict(extra) if extra else None
        self.written = 0

    def handle(self, event: Event) -> None:
        document = event.to_dict()
        if self._extra is not None:
            merged = {"event": document.pop("event"), "cycle": document.pop("cycle")}
            merged.update(self._extra)
            merged.update(document)
            document = merged
        self._stream.write(json.dumps(document, separators=(",", ":")))
        self._stream.write("\n")
        self.written += 1


def open_jsonl(path: str, extra: Optional[Dict[str, object]] = None):
    """Open ``path`` for writing and return (file, JsonlSink) — caller
    closes the file when the run is over."""
    handle = open(path, "w", encoding="utf-8")
    return handle, JsonlSink(handle, extra=extra)
