"""The event bus and the hook registry that installs it on a System.

Zero-overhead contract
----------------------

Instrumented components hold an ``events`` attribute that is ``None``
until an observer is attached; every emission site is guarded by a
single ``if self.events is not None`` check.  A run with no observers
therefore pays one attribute load + ``None`` comparison per
instrumentation point and allocates nothing — the ≤3 % throughput gate
in benchmarks/test_simulator_speed.py holds the line.

Clock
-----

:class:`EventBus` carries ``now``, the current CPU cycle, refreshed at
the top of every cycle by the uncached unit's tick (the first component
the system clocks).  ``publish`` stamps each event with it, so all
events share one timeline no matter which component emitted them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.observability.events import Event
from repro.observability.sinks import EventSink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.system import System


class EventBus:
    """Fan-out of published events to every subscribed sink."""

    __slots__ = ("now", "_sinks")

    def __init__(self) -> None:
        self.now = 0
        self._sinks: List[EventSink] = []

    def subscribe(self, sink: EventSink) -> EventSink:
        self._sinks.append(sink)
        return sink

    def publish(self, event: Event) -> None:
        """Stamp ``event`` with the current CPU cycle and deliver it."""
        event.cycle = self.now
        for sink in self._sinks:
            sink.handle(event)

    @property
    def sinks(self) -> List[EventSink]:
        return list(self._sinks)


class Observability:
    """Hook registry owned by a :class:`~repro.sim.system.System`.

    Knows every instrumentation point in the machine; :meth:`attach`
    creates the event bus on first use and wires it into the core, the
    bus model, the uncached unit/buffer/CSB, the memory hierarchy, the
    scheduler, and every attached device.  Until then the registry holds
    no bus and the system is completely uninstrumented.
    """

    def __init__(self, system: "System") -> None:
        self._system = system
        self.bus: EventBus | None = None

    @property
    def enabled(self) -> bool:
        return self.bus is not None

    def attach(self, *sinks: EventSink) -> EventBus:
        """Subscribe ``sinks``, installing the event bus if needed."""
        if self.bus is None:
            self.bus = EventBus()
            self._install(self.bus)
        for sink in sinks:
            self.bus.subscribe(sink)
        return self.bus

    def wire_device(self, device) -> None:
        """Instrument a device (used for devices attached after the bus
        was installed; no-op while observability is off)."""
        if self.bus is not None:
            device.events = self.bus

    def _install(self, bus: EventBus) -> None:
        system = self._system
        for unit in system.units:
            unit.events = bus
        for buffer in system.buffers:
            buffer.events = bus
        system.csb.events = bus
        system.bus.events = bus
        for core in system.cores:
            core.events = bus
        system.hierarchy.events = bus
        system.scheduler.events = bus
        if system.refill_engine is not None:
            system.refill_engine.events = bus
        for dcache in system.dcaches:
            dcache.events = bus
        if system.writeback_engine is not None:
            system.writeback_engine.events = bus
        for device in system.devices:
            device.events = bus
