"""Bus-cycle accounting: where did every bus cycle of the run go?

:class:`BusCycleReporter` is an event sink that watches
:class:`~repro.observability.events.TransactionAccepted` events and
decomposes the bus-activity window (first address cycle .. last data
beat, the same window the paper's bandwidth metric uses) into five
exhaustive, disjoint buckets:

* **address** — address cycles on the shared path (multiplexed buses),
* **data** — data beats,
* **wait** — target-access cycles of read transactions,
* **turnaround** — mandatory idle cycles between transactions that the
  flow-control rules actually forced (capped by the real gap),
* **idle** — every remaining cycle (arrival gaps, min-addr-delay holes).

The invariant ``address + data + wait + turnaround + idle == total`` is
structural — the reporter computes idle as the remainder — and is
asserted by tests/observability/test_profile.py against live runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.tables import Table
from repro.observability.events import Event, TransactionAccepted


@dataclass(frozen=True)
class BusCycleAccount:
    """One run's bus-cycle decomposition (all in bus cycles)."""

    address: int
    data: int
    wait: int
    turnaround: int
    idle: int
    total: int
    transactions: int
    wire_bytes: int
    useful_bytes: int

    @property
    def busy(self) -> int:
        """Cycles the bus path was actually occupied."""
        return self.address + self.data + self.wait

    @property
    def utilization(self) -> float:
        return self.busy / self.total if self.total else 0.0

    @property
    def efficiency(self) -> float:
        """Useful payload bytes over wire bytes (burst padding overhead)."""
        return self.useful_bytes / self.wire_bytes if self.wire_bytes else 0.0

    def checks_out(self) -> bool:
        """The exhaustive-decomposition invariant."""
        return (
            self.address + self.data + self.wait + self.turnaround + self.idle
            == self.total
        )


class BusCycleReporter:
    """Aggregates TransactionAccepted events into a BusCycleAccount."""

    def __init__(self) -> None:
        self._txns: List[TransactionAccepted] = []

    def handle(self, event: Event) -> None:
        if isinstance(event, TransactionAccepted):
            self._txns.append(event)

    @property
    def transactions(self) -> List[TransactionAccepted]:
        return list(self._txns)

    def account(self) -> BusCycleAccount:
        """Decompose the activity window.  Transactions arrive in issue
        order (a single bus serializes them), so adjacent gaps are simply
        ``next.start - prev.end - 1``; of each gap, up to the previous
        transaction's mandatory turnaround is charged as turnaround and
        the rest is idle."""
        if not self._txns:
            return BusCycleAccount(0, 0, 0, 0, 0, 0, 0, 0, 0)
        address = sum(t.addr_cycles for t in self._txns)
        data = sum(t.data_cycles for t in self._txns)
        wait = sum(t.wait_cycles for t in self._txns)
        turnaround = 0
        idle = 0
        for previous, current in zip(self._txns, self._txns[1:]):
            gap = current.bus_cycle - previous.end_cycle - 1
            forced = min(gap, previous.turnaround_after)
            turnaround += forced
            idle += gap - forced
        total = self._txns[-1].end_cycle - self._txns[0].bus_cycle + 1
        return BusCycleAccount(
            address=address,
            data=data,
            wait=wait,
            turnaround=turnaround,
            idle=idle,
            total=total,
            transactions=len(self._txns),
            wire_bytes=sum(t.size for t in self._txns),
            useful_bytes=sum(t.useful_bytes for t in self._txns),
        )

    # -- timelines -----------------------------------------------------------

    def occupancy_histogram(self, interval: int = 100) -> Dict[int, int]:
        """Busy bus cycles per ``interval``-cycle bucket of the run.

        Bucket ``k`` covers bus cycles ``[k * interval, (k+1) * interval)``;
        a transaction spanning a bucket boundary contributes to both.
        """
        if interval < 1:
            raise ValueError("interval must be >= 1 bus cycle")
        histogram: Dict[int, int] = {}
        for txn in self._txns:
            for cycle in range(txn.bus_cycle, txn.end_cycle + 1):
                bucket = cycle // interval
                histogram[bucket] = histogram.get(bucket, 0) + 1
        return dict(sorted(histogram.items()))

    def kind_breakdown(self) -> Dict[str, Dict[str, int]]:
        """Per transaction kind: count, busy cycles, wire and useful bytes
        — the combining-efficiency story at a glance."""
        breakdown: Dict[str, Dict[str, int]] = {}
        for txn in self._txns:
            entry = breakdown.setdefault(
                txn.txn_kind,
                {"transactions": 0, "busy_cycles": 0, "wire_bytes": 0,
                 "useful_bytes": 0},
            )
            entry["transactions"] += 1
            entry["busy_cycles"] += txn.end_cycle - txn.bus_cycle + 1
            entry["wire_bytes"] += txn.size
            entry["useful_bytes"] += txn.useful_bytes
        return dict(sorted(breakdown.items()))

    def core_breakdown(self) -> Dict[int, Dict[str, int]]:
        """Per initiating core (``-1`` for refill/DMA): count, busy
        cycles, wire and useful bytes — who is occupying the shared bus
        in an SMP run."""
        breakdown: Dict[int, Dict[str, int]] = {}
        for txn in self._txns:
            entry = breakdown.setdefault(
                txn.core_id,
                {"transactions": 0, "busy_cycles": 0, "wire_bytes": 0,
                 "useful_bytes": 0},
            )
            entry["transactions"] += 1
            entry["busy_cycles"] += txn.end_cycle - txn.bus_cycle + 1
            entry["wire_bytes"] += txn.size
            entry["useful_bytes"] += txn.useful_bytes
        return dict(sorted(breakdown.items()))


#: Column order shared by every accounting table the CLI renders.
ACCOUNT_COLUMNS = (
    "address", "data", "wait", "turnaround", "idle", "total",
    "busy%", "useful/wire",
)


def account_row(account: BusCycleAccount) -> List:
    """Table cells for one account, in :data:`ACCOUNT_COLUMNS` order."""
    return [
        account.address,
        account.data,
        account.wait,
        account.turnaround,
        account.idle,
        account.total,
        100.0 * account.utilization,
        account.efficiency,
    ]


def accounting_table(rows, title: str, label: str = "point") -> Table:
    """Render labeled accounts: ``rows`` is (label, BusCycleAccount)."""
    table = Table([label] + list(ACCOUNT_COLUMNS), title=title)
    for name, account in rows:
        table.add_row(name, *account_row(account))
    return table
