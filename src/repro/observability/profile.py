"""Profiled reruns of figure experiments: the bus-cycle accounting view.

``csb-figures profile fig3c`` does not show the figure's bandwidth
numbers — it reruns one representative point per combining scheme with a
:class:`~repro.observability.report.BusCycleReporter` attached and
renders where every bus cycle of that run went (address, data, wait,
turnaround, idle).  Profiling always simulates fresh (observers cannot
come out of the result cache), which is fine: it is one job per scheme,
not a sweep.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import ConfigError
from repro.common.tables import Table
from repro.observability.report import (
    BusCycleAccount,
    BusCycleReporter,
    accounting_table,
)

#: The bandwidth-panel transfer size profiled (large enough that every
#: scheme settles into steady state; one of the figure's own x values).
PROFILE_TRANSFER_BYTES = 1024

#: The latency-panel transfer profiled (4 doublewords = 32 bytes, the
#: midpoint of Figure 5's sweep).
PROFILE_DOUBLEWORDS = 4


def profile_jobs(experiment_id: str) -> List[Tuple[str, "SimJob"]]:
    """(scheme, job) pairs for one representative point per scheme.

    Supports the figure sweeps: ``fig3a``..``fig3i``, ``fig4a``..``fig4e``
    (one :func:`bandwidth_job` each at :data:`PROFILE_TRANSFER_BYTES`)
    and ``fig5a``/``fig5b`` (one :func:`latency_job` each at
    :data:`PROFILE_DOUBLEWORDS` doublewords).
    """
    from repro.evaluation.bandwidth import bandwidth_job
    from repro.evaluation.latency import latency_job
    from repro.evaluation.panels import panel_by_id
    from repro.evaluation.schemes import all_schemes

    name = experiment_id.lower().strip()
    if name in ("fig5a", "fig5b"):
        lock_hits_l1 = name == "fig5a"
        schemes = all_schemes(64)
        return [
            (scheme, latency_job(scheme, PROFILE_DOUBLEWORDS, lock_hits_l1))
            for scheme in schemes
        ]
    try:
        panel = panel_by_id(name)
    except ConfigError:
        raise ConfigError(
            f"cannot profile {experiment_id!r}: only the figure sweeps "
            "(fig3a-i, fig4a-e, fig5a/b) have profiled points"
        ) from None
    schemes = all_schemes(panel.line_size)
    return [
        (scheme, bandwidth_job(panel, scheme, PROFILE_TRANSFER_BYTES))
        for scheme in schemes
    ]


def profile_job(job: "SimJob") -> BusCycleAccount:
    """Rerun one job with a bus-cycle reporter attached."""
    from repro.evaluation.runner import execute_job

    reporter = BusCycleReporter()
    execute_job(job, observers=(reporter,))
    return reporter.account()


def profile_table(experiment_id: str) -> Table:
    """The bus-cycle accounting table for one figure experiment."""
    rows = [
        (scheme, profile_job(job))
        for scheme, job in profile_jobs(experiment_id)
    ]
    if experiment_id.lower().startswith("fig5"):
        point = f"{PROFILE_DOUBLEWORDS * 8} B atomic access"
    else:
        point = f"{PROFILE_TRANSFER_BYTES} B transfer"
    return accounting_table(
        rows,
        title=(
            f"{experiment_id} profile — bus cycles by category "
            f"({point})"
        ),
        label="scheme",
    )
