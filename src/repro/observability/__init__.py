"""Cycle-level observability: structured events, sinks, and reporters.

The simulator's end-of-run counters say *how many* bus transactions a run
made; this package says *where every bus cycle went*.  Components emit
typed events (:mod:`repro.observability.events`) into an
:class:`~repro.observability.hooks.EventBus` installed through the hook
registry on :class:`~repro.sim.system.System`; pluggable sinks
(:mod:`repro.observability.sinks`) buffer, stream, or aggregate them.

The layer is strictly passive and zero-overhead when off: with no
observer attached, every instrumentation point is a single ``None``
check, and an observed run is cycle-for-cycle identical to an
unobserved one (enforced by tests/observability/test_trace_identity.py).

Quick start::

    from repro import System
    from repro.observability import RingBufferSink

    system = System()
    ring = system.attach_observer(RingBufferSink())
    ...
    for event in ring:
        print(event.cycle, event.kind)
"""

from repro.observability.events import (
    BusAddressCycle,
    BusDataCycle,
    CacheMiss,
    CombineHit,
    ConflictAbort,
    ContextSwitch,
    DeviceRead,
    DeviceWrite,
    Event,
    FlushCommitted,
    LockAcquire,
    PipelineSquash,
    SequenceStarted,
    StoreIssued,
    TransactionAccepted,
    Turnaround,
)
from repro.observability.hooks import EventBus, Observability
from repro.observability.metrics import MetricsSnapshot
from repro.observability.report import BusCycleAccount, BusCycleReporter
from repro.observability.sinks import EventSink, JsonlSink, RingBufferSink

__all__ = [
    "BusAddressCycle",
    "BusCycleAccount",
    "BusCycleReporter",
    "BusDataCycle",
    "CacheMiss",
    "CombineHit",
    "ConflictAbort",
    "ContextSwitch",
    "DeviceRead",
    "DeviceWrite",
    "Event",
    "EventBus",
    "EventSink",
    "FlushCommitted",
    "JsonlSink",
    "LockAcquire",
    "MetricsSnapshot",
    "Observability",
    "PipelineSquash",
    "RingBufferSink",
    "SequenceStarted",
    "StoreIssued",
    "TransactionAccepted",
    "Turnaround",
]
