"""End-of-run metrics snapshot: one JSON-safe document per simulation.

A :class:`MetricsSnapshot` is a frozen summary of everything a finished
:class:`~repro.sim.system.System` can report — cycles, counters, bus
activity, the paper's bandwidth window — captured once after ``run()``
so results can leave the process (``--metrics-out``, sweep-runner
attachments) without dragging the live simulator along.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.system import System


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable summary of one finished run."""

    cpu_cycles: int
    counters: Dict[str, int]
    marks: Dict[str, int]
    bus_transactions: int
    bus_busy_cycles: int
    bus_utilization: float
    bus_efficiency: float
    wire_bytes_by_kind: Dict[str, int]
    size_histogram: Dict[int, int]
    store_window_cycles: int
    store_window_bytes: int
    store_bandwidth: float
    per_core: Dict[int, Dict[str, int]] = field(default_factory=dict)
    #: Per-transaction latency percentiles (``{"p50": ..., "p99.9": ...}``),
    #: populated by trace replay; empty for program-backed runs, which have
    #: no per-transaction arrival times to measure against.
    latency: Dict[str, int] = field(default_factory=dict)
    #: Injected-fault counts per site (empty when fault injection is off).
    fault_injections: Dict[str, int] = field(default_factory=dict)
    #: Data-cache counters summed over all cores (empty when the
    #: non-blocking D-cache is disabled).
    cache: Dict[str, int] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_system(cls, system: "System", **extra: Any) -> "MetricsSnapshot":
        """Capture ``system``'s statistics (call after ``run()``)."""
        stats = system.stats
        window = stats.uncached_store_window
        report = getattr(system, "sampling_report", None)
        if report is not None and "sampling" not in extra:
            extra = {**extra, "sampling": report.to_dict()}
        per_core = stats.transactions_by_core()
        for queue in system.scheduler.queues:
            entry = per_core.setdefault(
                queue.core_id,
                {"transactions": 0, "wire_bytes": 0, "useful_bytes": 0},
            )
            entry["context_switches"] = queue.context_switches
            entry["bus_grants"] = system.arbiter.grants.get(
                f"core{queue.core_id}", 0
            )
        return cls(
            cpu_cycles=system.cycle,
            counters=stats.as_dict(),
            marks=dict(stats.marks),
            bus_transactions=stats.transaction_count,
            bus_busy_cycles=stats.bus_busy_cycles(),
            bus_utilization=stats.bus_utilization(),
            bus_efficiency=stats.efficiency(),
            wire_bytes_by_kind=stats.bytes_by_kind(),
            size_histogram=stats.size_histogram(),
            store_window_cycles=window.cycles,
            store_window_bytes=window.total_bytes,
            store_bandwidth=window.bytes_per_cycle,
            per_core={core: dict(entry) for core, entry in per_core.items()},
            fault_injections=(
                dict(system.faults.injected)
                if getattr(system, "faults", None) is not None
                else {}
            ),
            cache=cls._cache_counters(system),
            extra=dict(extra),
        )

    @staticmethod
    def _cache_counters(system: "System") -> Dict[str, int]:
        """Sum D-cache counters over all cores ({} when caching is off)."""
        dcaches = getattr(system, "dcaches", ())
        totals: Dict[str, int] = {}
        for dcache in dcaches:
            for key, value in dcache.counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable document (histogram keys become strings)."""
        return {
            "cpu_cycles": self.cpu_cycles,
            "counters": dict(self.counters),
            "marks": dict(self.marks),
            "bus": {
                "transactions": self.bus_transactions,
                "busy_cycles": self.bus_busy_cycles,
                "utilization": self.bus_utilization,
                "efficiency": self.bus_efficiency,
                "wire_bytes_by_kind": dict(self.wire_bytes_by_kind),
                "size_histogram": {
                    str(size): count
                    for size, count in self.size_histogram.items()
                },
            },
            "store_window": {
                "cycles": self.store_window_cycles,
                "bytes": self.store_window_bytes,
                "bandwidth": self.store_bandwidth,
            },
            "per_core": {
                str(core): dict(entry)
                for core, entry in self.per_core.items()
            },
            "latency": dict(self.latency),
            "fault_injections": dict(self.fault_injections),
            "cache": dict(self.cache),
            "extra": dict(self.extra),
        }
