"""A descriptor ring: the device-side queue trace replay writes into.

Each bus write landing in the ring's register window enqueues one
descriptor (the doorbell model: what matters to the device is that a
write arrived, not which slot it hit).  The device drains one descriptor
every ``service_cycles`` bus cycles while any are pending; a write
arriving with the ring full is counted as a drop and otherwise ignored
(real NICs do exactly this — the host is expected to respect occupancy).

The ring keeps an exact time integral of its occupancy, so
``mean_occupancy`` over any run is available without per-cycle sampling
— that is the device-imbalance experiment's metric: under LBICA-style
skew the hot device's ring sits deep while the cold ones idle.
"""

from __future__ import annotations

import struct

from repro.common.errors import ConfigError
from repro.devices.base import Device
from repro.memory.layout import Region

#: handle_read register offsets (doublewords).
REG_PENDING = 0x00
REG_ENQUEUED = 0x08
REG_DRAINED = 0x10
REG_DROPS = 0x18


class DescriptorRing(Device):
    """A fixed-capacity descriptor queue drained at a constant service rate."""

    def __init__(
        self,
        region: Region,
        capacity: int = 64,
        service_cycles: int = 16,
        name: str = "",
    ) -> None:
        if capacity < 1:
            raise ConfigError("ring capacity must be >= 1")
        if service_cycles < 1:
            raise ConfigError("ring service_cycles must be >= 1")
        super().__init__(region, name or "ring")
        self.capacity = capacity
        self.service_cycles = service_cycles
        self.pending = 0
        self.enqueued = 0
        self.drained = 0
        self.drops = 0
        self.high_water = 0
        self.ticks = 0
        #: Sum over bus cycles of the occupancy at each cycle's start.
        self.occupancy_integral = 0
        self._last_tick = None
        self._service_credit = 0

    def handle_write(self, offset: int, data: bytes) -> None:
        if self.pending >= self.capacity:
            self.drops += 1
            return
        self.pending += 1
        self.enqueued += 1
        if self.pending > self.high_water:
            self.high_water = self.pending

    def handle_read(self, offset: int, size: int) -> bytes:
        values = {
            REG_PENDING: self.pending,
            REG_ENQUEUED: self.enqueued,
            REG_DRAINED: self.drained,
            REG_DROPS: self.drops,
        }
        value = values.get(offset, 0)
        return struct.pack("<Q", value & (2**64 - 1))[:size]

    def tick(self, bus_cycle: int) -> None:
        """Advance device time to ``bus_cycle``.

        The system only ticks devices on bus-cycle boundaries that occur,
        so elapsed gaps are handled here: occupancy is integrated over the
        whole gap and service credit accrues for it.  Credit is cleared
        whenever the ring is empty — an idle device does not bank
        servicing for future descriptors.
        """
        if self._last_tick is None:
            elapsed = 1
        else:
            elapsed = bus_cycle - self._last_tick
            if elapsed <= 0:
                return
        self._last_tick = bus_cycle
        self.ticks += elapsed
        # Piecewise-exact integration over the gap: between drains the
        # occupancy is constant, and a drain lands exactly when service
        # credit reaches a full period.
        remaining = elapsed
        while self.pending and remaining > 0:
            until_drain = self.service_cycles - self._service_credit
            if remaining < until_drain:
                self.occupancy_integral += self.pending * remaining
                self._service_credit += remaining
                return
            self.occupancy_integral += self.pending * until_drain
            remaining -= until_drain
            self._service_credit = 0
            self.pending -= 1
            self.drained += 1
        if not self.pending:
            self._service_credit = 0

    def mean_occupancy(self) -> float:
        """Time-averaged ring depth over all device ticks so far."""
        if not self.ticks:
            return 0.0
        return self.occupancy_integral / self.ticks
