"""A Medusa/Atoll-style network interface (paper §2, §5).

Register map (offsets within the device region):

====================  ======================================================
``0x000 - 0x03F``     TX descriptor FIFO.  Any write in this window pushes
                      one descriptor; a full cache-line burst (e.g. a CSB
                      flush) pushes one *inline* packet whose payload is the
                      burst data.  An 8-byte write packs a (buffer offset,
                      length) pair, HP-Medusa style: a single store initiates
                      a transmit from on-board packet memory.
``0x040``             STATUS (read): free TX FIFO slots.
``0x048``             TX_COUNT (read): packets transmitted so far.
``0x080 - 0x0BF``     DESC window: the first doubleword of any write (single
                      beat or burst — zero padding from a CSB flush is
                      ignored) is a packed (offset, length) descriptor.
``0x0C0``             RX_STATUS (read): received packets pending.
``0x0C8``             RX_LEN (read): payload length of the head RX packet.
``0x0D0``             RX_CONSUME (write): pop the head RX packet.
``0x1000 - 0x1FFF``   On-board packet memory (PIO-assembled payloads).
``0x2000 - 0x2FFF``   RX window: the head RX packet's payload bytes.
====================  ======================================================

Transmission drains one descriptor every ``tx_cycles`` bus cycles, modeling
link serialization.  When an ``egress`` hook is attached (see
:class:`repro.devices.link.Link`), each packet is handed to it when its
serialization completes; received packets queue on the RX side and are
consumed with uncached loads plus an RX_CONSUME store — exactly the
polling receive the paper's user-level NI designs use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, List, Optional
from collections import deque

from repro.common.errors import MemoryError_
from repro.devices.base import Device
from repro.memory.layout import Region

TX_FIFO_OFFSET = 0x000
TX_FIFO_SIZE = 0x40
STATUS_OFFSET = 0x40
TX_COUNT_OFFSET = 0x48
DESC_OFFSET = 0x80
DESC_SIZE = 0x40
RX_STATUS_OFFSET = 0xC0
RX_LEN_OFFSET = 0xC8
RX_CONSUME_OFFSET = 0xD0
PACKET_MEMORY_OFFSET = 0x1000
PACKET_MEMORY_SIZE = 0x1000
RX_WINDOW_OFFSET = 0x2000
RX_WINDOW_SIZE = 0x1000


@dataclass(frozen=True)
class Packet:
    """One transmitted packet."""

    payload: bytes
    inline: bool
    pushed_at: int
    sent_at: int


@dataclass
class _PendingDescriptor:
    payload: bytes
    inline: bool
    pushed_at: int
    #: Failed serialization attempts so far (fault injection only).
    attempts: int = 0
    #: Earliest bus cycle the next attempt may start (retry backoff).
    not_before: int = 0


class NetworkInterface(Device):
    """FIFO-descriptor NIC with on-board packet memory."""

    def __init__(
        self,
        region: Region,
        fifo_depth: int = 16,
        tx_cycles: int = 8,
        name: str = "nic",
    ) -> None:
        if region.size < PACKET_MEMORY_OFFSET * 2:
            raise MemoryError_("NIC region too small for its register map")
        super().__init__(region, name)
        self.fifo_depth = fifo_depth
        self.tx_cycles = tx_cycles
        self._fifo: Deque[_PendingDescriptor] = deque()
        self._packet_memory = bytearray(PACKET_MEMORY_SIZE)
        self._tx_busy_until = -1
        self._now = 0
        self.sent: List[Packet] = []
        self.dropped = 0
        #: Serialization retries forced by injected TX faults.
        self.tx_retries = 0
        #: Descriptors abandoned after exhausting ``max_retries`` attempts.
        self.tx_failed = 0
        #: Packets whose serialization is still in flight: (done_cycle, pkt).
        self._in_flight: List[tuple] = []
        #: Called with each Packet when its serialization completes.
        self.egress: Optional[Callable[[Packet], None]] = None
        # Receive side.
        self._rx_queue: Deque[bytes] = deque()
        self.rx_depth = fifo_depth
        self.rx_dropped = 0
        self.received_total = 0

    # -- bus interface -------------------------------------------------------

    def handle_write(self, offset: int, data: bytes) -> None:
        if offset < TX_FIFO_OFFSET + TX_FIFO_SIZE:
            self._push_descriptor(data)
            return
        if DESC_OFFSET <= offset < DESC_OFFSET + DESC_SIZE:
            # Descriptor window: only the first doubleword matters, so a
            # padded CSB burst pushes exactly one descriptor.
            self._push_descriptor(data[:8])
            return
        if offset == RX_CONSUME_OFFSET:
            if self._rx_queue:
                self._rx_queue.popleft()
            return
        if PACKET_MEMORY_OFFSET <= offset < PACKET_MEMORY_OFFSET + PACKET_MEMORY_SIZE:
            base = offset - PACKET_MEMORY_OFFSET
            self._packet_memory[base : base + len(data)] = data
            return
        raise MemoryError_(f"{self.name}: write to read-only register {offset:#x}")

    def handle_read(self, offset: int, size: int) -> bytes:
        if offset == STATUS_OFFSET:
            free = self.fifo_depth - len(self._fifo)
            return free.to_bytes(size, "big")
        if offset == TX_COUNT_OFFSET:
            return len(self.sent).to_bytes(size, "big")
        if offset == RX_STATUS_OFFSET:
            return len(self._rx_queue).to_bytes(size, "big")
        if offset == RX_LEN_OFFSET:
            length = len(self._rx_queue[0]) if self._rx_queue else 0
            return length.to_bytes(size, "big")
        if RX_WINDOW_OFFSET <= offset < RX_WINDOW_OFFSET + RX_WINDOW_SIZE:
            base = offset - RX_WINDOW_OFFSET
            if not self._rx_queue:
                return bytes(size)
            head = self._rx_queue[0]
            window = head + bytes(RX_WINDOW_SIZE - len(head))
            return window[base : base + size]
        if PACKET_MEMORY_OFFSET <= offset < PACKET_MEMORY_OFFSET + PACKET_MEMORY_SIZE:
            base = offset - PACKET_MEMORY_OFFSET
            return bytes(self._packet_memory[base : base + size])
        raise MemoryError_(f"{self.name}: read from {offset:#x}")

    def _push_descriptor(self, data: bytes) -> None:
        if len(self._fifo) >= self.fifo_depth:
            self.dropped += 1
            return
        if len(data) > 8:
            # Inline packet: the burst data is the payload (CSB-style send).
            self._fifo.append(_PendingDescriptor(bytes(data), True, self._now))
            return
        # Descriptor: (offset into packet memory, length) packed in one word.
        word = int.from_bytes(data, "big")
        length = word & 0xFFFF
        base = (word >> 16) & 0xFFFFFFFF
        payload = bytes(self._packet_memory[base : base + length])
        self._fifo.append(_PendingDescriptor(payload, False, self._now))

    # -- transmit engine ------------------------------------------------------

    def tick(self, bus_cycle: int) -> None:
        self._now = bus_cycle
        if (
            self._fifo
            and bus_cycle > self._tx_busy_until
            and bus_cycle >= self._fifo[0].not_before
        ):
            descriptor = self._fifo.popleft()
            self._tx_busy_until = bus_cycle + self.tx_cycles - 1
            if self.faults is not None and self.faults.nic_tx_fault():
                # The serialization attempt failed on the wire side.  The
                # wire time is spent either way; the descriptor goes back
                # to the head of the FIFO (packets stay ordered) with an
                # exponentially growing hold-off, until the retry budget
                # runs out and the packet is abandoned.
                self._tx_fault(descriptor, bus_cycle)
            else:
                packet = Packet(
                    payload=descriptor.payload,
                    inline=descriptor.inline,
                    pushed_at=descriptor.pushed_at,
                    sent_at=bus_cycle,
                )
                self.sent.append(packet)
                self._in_flight.append((bus_cycle + self.tx_cycles, packet))
        while self._in_flight and self._in_flight[0][0] <= bus_cycle:
            _, packet = self._in_flight.pop(0)
            if self.egress is not None:
                self.egress(packet)

    def _tx_fault(self, descriptor: _PendingDescriptor, bus_cycle: int) -> None:
        """Handle one injected serialization failure (see :meth:`tick`)."""
        assert self.faults is not None
        descriptor.attempts += 1
        if self.events is not None:
            from repro.observability.events import FaultInjected

            self.events.publish(
                FaultInjected("nic_tx_fault", address=self.region.base)
            )
        if descriptor.attempts >= self.faults.config.max_retries:
            self.tx_failed += 1
            return
        self.tx_retries += 1
        descriptor.not_before = bus_cycle + self.tx_cycles * (
            1 << descriptor.attempts
        )
        self._fifo.appendleft(descriptor)

    # -- receive side -----------------------------------------------------------

    def receive_packet(self, payload: bytes) -> None:
        """Deliver a packet arriving from the link into the RX queue.

        Payloads longer than the RX window (e.g. a large DMA-built packet)
        are truncated to it — the hardware has nowhere else to put them.
        """
        if len(self._rx_queue) >= self.rx_depth:
            self.rx_dropped += 1
            return
        self._rx_queue.append(bytes(payload[:RX_WINDOW_SIZE]))
        self.received_total += 1

    @property
    def rx_pending(self) -> int:
        return len(self._rx_queue)

    # -- introspection ----------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._fifo)

    def deliver_dma_payload(self, payload: bytes, bus_cycle: int) -> None:
        """Entry point for the DMA engine: enqueue a DMA-built packet."""
        if len(self._fifo) >= self.fifo_depth:
            self.dropped += 1
            return
        self._fifo.append(_PendingDescriptor(payload, False, bus_cycle))

    def last_payload(self) -> Optional[bytes]:
        return self.sent[-1].payload if self.sent else None
