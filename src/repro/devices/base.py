"""Device framework: a memory-mapped device occupies a region of uncached
(or uncached-combining) address space and terminates bus transactions."""

from __future__ import annotations

import abc

from repro.common.errors import MemoryError_
from repro.memory.layout import Region


class Device(abc.ABC):
    """Base class for bus targets with register decode helpers."""

    def __init__(self, region: Region, name: str = "") -> None:
        self.region = region
        self.name = name or type(self).__name__
        #: Observability event bus; None (the default) means uninstrumented.
        self.events = None
        #: Fault-injection plan; None (the default) means fault-free.
        self.faults = None
        self.writes = 0
        self.reads = 0
        self.bytes_written = 0
        #: Injected ack-timeout bookkeeping (bus-side device_timeout faults
        #: targeting this device's region).
        self.ack_delays = 0
        self.ack_delay_cycles = 0

    def note_ack_delay(self, cycles: int) -> None:
        """Record an injected late-acknowledgment affecting this device."""
        self.ack_delays += 1
        self.ack_delay_cycles += cycles

    def bus_write(self, address: int, data: bytes) -> None:
        self._check(address, len(data))
        self.writes += 1
        self.bytes_written += len(data)
        if self.events is not None:
            from repro.observability.events import DeviceWrite

            self.events.publish(DeviceWrite(self.name, address, len(data)))
        self.handle_write(address - self.region.base, data)

    def bus_read(self, address: int, size: int) -> bytes:
        self._check(address, size)
        self.reads += 1
        if self.events is not None:
            from repro.observability.events import DeviceRead

            self.events.publish(DeviceRead(self.name, address, size))
        return self.handle_read(address - self.region.base, size)

    def tick(self, bus_cycle: int) -> None:
        """Optional per-bus-cycle device activity (DMA progress etc.)."""

    @abc.abstractmethod
    def handle_write(self, offset: int, data: bytes) -> None:
        """Process a write at ``offset`` within the device's region."""

    @abc.abstractmethod
    def handle_read(self, offset: int, size: int) -> bytes:
        """Produce ``size`` bytes for a read at ``offset``."""

    def _check(self, address: int, size: int) -> None:
        if not self.region.contains(address) or address + size > self.region.end:
            raise MemoryError_(
                f"{self.name}: access [{address:#x}, +{size}] outside region"
            )


class DeviceAlias(Device):
    """A second mapping of an existing device at another address range.

    Real systems map one device into several address spaces with different
    attributes — e.g. a NIC's TX FIFO window in uncached-*combining* space
    (so CSB bursts land in it) while its control/status registers stay in
    plain uncached space for ordinary loads and stores.  An alias forwards
    accesses at matching offsets to the primary device; only the primary
    ticks.
    """

    def __init__(self, region: Region, target: Device, name: str = "") -> None:
        if region.size > target.region.size:
            raise MemoryError_(
                f"alias region larger than {target.name}'s register map"
            )
        super().__init__(region, name or f"{target.name}-alias")
        self.target = target

    def handle_write(self, offset: int, data: bytes) -> None:
        self.target.handle_write(offset, data)
        self.target.writes += 1
        self.target.bytes_written += len(data)

    def handle_read(self, offset: int, size: int) -> bytes:
        self.target.reads += 1
        return self.target.handle_read(offset, size)
