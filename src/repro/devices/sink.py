"""A burst-capable write sink: the simplest possible I/O target.

Used by the bandwidth microbenchmarks: it accepts writes of any supported
size (single-beat or burst), stores the bytes, and keeps an ordered log so
tests can verify that every store reached the device exactly once and in
order — the *exactly-once* property the paper's I/O semantics demand.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.devices.base import Device
from repro.memory.layout import Region


class BurstSink(Device):
    """Accepts and records all writes; reads return what was written."""

    def __init__(self, region: Region, name: str = "sink") -> None:
        super().__init__(region, name)
        self._memory = bytearray(region.size)
        #: ordered log of (offset, data) writes, for exactly-once checks
        self.log: List[Tuple[int, bytes]] = []

    def handle_write(self, offset: int, data: bytes) -> None:
        self._memory[offset : offset + len(data)] = data
        self.log.append((offset, bytes(data)))

    def handle_read(self, offset: int, size: int) -> bytes:
        return bytes(self._memory[offset : offset + size])

    def contents(self, offset: int, size: int) -> bytes:
        """Inspect device memory without counting a bus read."""
        return bytes(self._memory[offset : offset + size])
