"""Memory-mapped I/O device models.

The paper's §3.3 notes that the CSB's benefit requires the target device to
accept burst writes; these models do.  The NIC follows the HP Medusa / Atoll
pattern the paper cites: hardware descriptor FIFOs written directly by
user-level stores, with an optional DMA engine for large transfers (used by
the §5 PIO-vs-DMA crossover study).
"""

from repro.devices.base import Device
from repro.devices.sink import BurstSink
from repro.devices.nic import NetworkInterface, Packet
from repro.devices.dma import DmaEngine
from repro.devices.ring import DescriptorRing

__all__ = [
    "BurstSink",
    "DescriptorRing",
    "Device",
    "DmaEngine",
    "NetworkInterface",
    "Packet",
]
