"""A simple descriptor-based DMA engine.

Models the send-side DMA alternative to programmed I/O (paper §2, §5): the
driver programs source address and length, then rings a doorbell; the engine
is busy for a fixed setup time plus a transfer time proportional to the
message length, then hands the payload to the NIC.  The setup cost is what
makes DMA lose to PIO for short messages — the crossover the paper argues
the CSB moves toward larger messages.

Register map (offsets): ``0x00`` SRC, ``0x08`` LEN, ``0x10`` DOORBELL
(write triggers), ``0x18`` STATUS (read: 0 = busy, 1 = idle/done).

The engine reads source data functionally from main memory at completion.
Its bus occupancy is modeled as a fixed per-line overhead folded into
``cycles_per_line`` rather than by arbitrating the CPU's bus — the paper's
crossover argument depends on the setup/teardown constant, not on DMA/CPU
bus interference.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.errors import MemoryError_
from repro.devices.base import Device
from repro.devices.nic import NetworkInterface
from repro.memory.backing import BackingStore
from repro.memory.layout import Region

SRC_OFFSET = 0x00
LEN_OFFSET = 0x08
DOORBELL_OFFSET = 0x10
STATUS_OFFSET = 0x18


class DmaEngine(Device):
    """Send-side DMA engine feeding a :class:`NetworkInterface`."""

    def __init__(
        self,
        region: Region,
        memory: BackingStore,
        nic: Optional[NetworkInterface] = None,
        setup_cycles: int = 40,
        cycles_per_line: int = 10,
        line_size: int = 64,
        name: str = "dma",
    ) -> None:
        super().__init__(region, name)
        self.memory = memory
        self.nic = nic
        self.setup_cycles = setup_cycles
        self.cycles_per_line = cycles_per_line
        self.line_size = line_size
        self._src = 0
        self._len = 0
        self._busy_until = -1
        self._active: Optional[Tuple[int, int]] = None
        self._now = 0
        self._attempts = 0
        self.transfers: List[Tuple[int, int, int]] = []  # (src, len, done_cycle)
        #: Re-runs forced by injected completion faults.
        self.retries = 0
        #: Transfers abandoned after exhausting ``max_retries`` attempts.
        self.failed = 0

    def handle_write(self, offset: int, data: bytes) -> None:
        value = int.from_bytes(data, "big")
        if offset == SRC_OFFSET:
            self._src = value
        elif offset == LEN_OFFSET:
            self._len = value
        elif offset == DOORBELL_OFFSET:
            self._ring(value)
        else:
            raise MemoryError_(f"{self.name}: write to {offset:#x}")

    def handle_read(self, offset: int, size: int) -> bytes:
        if offset == STATUS_OFFSET:
            idle = 0 if self.busy else 1
            return idle.to_bytes(size, "big")
        if offset == SRC_OFFSET:
            return self._src.to_bytes(size, "big")
        if offset == LEN_OFFSET:
            return self._len.to_bytes(size, "big")
        raise MemoryError_(f"{self.name}: read from {offset:#x}")

    def _ring(self, packed: int) -> None:
        """Doorbell.  An Atoll-style packed descriptor (address in the high
        bits, length in the low 16) may be written directly; zero means
        "use the SRC/LEN registers"."""
        if self.busy:
            raise MemoryError_(f"{self.name}: doorbell while busy")
        if packed:
            src = packed >> 16
            length = packed & 0xFFFF
        else:
            src, length = self._src, self._len
        if length <= 0:
            raise MemoryError_(f"{self.name}: zero-length DMA")
        lines = (length + self.line_size - 1) // self.line_size
        self._busy_until = self._now + self.setup_cycles + lines * self.cycles_per_line
        self._active = (src, length)
        self._attempts = 0

    @property
    def busy(self) -> bool:
        return self._active is not None

    def tick(self, bus_cycle: int) -> None:
        self._now = bus_cycle
        if self._active is not None and bus_cycle >= self._busy_until:
            src, length = self._active
            if self.faults is not None and self.faults.dma_fault():
                # The transfer failed at completion; the engine re-runs it
                # from scratch after an exponentially growing hold-off,
                # giving up once the retry budget is exhausted.
                self._dma_fault(src, length, bus_cycle)
                return
            payload = self.memory.read_bytes(src, length)
            if self.nic is not None:
                self.nic.deliver_dma_payload(payload, bus_cycle)
            self.transfers.append((src, length, bus_cycle))
            self._active = None

    def _dma_fault(self, src: int, length: int, bus_cycle: int) -> None:
        """Handle one injected completion failure (see :meth:`tick`)."""
        assert self.faults is not None
        self._attempts += 1
        if self.events is not None:
            from repro.observability.events import FaultInjected

            self.events.publish(FaultInjected("dma_fault", address=src))
        if self._attempts >= self.faults.config.max_retries:
            self.failed += 1
            self._active = None
            return
        self.retries += 1
        lines = (length + self.line_size - 1) // self.line_size
        self._busy_until = (
            bus_cycle
            + (self.setup_cycles << self._attempts)
            + lines * self.cycles_per_line
        )

    def completion_cycle(self) -> Optional[int]:
        """Bus cycle the most recent transfer completed (None if none)."""
        return self.transfers[-1][2] if self.transfers else None
