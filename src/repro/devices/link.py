"""A point-to-point link between two network interfaces.

Models the cluster interconnect the paper's motivation assumes: packets
leaving one node's NIC arrive in the peer's RX queue after a fixed wire
latency (in bus cycles).  The link is full-duplex; NIC RX backpressure
(a full RX queue) drops at the receiver and is counted there.

Loss and recovery
-----------------

By default the wire is lossless and fire-and-forget: every injected
packet is delivered exactly once, ``latency`` bus cycles later.  When a
fault plan with a nonzero ``link_drop_rate`` is active (see
:mod:`repro.faults` — the link inherits the plan from either NIC, which
gets it from its system at attach time), the wire becomes lossy and the
link runs a stop-and-wait ARQ protocol per direction:

* data frames carry a monotonically increasing sequence number; at most
  one frame per direction is unacknowledged at a time;
* the receiver acknowledges every data frame (including duplicates,
  whose payloads are deduplicated and dropped) and delivers a payload
  only when its sequence number advances;
* the sender retransmits on acknowledgment timeout with exponential
  backoff, and abandons the packet (counted in :attr:`Link.lost`) once
  the plan's ``max_retries`` budget is exhausted.

Without ARQ a single dropped packet (or dropped acknowledgment) would
hang a polling receiver forever — the failure mode
tests/faults/test_device_retry.py pins.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.devices.nic import NetworkInterface, Packet

#: Wire frame: (arrival_cycle, kind, data_direction, seq, payload) where
#: ``kind`` is "data" or "ack" and ``data_direction`` is the index of the
#: end the *data* frame is (or was) heading to — an ack travels back to
#: the opposite end.
_Frame = Tuple[int, str, int, int, bytes]


class _ArqSender:
    """Stop-and-wait transmit state for one direction of the link."""

    __slots__ = ("queue", "next_seq", "awaiting", "attempts", "deadline")

    def __init__(self) -> None:
        self.queue: Deque[bytes] = deque()
        self.next_seq = 0
        #: Sequence number of the unacknowledged frame (None: idle).
        self.awaiting: Optional[int] = None
        self.attempts = 0
        self.deadline = 0


class Link:
    """Full-duplex wire between two NICs."""

    def __init__(
        self,
        nic_a: NetworkInterface,
        nic_b: NetworkInterface,
        latency: int = 10,
    ) -> None:
        if latency < 0:
            raise ConfigError("link latency must be >= 0")
        if nic_a is nic_b:
            raise ConfigError("a link needs two distinct NICs")
        self.latency = latency
        self._ends = (nic_a, nic_b)
        #: Fault-injection plan; None means a lossless fire-and-forget
        #: wire.  Lazily inherited from either NIC (set at attach time).
        self.faults = None
        # Legacy lossless path: (arrival_cycle, destination, payload).
        self._in_flight: List[Tuple[int, int, bytes]] = []
        self._now = 0
        self.delivered = 0
        # ARQ state (used only on a lossy wire).
        self._senders = (_ArqSender(), _ArqSender())
        self._highest = [-1, -1]  # highest delivered seq per direction
        self._wire: List[_Frame] = []
        self.wire_drops = 0
        self.retransmits = 0
        self.duplicates = 0
        self.lost = 0
        nic_a.egress = lambda packet: self._inject(packet, destination=1)
        nic_b.egress = lambda packet: self._inject(packet, destination=0)

    # -- plan resolution -----------------------------------------------------

    def _plan(self):
        """The active fault plan, inherited from either NIC on first use."""
        if self.faults is None:
            for nic in self._ends:
                if nic.faults is not None:
                    self.faults = nic.faults
                    break
        return self.faults

    @property
    def _lossy(self) -> bool:
        plan = self._plan()
        return plan is not None and plan.config.link_drop_rate > 0.0

    # -- injection -----------------------------------------------------------

    def _inject(self, packet: Packet, destination: int) -> None:
        if self._lossy:
            sender = self._senders[destination]
            sender.queue.append(packet.payload)
            self._pump(destination, self._now)
            return
        self._in_flight.append(
            (self._now + self.latency, destination, packet.payload)
        )

    # -- clocking ------------------------------------------------------------

    def tick(self, bus_cycle: int) -> None:
        """Deliver every frame whose wire time has elapsed."""
        self._now = bus_cycle
        if self._lossy:
            self._tick_arq(bus_cycle)
            return
        if not self._in_flight:
            return
        remaining: List[Tuple[int, int, bytes]] = []
        for arrival, destination, payload in self._in_flight:
            if arrival <= bus_cycle:
                self._ends[destination].receive_packet(payload)
                self.delivered += 1
            else:
                remaining.append((arrival, destination, payload))
        self._in_flight = remaining

    def _tick_arq(self, bus_cycle: int) -> None:
        arrived = [f for f in self._wire if f[0] <= bus_cycle]
        if arrived:
            self._wire = [f for f in self._wire if f[0] > bus_cycle]
        for _, kind, direction, seq, payload in arrived:
            if kind == "data":
                self._receive_data(direction, seq, payload, bus_cycle)
            else:
                self._receive_ack(direction, seq)
        for direction in (0, 1):
            sender = self._senders[direction]
            if sender.awaiting is not None and bus_cycle >= sender.deadline:
                self._retry(direction, bus_cycle)
            self._pump(direction, bus_cycle)

    # -- ARQ machinery --------------------------------------------------------

    def _pump(self, direction: int, now: int) -> None:
        """Start transmitting the head of the queue if the wire is idle."""
        sender = self._senders[direction]
        if sender.awaiting is not None or not sender.queue:
            return
        sender.awaiting = sender.next_seq
        sender.attempts = 0
        self._transmit(direction, now)

    def _transmit(self, direction: int, now: int) -> None:
        sender = self._senders[direction]
        assert sender.awaiting is not None
        if self.faults.link_drop():
            self.wire_drops += 1
            self._publish_drop()
        else:
            self._wire.append(
                (
                    now + self.latency,
                    "data",
                    direction,
                    sender.awaiting,
                    sender.queue[0],
                )
            )
        sender.deadline = now + self._timeout(sender.attempts)

    def _timeout(self, attempts: int) -> int:
        """Ack deadline: round trip plus slop, doubling per attempt."""
        return (2 * self.latency + 2) << attempts

    def _retry(self, direction: int, now: int) -> None:
        sender = self._senders[direction]
        sender.attempts += 1
        if sender.attempts >= self.faults.config.max_retries:
            # Retry budget exhausted: abandon the packet.  The sequence
            # number still advances, so the receiver (which dedups on
            # seq monotonicity) accepts the next packet normally.
            self.lost += 1
            sender.queue.popleft()
            sender.awaiting = None
            sender.next_seq += 1
            return
        self.retransmits += 1
        self._transmit(direction, now)

    def _receive_data(
        self, direction: int, seq: int, payload: bytes, now: int
    ) -> None:
        if seq > self._highest[direction]:
            self._highest[direction] = seq
            self._ends[direction].receive_packet(payload)
            self.delivered += 1
        else:
            # Duplicate (the original ack was lost): drop the payload but
            # re-acknowledge so the sender can make progress.
            self.duplicates += 1
        if self.faults.link_drop():
            self.wire_drops += 1
            self._publish_drop()
        else:
            self._wire.append((now + self.latency, "ack", direction, seq, b""))

    def _receive_ack(self, direction: int, seq: int) -> None:
        sender = self._senders[direction]
        if sender.awaiting != seq:
            return  # stale ack for an already-resolved frame
        sender.queue.popleft()
        sender.awaiting = None
        sender.next_seq += 1

    def _publish_drop(self) -> None:
        for nic in self._ends:
            if nic.events is not None:
                from repro.observability.events import FaultInjected

                nic.events.publish(FaultInjected("link_drop"))
                return

    # -- introspection ---------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Frames on the wire plus packets awaiting acknowledgment (the
        cluster drain condition: zero means the link has nothing left to
        deliver, retransmit, or abandon)."""
        return (
            len(self._in_flight)
            + len(self._wire)
            + sum(len(sender.queue) for sender in self._senders)
        )
