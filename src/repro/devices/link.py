"""A point-to-point link between two network interfaces.

Models the cluster interconnect the paper's motivation assumes: packets
leaving one node's NIC arrive in the peer's RX queue after a fixed wire
latency (in bus cycles).  The link is full-duplex and lossless; NIC RX
backpressure (a full RX queue) drops at the receiver and is counted there.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import ConfigError
from repro.devices.nic import NetworkInterface, Packet


class Link:
    """Full-duplex wire between two NICs."""

    def __init__(
        self,
        nic_a: NetworkInterface,
        nic_b: NetworkInterface,
        latency: int = 10,
    ) -> None:
        if latency < 0:
            raise ConfigError("link latency must be >= 0")
        if nic_a is nic_b:
            raise ConfigError("a link needs two distinct NICs")
        self.latency = latency
        self._ends = (nic_a, nic_b)
        # (arrival_cycle, destination_index, payload), kept sorted by time.
        self._in_flight: List[Tuple[int, int, bytes]] = []
        self._now = 0
        self.delivered = 0
        nic_a.egress = lambda packet: self._inject(packet, destination=1)
        nic_b.egress = lambda packet: self._inject(packet, destination=0)

    def _inject(self, packet: Packet, destination: int) -> None:
        self._in_flight.append(
            (self._now + self.latency, destination, packet.payload)
        )

    def tick(self, bus_cycle: int) -> None:
        """Deliver every packet whose wire time has elapsed."""
        self._now = bus_cycle
        if not self._in_flight:
            return
        remaining: List[Tuple[int, int, bytes]] = []
        for arrival, destination, payload in self._in_flight:
            if arrival <= bus_cycle:
                self._ends[destination].receive_packet(payload)
                self.delivered += 1
            else:
                remaining.append((arrival, destination, payload))
        self._in_flight = remaining

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)
