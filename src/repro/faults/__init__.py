"""Deterministic fault injection (see docs/faults.md).

:class:`FaultConfig` describes a fault campaign (seed + per-site rates)
and lives inside :class:`~repro.common.config.SystemConfig`;
:class:`FaultPlan` is the runtime scheduler a system builds from it and
threads through the bus, the CSB, the refill engine, and every attached
device.  With the default (all-zero) config no plan is built at all and
the simulator is byte-identical to the fault-free implementation.
"""

from repro.faults.config import RATE_FIELDS, FaultConfig
from repro.faults.plan import FaultPlan

__all__ = ["FaultConfig", "FaultPlan", "RATE_FIELDS"]
