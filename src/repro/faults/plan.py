"""The runtime fault plan: seeded per-site random streams plus accounting.

A :class:`FaultPlan` is built once per :class:`~repro.sim.system.System`
(only when its :class:`~repro.faults.config.FaultConfig` has a nonzero
rate) and handed to every injectable component — the bus, the CSB, the
refill engine, and each attached device.  Every injection *site* draws
from its own ``random.Random`` stream, seeded by ``(seed, site name)``:

* determinism — the same config replays the same fault sequence down to
  the cycle, regardless of which other sites are enabled;
* independence — turning one fault type on cannot perturb the draw
  sequence (and therefore the injected schedule) of another.

A draw happens only at a real opportunity (a transaction about to be
accepted, a flush about to match, a packet entering the wire), so the
injected fault *count* scales with the traffic each discipline actually
generates — which is exactly what the ``fault-sweep`` experiment measures.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.faults.config import FaultConfig


class FaultPlan:
    """Deterministic, seeded fault scheduler (see module docstring)."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._streams: Dict[str, random.Random] = {}
        #: Injected-fault counts per site name (always present, zero when
        #: a site never fired); surfaced as
        #: :attr:`~repro.observability.metrics.MetricsSnapshot.fault_injections`.
        self.injected: Dict[str, int] = {}

    def _fires(self, site: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        stream = self._streams.get(site)
        if stream is None:
            # Seeding with a string is deterministic (SHA-512 based) and
            # keys each site's stream off the campaign seed.
            stream = random.Random(f"{self.config.seed}:{site}")
            self._streams[site] = stream
        if stream.random() >= rate:
            return False
        self.injected[site] = self.injected.get(site, 0) + 1
        return True

    # -- injection sites ----------------------------------------------------

    def bus_nack(self) -> bool:
        """Should the bus NACK the transaction it is about to accept?"""
        return self._fires("bus_nack", self.config.bus_nack_rate)

    def bus_stall(self) -> int:
        """Extra target wait cycles for the transaction being accepted."""
        if self._fires("bus_stall", self.config.bus_stall_rate):
            return self.config.bus_stall_cycles
        return 0

    def device_timeout(self) -> int:
        """Extra cycles before a device's positive ack (0 = on time)."""
        if self._fires("device_timeout", self.config.device_timeout_rate):
            return self.config.device_timeout_cycles
        return 0

    def link_drop(self) -> bool:
        """Should this link packet (or ack) be dropped on the wire?"""
        return self._fires("link_drop", self.config.link_drop_rate)

    def csb_spurious_abort(self) -> bool:
        """Should a conditional flush that matched abort anyway?"""
        return self._fires(
            "csb_spurious_abort", self.config.csb_spurious_abort_rate
        )

    def refill_stall(self) -> int:
        """Extra bus cycles before a queued refill may issue."""
        if self._fires("refill_stall", self.config.refill_stall_rate):
            return self.config.refill_stall_cycles
        return 0

    def nic_tx_fault(self) -> bool:
        """Should this NIC packet fail serialization (forcing a retry)?"""
        return self._fires("nic_tx_fault", self.config.nic_tx_fault_rate)

    def dma_fault(self) -> bool:
        """Should this DMA transfer fail at completion (forcing a re-run)?"""
        return self._fires("dma_fault", self.config.dma_fault_rate)

    # -- accounting ---------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())
