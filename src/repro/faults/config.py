"""Fault-injection configuration: every injectable failure, as data.

The paper's CSB is defined by its *failure* path — the conditional flush
fails on conflict and software retries — so the simulator must be able to
provoke failures everywhere, not only where a workload happens to create
them.  :class:`FaultConfig` is the serializable description of a fault
campaign: a seed plus a rate (and, where it matters, a duration) per
injection site.  It lives inside
:class:`~repro.common.config.SystemConfig`, travels through
:mod:`repro.common.serialize` with every other knob, and therefore keys
the content-addressed result cache — a faulted run can never alias a
fault-free one.

The default config has every rate at zero and :attr:`FaultConfig.enabled`
False; a :class:`~repro.sim.system.System` built from it installs **no**
fault plan at all, so the fault layer costs nothing when off (the same
``is None`` discipline the observability event bus uses).

Injection sites (see docs/faults.md for the full taxonomy):

====================  =======================================================
``bus_nack``          the bus refuses an otherwise-acceptable transaction at
                      its address cycle; the initiator retries next cycle
``bus_stall``         a transaction's target inserts extra wait cycles
``device_timeout``    a device's positive acknowledgment is late, stalling
                      the strongly-ordered uncached stream behind it
``link_drop``         a link packet (or its ack) vanishes on the wire
``csb_spurious_abort``a conditional flush that *would* have matched aborts
                      anyway; software's retry loop must mask it
``refill_stall``      a queued cache-line refill transiently cannot issue
``nic_tx_fault``      a NIC transmit fails serialization and must be
                      retried by the NIC's backoff state machine
``dma_fault``         a DMA transfer fails at completion and the engine
                      re-runs it after backoff
====================  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


#: Every injection-site rate field of :class:`FaultConfig`, in a fixed
#: order (the per-site random streams are keyed by these names).
RATE_FIELDS = (
    "bus_nack_rate",
    "bus_stall_rate",
    "device_timeout_rate",
    "link_drop_rate",
    "csb_spurious_abort_rate",
    "refill_stall_rate",
    "nic_tx_fault_rate",
    "dma_fault_rate",
)


@dataclass(frozen=True)
class FaultConfig:
    """One deterministic fault campaign.

    ``seed`` feeds the per-site random streams; two runs with equal
    configs (seed included) inject byte-identical fault sequences.  Rates
    are per-opportunity probabilities in ``[0, 1]``; the ``*_cycles``
    knobs size the injected delays.  ``max_retries`` bounds every device
    retry state machine (NIC retransmit, DMA re-run, link ARQ) before the
    device gives up and counts the operation as lost.
    """

    seed: int = 0
    bus_nack_rate: float = 0.0
    bus_stall_rate: float = 0.0
    bus_stall_cycles: int = 2
    device_timeout_rate: float = 0.0
    device_timeout_cycles: int = 8
    link_drop_rate: float = 0.0
    csb_spurious_abort_rate: float = 0.0
    refill_stall_rate: float = 0.0
    refill_stall_cycles: int = 4
    nic_tx_fault_rate: float = 0.0
    dma_fault_rate: float = 0.0
    max_retries: int = 8

    def __post_init__(self) -> None:
        for name in RATE_FIELDS:
            rate = getattr(self, name)
            _require(
                isinstance(rate, (int, float)) and 0.0 <= rate <= 1.0,
                f"{name} must be a probability in [0, 1], got {rate!r}",
            )
        _require(self.bus_stall_cycles >= 1, "bus_stall_cycles must be >= 1")
        _require(
            self.device_timeout_cycles >= 1, "device_timeout_cycles must be >= 1"
        )
        _require(
            self.refill_stall_cycles >= 1, "refill_stall_cycles must be >= 1"
        )
        _require(self.max_retries >= 1, "max_retries must be >= 1")

    @property
    def enabled(self) -> bool:
        """True when any injection site has a nonzero rate."""
        return any(getattr(self, name) > 0.0 for name in RATE_FIELDS)
