"""The dynamically scheduled core.

Model summary (paper §4.1):

* Four-wide in-order dispatch into a unified dispatch queue / reorder buffer;
  four-wide in-order retirement.
* Out-of-order issue to two integer and two FP units as operands become
  ready; results feed dependents through producer sequence numbers (true
  data dependencies only — renaming removes false dependencies).
* A separate memory queue performs address calculation speculatively and
  executes cached loads out of order (with exact disambiguation against
  older stores and store-to-load forwarding).
* Cached stores commit at retirement; atomic swaps on cached space perform
  their read-modify-write non-speculatively at the head of the ROB.
* Uncached operations issue strictly in program order, non-speculatively,
  at the head of the ROB, through a single uncached port (one per cycle);
  no value is ever forwarded from an uncached store to a load.
* A membar may not graduate until the uncached buffer has emptied.

The model is *functional-first*: results computable from architecturally
known values are computed at dispatch, so branches resolve with oracle
accuracy (the configured default models the well-predicted steady state the
paper measures; the mispredict penalty knob exists for sensitivity studies).
Results that depend on the timed world — uncached loads and the CSB
conditional flush — stay unknown until the timing model delivers them, and
anything that needs such a value (a dependent branch, a memory operand)
stalls dispatch until it resolves, which is exactly the data-dependent
stall the paper's retry-check sequences pay.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.config import CoreConfig
from repro.common.errors import DeadlockError, SimulationError
from repro.common.stats import StatsCollector
from repro.cpu.context import ProcessContext
from repro.cpu.inflight import InFlight, MemState
from repro.cpu.trace import PipelineTrace
from repro.cpu.units import FunctionalUnitPool
from repro.isa import semantics
from repro.isa.instructions import (
    AluInstruction,
    BLOCK_STORE_REGS,
    BlockStoreInstruction,
    BranchInstruction,
    CompareInstruction,
    FU_FP,
    LoadInstruction,
    LoadLinkedInstruction,
    SetInstruction,
    StoreConditionalInstruction,
    StoreInstruction,
    SwapInstruction,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.layout import PageAttr
from repro.memory.tlb import AttributeTLB
from repro.uncached.unit import UncachedUnit


class Core:
    """One out-of-order processor executing one context at a time."""

    def __init__(
        self,
        config: CoreConfig,
        hierarchy: MemoryHierarchy,
        tlb: AttributeTLB,
        uncached_unit: UncachedUnit,
        stats: StatsCollector,
        trace: Optional[PipelineTrace] = None,
        core_id: int = 0,
        dcache=None,
    ) -> None:
        self.config = config
        self.core_id = core_id
        self.trace = trace
        #: Observability event bus; None (the default) means uninstrumented.
        self.events = None
        #: The non-blocking D-cache (repro.memory.dcache), or None — the
        #: default — in which case every cached access takes the historical
        #: blocking-hierarchy path, byte-identically.
        self.dcache = dcache
        self.hierarchy = hierarchy
        self.tlb = tlb
        self.unit = uncached_unit
        self.stats = stats
        self.fus = FunctionalUnitPool(config)
        self.context: Optional[ProcessContext] = None
        self._rob: Deque[InFlight] = deque()
        self._memq: List[InFlight] = []
        #: dispatched ALU/FP/branch instructions awaiting a functional unit,
        #: in dispatch (= program) order; removed once issued.  Keeping this
        #: separate from the ROB turns the issue stage from an O(ROB) scan
        #: per cycle into a walk of only the not-yet-issued candidates.
        self._issueq: List[InFlight] = []
        # Hot counters, resolved once: the pipeline loops bump these every
        # cycle and the lazy name lookup in StatsCollector.bump is measurable.
        self._n_dispatched = stats.counter("core.dispatched")
        self._n_issued = stats.counter("core.issued")
        self._n_retired = stats.counter("core.retired")
        self._n_branches = stats.counter("core.branches")
        self._spec_map: Dict[str, int] = {}
        self._values: Dict[int, int] = {}
        self._ready: Dict[int, int] = {}
        self._seq = 0
        self._spec_pc = 0
        self._fetch_stopped = False
        self._drain_requested = False
        self._interrupt_pending = False
        # Undo log for dispatch-time functional writes of unretired cached
        # stores/swaps: (seq, address, previous bytes).  Replayed newest
        # first on a precise-interrupt squash.
        self._undo: List[Tuple[int, int, bytes]] = []
        # Load-linked link register: the linked line address, or None.
        self._link: Optional[int] = None
        self._last_progress = 0
        self.now = 0

    # -- context management ------------------------------------------------------

    def install_context(self, context: ProcessContext) -> None:
        """Begin executing ``context`` (pipeline must be empty)."""
        if self._rob:
            raise SimulationError("cannot switch context with instructions in flight")
        self.context = context
        self._spec_pc = context.pc
        self._fetch_stopped = context.halted
        self._drain_requested = False
        self._interrupt_pending = False
        self._spec_map.clear()
        self._values.clear()
        self._ready.clear()
        self._memq.clear()
        self._issueq.clear()
        self._undo.clear()
        self._link = None  # a context switch breaks any load link
        self._last_progress = self.now

    def request_drain(self) -> None:
        """Stop dispatching; the pipeline empties through retirement."""
        self._drain_requested = True

    def interrupt(self) -> None:
        """Deliver a precise timer interrupt.

        Dispatch stops immediately; instructions that have not retired are
        squashed (their dispatch-time functional effects undone) and will
        re-execute when the process is rescheduled.  An uncached operation
        already issued to the device cannot be squashed (exactly-once), so
        the squash waits until it completes.

        This is what exposes the paper's §3.2 interleaving: combining
        stores that retired before the interrupt have reached the CSB, the
        squashed conditional flush re-executes after the competitor ran,
        and the flush then fails and triggers the software retry.
        """
        self._drain_requested = True
        self._interrupt_pending = True

    @property
    def drained(self) -> bool:
        return not self._rob

    @property
    def halted(self) -> bool:
        return self.context is None or self.context.halted

    @property
    def link_address(self) -> Optional[int]:
        """The load-linked link register: linked line address or None.

        Architectural state the tiered execution engine carries across the
        detailed/fast-forward boundary (``install_context`` deliberately
        breaks the link, so a hand-off that preserves it must restore it
        through the setter afterwards).
        """
        return self._link

    @link_address.setter
    def link_address(self, value: Optional[int]) -> None:
        self._link = value

    # -- main clock ----------------------------------------------------------------

    def tick(self, now: int) -> None:
        self.now = now
        if self.context is None or self.context.halted:
            return
        self.fus.new_cycle()
        self._retire(now)
        if self._interrupt_pending and self._try_squash():
            return
        self._issue(now)
        self._memq_issue(now)
        if not self._drain_requested and not self._fetch_stopped:
            self._dispatch(now)
        if not self._rob:
            self._last_progress = now  # idle, not stuck
        if now - self._last_progress > 50_000:
            raise DeadlockError(
                f"no retirement progress; ROB head "
                f"{self._rob[0].describe() if self._rob else 'empty'}",
                cycle=now,
            )

    # -- dispatch stage ---------------------------------------------------------------

    def _dispatch(self, now: int) -> None:
        assert self.context is not None
        # Hot loop: config limits, queues, and the (usually-None) trace are
        # hoisted to locals instead of being re-resolved per instruction.
        config = self.config
        rob = self._rob
        memq = self._memq
        rob_entries = config.rob_entries
        memq_entries = config.memq_entries
        fetch = self.context.program.fetch
        trace = self.trace
        budget = config.dispatch_width
        while budget > 0:
            if len(rob) >= rob_entries:
                self.stats.bump("core.rob_full_stalls")
                return
            instr = fetch(self._spec_pc)
            if instr is None:
                raise SimulationError(
                    f"fetch ran past the program end at pc={self._spec_pc}"
                )
            if instr.is_mem and not instr.is_membar:
                if len(memq) >= memq_entries:
                    self.stats.bump("core.memq_full_stalls")
                    return
            flight = InFlight(self._next_seq(), instr, self._spec_pc, now)
            if not self._capture_operands(flight):
                self._seq -= 1  # instruction was not actually dispatched
                self.stats.bump("core.frontend_value_stalls")
                return
            self._apply_dispatch_effects(flight)
            if trace is not None:
                trace.record(now, "dispatch", flight.seq, flight.pc, instr)
            if not instr.is_branch:
                self._spec_pc = flight.pc + 1
            rob.append(flight)
            if instr.is_mem and not instr.is_membar:
                memq.append(flight)
            elif not (instr.is_mark or instr.is_halt or instr.is_membar):
                if instr.fu == "none":
                    flight.issued = True  # nothing to issue (no FU class)
                else:
                    self._issueq.append(flight)
            if instr.is_halt:
                self._fetch_stopped = True
                return
            if not instr.is_mark:
                budget -= 1
            self._n_dispatched.value += 1

    def _capture_operands(self, flight: InFlight) -> bool:
        """Record source operands: known values into ``src_vals``, in-flight
        producers into ``dep_seqs``.  Returns False when the instruction
        needs a functional value that is not yet known (branch condition or
        memory operand) — the frontend stalls."""
        instr = flight.instr
        needs_values_now = instr.is_branch or (instr.is_mem and not instr.is_membar)
        for reg in instr.sources():
            if reg == "r0":
                flight.src_vals[reg] = 0  # %g0 is hardwired to zero
                continue
            producer = self._spec_map.get(reg)
            if producer is not None:
                flight.dep_seqs[reg] = producer
                if producer in self._values:
                    flight.src_vals[reg] = self._values[producer]
                elif needs_values_now:
                    return False
            else:
                assert self.context is not None
                flight.src_vals[reg] = self.context.registers.read(reg)
        flight.dep_list = tuple(flight.dep_seqs.values())
        return True

    def _apply_dispatch_effects(self, flight: InFlight) -> None:
        """Functional-first execution at dispatch, where possible."""
        instr = flight.instr
        if isinstance(instr, BranchInstruction):
            self._resolve_branch(flight)
            return
        if instr.is_mem and not instr.is_membar:
            self._prepare_memop(flight)
            return
        if isinstance(instr, (AluInstruction, SetInstruction, CompareInstruction)):
            if flight.operands_known(self._values):
                self._compute_value(flight)
        dest = instr.destination()
        if dest is not None and dest != "r0":
            self._spec_map[dest] = flight.seq
        if instr.is_mark or instr.is_halt or instr.is_membar:
            # No result, no functional unit: timing-ready immediately.
            self._ready[flight.seq] = flight.dispatch_cycle
            flight.ready_at = flight.dispatch_cycle

    def _resolve_branch(self, flight: InFlight) -> None:
        assert self.context is not None
        instr = flight.instr
        assert isinstance(instr, BranchInstruction)
        if instr.op in ("brz", "brnz"):
            assert instr.rs1 is not None
            taken = semantics.branch_taken(
                instr.op, reg_value=flight.operand(instr.rs1, self._values)
            )
        elif instr.op == "ba":
            taken = True
        else:
            taken = semantics.branch_taken(
                instr.op, cc=flight.operand("icc", self._values)
            )
        flight.taken = taken
        if taken:
            self._spec_pc = self.context.program.target_of(instr)
        else:
            self._spec_pc = flight.pc + 1
        if not self.config.perfect_branch_prediction:
            # Sensitivity knob: charge a flat redirect penalty per taken
            # branch by delaying the branch's readiness.
            flight.ready_at = None
        self._n_branches.value += 1

    def _prepare_memop(self, flight: InFlight) -> None:
        """Compute the address, classify by page attribute, and apply
        functional effects for cached operations."""
        assert self.context is not None
        instr = flight.instr
        base = flight.operand(instr.base, self._values)  # type: ignore[attr-defined]
        offset = instr.offset  # type: ignore[attr-defined]
        if isinstance(offset, str):
            offset_value = flight.operand(offset, self._values)
        else:
            offset_value = offset
        address = (base + offset_value) & ((1 << 64) - 1)
        size = instr.size  # type: ignore[attr-defined]
        if address % size:
            raise SimulationError(
                f"unaligned {size}-byte access at {address:#x} (pc={flight.pc})"
            )
        flight.address = address
        flight.attr = self.tlb.attribute_of(address)
        if isinstance(instr, SwapInstruction):
            flight.swap_expected = flight.operand(instr.rd, self._values)
            if flight.attr is PageAttr.CACHED:
                self._log_undo(flight.seq, address, 8)
                old = self.hierarchy.read(address, 8)
                self.hierarchy.write(address, flight.swap_expected, 8)
                self._set_value(flight, old, ready=None)
                self._clear_link_if_written(address)
            # Uncached swap results resolve through the uncached unit.
        elif isinstance(instr, LoadLinkedInstruction):
            if flight.attr is not PageAttr.CACHED:
                raise SimulationError(
                    f"load-linked requires cached space, not {address:#x}"
                )
            self._set_value(flight, self.hierarchy.read(address, 8), ready=None)
            self._link = address - (address % self.hierarchy.config.line_size)
        elif isinstance(instr, StoreConditionalInstruction):
            if flight.attr is not PageAttr.CACHED:
                raise SimulationError(
                    f"store-conditional requires cached space, not {address:#x}"
                )
            line = address - (address % self.hierarchy.config.line_size)
            if self._link == line:
                flight.store_data = flight.operand(instr.rs, self._values)
                self._log_undo(flight.seq, address, 8)
                self.hierarchy.write(address, flight.store_data, 8)
                self._set_value(flight, 1, ready=None)
            else:
                self._set_value(flight, 0, ready=None)
            self._link = None  # an SC always consumes the link
        elif isinstance(instr, LoadInstruction):
            if flight.attr is PageAttr.CACHED:
                self._set_value(flight, self.hierarchy.read(address, size), ready=None)
        elif isinstance(instr, BlockStoreInstruction):
            if flight.attr is PageAttr.CACHED:
                raise SimulationError(
                    "block stores bypass the cache hierarchy; target "
                    f"uncached space, not {address:#x}"
                )
            packed = 0
            for reg in BLOCK_STORE_REGS:
                packed = (packed << 64) | flight.operand(reg, self._values)
            flight.store_data = packed
        elif isinstance(instr, StoreInstruction):
            flight.store_data = flight.operand(instr.rs, self._values)
            if flight.attr is PageAttr.CACHED:
                self._log_undo(flight.seq, address, size)
                self.hierarchy.write(address, flight.store_data, size)
                self._clear_link_if_written(address)
        dest = instr.destination()
        if dest is not None and dest != "r0":
            self._spec_map[dest] = flight.seq

    def _compute_value(self, flight: InFlight) -> None:
        """Functional execution of ALU-class instructions."""
        instr = flight.instr
        if isinstance(instr, SetInstruction):
            value = instr.value & ((1 << 64) - 1)
        elif isinstance(instr, CompareInstruction):
            op2 = (
                flight.operand(instr.operand2, self._values)
                if isinstance(instr.operand2, str)
                else instr.operand2
            )
            value = semantics.compare(flight.operand(instr.rs1, self._values), op2)
        elif isinstance(instr, AluInstruction):
            op2 = (
                flight.operand(instr.operand2, self._values)
                if isinstance(instr.operand2, str)
                else instr.operand2
            )
            rs1 = flight.operand(instr.rs1, self._values)
            if instr.fu == FU_FP:
                value = semantics.fp_alu(instr.op, rs1, op2)
            else:
                value = semantics.alu(instr.op, rs1, op2)
        else:
            raise SimulationError(f"cannot compute value for {instr!r}")
        self._set_value(flight, value, ready=None)

    def _set_value(
        self, flight: InFlight, value: int, ready: Optional[int]
    ) -> None:
        flight.value = value
        flight.value_known = True
        self._values[flight.seq] = value
        if ready is not None:
            flight.ready_at = ready
            self._ready[flight.seq] = ready

    # -- issue stage -----------------------------------------------------------------

    def _issue(self, now: int) -> None:
        """Issue ALU/FP/branch instructions to functional units, oldest first."""
        queue = self._issueq
        if not queue:
            return
        ready_map = self._ready
        ready_get = ready_map.get
        kept: List[InFlight] = []
        for flight in queue:
            # Producers' ready cycles never move earlier once recorded, so a
            # failed dependency check yields a cycle before which re-checking
            # is pointless (0 = a producer's timing is still unknown).
            if flight.stall_until > now:
                kept.append(flight)
                continue
            wait = 0
            blocked = False
            for producer in flight.dep_list:
                cycle = ready_get(producer)
                if cycle is None:
                    blocked = True
                    wait = 0
                    break
                if cycle > now:
                    blocked = True
                    if cycle > wait:
                        wait = cycle
            if blocked:
                flight.stall_until = wait
                kept.append(flight)
                continue
            instr = flight.instr
            fu = instr.fu
            if not self.fus.acquire(fu):
                kept.append(flight)
                continue
            flight.issued = True
            latency = (
                self.config.fp_latency if fu == FU_FP else self.config.int_latency
            )
            if instr.is_branch and not self.config.perfect_branch_prediction:
                latency += self.config.branch_mispredict_penalty
            if not flight.value_known and instr.destination() is not None:
                if not flight.operands_known(self._values):
                    raise SimulationError(
                        f"issued {instr!r} with unknown operand values"
                    )
                self._compute_value(flight)
            ready = now + latency
            flight.ready_at = ready
            ready_map[flight.seq] = ready
            if self.trace is not None:
                self.trace.record(now, "issue", flight.seq, flight.pc, instr)
            self._n_issued.value += 1
        self._issueq = kept

    # -- memory queue -----------------------------------------------------------------

    def _memq_issue(self, now: int) -> None:
        """Execute cached loads speculatively, out of order."""
        if not self._memq:
            return
        for flight in self._memq:
            instr = flight.instr
            if flight.mem_state is not MemState.WAITING:
                continue
            if flight.attr is not PageAttr.CACHED:
                continue  # uncached ops wait for the head of the ROB
            if isinstance(instr, (SwapInstruction, StoreConditionalInstruction)):
                continue  # atomics execute at the head of the ROB
            if isinstance(instr, StoreInstruction):
                # Stores are ready to commit once operands are timing-ready.
                if flight.timing_ready(self._ready, now):
                    self._mem_done(flight, now)
                continue
            # Cached load.
            if not flight.timing_ready(self._ready, now):
                continue
            forward_from = self._forwarding_store(flight)
            if forward_from is not None:
                if forward_from.timing_ready(self._ready, now):
                    self._mem_done(flight, now + 1)
                continue
            if self._older_store_blocks(flight):
                continue
            assert flight.address is not None
            if self.dcache is not None:
                # Non-blocking cache: a primary miss allocates an MSHR and
                # the load sleeps until the refill's precomputed arrival; a
                # capacity stall (all MSHRs busy) retries next cycle before
                # consuming a cache port.
                if not self.dcache.can_accept(flight.address, now):
                    continue
                if not self.fus.acquire("cache"):
                    continue
                ready = self.dcache.access(flight.address, False, now)
            else:
                if not self.fus.acquire("cache"):
                    continue
                latency = self.hierarchy.access_latency(
                    flight.address, is_write=False
                )
                ready = now + latency
            flight.mem_state = MemState.ACCESSING
            flight.ready_at = ready
            self._ready[flight.seq] = ready
            if self.trace is not None:
                self.trace.record(now, "cache", flight.seq, flight.pc, instr)
            self.stats.bump("core.cached_loads")
        self._complete_cache_accesses(now)

    def _complete_cache_accesses(self, now: int) -> None:
        for flight in self._memq:
            if (
                flight.mem_state is MemState.ACCESSING
                and flight.ready_at is not None
                and flight.ready_at <= now
            ):
                flight.mem_state = MemState.DONE

    def _forwarding_store(self, load: InFlight) -> Optional[InFlight]:
        """Youngest older cached store whose bytes fully cover the load."""
        assert load.address is not None
        result: Optional[InFlight] = None
        for other in self._memq:
            if other.seq >= load.seq:
                break
            if not isinstance(other.instr, StoreInstruction):
                continue
            if other.attr is not PageAttr.CACHED:
                continue
            assert other.address is not None
            load_size = load.instr.size  # type: ignore[attr-defined]
            store_size = other.instr.size
            if (
                other.address <= load.address
                and load.address + load_size <= other.address + store_size
            ):
                result = other
        return result

    def _older_store_blocks(self, load: InFlight) -> bool:
        """Partial overlap with an older store: wait for it to commit."""
        assert load.address is not None
        load_size = load.instr.size  # type: ignore[attr-defined]
        for other in self._memq:
            if other.seq >= load.seq:
                break
            if not other.instr.is_store:
                continue
            assert other.address is not None
            other_size = other.instr.size  # type: ignore[attr-defined]
            if (
                other.address < load.address + load_size
                and load.address < other.address + other_size
            ):
                covered = (
                    other.address <= load.address
                    and load.address + load_size <= other.address + other_size
                )
                if not covered or other.attr is not PageAttr.CACHED:
                    return True
        return False

    def _mem_done(self, flight: InFlight, ready: int) -> None:
        flight.mem_state = MemState.DONE
        flight.ready_at = ready
        self._ready[flight.seq] = ready

    # -- retire stage --------------------------------------------------------------------

    def _retire(self, now: int) -> None:
        assert self.context is not None
        budget = self.config.retire_width
        while self._rob and budget > 0:
            head = self._rob[0]
            instr = head.instr
            if instr.is_mark:
                self.context.marks[instr.label] = now  # type: ignore[attr-defined]
                self.stats.mark(instr.label, now)  # type: ignore[attr-defined]
                self._commit(head, now)
                continue  # marks are free
            if instr.is_halt:
                self.context.halted = True
                self.context.pc = head.pc
                self._commit(head, now)
                return
            if instr.is_membar:
                if not self.unit.barrier_clear():
                    return
                self._commit(head, now)
                budget -= 1
                continue
            if instr.is_mem:
                if not self._retire_memop(head, now):
                    return
                budget -= 1
                continue
            if head.ready_at is None or head.ready_at > now:
                return
            self._commit(head, now)
            budget -= 1

    def _retire_memop(self, head: InFlight, now: int) -> bool:
        """Handle a memory operation at the head of the ROB.  Returns True
        when it retired this cycle."""
        instr = head.instr
        if head.attr is PageAttr.CACHED:
            if isinstance(instr, SwapInstruction):
                return self._retire_cached_swap(head, now)
            if isinstance(instr, StoreConditionalInstruction):
                return self._retire_store_conditional(head, now)
            if isinstance(instr, StoreInstruction):
                if head.mem_state is not MemState.DONE:
                    return False
                assert head.address is not None
                if self.dcache is not None:
                    return self._retire_cached_store_dcache(head, now)
                # Commit: the timing-plane cache access happens now; the
                # functional write already happened at dispatch.
                self.hierarchy.access_latency(head.address, is_write=True)
                self._commit(head, now)
                return True
            # Cached load: retires once its access completed.
            if head.mem_state is not MemState.DONE or (
                head.ready_at is not None and head.ready_at > now
            ):
                return False
            self._commit(head, now)
            return True
        return self._retire_uncached(head, now)

    def _retire_cached_store_dcache(self, head: InFlight, now: int) -> bool:
        """Commit a cached store through the non-blocking D-cache.

        A store hit retires after the hit latency; a store miss allocates
        an MSHR (write-allocate) and blocks retirement until the refill
        lands — the emergent store-miss cost the crossover experiment
        measures.  ``cache_issued`` guards against re-entering the cache
        on the retry polls while the miss is outstanding.
        """
        assert head.address is not None
        if not head.cache_issued:
            if not self.dcache.can_accept(head.address, now):
                return False
            if not self.fus.acquire("cache"):
                return False
            ready = self.dcache.access(head.address, True, now)
            head.cache_issued = True
            head.ready_at = ready
            self._ready[head.seq] = ready
            self.stats.bump("core.cached_stores")
        if head.ready_at is not None and head.ready_at > now:
            return False
        self._commit(head, now)
        return True

    def _retire_cached_swap(self, head: InFlight, now: int) -> bool:
        if head.mem_state is MemState.WAITING:
            if not head.timing_ready(self._ready, now):
                return False
            assert head.address is not None
            if self.dcache is not None:
                if not self.dcache.can_accept(head.address, now):
                    return False
                if not self.fus.acquire("cache"):
                    return False
                ready = self.dcache.access(head.address, True, now)
            else:
                if not self.fus.acquire("cache"):
                    return False
                latency = self.hierarchy.access_latency(head.address, is_write=True)
                ready = now + latency
            head.mem_state = MemState.ACCESSING
            head.ready_at = ready
            self._ready[head.seq] = ready
            self.stats.bump("core.cached_swaps")
            if self.events is not None:
                from repro.observability.events import LockAcquire

                assert self.context is not None
                self.events.publish(
                    LockAcquire(head.address, self.context.pid, self.core_id)
                )
            return False
        if head.mem_state is MemState.ACCESSING:
            assert head.ready_at is not None
            if head.ready_at > now:
                return False
            head.mem_state = MemState.DONE
        self._commit(head, now)
        return True

    def _retire_store_conditional(self, head: InFlight, now: int) -> bool:
        """Store-conditional at the head of the ROB.

        A failed SC (stale link) completes locally and immediately.  A
        successful one pays a cache access and — when the implementation
        broadcasts it (``sc_bus_transaction``) — a full bus round trip even
        on a hit, the extra locking overhead the paper's §4.3.2 discussion
        predicts for this mechanism.
        """
        if head.mem_state is MemState.WAITING:
            if not head.timing_ready(self._ready, now):
                return False
            assert head.value is not None
            if head.value == 0:
                head.mem_state = MemState.DONE
                head.ready_at = now
                self._ready[head.seq] = now
                self._commit(head, now)
                self.stats.bump("core.sc_failures")
                return True
            assert head.address is not None
            if self.dcache is not None:
                if not self.dcache.can_accept(head.address, now):
                    return False
                if not self.fus.acquire("cache"):
                    return False
                ready = self.dcache.access(head.address, True, now)
            else:
                if not self.fus.acquire("cache"):
                    return False
                latency = self.hierarchy.access_latency(head.address, is_write=True)
                ready = now + latency
            head.mem_state = MemState.ACCESSING
            head.ready_at = ready
            self._ready[head.seq] = ready
            return False
        if head.mem_state is MemState.ACCESSING:
            assert head.ready_at is not None
            if head.ready_at > now:
                return False
            if self.config.sc_bus_transaction:
                if not self.fus.acquire("uncached"):
                    return False
                assert head.address is not None
                accepted = self.unit.issue_sync(
                    head.address, self._sync_resolver(head)
                )
                if accepted:
                    head.mem_state = MemState.ISSUED_UNCACHED
                return False
            head.mem_state = MemState.DONE
            self._commit(head, now)
            return True
        if head.mem_state is MemState.ISSUED_UNCACHED:
            return False
        self._commit(head, now)
        return True

    def _sync_resolver(self, head: InFlight):
        def resolve(_value: int, cycle: int) -> None:
            # The functional result (1) was known at dispatch; the bus
            # round trip only gates timing.
            head.ready_at = cycle
            self._ready[head.seq] = cycle
            head.mem_state = MemState.DONE

        return resolve

    def _clear_link_if_written(self, address: int) -> None:
        if self._link is None:
            return
        line = address - (address % self.hierarchy.config.line_size)
        if line == self._link:
            self._link = None

    def _retire_uncached(self, head: InFlight, now: int) -> bool:
        """Uncached operations issue here: in order, non-speculatively, one
        per cycle through the uncached port."""
        assert self.context is not None
        instr = head.instr
        if head.mem_state is MemState.WAITING:
            if not head.timing_ready(self._ready, now):
                return False
            if not self.fus.acquire("uncached"):
                return False
            if isinstance(instr, SwapInstruction):
                assert head.address is not None and head.swap_expected is not None
                accepted = self.unit.issue_swap(
                    head.address,
                    self.context.pid,
                    head.swap_expected,
                    self._uncached_resolver(head),
                )
                if accepted:
                    head.mem_state = MemState.ISSUED_UNCACHED
                return False
            if isinstance(instr, (StoreInstruction, BlockStoreInstruction)):
                assert head.address is not None and head.store_data is not None
                accepted = self.unit.issue_store(
                    head.address,
                    instr.size,
                    head.store_data,
                    self.context.pid,
                )
                if not accepted:
                    self.stats.bump("core.uncached_store_stalls")
                    return False
                head.mem_state = MemState.DONE
                if self.trace is not None:
                    self.trace.record(now, "uncached", head.seq, head.pc, instr)
                self._commit(head, now)
                self.stats.bump("core.uncached_stores")
                return True
            # Uncached load.
            assert head.address is not None
            accepted = self.unit.issue_load(
                head.address,
                instr.size,  # type: ignore[attr-defined]
                self._uncached_resolver(head),
            )
            if accepted:
                head.mem_state = MemState.ISSUED_UNCACHED
            return False
        if head.mem_state is MemState.ISSUED_UNCACHED:
            return False  # waiting for the value to come back
        # DONE: the value resolved; retire it.
        self._commit(head, now)
        return True

    def _uncached_resolver(self, head: InFlight):
        def resolve(value: int, cycle: int) -> None:
            self._set_value(head, value, ready=cycle)
            head.mem_state = MemState.DONE

        return resolve

    def _commit(self, head: InFlight, now: int) -> None:
        assert self.context is not None
        popped = self._rob.popleft()
        if popped is not head:
            raise SimulationError("retired an instruction out of order")
        if self.trace is not None:
            self.trace.record(now, "retire", head.seq, head.pc, head.instr)
        dest = head.instr.destination()
        if dest is not None:
            if not head.value_known:
                raise SimulationError(
                    f"retiring {head!r} without a result value"
                )
            assert head.value is not None
            self.context.registers.write(dest, head.value)
            if self._spec_map.get(dest) == head.seq:
                del self._spec_map[dest]
        if head in self._memq:
            self._memq.remove(head)
        if self._undo and any(entry[0] == head.seq for entry in self._undo):
            self._undo = [entry for entry in self._undo if entry[0] != head.seq]
        if isinstance(head.instr, BranchInstruction) and head.taken:
            self.context.pc = self.context.program.target_of(head.instr)
        else:
            self.context.pc = head.pc + 1
        self.context.retired_instructions += 1
        self._last_progress = now
        self._n_retired.value += 1

    # -- precise interrupts ---------------------------------------------------------------

    def _log_undo(self, seq: int, address: int, size: int) -> None:
        old = self.hierarchy.backing.read_bytes(address, size)
        self._undo.append((seq, address, old))

    def _try_squash(self) -> bool:
        """Complete a pending interrupt by squashing unretired work.

        Returns True once the squash happened.  Waits (returns False) while
        the ROB head holds an uncached operation that already reached the
        device — that one must retire to preserve exactly-once semantics.
        """
        assert self.context is not None
        for flight in self._rob:
            if flight.mem_state is MemState.ISSUED_UNCACHED:
                return False
        if self._rob:
            # Resume at the oldest unretired instruction; undo the
            # dispatch-time functional writes of everything squashed.
            self.context.pc = self._rob[0].pc
            for _, address, old in reversed(self._undo):
                self.hierarchy.backing.write_bytes(address, old)
            if self.trace is not None:
                for flight in self._rob:
                    self.trace.record(
                        self.now, "squash", flight.seq, flight.pc, flight.instr
                    )
            self.stats.bump("core.squashed", len(self._rob))
            if self.events is not None:
                from repro.observability.events import PipelineSquash

                self.events.publish(PipelineSquash(len(self._rob), self.core_id))
        self._rob.clear()
        self._memq.clear()
        self._issueq.clear()
        self._spec_map.clear()
        self._values.clear()
        self._ready.clear()
        self._undo.clear()
        self._link = None
        self._interrupt_pending = False
        self._last_progress = self.now
        return True

    # -- misc --------------------------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def rob_occupancy(self) -> int:
        return len(self._rob)

    def pending_description(self) -> List[Tuple[int, str]]:
        return [flight.describe() for flight in self._rob]
