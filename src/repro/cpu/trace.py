"""Pipeline trace: a per-cycle event log of instruction progress.

Attach a :class:`PipelineTrace` to a core (or pass ``trace=True`` to
:class:`repro.sim.System`) and every dynamic instruction logs its dispatch,
issue, memory access, uncached issue, retirement, and squash events.  The
rendered trace is the primary debugging view of the out-of-order engine::

    cycle     stage     seq  pc  instruction
        5  dispatch       3   2  stx %r16, [%r9]
        6    retire       2   1  set 8, %r20

Tracing is off by default and costs nothing when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.tables import Table
from repro.isa.disassembler import disassemble_instruction
from repro.isa.instructions import BranchInstruction

STAGES = ("dispatch", "issue", "cache", "uncached", "retire", "squash")


@dataclass(frozen=True)
class TraceEvent:
    """One pipeline event for one dynamic instruction."""

    cycle: int
    stage: str
    seq: int
    pc: int
    text: str


class PipelineTrace:
    """Collects :class:`TraceEvent` records in simulation order."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.events: List[TraceEvent] = []
        self.capacity = capacity
        self.dropped = 0

    def record(self, cycle: int, stage: str, seq: int, pc: int, instruction) -> None:
        if stage not in STAGES:
            raise ValueError(f"unknown trace stage {stage!r}")
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        if isinstance(instruction, BranchInstruction):
            text = f"{instruction.op} -> {instruction.target}"
        else:
            text = disassemble_instruction(instruction)
        self.events.append(TraceEvent(cycle, stage, seq, pc, text))

    def events_for(self, seq: int) -> List[TraceEvent]:
        return [event for event in self.events if event.seq == seq]

    def stage_cycles(self, seq: int) -> Dict[str, int]:
        """stage -> cycle map for one dynamic instruction (last occurrence
        wins, which matters for re-executed squashed instructions)."""
        return {e.stage: e.cycle for e in self.events_for(seq)}

    def render(self, limit: Optional[int] = None) -> str:
        table = Table(["cycle", "stage", "seq", "pc", "instruction"])
        events = self.events if limit is None else self.events[:limit]
        for event in events:
            table.add_row(event.cycle, event.stage, event.seq, event.pc, event.text)
        return table.render()

    def __len__(self) -> int:
        return len(self.events)
