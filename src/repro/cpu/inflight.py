"""The dynamic (in-flight) instruction record.

The core runs a *functional-first* model: results that can be computed from
architecturally known values are computed at dispatch (this is what gives
the frontend oracle-quality branch resolution), while results that depend on
the timed world — uncached loads, the CSB conditional flush — stay unknown
until the timing model delivers them.  ``value_known`` tracks the functional
plane; ``ready_at`` tracks the timing plane (the cycle dependents may issue).
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.memory.layout import PageAttr


class MemState(enum.Enum):
    """Progress of a memory operation through the memory queue."""

    WAITING = "waiting"          # operands not timing-ready yet
    ACCESSING = "accessing"      # cache access in progress
    ISSUED_UNCACHED = "issued"   # handed to the uncached unit, awaiting data
    DONE = "done"


class InFlight:
    """One dynamic instruction from dispatch to retirement."""

    __slots__ = (
        "seq",
        "instr",
        "pc",
        "dispatch_cycle",
        "dep_seqs",
        "src_vals",
        "value",
        "value_known",
        "issued",
        "ready_at",
        "taken",
        "address",
        "attr",
        "store_data",
        "mem_state",
        "swap_expected",
        "dep_list",
        "stall_until",
        "cache_issued",
    )

    def __init__(
        self, seq: int, instr: Instruction, pc: int, dispatch_cycle: int
    ) -> None:
        self.seq = seq
        self.instr = instr
        self.pc = pc
        self.dispatch_cycle = dispatch_cycle
        #: register name -> producer sequence number (unresolved at dispatch)
        self.dep_seqs: Dict[str, int] = {}
        #: register name -> value captured at dispatch (resolved operands)
        self.src_vals: Dict[str, int] = {}
        self.value: Optional[int] = None
        self.value_known = False
        self.issued = False
        #: cycle the result is available to dependents (timing plane)
        self.ready_at: Optional[int] = None
        self.taken: Optional[bool] = None
        self.address: Optional[int] = None
        self.attr: Optional[PageAttr] = None
        self.store_data: Optional[int] = None
        self.mem_state = MemState.WAITING
        #: for swaps: the expected value carried in the source register
        self.swap_expected: Optional[int] = None
        #: flat copy of ``dep_seqs.values()`` frozen after operand capture;
        #: the hot timing checks iterate this instead of a dict view
        self.dep_list: Tuple[int, ...] = ()
        #: issue-stage skip hint: no producer can be ready before this cycle
        self.stall_until = 0
        #: a retiring cached store already entered the D-cache (guards the
        #: non-blocking-cache commit path against double accesses)
        self.cache_issued = False

    def timing_ready(self, ready: Dict[int, int], now: int) -> bool:
        """True when every producer's result is timing-available by ``now``."""
        for producer in self.dep_list:
            cycle = ready.get(producer)
            if cycle is None or cycle > now:
                return False
        return True

    def operand(self, name: str, values: Dict[int, int]) -> int:
        """Fetch a source operand's functional value (producers must have
        resolved; callers check :meth:`operands_known` first)."""
        if name in self.src_vals:
            return self.src_vals[name]
        return values[self.dep_seqs[name]]

    def operands_known(self, values: Dict[int, int]) -> bool:
        return all(seq in values for seq in self.dep_list)

    def describe(self) -> Tuple[int, str]:
        return (self.seq, type(self.instr).__name__)

    def __repr__(self) -> str:
        return f"InFlight(seq={self.seq}, pc={self.pc}, {type(self.instr).__name__})"
