"""Dynamically scheduled processor model (paper §4.1).

An RSIM-like out-of-order core: four-wide dispatch and retire, a unified
dispatch queue tracking true data dependencies, two integer and two
floating-point units, a separate memory queue that speculatively performs
address calculation and executes cached loads, and in-order non-speculative
issue of uncached operations at or after retirement.
"""

from repro.cpu.inflight import InFlight, MemState
from repro.cpu.context import ProcessContext
from repro.cpu.units import FunctionalUnitPool
from repro.cpu.core import Core

__all__ = ["Core", "FunctionalUnitPool", "InFlight", "MemState", "ProcessContext"]
