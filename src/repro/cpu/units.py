"""Functional-unit pool: per-cycle issue-slot accounting.

The core may issue up to ``int_units`` integer and ``fp_units`` floating
point operations per cycle (paper §4.1: "instructions may issue up to two
integer units and two floating point units simultaneously").  Cache ports
and the single uncached-issue port are tracked the same way.
"""

from __future__ import annotations

from typing import Dict

from repro.common.config import CoreConfig
from repro.common.errors import SimulationError
from repro.isa.instructions import FU_FP, FU_INT


class FunctionalUnitPool:
    """Counts issue slots consumed in the current cycle."""

    def __init__(self, config: CoreConfig, cache_ports: int = 2) -> None:
        self._limits: Dict[str, int] = {
            FU_INT: config.int_units,
            FU_FP: config.fp_units,
            "cache": cache_ports,
            "uncached": 1,
        }
        self._used: Dict[str, int] = {key: 0 for key in self._limits}

    def new_cycle(self) -> None:
        for key in self._used:
            self._used[key] = 0

    def available(self, kind: str) -> bool:
        try:
            return self._used[kind] < self._limits[kind]
        except KeyError:
            raise SimulationError(f"unknown functional unit kind {kind!r}") from None

    def acquire(self, kind: str) -> bool:
        """Take a slot if one is free this cycle."""
        if not self.available(kind):
            return False
        self._used[kind] += 1
        return True

    def used(self, kind: str) -> int:
        return self._used[kind]
