"""Process context: architectural state the OS would save and restore.

The CSB's non-blocking synchronization hinges on the hardware knowing the
*current process ID* (paper §3.1 — analogous to the MIPS ASID or the Alpha
21164's privileged process ID register).  Each context carries that ID; the
scheduler installs it in the core on a context switch, and the CSB compares
it against the ID saved with the buffered stores.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.isa.program import Program
from repro.isa.registers import RegisterFile


class ProcessContext:
    """One runnable simulated process."""

    def __init__(self, pid: int, program: Program, name: str = "") -> None:
        if pid < 0:
            raise ValueError("pid must be non-negative")
        if not program.finalized:
            program.finalize()
        self.pid = pid
        self.program = program
        self.name = name or f"proc{pid}"
        self.registers = RegisterFile()
        self.pc = 0
        self.halted = False
        #: retire-cycle marks recorded by this process (label -> cycle)
        self.marks: Dict[str, int] = {}
        self.retired_instructions = 0

    def set_register(self, name: str, value: int) -> "ProcessContext":
        """Pre-set an architectural register (builder-style, chainable)."""
        self.registers.write(name, value)
        return self

    def mark_cycle(self, label: str) -> Optional[int]:
        return self.marks.get(label)

    def __repr__(self) -> str:
        state = "halted" if self.halted else f"pc={self.pc}"
        return f"ProcessContext({self.name}, pid={self.pid}, {state})"
