"""Workloads: what the simulated machine runs.

Two backends behind one spec layer (:mod:`repro.workloads.spec`):

* program-backed — the microbenchmark kernel generators below (paper
  §4.2), each emitting SPARC-flavoured assembly text assembled with
  :func:`repro.isa.assemble`;
* trace-backed — I/O-trace streams (:mod:`repro.workloads.traces`)
  replayed through the store/lock/CSB idioms window by window.

:mod:`repro.workloads.registry` enumerates every shipped workload as a
serializable, cache-keyed spec.
"""

from repro.workloads.spec import (
    DISCIPLINES,
    ProgramWorkload,
    TraceWorkload,
    bundled_trace_path,
    workload_from_dict,
)
from repro.workloads.storebw import (
    store_kernel_csb,
    store_kernel_uncached,
    TRANSFER_SIZES,
)
from repro.workloads.lockbench import (
    csb_access_kernel,
    locked_access_kernel,
)
from repro.workloads.messaging import (
    pio_send_kernel,
    csb_send_kernel,
    dma_send_kernel,
)
from repro.workloads.contention import contending_csb_kernel
from repro.workloads.counterexamples import (
    COUNTEREXAMPLES,
    CounterexampleWorkload,
    get_counterexample,
)
from repro.workloads.smp import smp_csb_kernel, smp_locked_kernel

__all__ = [
    "COUNTEREXAMPLES",
    "CounterexampleWorkload",
    "DISCIPLINES",
    "ProgramWorkload",
    "TRANSFER_SIZES",
    "TraceWorkload",
    "bundled_trace_path",
    "get_counterexample",
    "workload_from_dict",
    "contending_csb_kernel",
    "csb_access_kernel",
    "csb_send_kernel",
    "dma_send_kernel",
    "locked_access_kernel",
    "pio_send_kernel",
    "smp_csb_kernel",
    "smp_locked_kernel",
    "store_kernel_csb",
    "store_kernel_uncached",
]
