"""Microbenchmark kernel generators (paper §4.2).

Each generator emits SPARC-flavoured assembly text (assembled with
:func:`repro.isa.assemble`), so the benchmark sources remain as readable as
the paper's own listing.
"""

from repro.workloads.storebw import (
    store_kernel_csb,
    store_kernel_uncached,
    TRANSFER_SIZES,
)
from repro.workloads.lockbench import (
    csb_access_kernel,
    locked_access_kernel,
)
from repro.workloads.messaging import (
    pio_send_kernel,
    csb_send_kernel,
    dma_send_kernel,
)
from repro.workloads.contention import contending_csb_kernel
from repro.workloads.counterexamples import (
    COUNTEREXAMPLES,
    CounterexampleWorkload,
    get_counterexample,
)
from repro.workloads.smp import smp_csb_kernel, smp_locked_kernel

__all__ = [
    "COUNTEREXAMPLES",
    "CounterexampleWorkload",
    "TRANSFER_SIZES",
    "get_counterexample",
    "contending_csb_kernel",
    "csb_access_kernel",
    "csb_send_kernel",
    "dma_send_kernel",
    "locked_access_kernel",
    "pio_send_kernel",
    "smp_csb_kernel",
    "smp_locked_kernel",
    "store_kernel_csb",
    "store_kernel_uncached",
]
