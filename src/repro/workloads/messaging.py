"""Message-send kernels over the NIC (paper §2 and §5).

Three ways to push a short message out of a user-level process:

* :func:`pio_send_kernel` — the conventional path: take the device lock,
  assemble the payload in NIC packet memory with programmed I/O, push a
  descriptor, release the lock.
* :func:`csb_send_kernel` — the CSB path: combine payload stores in the
  CSB and commit them with one conditional flush, which lands in the NIC's
  TX FIFO window as a single atomic burst (an inline packet).  No lock.
* :func:`dma_send_kernel` — program the DMA engine (source, length,
  doorbell) and poll for completion; the setup overhead dominates for
  short messages.
"""

from __future__ import annotations

from typing import List

from repro.common.config import DOUBLEWORD
from repro.common.errors import ConfigError
from repro.devices.nic import PACKET_MEMORY_OFFSET
from repro.devices import dma as dma_regs
from repro.workloads.lockbench import DEFAULT_LOCK_ADDR, MARK_DONE, MARK_START


def _check_payload(payload_bytes: int) -> None:
    if payload_bytes < DOUBLEWORD or payload_bytes % DOUBLEWORD:
        raise ConfigError(
            f"payload must be a positive multiple of {DOUBLEWORD} bytes"
        )


def pio_send_kernel(
    payload_bytes: int,
    nic_base: int,
    lock_addr: int = DEFAULT_LOCK_ADDR,
    packet_slot: int = 0,
) -> str:
    """Locked PIO send: assemble in packet memory, push a descriptor."""
    _check_payload(payload_bytes)
    slot_offset = PACKET_MEMORY_OFFSET + packet_slot
    descriptor = (packet_slot << 16) | payload_bytes
    lines: List[str] = [
        f"mark {MARK_START}",
        f"set {lock_addr}, %o0",
        f"set {nic_base + slot_offset}, %o1",
        f"set {nic_base}, %o2",
        ".ACQ:",
        "set 1, %l6",
        "swap [%o0], %l6",
        "brnz %l6, .ACQ",
        "membar",
    ]
    for i in range(payload_bytes // DOUBLEWORD):
        lines.append(f"stx %l{i % 4}, [%o1+{i * DOUBLEWORD}]")
    lines += [
        f"set {descriptor}, %l5",
        "stx %l5, [%o2]",            # descriptor push initiates transmit
        "membar",
        "stx %g0, [%o0]",            # release
        f"mark {MARK_DONE}",
        "halt",
    ]
    return "\n".join(lines)


def csb_send_kernel(
    payload_bytes: int, nic_fifo_base: int, line_size: int = 64
) -> str:
    """Lock-free CSB send: the flushed line IS the packet (inline send).

    ``nic_fifo_base`` must be the (line-aligned) TX FIFO window of a NIC
    mapped in uncached-combining space.  The payload must fit one
    ``line_size``-byte combining line — the CSB combines exactly one
    aligned line, so a larger packet would walk out of its own window
    and lose stores.
    """
    _check_payload(payload_bytes)
    if payload_bytes > line_size:
        raise ConfigError(
            f"{payload_bytes}-byte payload does not fit one "
            f"{line_size}-byte combining line; split the packet into "
            "per-line sends or use the DMA path"
        )
    n = payload_bytes // DOUBLEWORD
    lines: List[str] = [
        f"mark {MARK_START}",
        f"set {nic_fifo_base}, %o1",
        ".RETRY:",
        f"set {n}, %l4",
    ]
    for i in range(n):
        lines.append(f"stx %l{i % 4}, [%o1+{i * DOUBLEWORD}]")
    lines += [
        "swap [%o1], %l4",
        f"cmp %l4, {n}",
        "bnz .RETRY",
        f"mark {MARK_DONE}",
        "halt",
    ]
    return "\n".join(lines)


def dma_send_kernel(src_addr: int, payload_bytes: int, dma_base: int) -> str:
    """DMA send: program SRC/LEN, ring the doorbell, poll STATUS."""
    if payload_bytes < 1:
        raise ConfigError("payload must be non-empty")
    lines: List[str] = [
        f"mark {MARK_START}",
        f"set {dma_base}, %o2",
        f"set {src_addr}, %l5",
        f"stx %l5, [%o2+{dma_regs.SRC_OFFSET}]",
        f"set {payload_bytes}, %l5",
        f"stx %l5, [%o2+{dma_regs.LEN_OFFSET}]",
        "membar",
        f"stx %g0, [%o2+{dma_regs.DOORBELL_OFFSET}]",
        "membar",
        ".POLL:",
        f"ldx [%o2+{dma_regs.STATUS_OFFSET}], %l6",
        "brz %l6, .POLL",
        f"mark {MARK_DONE}",
        "halt",
    ]
    return "\n".join(lines)
