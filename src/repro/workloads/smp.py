"""SMP contention workloads: N cores hammering one device concurrently.

The paper's §3.2 claim is that CSB conflict detection (process ID + hit
counter) replaces the lock/unlock pair around programmed I/O.  The
single-core harness can only exercise that claim through context-switch
interleavings; these kernels extend it to *true* concurrency — every core
runs one of them simultaneously against the same device line, so lock
traffic and flush conflicts come from other processors, not the scheduler.

* :func:`smp_locked_kernel` — a loop of {swap spin-lock acquire, membar,
  ``n`` uncached doubleword stores, membar, release}: the conventional
  mutual-exclusion discipline, where every access serializes on the lock
  and the release/acquire handoff costs bus and cache traffic.
* :func:`smp_csb_kernel` — the lock-free CSB discipline: combining stores
  plus a checked conditional flush, retried on conflict with the paper's
  exponential backoff (§3.2), entered through a per-core *stagger* delay.
  The stagger de-phases the otherwise perfectly symmetric cores of the
  deterministic simulator; without it every core's sequence interleaves
  with every other's identically forever and no flush can ever succeed —
  the degenerate livelock the paper's backoff randomization breaks, which
  a deterministic machine must break with asymmetric start times instead.
"""

from __future__ import annotations

from typing import List

from repro.common.config import DOUBLEWORD
from repro.common.errors import ConfigError
from repro.memory.layout import IO_UNCACHED_BASE
from repro.workloads.contention import contending_csb_kernel
from repro.workloads.lockbench import DEFAULT_LOCK_ADDR

#: Default stagger spacing (spin iterations) between consecutive cores.
#: Longer than one store sequence + flush, so core k+1 first collides with
#: core k's *completed* sequence instead of interleaving with a live one.
DEFAULT_STAGGER_STEP = 40


def smp_locked_kernel(
    iterations: int,
    lock_addr: int = DEFAULT_LOCK_ADDR,
    data_base: int = IO_UNCACHED_BASE,
    n_doublewords: int = 8,
    signature: int = 0,
) -> str:
    """``iterations`` lock-protected device accesses of ``n_doublewords``.

    The body is the paper's Figure 5 locking sequence (acquire, membar,
    stores, membar, release) inside a retry loop, so N copies of this
    kernel on N cores serialize on the single lock variable.
    ``signature`` seeds the stored values for per-core attribution.
    """
    if iterations < 1:
        raise ConfigError("iterations must be >= 1")
    if n_doublewords < 1:
        raise ConfigError("need at least one doubleword store")
    lines: List[str] = [
        f"set {lock_addr}, %o0",
        f"set {data_base}, %o1",
        f"set {iterations}, %l7",
        f"set {signature}, %l0",
        ".LOOP:",
        ".ACQ:",
        "set 1, %l6",                # initialize swap source
        "swap [%o0], %l6",           # atomic test-and-set
        "brnz %l6, .ACQ",            # retry while the lock was held
        "membar",                    # separate locking from device access
    ]
    for i in range(n_doublewords):
        lines.append(f"stx %l0, [%o1+{i * DOUBLEWORD}]")
    lines += [
        "membar",                    # wait: stores must leave the buffer
        "stx %g0, [%o0]",            # release
        "add %l0, 1, %l0",           # vary the payload per iteration
        "sub %l7, 1, %l7",
        "brnz %l7, .LOOP",
        "halt",
    ]
    return "\n".join(lines)


def smp_csb_kernel(
    iterations: int,
    base: int,
    n_doublewords: int = 8,
    signature: int = 0,
    stagger: int = 0,
    backoff_base: int = 1,
    backoff_cap: int = 256,
    line_size: int = 64,
) -> str:
    """``iterations`` CSB flush sequences, de-phased from the other cores.

    A spin preamble of ``stagger`` iterations delays this core's entry to
    the contended line, then the body is the standard contention kernel
    (:func:`~repro.workloads.contention.contending_csb_kernel`) with
    exponential backoff enabled.  Callers must give every core a distinct
    ``backoff_base`` (and ideally a distinct ``stagger``): with identical
    bases the deterministic cores' retry periods are equal, their relative
    phase never changes, and a single collision repeats forever.  Distinct
    bases make the periods diverge until one core's whole sequence fits in
    the others' spin windows — the guaranteed-progress property the paper
    gets from randomizing the backoff slot.
    """
    if stagger < 0:
        raise ConfigError("stagger must be >= 0")
    body = contending_csb_kernel(
        iterations,
        base,
        n_doublewords=n_doublewords,
        signature=signature,
        backoff=True,
        backoff_cap=backoff_cap,
        backoff_base=backoff_base,
        line_size=line_size,
    )
    if not stagger:
        return body
    preamble = [
        f"set {stagger}, %l1",
        ".STAGGER:",
        "sub %l1, 1, %l1",
        "brnz %l1, .STAGGER",
    ]
    return "\n".join(preamble) + "\n" + body
