"""The ``#csb-trace v1`` I/O-trace file format, streamed.

A trace file is line-oriented text:

* the first line is exactly ``#csb-trace v1`` (the versioned schema tag);
* every other line is either blank, a ``#`` comment, or one record of
  four whitespace-separated fields::

      <timestamp> <op> <device> <size>

  - ``timestamp`` — arrival time in CPU cycles (integer, non-decreasing);
  - ``op`` — the operation; v1 defines ``write`` (the field exists so
    later versions can add reads without changing the record shape);
  - ``device`` — target device index (small non-negative integer);
  - ``size`` — payload bytes, a positive multiple of 8 (doublewords are
    the store granularity) up to :data:`MAX_RECORD_BYTES`.

Both :func:`parse_trace` and :func:`write_trace` work on iterators, so
arbitrarily long traces flow through constant memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Iterable, Iterator

from repro.common.config import DOUBLEWORD
from repro.common.errors import ConfigError

#: Exact first line of every v1 trace file.
TRACE_HEADER = "#csb-trace v1"

#: Operations v1 defines.
TRACE_OPS = ("write",)

#: Largest single record payload (one DMA-sized burst).
MAX_RECORD_BYTES = 4096

#: Most device indices a trace may name (keeps the ring file small).
MAX_DEVICES = 64


class TraceFormatError(ConfigError):
    """A malformed trace file; carries the offending line number."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"trace line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class TraceRecord:
    """One I/O operation of a trace."""

    timestamp: int
    op: str
    device: int
    size: int

    def render(self) -> str:
        return f"{self.timestamp} {self.op} {self.device} {self.size}"


def validate_record(record: TraceRecord, line: int = 0) -> None:
    if record.timestamp < 0:
        raise TraceFormatError(f"negative timestamp {record.timestamp}", line)
    if record.op not in TRACE_OPS:
        raise TraceFormatError(
            f"unknown op {record.op!r} (v1 defines {TRACE_OPS})", line
        )
    if not 0 <= record.device < MAX_DEVICES:
        raise TraceFormatError(
            f"device {record.device} out of range [0, {MAX_DEVICES})", line
        )
    if record.size < DOUBLEWORD or record.size % DOUBLEWORD:
        raise TraceFormatError(
            f"size {record.size} is not a positive multiple of "
            f"{DOUBLEWORD} bytes",
            line,
        )
    if record.size > MAX_RECORD_BYTES:
        raise TraceFormatError(
            f"size {record.size} exceeds {MAX_RECORD_BYTES} bytes", line
        )


def parse_trace(lines: Iterable[str]) -> Iterator[TraceRecord]:
    """Stream records out of trace-file lines (a generator: records are
    validated and yielded one at a time, never collected)."""
    iterator = iter(lines)
    try:
        header = next(iterator)
    except StopIteration:
        raise TraceFormatError("empty file (missing header)", 1) from None
    if header.strip() != TRACE_HEADER:
        raise TraceFormatError(
            f"bad header {header.strip()!r} (expected {TRACE_HEADER!r})", 1
        )
    previous = -1
    for number, line in enumerate(iterator, start=2):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        fields = text.split()
        if len(fields) != 4:
            raise TraceFormatError(
                f"expected 4 fields (timestamp op device size), "
                f"got {len(fields)}",
                number,
            )
        try:
            record = TraceRecord(
                timestamp=int(fields[0]),
                op=fields[1],
                device=int(fields[2]),
                size=int(fields[3]),
            )
        except ValueError:
            raise TraceFormatError(
                f"non-integer field in {text!r}", number
            ) from None
        validate_record(record, number)
        if record.timestamp < previous:
            raise TraceFormatError(
                f"timestamp {record.timestamp} goes backwards "
                f"(previous {previous})",
                number,
            )
        previous = record.timestamp
        yield record


def open_trace(path: str) -> Iterator[TraceRecord]:
    """Stream records out of the file at ``path`` (file handle closes when
    the generator is exhausted or garbage-collected)."""

    def generate() -> Iterator[TraceRecord]:
        with open(path, "r", encoding="utf-8") as handle:
            yield from parse_trace(handle)

    return generate()


def write_trace(target: "IO[str] | str", records: Iterable[TraceRecord]) -> int:
    """Write a v1 trace (header + one line per record); returns the record
    count.  ``target`` is a path or an open text stream; records are
    validated and consumed one at a time."""
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            return write_trace(handle, records)
    target.write(TRACE_HEADER + "\n")
    previous = -1
    count = 0
    for count, record in enumerate(records, start=1):
        validate_record(record, count + 1)
        if record.timestamp < previous:
            raise TraceFormatError(
                f"timestamp {record.timestamp} goes backwards "
                f"(previous {previous})",
                count + 1,
            )
        previous = record.timestamp
        target.write(record.render() + "\n")
    return count
