"""Streaming trace-driven I/O replay.

The front-end of the trace-backed workload path:

* :mod:`~repro.workloads.traces.format` — the versioned ``#csb-trace v1``
  record format, parsed and written as a stream (a million-record file is
  never materialized in memory).
* :mod:`~repro.workloads.traces.synth` — seeded synthesis of arbitrarily
  long traces from arrival/size/device distributions (``synth:`` specs).
* :mod:`~repro.workloads.traces.compile` — lowers a bounded window of
  records into the store/lock/CSB assembly idioms the cores execute.
* :mod:`~repro.workloads.traces.replay` — the replay engine: streams
  windows through :meth:`~repro.sim.system.System.run_streamed`, matches
  bus transactions back to trace records, and aggregates per-transaction
  latency into tail percentiles.
"""

from repro.workloads.traces.format import (
    TRACE_HEADER,
    TraceRecord,
    open_trace,
    parse_trace,
    write_trace,
)
from repro.workloads.traces.synth import SynthSpec, parse_synth_spec, synthesize
from repro.workloads.traces.replay import ReplayResult, TraceReplay, replay_trace

__all__ = [
    "TRACE_HEADER",
    "ReplayResult",
    "SynthSpec",
    "TraceRecord",
    "TraceReplay",
    "open_trace",
    "parse_synth_spec",
    "parse_trace",
    "replay_trace",
    "synthesize",
    "write_trace",
]
