"""Seeded synthesis of arbitrarily long I/O traces.

A ``synth:`` spec is a comma-separated parameter list::

    synth:n=10000,seed=7,arrival=poisson,gap=120,devices=4,skew=1.0

Parameters (all optional except ``n``):

* ``n`` — number of records to generate.
* ``seed`` — PRNG seed (default 1); identical specs generate identical
  traces, byte for byte.
* ``arrival`` — inter-arrival model: ``poisson`` (exponential gaps,
  default), ``uniform`` (gaps uniform on [0, 2*gap]), or ``bursty``
  (records arrive in back-to-back bursts of ``burst`` with exponential
  idle gaps between bursts — the descriptor-ring churn case).
* ``gap`` — mean inter-arrival time in CPU cycles (default 100.0).
* ``burst`` — records per burst for ``arrival=bursty`` (default 8).
* ``devices`` — number of target devices (default 1).
* ``skew`` — Zipf-like exponent for per-device load imbalance: device
  ``i`` gets weight ``1/(i+1)**skew``.  0 (default) is uniform; larger
  values concentrate traffic on low-numbered devices, the LBICA-style
  imbalance the device-imbalance study sweeps.
* ``sizes`` — payload mixture as ``size:weight`` pairs joined by ``/``,
  e.g. ``sizes=8:4/64:1`` (default ``8:1``); sizes are bytes, multiples
  of 8.

Generation is lazy: :func:`synthesize` yields records one at a time, so a
million-transaction trace flows straight into the window compiler without
ever being materialized.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.common.config import DOUBLEWORD
from repro.common.errors import ConfigError
from repro.workloads.traces.format import (
    MAX_DEVICES,
    MAX_RECORD_BYTES,
    TraceRecord,
)

#: Arrival models ``arrival=`` accepts.
ARRIVALS = ("poisson", "uniform", "bursty")


@dataclass(frozen=True)
class SynthSpec:
    """Parsed form of a ``synth:`` spec string."""

    n: int
    seed: int = 1
    arrival: str = "poisson"
    gap: float = 100.0
    burst: int = 8
    devices: int = 1
    skew: float = 0.0
    sizes: Tuple[Tuple[int, float], ...] = ((8, 1.0),)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigError("synth spec needs n >= 1 records")
        if self.arrival not in ARRIVALS:
            raise ConfigError(
                f"unknown arrival model {self.arrival!r}; have {ARRIVALS}"
            )
        if self.gap <= 0:
            raise ConfigError("mean arrival gap must be positive")
        if self.burst < 1:
            raise ConfigError("burst must be >= 1")
        if not 1 <= self.devices <= MAX_DEVICES:
            raise ConfigError(
                f"devices must be in [1, {MAX_DEVICES}], got {self.devices}"
            )
        if self.skew < 0:
            raise ConfigError("skew must be >= 0")
        if not self.sizes:
            raise ConfigError("size mixture must not be empty")
        for size, weight in self.sizes:
            if size < DOUBLEWORD or size % DOUBLEWORD or size > MAX_RECORD_BYTES:
                raise ConfigError(
                    f"bad mixture size {size}: need a multiple of "
                    f"{DOUBLEWORD} up to {MAX_RECORD_BYTES}"
                )
            if weight <= 0:
                raise ConfigError(f"mixture weight for {size}B must be > 0")


def _parse_sizes(text: str) -> Tuple[Tuple[int, float], ...]:
    pairs = []
    for part in text.split("/"):
        if ":" not in part:
            raise ConfigError(
                f"bad size mixture entry {part!r} (want SIZE:WEIGHT)"
            )
        size_text, weight_text = part.split(":", 1)
        try:
            pairs.append((int(size_text), float(weight_text)))
        except ValueError:
            raise ConfigError(
                f"bad size mixture entry {part!r} (want SIZE:WEIGHT)"
            ) from None
    return tuple(pairs)


def parse_synth_spec(spec: str) -> SynthSpec:
    """Parse ``synth:KEY=VALUE,...`` into a validated :class:`SynthSpec`."""
    if not spec.startswith("synth:"):
        raise ConfigError(f"not a synth spec: {spec!r}")
    fields = {}
    body = spec[len("synth:"):]
    if not body:
        raise ConfigError("empty synth spec (need at least n=...)")
    for item in body.split(","):
        if "=" not in item:
            raise ConfigError(f"bad synth parameter {item!r} (want KEY=VALUE)")
        key, value = item.split("=", 1)
        key = key.strip()
        value = value.strip()
        try:
            if key in ("n", "seed", "burst", "devices"):
                fields[key] = int(value)
            elif key in ("gap", "skew"):
                fields[key] = float(value)
            elif key == "arrival":
                fields[key] = value
            elif key == "sizes":
                fields[key] = _parse_sizes(value)
            else:
                raise ConfigError(f"unknown synth parameter {key!r}")
        except ValueError:
            raise ConfigError(
                f"bad value {value!r} for synth parameter {key!r}"
            ) from None
    if "n" not in fields:
        raise ConfigError("synth spec needs n=<records>")
    return SynthSpec(**fields)


def _cumulative(weights) -> Tuple[float, ...]:
    total = 0.0
    out = []
    for weight in weights:
        total += weight
        out.append(total)
    return tuple(out)


def synthesize(spec: SynthSpec) -> Iterator[TraceRecord]:
    """Generate ``spec.n`` records lazily from a seeded PRNG.

    Determinism: one private ``random.Random(seed)`` drives every draw in
    a fixed order, so the stream is a pure function of the spec.
    """
    rng = random.Random(spec.seed)
    device_cumulative = _cumulative(
        1.0 / (i + 1) ** spec.skew for i in range(spec.devices)
    )
    size_cumulative = _cumulative(weight for _, weight in spec.sizes)
    size_values = tuple(size for size, _ in spec.sizes)
    clock = 0.0
    for index in range(spec.n):
        if spec.arrival == "poisson":
            clock += rng.expovariate(1.0 / spec.gap)
        elif spec.arrival == "uniform":
            clock += rng.uniform(0.0, 2.0 * spec.gap)
        elif index % spec.burst == 0:
            # Bursty: the whole burst shares one arrival instant; idle
            # gaps between bursts keep the long-run mean at ``gap``.
            clock += rng.expovariate(1.0 / (spec.gap * spec.burst))
        draw = rng.random() * device_cumulative[-1]
        device = 0
        while device_cumulative[device] <= draw:
            device += 1
        draw = rng.random() * size_cumulative[-1]
        choice = 0
        while size_cumulative[choice] <= draw:
            choice += 1
        yield TraceRecord(
            timestamp=int(clock),
            op="write",
            device=device,
            size=size_values[choice],
        )
