"""Lower bounded trace windows into the store/lock/CSB assembly idioms.

The replay engine never materializes a whole trace as one giant program:
it takes a *window* of records (``TraceWorkload.window`` of them), assigns
them round-robin over the cores, and compiles one small program per core.
Each record becomes the same instruction idiom the paper's benchmarks use:

* ``uncached`` — plain doubleword stores to the device's descriptor ring
  in plain uncached space;
* ``lock`` — the swap spin-lock acquire / membar / stores / membar /
  release sequence around the same stores, one lock per device;
* ``csb`` — line-sized combining-store groups through the device's
  *combining-space* ring window, each committed with a conditional flush
  and the retry + per-core exponential-backoff idiom (the shared CSB makes
  cross-core conflicts real; distinct backoff bases are what break the
  deterministic livelock, exactly as in :mod:`repro.workloads.smp`).

Every core writes its own slice of each ring's register window, so the
device sees all traffic while CSB lines never overlap between cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.config import DOUBLEWORD
from repro.common.errors import ConfigError
from repro.memory.layout import DRAM_BASE, IO_COMBINING_BASE, IO_UNCACHED_BASE
from repro.workloads.spec import DISCIPLINES
from repro.workloads.traces.format import TraceRecord

#: Descriptor-ring register windows: one region per device, in plain
#: uncached space, with a same-offset alias window in combining space.
RING_BASE = IO_UNCACHED_BASE + 0x20000
RING_COMBINING_BASE = IO_COMBINING_BASE + 0x20000
RING_STRIDE = 0x1000
RING_BYTES = 0x1000

#: Per-core slice of a ring window (uncached/lock stores wrap inside it).
CORE_SLICE = 256

#: Per-device replay locks (cached DRAM, one cache line apart; distinct
#: from the lockbench's DEFAULT_LOCK_ADDR so workloads never collide).
TRACE_LOCK_BASE = DRAM_BASE + 0xA000
TRACE_LOCK_STRIDE = 64

#: CSB retry backoff cap (spin iterations), as in the contention kernels.
BACKOFF_CAP = 256

#: Stagger spacing (spin iterations) between cores at window entry.
STAGGER_STEP = 40


def ring_region(device: int) -> Tuple[int, int]:
    """(base, size) of device ``device``'s primary (uncached) ring window."""
    return (RING_BASE + device * RING_STRIDE, RING_BYTES)


def ring_combining_region(device: int) -> Tuple[int, int]:
    """(base, size) of the combining-space alias of the same ring."""
    return (RING_COMBINING_BASE + device * RING_STRIDE, RING_BYTES)


def lock_address(device: int) -> int:
    return TRACE_LOCK_BASE + device * TRACE_LOCK_STRIDE


@dataclass(frozen=True)
class CompiledWindow:
    """One core's program for one trace window.

    ``expectations`` lists, in program order, the (arrival CPU cycle,
    payload bytes) of every record this program replays — what the replay
    engine matches completed bus transactions against to attribute
    per-transaction latency.
    """

    core_id: int
    source: str
    expectations: Tuple[Tuple[int, int], ...]


def _check_geometry(discipline: str, num_cores: int, line_size: int) -> None:
    if discipline not in DISCIPLINES:
        raise ConfigError(f"unknown discipline {discipline!r}")
    if num_cores < 1:
        raise ConfigError("need at least one core")
    if discipline == "csb":
        if num_cores * line_size > RING_BYTES:
            raise ConfigError(
                f"{num_cores} cores x {line_size}B combining lines do not "
                f"fit a {RING_BYTES}B ring window"
            )
    elif num_cores * CORE_SLICE > RING_BYTES:
        raise ConfigError(
            f"{num_cores} cores x {CORE_SLICE}B slices do not fit a "
            f"{RING_BYTES}B ring window"
        )


def _emit_uncached_stores(
    lines: List[str], size: int, slice_base: int
) -> None:
    """Plain doubleword stores, wrapping inside the core's ring slice."""
    for i in range(size // DOUBLEWORD):
        offset = slice_base + (i % (CORE_SLICE // DOUBLEWORD)) * DOUBLEWORD
        lines.append(f"stx %l{i % 4}, [%o1+{offset}]")


def _emit_csb_record(
    lines: List[str],
    record_index: int,
    size: int,
    slice_base: int,
    line_size: int,
    backoff_base: int,
) -> None:
    """Line-sized combining groups, each with flush + backoff retry.

    Every group reuses the core's single combining line (a successful
    flush clears the window, so the next group starts a fresh sequence at
    the same address)."""
    dwords_left = size // DOUBLEWORD
    dwords_per_line = line_size // DOUBLEWORD
    group = 0
    while dwords_left:
        in_group = min(dwords_per_line, dwords_left)
        tag = f"{record_index}_{group}"
        lines.append(f".RETRY{tag}:")
        lines.append(f"set {in_group}, %l4")
        for i in range(in_group):
            lines.append(f"stx %l{i % 4}, [%o1+{slice_base + i * DOUBLEWORD}]")
        lines += [
            f"swap [%o1+{slice_base}], %l4    ! conditional flush",
            f"cmp %l4, {in_group}",
            f"be .OK{tag}",
            # Failed flush: double the backoff (capped) and spin it down,
            # then retry the whole group (stores + flush).
            "add %l5, %l5, %l5",
            f"cmp %l5, {BACKOFF_CAP}",
            f"ble .SPIN_SETUP{tag}",
            f"set {BACKOFF_CAP}, %l5",
            f".SPIN_SETUP{tag}:",
            "or %l5, 0, %l6",
            f".SPIN{tag}:",
            "sub %l6, 1, %l6",
            f"brnz %l6, .SPIN{tag}",
            f"ba .RETRY{tag}",
            f".OK{tag}:",
            f"set {backoff_base}, %l5",  # success resets the backoff
        ]
        dwords_left -= in_group
        group += 1


def compile_window(
    records: Sequence[TraceRecord],
    discipline: str,
    num_cores: int,
    line_size: int = 64,
) -> List[CompiledWindow]:
    """Compile one window of records into per-core programs.

    Records are assigned round-robin over the cores in trace order, so
    load stays balanced and each core's program replays its records in
    arrival order.  Cores with no records this window get no program.
    """
    _check_geometry(discipline, num_cores, line_size)
    per_core: Dict[int, List[TraceRecord]] = {}
    for index, record in enumerate(records):
        per_core.setdefault(index % num_cores, []).append(record)
    windows = []
    for core_id in sorted(per_core):
        assigned = per_core[core_id]
        source = _compile_core(assigned, discipline, core_id, line_size)
        windows.append(
            CompiledWindow(
                core_id=core_id,
                source=source,
                expectations=tuple(
                    (record.timestamp, record.size) for record in assigned
                ),
            )
        )
    return windows


def _compile_core(
    records: Sequence[TraceRecord],
    discipline: str,
    core_id: int,
    line_size: int,
) -> str:
    lines: List[str] = [
        "set 0x1111111111111111, %l0",
        "set 0x2222222222222222, %l1",
        "set 0x3333333333333333, %l2",
        "set 0x4444444444444444, %l3",
    ]
    backoff_base = 2 * core_id + 1
    if discipline == "csb":
        lines.append(f"set {backoff_base}, %l5")
        if core_id:
            # De-phase the cores' first sequences on the shared CSB.
            lines += [
                f"set {core_id * STAGGER_STEP}, %l6",
                ".STAGGER:",
                "sub %l6, 1, %l6",
                "brnz %l6, .STAGGER",
            ]
        slice_base = core_id * line_size
    else:
        slice_base = core_id * CORE_SLICE
    current_device = None
    for index, record in enumerate(records):
        if record.device != current_device:
            base = (
                ring_combining_region(record.device)[0]
                if discipline == "csb"
                else ring_region(record.device)[0]
            )
            lines.append(f"set {base}, %o1")
            if discipline == "lock":
                lines.append(f"set {lock_address(record.device)}, %o0")
            current_device = record.device
        if discipline == "uncached":
            _emit_uncached_stores(lines, record.size, slice_base)
        elif discipline == "csb":
            _emit_csb_record(
                lines, index, record.size, slice_base, line_size, backoff_base
            )
        else:
            lines += [
                f".ACQ{index}:",
                "set 1, %l6",            # initialize swap source
                "swap [%o0], %l6",       # atomic test-and-set
                f"brnz %l6, .ACQ{index}",
                "membar",                # separate locking from device access
            ]
            _emit_uncached_stores(lines, record.size, slice_base)
            lines += [
                "membar",                # stores must leave the buffer
                "stx %g0, [%o0]",        # release
            ]
    if discipline == "uncached":
        lines.append("membar")
    lines.append("halt")
    return "\n".join(lines)
