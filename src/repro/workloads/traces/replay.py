"""The streaming replay engine: trace in, tail latencies out.

:class:`TraceReplay` drives a :class:`~repro.sim.system.System` from a
trace stream without ever holding more than one *window* of records in
memory.  The loop, per window:

1. harvest the previous window — match its completed bus transactions
   back to trace records and feed per-transaction latency into a
   bounded :class:`~repro.common.stats.LatencyHistogram`;
2. condense the transaction records into aggregates and retire the
   halted window contexts (the two bounded-memory levers);
3. pull the next ``window`` records off the stream, fast-forward the
   clock over idle gaps, compile them into per-core programs, and
   install those.

:meth:`System.run_streamed` calls the feed exactly when the machine has
drained, so windows never overlap and attribution is unambiguous: every
``uncached_store``/``csb_flush`` transaction a core initiates between two
feed calls belongs to that core's current window, in order.

Latency of a record is the CPU cycle its last payload byte crossed the
bus minus its trace arrival timestamp, floored at zero (the replay is
closed-loop: a record whose turn comes up before its timestamp counts as
serviced at arrival).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import islice
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError, SimulationError
from repro.common.stats import LatencyHistogram, StatsCollector
from repro.devices.base import DeviceAlias
from repro.devices.ring import DescriptorRing
from repro.isa.assembler import assemble
from repro.memory.layout import PageAttr, Region
from repro.observability.metrics import MetricsSnapshot
from repro.sim.system import System
from repro.workloads.spec import TraceWorkload
from repro.workloads.traces.compile import (
    CompiledWindow,
    compile_window,
    ring_combining_region,
    ring_region,
)
from repro.workloads.traces.format import TraceRecord, open_trace
from repro.workloads.traces.synth import parse_synth_spec, synthesize

#: Transaction kinds that carry trace payload (everything else on the bus
#: — refills, write-backs, DMA — is infrastructure, not replayed I/O).
PAYLOAD_KINDS = ("uncached_store", "csb_flush")


@dataclass
class ReplayResult:
    """What a completed replay produced."""

    #: Records replayed to completion.
    replayed: int
    #: CPU cycles the run took.
    cycles: int
    #: Trace windows streamed.
    windows: int
    #: Per-record latency (CPU cycles), bounded memory.
    histogram: LatencyHistogram
    #: The run's full stats (transactions condensed).
    stats: StatsCollector
    #: The descriptor rings, index == device id.
    rings: List[DescriptorRing] = field(default_factory=list)
    #: Full metrics snapshot with :attr:`latency` folded in.
    metrics: Optional["MetricsSnapshot"] = None

    @property
    def latency(self) -> Dict[str, int]:
        """Tail percentiles, ``{"p50": ..., ..., "p99.9": ...}``."""
        return self.histogram.percentiles()


class TraceReplay:
    """Streams one trace workload through a simulated system."""

    def __init__(
        self,
        workload: TraceWorkload,
        config: Optional[SystemConfig] = None,
        max_cycles: int = 2_000_000_000,
    ) -> None:
        self.workload = workload
        self.config = config or SystemConfig()
        if self.config.sampling.enabled:
            raise ConfigError(
                "trace replay is incompatible with sampled execution "
                "(every window must run in the detailed tier)"
            )
        self.max_cycles = max_cycles
        self.histogram = LatencyHistogram()
        self.system = System(self.config)
        self.rings: List[DescriptorRing] = []
        self._records = self._open_stream()
        self._attach_rings()
        self._pending: List[CompiledWindow] = []
        self._window_index = 0
        self._replayed = 0

    # -- construction ---------------------------------------------------------

    def _open_stream(self) -> Iterator[TraceRecord]:
        workload = self.workload
        if workload.is_synthetic:
            spec = parse_synth_spec(workload.source)
            self._num_devices = workload.devices or spec.devices
            return synthesize(spec)
        self._num_devices = workload.devices or 1
        return open_trace(workload.path())

    def _attach_rings(self) -> None:
        for device in range(self._num_devices):
            base, size = ring_region(device)
            ring = DescriptorRing(
                Region(base, size, PageAttr.UNCACHED, f"ring{device}"),
                name=f"ring{device}",
            )
            self.system.attach_device(ring)
            alias_base, alias_size = ring_combining_region(device)
            self.system.attach_device(
                DeviceAlias(
                    Region(
                        alias_base,
                        alias_size,
                        PageAttr.UNCACHED_COMBINING,
                        f"ring{device}-csb",
                    ),
                    ring,
                )
            )
            self.rings.append(ring)

    # -- the streaming loop ---------------------------------------------------

    def run(self) -> ReplayResult:
        self.system.run_streamed(self._feed, max_cycles=self.max_cycles)
        self._harvest()  # the last window drained without a further feed
        self.system.stats.condense_transactions()
        snapshot = replace(
            MetricsSnapshot.from_system(self.system),
            latency=self.histogram.percentiles(),
        )
        return ReplayResult(
            replayed=self._replayed,
            cycles=self.system.cycle,
            windows=self._window_index,
            histogram=self.histogram,
            stats=self.system.stats,
            rings=self.rings,
            metrics=snapshot,
        )

    def _feed(self, system: System) -> bool:
        self._harvest()
        system.stats.condense_transactions()
        system.scheduler.retire_halted()
        batch = list(islice(self._records, self.workload.window))
        if not batch:
            return False
        for record in batch:
            if record.device >= self._num_devices:
                raise ConfigError(
                    f"trace record targets device {record.device} but only "
                    f"{self._num_devices} rings are attached (set the "
                    f"workload's `devices`)"
                )
        # Fast-forward idle gaps: the machine is drained, so if the next
        # arrival is still in the future nothing would happen until then.
        if system.cycle < batch[0].timestamp:
            system.cycle = batch[0].timestamp
        line_size = self.config.csb.line_size
        windows = compile_window(
            batch,
            self.workload.discipline,
            self.config.num_cores,
            line_size=line_size,
        )
        for window in windows:
            system.add_process(
                assemble(window.source),
                core_id=window.core_id,
                name=f"w{self._window_index}c{window.core_id}",
            )
        self._pending = windows
        self._window_index += 1
        self._replayed += len(batch)
        return True

    def _harvest(self) -> None:
        """Attribute the drained window's bus transactions to its records.

        Per core, payload transactions complete in issue order and their
        ``useful_bytes`` sum to exactly the window's payload (combining
        may merge bytes of adjacent records into one transaction, but
        never drops or duplicates any).  Walking the transactions while
        accumulating useful bytes therefore finds, for each record, the
        transaction that carried its final byte — that transaction's end
        is the record's completion time.
        """
        if not self._pending:
            return
        ratio = self.config.bus.cpu_ratio
        per_core: Dict[int, List] = {}
        for record in self.system.stats.transactions:
            if record.kind in PAYLOAD_KINDS and record.core_id >= 0:
                per_core.setdefault(record.core_id, []).append(record)
        for window in self._pending:
            expectations = iter(window.expectations)
            current: Optional[Tuple[int, int]] = next(expectations, None)
            boundary = current[1] if current else 0
            cumulative = 0
            for txn in per_core.get(window.core_id, ()):
                cumulative += txn.useful_bytes
                while current is not None and cumulative >= boundary:
                    completion = txn.end_cycle * ratio
                    self.histogram.add(max(0, completion - current[0]))
                    current = next(expectations, None)
                    if current is not None:
                        boundary += current[1]
            if current is not None:
                raise SimulationError(
                    f"replay window {self._window_index - 1}, core "
                    f"{window.core_id}: bus transactions carried "
                    f"{cumulative} payload bytes but the window expected "
                    f"{boundary} or more"
                )
        self._pending = []


def replay_trace(
    workload: TraceWorkload,
    config: Optional[SystemConfig] = None,
    max_cycles: int = 2_000_000_000,
) -> ReplayResult:
    """Replay ``workload`` to completion and return its results."""
    return TraceReplay(workload, config, max_cycles).run()
