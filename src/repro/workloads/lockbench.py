"""Atomic I/O access microbenchmark (paper §4.2, second benchmark).

Compares a conventional lock / uncached-access / unlock sequence with an
atomic access through the conditional store buffer.  The measured span is
bracketed by ``mark`` pseudo-instructions:

* **Locking variant** — swap-based spin lock (SPARC idiom), a membar, two
  to eight uncached doubleword stores, a membar that "ensures that the lock
  release operation is executed only after the last uncached bus transaction
  has left the uncached buffer", and the release store.
* **CSB variant** — the same stores to combining space followed by a
  conditional flush and the check/retry; the access "can be considered
  complete as soon as the conditional flush instruction succeeds".
"""

from __future__ import annotations

from typing import List

from repro.common.config import DOUBLEWORD
from repro.common.errors import ConfigError
from repro.memory.layout import DRAM_BASE, IO_COMBINING_BASE, IO_UNCACHED_BASE

#: Default lock variable location (cached DRAM), line-aligned.
DEFAULT_LOCK_ADDR = DRAM_BASE + 0x8000

MARK_START = "access_start"
MARK_DONE = "access_done"


def _check(n_doublewords: int) -> None:
    if n_doublewords < 1:
        raise ConfigError("need at least one doubleword store")


def locked_access_kernel(
    n_doublewords: int,
    lock_addr: int = DEFAULT_LOCK_ADDR,
    data_base: int = IO_UNCACHED_BASE,
) -> str:
    """lock; n uncached doubleword stores; unlock.

    The acquire sequence sets up the lock address, initializes the swap
    source, spins on the atomic swap, and checks the result; barriers
    separate locking from the device stores (paper §4.3.2).
    """
    _check(n_doublewords)
    lines: List[str] = [
        f"mark {MARK_START}",
        f"set {lock_addr}, %o0",     # acquire: lock address setup
        f"set {data_base}, %o1",
        ".ACQ:",
        "set 1, %l6",                # initialize swap destination
        "swap [%o0], %l6",           # atomic test-and-set
        "brnz %l6, .ACQ",            # retry while the lock was held
        "membar",                    # separate locking from device access
    ]
    for i in range(n_doublewords):
        lines.append(f"stx %l{i % 4}, [%o1+{i * DOUBLEWORD}]")
    lines += [
        "membar",                    # wait: stores must leave the buffer
        "stx %g0, [%o0]",            # release
        f"mark {MARK_DONE}",
        "halt",
    ]
    return "\n".join(lines)


def csb_access_kernel(
    n_doublewords: int,
    data_base: int = IO_COMBINING_BASE,
) -> str:
    """The same device access through the CSB: stores + conditional flush."""
    _check(n_doublewords)
    lines: List[str] = [
        f"mark {MARK_START}",
        f"set {data_base}, %o1",
        ".RETRY:",
        f"set {n_doublewords}, %l4",  # expected hit-counter value
    ]
    for i in range(n_doublewords):
        lines.append(f"stx %l{i % 4}, [%o1+{i * DOUBLEWORD}]")
    lines += [
        "swap [%o1], %l4",            # conditional flush
        f"cmp %l4, {n_doublewords}",
        "bnz .RETRY",                 # retry on conflict
        f"mark {MARK_DONE}",
        "halt",
    ]
    return "\n".join(lines)
