"""VIS block-store kernels (paper §6, related work).

SPARC V9 VIS block moves transfer a whole cache line between the FP
registers and memory, bypassing the cache — atomic for free, but "floating
point registers are not very well suited as a source for general I/O
operations".  Two kernels quantify that:

* :func:`blockstore_kernel` — best case: the payload already sits in the
  FP registers (e.g. the result of an FP computation).
* :func:`blockstore_marshalled_kernel` — the realistic case the paper's
  critique targets: integer payload must be marshalled through memory
  into the FP registers before the block store can issue.
"""

from __future__ import annotations

from typing import List

from repro.common.config import DOUBLEWORD
from repro.memory.layout import DRAM_BASE, IO_UNCACHED_BASE
from repro.workloads.lockbench import MARK_DONE, MARK_START

#: Cached scratch line used for the int->FP marshalling path.
SCRATCH_ADDR = DRAM_BASE + 0xC000


def blockstore_kernel(data_base: int = IO_UNCACHED_BASE) -> str:
    """One atomic 64-byte block store, payload preloaded in %f0..%f14."""
    return "\n".join(
        [
            f"mark {MARK_START}",
            f"set {data_base}, %o1",
            "stblk [%o1]",
            f"mark {MARK_DONE}",
            "halt",
        ]
    )


def blockstore_marshalled_kernel(
    data_base: int = IO_UNCACHED_BASE,
    scratch: int = SCRATCH_ADDR,
) -> str:
    """Marshal 8 integer doublewords through memory into the FP file,
    then block-store them."""
    lines: List[str] = [
        f"mark {MARK_START}",
        f"set {data_base}, %o1",
        f"set {scratch}, %o2",
    ]
    for i in range(8):
        lines.append(f"stx %l{i % 4}, [%o2+{i * DOUBLEWORD}]")
    for i in range(8):
        lines.append(f"ldd [%o2+{i * DOUBLEWORD}], %f{i * 2}")
    lines += [
        "stblk [%o1]",
        f"mark {MARK_DONE}",
        "halt",
    ]
    return "\n".join(lines)
