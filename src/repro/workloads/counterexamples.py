"""Counterexample regression workloads promoted from the model checker.

When the bounded model checker (:mod:`repro.analysis.mc`) finds a
violation under a seeded spec mutation, the interleaving that exposed it
is worth keeping: if the simulator ever grows the same bug, that exact
schedule is where it shows.  A :class:`CounterexampleWorkload` pins one
such interleaving — the litmus test it came from, the per-transition core
id sequence, and the mutation that exposed it — as a named, serializable
regression artifact.

Two things make a promoted workload live beyond its JSON file:

* ``sources()`` lowers each core's litmus program to real assembly
  (:func:`repro.analysis.mc.compile.full_source`), which the analysis
  registry registers as lint targets, and
* ``replay()`` re-runs the pinned schedule through both the abstract spec
  and the detailed simulator, step for step.

:data:`COUNTEREXAMPLES` holds the promoted set.  The schedules were
extracted by running ``csb-figures mc <test> --spec-mutation <m>`` and
completing the violating prefix on the correct spec (see
``repro.analysis.mc.promote``); tests assert they still (a) replay
divergence-free on the correct spec and (b) reproduce their violation
under the mutation that minted them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CounterexampleWorkload:
    """One pinned counterexample interleaving of a litmus test."""

    name: str
    #: Name of the litmus test the schedule runs (``repro.analysis.mc.litmus``).
    litmus: str
    description: str
    #: Core id per scheduling decision: each entry runs that core's pending
    #: local chain or its single shared operation (``promote.advance_core``).
    schedule: Tuple[int, ...]
    #: Spec mutation under which this schedule violates its litmus assertion.
    found_with: str = ""

    def test(self):
        from repro.analysis.mc.litmus import get_test

        return get_test(self.litmus)

    def trace(self, mutation=None):
        """Realize the schedule as labelled trace steps (final state too)."""
        from repro.analysis.mc.promote import realize_schedule

        return realize_schedule(self.test().machine(mutation), self.schedule)

    def sources(self) -> List[Tuple[str, str]]:
        """Per-core assembly, named for lint registration."""
        from repro.analysis.mc.compile import full_source

        test = self.test()
        return [
            (f"{self.name}-core{core}", full_source(program))
            for core, program in enumerate(test.programs)
        ]

    def replay(self):
        """Replay the pinned schedule through spec + detailed simulator."""
        from repro.analysis.mc.replay import ReplayReport, replay_schedule

        trace, state = self.trace()
        if not state.all_halted:
            raise ConfigError(
                f"counterexample {self.name!r} schedule is incomplete"
            )
        divergences, ops_run = replay_schedule(self.test(), trace)
        report = ReplayReport(test=self.litmus, schedules=1, steps=ops_run)
        report.divergences.extend(divergences)
        return report

    def check_still_violates(self) -> str:
        """Assert the schedule still trips its litmus assertion under the
        mutation that minted it; returns the violation message.

        Under the mutation, branch outcomes differ from the correct spec,
        so the realization follows the mutated machine's transitions and
        stops early if a core of the pinned sequence has already halted.
        """
        from repro.analysis.mc.promote import advance_core

        test = self.test()
        machine = test.machine(self.found_with)
        state = machine.initial_state()
        for core in self.schedule:
            if state.halted(core):
                break
            _, state = advance_core(machine, state, core)
            if test.invariant is not None:
                message = test.invariant(machine, state)
                if message is not None:
                    return f"invariant: {message}"
        if state.all_halted and test.final is not None:
            message = test.final(machine, state)
            if message is not None:
                return f"final: {message}"
        raise ConfigError(
            f"counterexample {self.name!r} no longer violates "
            f"{self.litmus!r} under mutation {self.found_with!r}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "litmus": self.litmus,
            "description": self.description,
            "schedule": list(self.schedule),
            "found_with": self.found_with,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CounterexampleWorkload":
        return cls(
            name=str(data["name"]),
            litmus=str(data["litmus"]),
            description=str(data["description"]),
            schedule=tuple(int(c) for c in data["schedule"]),  # type: ignore[union-attr]
            found_with=str(data.get("found_with", "")),
        )


#: Promoted regression set.  Schedules are core id sequences valid on the
#: correct spec (completed round-robin past the violating prefix).
COUNTEREXAMPLES: Tuple[CounterexampleWorkload, ...] = (
    CounterexampleWorkload(
        name="cx-window-split-cross",
        litmus="window-split-cross",
        description=(
            "Core 1's single-store window interleaves into core 0's "
            "two-store sequence; without the expected-count check the "
            "split window flushes a torn line"
        ),
        schedule=(0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1),
        found_with="skip-expected-check",
    ),
    CounterexampleWorkload(
        name="cx-flush-flush-conflict",
        litmus="flush-flush-conflict",
        description=(
            "Both cores race store/store/flush on one line so each flush "
            "conflicts at least once; a lost combining store publishes a "
            "torn pair"
        ),
        schedule=(0, 0, 1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1),
        found_with="lost-store",
    ),
)


def get_counterexample(name: str) -> CounterexampleWorkload:
    for workload in COUNTEREXAMPLES:
        if workload.name == name:
            return workload
    known = ", ".join(w.name for w in COUNTEREXAMPLES)
    raise ConfigError(f"unknown counterexample {name!r} (have: {known})")
