"""Unified workload specifications: what the machine runs, as data.

Historically "a workload" meant a finalized assembly program; trace-driven
replay adds a second backend where the workload is an I/O stream that a
compiler lowers into store/lock/CSB idioms window by window.  Both are
described by a frozen, serializable *spec*:

* :class:`ProgramWorkload` — one or more assembly programs (one per
  process), exactly the kernels the paper's experiments run today.
* :class:`TraceWorkload` — an I/O trace (a ``#csb-trace v1`` file or a
  ``synth:`` generator spec) plus the store discipline to replay it under.

Every spec round-trips through ``to_dict``/``workload_from_dict`` and
yields a stable content-addressed :meth:`cache_key`, which is how trace
jobs enter the :class:`~repro.evaluation.runner.ResultCache` alongside
program jobs.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.errors import ConfigError

#: Store disciplines a trace can be replayed under.
DISCIPLINES = ("csb", "lock", "uncached")

#: Spec-format version baked into every cache key.
SPEC_VERSION = "workload-spec-1"


def _digest(document: dict) -> str:
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ProgramWorkload:
    """A program-backed workload: named assembly sources, one per process.

    ``sources`` pairs each process's display name with its kernel text;
    multi-element tuples describe SMP workloads (one program per core).
    ``warm`` lists addresses pre-loaded into the caches before the run
    and ``span`` optionally names the (start, end) marks the workload
    measures — the same fields a
    :class:`~repro.evaluation.runner.SimJob` carries, so a job can be
    built from a spec without loss.
    """

    name: str
    sources: Tuple[Tuple[str, str], ...]
    warm: Tuple[int, ...] = ()
    span: Tuple[str, ...] = ()

    kind = "program"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("workload needs a name")
        if not self.sources:
            raise ConfigError(f"workload {self.name!r} has no programs")
        for entry in self.sources:
            if len(entry) != 2 or not all(isinstance(x, str) for x in entry):
                raise ConfigError(
                    f"workload {self.name!r}: sources must be "
                    "(name, assembly text) pairs"
                )
        if self.span and len(self.span) != 2:
            raise ConfigError(
                f"workload {self.name!r}: span needs (start, end) labels"
            )

    @property
    def source(self) -> str:
        """The single program's text (raises for SMP workloads)."""
        if len(self.sources) != 1:
            raise ConfigError(
                f"workload {self.name!r} has {len(self.sources)} programs"
            )
        return self.sources[0][1]

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "sources": [list(pair) for pair in self.sources],
            "warm": list(self.warm),
            "span": list(self.span),
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "ProgramWorkload":
        return cls(
            name=document["name"],
            sources=tuple(
                (str(n), str(s)) for n, s in document["sources"]
            ),
            warm=tuple(document.get("warm", ())),
            span=tuple(document.get("span", ())),
        )

    def cache_key(self) -> str:
        """Content hash of everything that determines what this workload
        executes (the display name is excluded, like SimJob names)."""
        return _digest(
            {
                "version": SPEC_VERSION,
                "kind": self.kind,
                "sources": [list(pair) for pair in self.sources],
                "warm": list(self.warm),
                "span": list(self.span),
            }
        )


@dataclass(frozen=True)
class TraceWorkload:
    """A trace-backed workload: an I/O stream plus its replay discipline.

    ``source`` selects the stream:

    * ``synth:KEY=VALUE,...`` — a seeded synthetic trace (see
      :mod:`repro.workloads.traces.synth` for the grammar);
    * ``bundled:NAME`` — a trace file shipped inside the package
      (``repro/workloads/traces/NAME.trace``);
    * anything else — a path to a ``#csb-trace v1`` file.

    ``discipline`` picks the store idiom the compiler lowers records into
    (``csb``, ``lock``, or ``uncached``), ``window`` bounds how many
    records are materialized as a program at once (the streaming knob),
    and ``devices`` is the number of descriptor rings attached (0 means
    "as declared by the trace/spec").
    """

    name: str
    source: str
    discipline: str = "csb"
    window: int = 256
    devices: int = 0

    kind = "trace"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("workload needs a name")
        if not self.source:
            raise ConfigError(f"workload {self.name!r} has no trace source")
        if self.discipline not in DISCIPLINES:
            raise ConfigError(
                f"unknown discipline {self.discipline!r}; have {DISCIPLINES}"
            )
        if self.window < 1:
            raise ConfigError("trace window must be >= 1 transaction")
        if self.devices < 0:
            raise ConfigError("devices must be >= 0")

    @property
    def is_synthetic(self) -> bool:
        return self.source.startswith("synth:")

    @property
    def is_bundled(self) -> bool:
        return self.source.startswith("bundled:")

    def path(self) -> str:
        """Filesystem path of a file-backed trace (not for synth specs)."""
        if self.is_synthetic:
            raise ConfigError(f"synthetic trace {self.name!r} has no file")
        if self.is_bundled:
            return bundled_trace_path(self.source[len("bundled:"):])
        return self.source

    def content_digest(self) -> str:
        """SHA-256 of the trace *content*: the spec string for synthetic
        traces, the file bytes (streamed) for file-backed ones.  Two
        workloads replaying byte-identical streams share this digest even
        when the file lives at different paths."""
        if self.is_synthetic:
            return hashlib.sha256(self.source.encode("utf-8")).hexdigest()
        digest = hashlib.sha256()
        with open(self.path(), "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 16), b""):
                digest.update(chunk)
        return digest.hexdigest()

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "source": self.source,
            "discipline": self.discipline,
            "window": self.window,
            "devices": self.devices,
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "TraceWorkload":
        return cls(
            name=document["name"],
            source=document["source"],
            discipline=document.get("discipline", "csb"),
            window=document.get("window", 256),
            devices=document.get("devices", 0),
        )

    def cache_key(self) -> str:
        """Content hash: replaying the same stream under the same
        discipline/window is the same work, wherever the file lives."""
        return _digest(
            {
                "version": SPEC_VERSION,
                "kind": self.kind,
                "content": self.content_digest(),
                "discipline": self.discipline,
                "window": self.window,
                "devices": self.devices,
            }
        )


def bundled_trace_path(name: str) -> str:
    """Path of a trace file shipped with the package."""
    if not name or "/" in name or os.sep in name or name.startswith("."):
        raise ConfigError(f"bad bundled trace name {name!r}")
    path = os.path.join(
        os.path.dirname(__file__), "traces", f"{name}.trace"
    )
    if not os.path.exists(path):
        raise ConfigError(f"no bundled trace {name!r} at {path}")
    return path


def workload_from_dict(document: Dict):
    """Revive any workload spec ``to_dict`` produced."""
    kind = document.get("kind")
    if kind == "program":
        return ProgramWorkload.from_dict(document)
    if kind == "trace":
        return TraceWorkload.from_dict(document)
    raise ConfigError(f"unknown workload kind {kind!r}")
