"""Store-bandwidth microbenchmark (paper §4.2, first benchmark).

"Uncached store bandwidth is measured using a tight loop of doubleword
stores.  The loop is unrolled so that in each iteration a complete cache
line worth of data is stored."  We emit the fully unrolled store sequence
(the largest transfer is 1 KB = 128 doubleword stores), which is the same
instruction stream the unrolled loop produces without the loop-control
noise.

Two variants:

* :func:`store_kernel_uncached` — plain doubleword stores to uncached
  space; the hardware uncached buffer (non-combining or combining,
  depending on system configuration) turns them into bus transactions.
* :func:`store_kernel_csb` — stores to uncached-combining space in
  line-sized groups, each committed with a conditional flush and the
  paper's retry idiom.
"""

from __future__ import annotations

from typing import List

from repro.common.config import DOUBLEWORD
from repro.common.errors import ConfigError
from repro.memory.layout import IO_COMBINING_BASE, IO_UNCACHED_BASE

#: Transfer sizes swept in Figures 3 and 4 (bytes).
TRANSFER_SIZES = (16, 32, 64, 128, 256, 512, 1024)

#: Registers cycled through as store sources, so consecutive stores do not
#: share a data dependency.
_DATA_REGS = ("%l0", "%l1", "%l2", "%l3")


def _check_args(total_bytes: int) -> None:
    if total_bytes < DOUBLEWORD or total_bytes % DOUBLEWORD:
        raise ConfigError(
            f"transfer size must be a positive multiple of {DOUBLEWORD} bytes, "
            f"got {total_bytes}"
        )


def store_kernel_uncached(total_bytes: int, base: int = IO_UNCACHED_BASE) -> str:
    """Doubleword-store stream to plain uncached space."""
    _check_args(total_bytes)
    lines: List[str] = [
        f"set {base}, %o1",
        "set 0x1111111111111111, %l0",
        "set 0x2222222222222222, %l1",
        "set 0x3333333333333333, %l2",
        "set 0x4444444444444444, %l3",
    ]
    for i in range(total_bytes // DOUBLEWORD):
        reg = _DATA_REGS[i % len(_DATA_REGS)]
        lines.append(f"stx {reg}, [%o1+{i * DOUBLEWORD}]")
    lines.append("membar")
    lines.append("halt")
    return "\n".join(lines)


def store_kernel_csb(
    total_bytes: int,
    line_size: int,
    base: int = IO_COMBINING_BASE,
    interleave: bool = False,
) -> str:
    """Doubleword-store stream through the conditional store buffer.

    Stores are grouped per cache line; each group ends with the paper's
    flush-check-retry idiom (§3.2)::

        set <n>, %l4
        stx ..., [%o1 + ...]     ! n stores, any order
        swap [%o1 + group], %l4  ! conditional flush
        cmp %l4, <n>
        bnz .RETRY_g             ! retry on failure

    ``interleave`` issues each group's stores out of order (even slots
    first, then odd) — the CSB accepts any order within a line (§3.2),
    so this must not change the result.
    """
    _check_args(total_bytes)
    if line_size % DOUBLEWORD or line_size < DOUBLEWORD:
        raise ConfigError(f"bad line size {line_size}")
    lines: List[str] = [
        f"set {base}, %o1",
        "set 0x1111111111111111, %l0",
        "set 0x2222222222222222, %l1",
        "set 0x3333333333333333, %l2",
        "set 0x4444444444444444, %l3",
    ]
    dwords_total = total_bytes // DOUBLEWORD
    dwords_per_line = line_size // DOUBLEWORD
    group = 0
    emitted = 0
    while emitted < dwords_total:
        in_group = min(dwords_per_line, dwords_total - emitted)
        group_base = emitted * DOUBLEWORD
        lines.append(f".RETRY{group}:")
        lines.append(f"set {in_group}, %l4")
        slots = list(range(in_group))
        if interleave:
            slots = slots[::2] + slots[1::2]
        for i in slots:
            reg = _DATA_REGS[(emitted + i) % len(_DATA_REGS)]
            offset = group_base + i * DOUBLEWORD
            lines.append(f"stx {reg}, [%o1+{offset}]")
        lines.append(f"swap [%o1+{group_base}], %l4    ! conditional flush")
        lines.append(f"cmp %l4, {in_group}")
        lines.append(f"bnz .RETRY{group}")
        emitted += in_group
        group += 1
    lines.append("halt")
    return "\n".join(lines)
