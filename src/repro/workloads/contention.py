"""Multi-process CSB contention workload (paper §3.2's interleaving).

Each process repeatedly performs a combining-store sequence plus
conditional flush.  When the scheduler preempts a process between its
stores and its flush, the competitor's first combining store clears the
buffer, the interrupted process's flush returns zero, and its software
retry loop re-issues the sequence — the optimistic non-blocking protocol.
Conflicts are visible in the ``csb.flush_conflicts`` counter, and every
successfully flushed line is visible at the device exactly once.
"""

from __future__ import annotations

from typing import List

from repro.common.config import DOUBLEWORD
from repro.common.errors import ConfigError


def contending_csb_kernel(
    iterations: int,
    base: int,
    n_doublewords: int = 8,
    signature: int = 0,
    backoff: bool = False,
    backoff_cap: int = 256,
    backoff_base: int = 1,
    line_size: int = 64,
) -> str:
    """``iterations`` flush sequences of ``n_doublewords`` stores to ``base``.

    ``signature`` seeds the stored values so tests can attribute every
    flushed line to the process that produced it.

    ``backoff`` enables the paper's livelock mitigation (§3.2: "use an
    exponential backoff algorithm to reduce the likelihood of a
    conflict"): after a failed flush the process spins for a delay that
    doubles on every consecutive failure (capped at ``backoff_cap`` loop
    iterations) before retrying, and resets on success.  ``backoff_base``
    is the delay the sequence starts (and resets) from; giving each
    contender a distinct base is the deterministic-simulation analogue of
    the randomized backoff slot real systems use — it breaks the phase
    lock between otherwise identical competitors (see
    :mod:`repro.workloads.smp`).
    """
    if iterations < 1:
        raise ConfigError("iterations must be >= 1")
    if n_doublewords < 1:
        raise ConfigError("need at least one store per sequence")
    if backoff_base < 1:
        raise ConfigError("backoff_base must be >= 1")
    if n_doublewords * DOUBLEWORD > line_size:
        raise ConfigError(
            f"{n_doublewords} doublewords do not fit one {line_size}-byte "
            "combining line; stores past the line would conflict with the "
            "sequence's own window and be dropped"
        )
    lines: List[str] = [
        f"set {base}, %o1",
        f"set {iterations}, %l7",
        f"set {signature}, %l0",
        f"set {backoff_base}, %l5",  # current backoff (spin iterations)
        ".LOOP:",
        ".RETRY:",
        f"set {n_doublewords}, %l4",
    ]
    for i in range(n_doublewords):
        lines.append(f"stx %l0, [%o1+{i * DOUBLEWORD}]")
    lines += [
        "swap [%o1], %l4",
        f"cmp %l4, {n_doublewords}",
    ]
    if backoff:
        lines += [
            "be .OK",
            # Failed flush: double the backoff (capped) and spin it down.
            "add %l5, %l5, %l5",
            f"cmp %l5, {backoff_cap}",
            "ble .SPIN_SETUP",
            f"set {backoff_cap}, %l5",
            ".SPIN_SETUP:",
            "or %l5, 0, %l6",
            ".SPIN:",
            "sub %l6, 1, %l6",
            "brnz %l6, .SPIN",
            "ba .RETRY",
            ".OK:",
            f"set {backoff_base}, %l5",  # success resets the backoff
        ]
    else:
        lines.append("bnz .RETRY")
    lines += [
        "add %l0, 1, %l0",           # vary the payload per iteration
        "sub %l7, 1, %l7",
        "brnz %l7, .LOOP",
        "halt",
    ]
    return "\n".join(lines)
