"""Two-node ping-pong kernels (the paper's motivating workload).

Node A sends a short message, then polls its NIC's RX status until the
reply lands; node B polls, consumes the message, and echoes it back.  The
round-trip time is the per-message latency the paper's §5 argues dominates
fine-grain parallel scalability.

Two send paths per node:

* ``csb`` — payload combined in the CSB and committed with one conditional
  flush straight into the NIC's TX FIFO window (inline packet, no lock).
* ``pio`` — the conventional driver path: take the device lock, assemble
  the payload in NIC packet memory with uncached stores, push a
  descriptor, release the lock.
"""

from __future__ import annotations

from typing import List

from repro.common.config import DOUBLEWORD
from repro.common.errors import ConfigError
from repro.devices import nic as nic_regs
from repro.workloads.lockbench import DEFAULT_LOCK_ADDR

MARK_RTT_START = "rtt_start"
MARK_RTT_DONE = "rtt_done"
SEND_METHODS = ("csb", "pio")


def _send_lines(
    method: str,
    payload_dwords: int,
    nic_uncached: int,
    nic_combining: int,
    label_prefix: str,
) -> List[str]:
    if method == "csb":
        lines = [
            f"set {nic_combining}, %o1",
            f"{label_prefix}RETRY:",
            f"set {payload_dwords}, %l4",
        ]
        for i in range(payload_dwords):
            lines.append(f"stx %l0, [%o1+{i * DOUBLEWORD}]")
        lines += [
            "swap [%o1], %l4",
            f"cmp %l4, {payload_dwords}",
            f"bnz {label_prefix}RETRY",
        ]
        return lines
    if method == "pio":
        slot = nic_regs.PACKET_MEMORY_OFFSET
        descriptor = (0 << 16) | (payload_dwords * DOUBLEWORD)
        lines = [
            f"set {DEFAULT_LOCK_ADDR}, %o0",
            f"set {nic_uncached + slot}, %o1",
            f"set {nic_uncached}, %o2",
            f"{label_prefix}ACQ:",
            "set 1, %l6",
            "swap [%o0], %l6",
            f"brnz %l6, {label_prefix}ACQ",
            "membar",
        ]
        for i in range(payload_dwords):
            lines.append(f"stx %l0, [%o1+{i * DOUBLEWORD}]")
        lines += [
            f"set {descriptor}, %l5",
            "stx %l5, [%o2]",
            "membar",
            "stx %g0, [%o0]",
        ]
        return lines
    raise ConfigError(f"unknown send method {method!r}")


def _poll_and_consume_lines(nic_uncached: int, label: str) -> List[str]:
    return [
        f"set {nic_uncached + nic_regs.RX_STATUS_OFFSET}, %o4",
        f"set {nic_uncached + nic_regs.RX_WINDOW_OFFSET}, %o5",
        f"{label}:",
        "ldx [%o4], %l6",
        f"brz %l6, {label}",
        "ldx [%o5], %l0",     # first payload doubleword (echoed back)
        f"stx %g0, [%o4+{nic_regs.RX_CONSUME_OFFSET - nic_regs.RX_STATUS_OFFSET}]",
    ]


def ping_kernel(
    method: str,
    payload_dwords: int,
    nic_uncached: int,
    nic_combining: int,
) -> str:
    """Node A: send, await the echo, consume it."""
    if payload_dwords < 1 or payload_dwords > 8:
        raise ConfigError("inline ping payload is 1..8 doublewords")
    lines = [
        "set 0x1234000000000000, %l0",   # payload signature
        f"mark {MARK_RTT_START}",
    ]
    lines += _send_lines(method, payload_dwords, nic_uncached, nic_combining, ".S")
    lines += _poll_and_consume_lines(nic_uncached, ".POLL")
    lines += [f"mark {MARK_RTT_DONE}", "halt"]
    return "\n".join(lines)


def pong_kernel(
    method: str,
    payload_dwords: int,
    nic_uncached: int,
    nic_combining: int,
) -> str:
    """Node B: await the message, echo its first doubleword back."""
    lines = _poll_and_consume_lines(nic_uncached, ".WAIT")
    lines += _send_lines(method, payload_dwords, nic_uncached, nic_combining, ".R")
    lines += ["halt"]
    return "\n".join(lines)
