"""Registry of every shipped workload, as unified workload specs.

Where :mod:`repro.analysis.registry` enumerates kernel *programs* for the
lint gate, this registry enumerates *workloads* — program-backed and
trace-backed alike — as the serializable specs of
:mod:`repro.workloads.spec`.  Every entry round-trips through
``to_dict``/``workload_from_dict`` and yields a stable cache key; the
registry-wide test in tests/workloads/test_registry.py enforces both for
each entry, so any workload that enters an experiment is guaranteed to be
cacheable and reproducible from its serialized form.
"""

from __future__ import annotations

from typing import Iterator, List, Union

from repro.common.errors import ConfigError
from repro.workloads.spec import ProgramWorkload, TraceWorkload

Workload = Union[ProgramWorkload, TraceWorkload]

#: Synthetic traces the trace experiments and smoke tests draw from:
#: a saturation point per discipline and one skewed multi-device stream.
SYNTH_SOURCES = (
    ("synth-steady", "synth:n=500,seed=11,gap=120,devices=1"),
    ("synth-saturating", "synth:n=500,seed=11,gap=30,devices=1"),
    (
        "synth-skewed",
        "synth:n=500,seed=13,gap=60,devices=4,skew=1.5,sizes=8:3/64:1",
    ),
    (
        "synth-bursty",
        "synth:n=500,seed=17,gap=200,arrival=bursty,burst=16,devices=2",
    ),
)


def iter_program_workloads() -> Iterator[ProgramWorkload]:
    """Every shipped kernel of the lint registry, as a workload spec."""
    from repro.analysis.registry import iter_lint_targets

    for target in iter_lint_targets():
        yield ProgramWorkload(
            name=target.name, sources=((target.name, target.source),)
        )


def iter_trace_workloads() -> Iterator[TraceWorkload]:
    """The bundled sample trace and the registry's synthetic streams,
    each under every replay discipline."""
    for discipline in ("csb", "lock", "uncached"):
        yield TraceWorkload(
            name=f"bundled-sample-{discipline}",
            source="bundled:sample",
            discipline=discipline,
            devices=2,
        )
    for name, source in SYNTH_SOURCES:
        for discipline in ("csb", "lock", "uncached"):
            yield TraceWorkload(
                name=f"{name}-{discipline}",
                source=source,
                discipline=discipline,
            )


def iter_workloads() -> Iterator[Workload]:
    """Every registered workload, program-backed first, in stable order."""
    yield from iter_program_workloads()
    yield from iter_trace_workloads()


def all_workloads() -> List[Workload]:
    return list(iter_workloads())


def workload_by_name(name: str) -> Workload:
    """Look up one registered workload (exact name match)."""
    for workload in iter_workloads():
        if workload.name == name:
            return workload
    raise ConfigError(f"no registered workload named {name!r}")
