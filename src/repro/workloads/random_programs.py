"""Seeded random guest programs for the differential test harness.

:func:`generate_program` composes a small program from a random sequence
of *fragments*, each drawn from a library of templates that are
protocol-correct **by construction**: every lock acquire pairs with a
membar-fenced release, every combining sequence stays inside one aligned
line window and ends in a checked, retried conditional flush, and every
loop is bounded.  The generator's output therefore must assemble, must
pass the :mod:`repro.analysis` lint oracle with zero error findings, and
must halt — properties tests/random/test_differential.py asserts for
every seed before using the program to cross-check simulator modes
against each other (trace on/off, cached vs fresh runner, SMP core 0 vs
the single-core system).

Determinism: one ``random.Random(seed)`` drives all choices, so a seed
names a program forever.  The whole program is bracketed by ``mark``
pseudo-instructions (:data:`MARK_START` / :data:`MARK_END`) so harness
jobs can use the ``span`` measurement.
"""

from __future__ import annotations

import random
from typing import List

from repro.common.config import DOUBLEWORD
from repro.memory.layout import DRAM_BASE, IO_COMBINING_BASE, IO_UNCACHED_BASE
from repro.workloads.lockbench import DEFAULT_LOCK_ADDR

#: Cached DRAM scratch area compute fragments read and write.
SCRATCH_BASE = DRAM_BASE + 0x40000

MARK_START = "rand_start"
MARK_END = "rand_end"

#: The line size every generated combining sequence respects; tests must
#: build their systems with the same value.
LINE_SIZE = 64

_DOUBLEWORDS_PER_LINE = LINE_SIZE // DOUBLEWORD


def _compute_fragment(rng: random.Random, idx: int) -> List[str]:
    """ALU work plus cached DRAM stores/loads (no protocol obligations)."""
    base = SCRATCH_BASE + rng.randrange(16) * LINE_SIZE
    op = rng.choice(("add", "sub", "or", "xor", "and"))
    lines = [
        f"set {rng.randrange(1, 1 << 20)}, %l0",
        f"set {base}, %o2",
        f"{op} %l0, {rng.randrange(1, 255)}, %l1",
        "stx %l1, [%o2+0]",
        "ldx [%o2+0], %l2",
        f"add %l2, {rng.randrange(1, 63)}, %l2",
        f"stx %l2, [%o2+{DOUBLEWORD}]",
    ]
    return lines


def _loop_fragment(rng: random.Random, idx: int) -> List[str]:
    """A bounded countdown loop accumulating into DRAM scratch."""
    base = SCRATCH_BASE + (16 + rng.randrange(16)) * LINE_SIZE
    count = rng.randrange(2, 7)
    return [
        f"set {base}, %o2",
        f"set {rng.randrange(1, 1 << 16)}, %l0",
        f"set {count}, %l6",
        f".LOOP{idx}:",
        f"add %l0, {rng.randrange(1, 31)}, %l0",
        "stx %l0, [%o2+0]",
        "sub %l6, 1, %l6",
        f"brnz %l6, .LOOP{idx}",
    ]


def _locked_fragment(rng: random.Random, idx: int) -> List[str]:
    """The paper's lock discipline: acquire, membar, stores, membar,
    release (lint rules ``lock.*`` and ``membar.*``)."""
    stores = rng.randrange(1, 5)
    data_base = IO_UNCACHED_BASE + rng.randrange(8) * LINE_SIZE
    lines = [
        f"set {DEFAULT_LOCK_ADDR}, %o0",
        f"set {data_base}, %o1",
        f"set {rng.randrange(1, 1 << 16)}, %l0",
        f".ACQ{idx}:",
        "set 1, %l6",
        "swap [%o0], %l6",
        f"brnz %l6, .ACQ{idx}",
        "membar",
    ]
    for i in range(stores):
        lines.append(f"stx %l0, [%o1+{i * DOUBLEWORD}]")
    lines += [
        "membar",
        "stx %g0, [%o0]",
    ]
    return lines


def _csb_fragment(rng: random.Random, idx: int) -> List[str]:
    """A combining sequence with checked conditional flush and retry
    (lint rules ``csb.*``)."""
    line = IO_COMBINING_BASE + rng.randrange(8) * LINE_SIZE
    count = rng.randrange(1, _DOUBLEWORDS_PER_LINE + 1)
    offsets = rng.sample(range(_DOUBLEWORDS_PER_LINE), count)
    lines = [
        f"set {line}, %o1",
        f"set {rng.randrange(1, 1 << 16)}, %l0",
        f".RETRY{idx}:",
        f"set {count}, %l4",
    ]
    for slot in offsets:
        lines.append(f"stx %l0, [%o1+{slot * DOUBLEWORD}]")
        lines.append(f"add %l0, 1, %l0")
    lines += [
        "swap [%o1], %l4",
        f"cmp %l4, {count}",
        f"bnz .RETRY{idx}",
    ]
    return lines


def _plain_uncached_fragment(rng: random.Random, idx: int) -> List[str]:
    """Unlocked uncached device stores and a read-back (legal: the lint
    rules constrain lock pairing and combining windows, not bare PIO)."""
    base = IO_UNCACHED_BASE + (8 + rng.randrange(8)) * LINE_SIZE
    stores = rng.randrange(1, 4)
    lines = [
        f"set {base}, %o3",
        f"set {rng.randrange(1, 1 << 16)}, %l3",
    ]
    for i in range(stores):
        lines.append(f"stx %l3, [%o3+{i * DOUBLEWORD}]")
    lines.append("ldx [%o3+0], %l2")
    return lines


_FRAGMENTS = (
    _compute_fragment,
    _loop_fragment,
    _locked_fragment,
    _csb_fragment,
    _plain_uncached_fragment,
)


def generate_program(
    seed: int, min_fragments: int = 3, max_fragments: int = 7
) -> str:
    """A random, lint-clean, halting guest program named by ``seed``."""
    rng = random.Random(seed)
    count = rng.randrange(min_fragments, max_fragments + 1)
    lines: List[str] = [f"mark {MARK_START}"]
    for idx in range(count):
        template = rng.choice(_FRAGMENTS)
        lines.extend(template(rng, idx))
    lines += [f"mark {MARK_END}", "halt"]
    return "\n".join(lines)
