"""Multiplexed address/data bus.

Address and data share one set of wires, so every transaction pays one
address cycle before its data beats (paper §4.1: "On the multiplexed bus, an
address transfer takes one extra cycle").  A doubleword store on an 8-byte
bus therefore occupies two cycles — which is exactly why the non-combining
scheme tops out at half the peak bandwidth (§4.3.1).

Read timing: the address cycle is followed by ``read_latency`` target-access
cycles before the data beats return on the same wires.
"""

from __future__ import annotations

from typing import Tuple

from repro.bus.base import SystemBus
from repro.bus.transaction import BusTransaction, KIND_REFILL


class MultiplexedBus(SystemBus):
    """Shared address/data path; 1 address cycle + N data beats."""

    def transaction_end(self, txn: BusTransaction, start: int) -> int:
        beats = self.config.data_beats(txn.size)
        stall = txn.fault_stall
        if txn.kind == KIND_REFILL:
            # Split-transaction refill: the memory access time overlaps
            # other traffic; the bus pays only address + data beats.
            return start + stall + beats
        if txn.is_read:
            return start + 1 + self.read_latency + stall + beats - 1
        # Address cycle at `start`, data beats immediately after.
        return start + stall + beats

    def cycle_breakdown(self, txn: BusTransaction) -> Tuple[int, int, int]:
        beats = self.config.data_beats(txn.size)
        if txn.is_read and txn.kind != KIND_REFILL:
            return 1, self.read_latency + txn.fault_stall, beats
        return 1, txn.fault_stall, beats
