"""Shared-bus arbitration among multiple initiators.

A single system bus accepts at most one new transaction per bus cycle
(:meth:`SystemBus.try_issue` refuses overlapping transfers), so when several
initiators — per-core uncached units, the cache refill engine, a DMA master —
want the bus in the same cycle, something must pick the winner.  The
:class:`BusArbiter` is that something: a two-level scheme of strict priority
*classes* with a configurable policy *within* a class.

* **Priority classes** are walked lowest number first.  Refill traffic
  registers at priority 0 (memory stalls the whole core, so it outranks
  programmed I/O — the same choice the single-initiator path hard-coded),
  per-core uncached units at priority 1.
* **Within a class**, ``round_robin`` rotates the first-considered slot one
  past the most recent winner, so every initiator is at most N-1 grants from
  the front (classic fair arbitration); ``priority`` always considers
  initiators in registration order, modeling a daisy-chained grant line where
  core 0 can starve core N under saturation.

An initiator is any object with ``tick_bus(bus_cycle) -> bool`` returning
True when it started a transaction.  Losing a grant is not an error: an
initiator simply retries next bus cycle (its FIFO head stays put), which is
exactly the wait time the bus-cycle accounting attributes to arbitration.

With one initiator per class the arbiter reduces to the pre-SMP clocking
order (bus tick, then refill, then the single uncached unit), which is what
keeps ``num_cores=1`` systems cycle-identical to the old single-initiator
path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

from repro.common.config import ARBITRATION_POLICIES
from repro.common.errors import ConfigError
from repro.bus.base import SystemBus


class BusInitiator(Protocol):
    """Anything that can start bus transactions when granted a cycle."""

    def tick_bus(self, bus_cycle: int) -> bool:
        """Try to start a transaction; True means the bus was taken."""
        ...


class BusArbiter:
    """Grants each bus cycle to at most one of the registered initiators."""

    def __init__(self, bus: SystemBus, policy: str = "round_robin") -> None:
        if policy not in ARBITRATION_POLICIES:
            raise ConfigError(f"arbitration policy must be one of {ARBITRATION_POLICIES}")
        self.bus = bus
        self.policy = policy
        #: Grant counts per initiator name (fairness diagnostics).
        self.grants: Dict[str, int] = {}
        # priority -> [(name, initiator), ...] in registration order.
        self._classes: Dict[int, List[tuple]] = {}
        # priority -> index of the next first-considered slot (round robin).
        self._rotor: Dict[int, int] = {}
        self._order: List[int] = []

    def add_initiator(
        self, initiator: BusInitiator, priority: int = 1, name: str = ""
    ) -> None:
        """Register an initiator in a priority class (lower wins first)."""
        group = self._classes.setdefault(priority, [])
        if priority not in self._rotor:
            self._rotor[priority] = 0
            self._order = sorted(self._classes)
        label = name or f"initiator{priority}.{len(group)}"
        group.append((label, initiator))
        self.grants[label] = 0

    def tick_bus(self, bus_cycle: int) -> Optional[str]:
        """Advance the bus one cycle, then grant it to the first initiator
        that can use it.  Returns the winner's name, or None if the cycle
        went idle (or the bus is mid-transfer)."""
        self.bus.tick(bus_cycle)
        for priority in self._order:
            group = self._classes[priority]
            count = len(group)
            start = self._rotor[priority] if self.policy == "round_robin" else 0
            for step in range(count):
                index = (start + step) % count
                name, initiator = group[index]
                if initiator.tick_bus(bus_cycle):
                    if self.policy == "round_robin":
                        self._rotor[priority] = (index + 1) % count
                    self.grants[name] += 1
                    return name
        return None
