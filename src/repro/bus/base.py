"""Shared bus machinery: issue/complete scheduling, flow control, targets.

Timing contract (all in bus cycles):

* A transaction is *accepted* at its address cycle ``start``.
* The concrete bus computes ``end``, the transaction's last data cycle.
* The next transaction's address cycle must satisfy both
  ``next_start >= end + 1 + turnaround`` (the bus path must be free, plus
  any mandatory idle cycle) and ``next_start >= start + min_addr_delay``
  (acknowledgment flow control under strong ordering: the next uncached
  transaction may not issue until the previous one was positively
  acknowledged, paper §4.3.1).

Because timing is deterministic once a transaction is accepted, completion
is scheduled at accept time and callbacks fire from :meth:`SystemBus.tick`.
"""

from __future__ import annotations

import abc
import heapq
from typing import List, Optional, Protocol, Tuple

from repro.common.config import BusConfig
from repro.common.errors import SimulationError
from repro.common.stats import StatsCollector, TransactionRecord
from repro.bus.transaction import BusTransaction
from repro.memory.backing import BackingStore
from repro.memory.layout import Region


class BusTarget(Protocol):
    """Anything that can terminate a bus transaction (a device)."""

    def bus_write(self, address: int, data: bytes) -> None: ...

    def bus_read(self, address: int, size: int) -> bytes: ...


class TargetRegistry:
    """Routes completed transactions to devices by address range.

    Addresses not claimed by any device fall through to the backing store,
    which models plain bufferable device memory (e.g. a frame buffer or a
    NI's exported packet memory).
    """

    def __init__(self, backing: BackingStore) -> None:
        self._backing = backing
        self._targets: List[Tuple[Region, BusTarget]] = []

    def register(self, region: Region, device: BusTarget) -> None:
        for existing, _ in self._targets:
            if region.overlaps(existing):
                raise SimulationError(
                    f"device region {region.name!r} overlaps {existing.name!r}"
                )
        self._targets.append((region, device))

    def write(self, address: int, data: bytes) -> None:
        device = self._device_at(address)
        if device is not None:
            device.bus_write(address, data)
        else:
            self._backing.write_bytes(address, data)

    def read(self, address: int, size: int) -> bytes:
        device = self._device_at(address)
        if device is not None:
            return device.bus_read(address, size)
        return self._backing.read_bytes(address, size)

    def device_at(self, address: int) -> Optional[BusTarget]:
        """The device claiming ``address`` (None: plain backing memory)."""
        return self._device_at(address)

    def _device_at(self, address: int) -> Optional[BusTarget]:
        for region, device in self._targets:
            if region.contains(address):
                return device
        return None


class SystemBus(abc.ABC):
    """Base class for the multiplexed and split bus models."""

    def __init__(
        self,
        config: BusConfig,
        stats: StatsCollector,
        targets: TargetRegistry,
        read_latency: int = 3,
    ) -> None:
        if read_latency < 0:
            raise SimulationError("read_latency must be >= 0")
        self.config = config
        self.stats = stats
        self.targets = targets
        self.read_latency = read_latency
        #: Observability event bus; None (the default) means uninstrumented.
        self.events = None
        #: Fault-injection plan; None (the default) means fault-free, and
        #: every hook below guards on it so the clean path pays only the
        #: ``is not None`` check (same discipline as ``events``).
        self.faults = None
        self._next_start_allowed = 0
        self._busy_until = -1
        # Min-heap of (end_cycle, sequence, transaction) pending completion.
        self._pending: List[Tuple[int, int, BusTransaction]] = []
        self._sequence = 0

    # -- concrete buses implement the cost model -----------------------------

    @abc.abstractmethod
    def transaction_end(self, txn: BusTransaction, start: int) -> int:
        """Bus cycle of the transaction's last data beat."""

    @abc.abstractmethod
    def cycle_breakdown(self, txn: BusTransaction) -> Tuple[int, int, int]:
        """``(address, wait, data)`` cycles of ``txn`` on this bus.

        The three always sum to the transaction's occupancy
        ``end - start + 1`` — the bus-cycle accounting in
        :mod:`repro.observability.report` relies on it.
        """

    # -- issue / progress -----------------------------------------------------

    def can_issue(self, bus_cycle: int) -> bool:
        return bus_cycle >= self._next_start_allowed

    def try_issue(self, txn: BusTransaction, bus_cycle: int) -> bool:
        """Accept ``txn`` at ``bus_cycle`` if flow control allows.

        Returns False (and changes nothing) when the bus cannot take the
        transaction this cycle.
        """
        if txn.size > self.config.max_burst_bytes:
            raise SimulationError(
                f"transaction size {txn.size} exceeds bus max burst "
                f"{self.config.max_burst_bytes}"
            )
        if not self.can_issue(bus_cycle):
            return False
        if self.faults is not None:
            # A NACKed address cycle: the target refused the transaction,
            # the initiator's existing retry machinery re-presents it on a
            # later bus cycle.  Nothing else about the bus state changes.
            if self.faults.bus_nack():
                self.stats.bump("faults.bus_nack")
                self._publish_fault("bus_nack", txn.address)
                return False
            # A slow-target stall stretches this transaction's wait phase;
            # the concrete bus models fold ``fault_stall`` into both the
            # end-cycle cost and the cycle breakdown.
            txn.fault_stall = self.faults.bus_stall()
            if txn.fault_stall:
                self.stats.bump("faults.bus_stall")
                self._publish_fault(
                    "bus_stall", txn.address, cycles=txn.fault_stall
                )
        start = bus_cycle
        end = self.transaction_end(txn, start)
        txn.start_cycle = start
        txn.end_cycle = end
        self._busy_until = end
        self._next_start_allowed = max(
            end + 1 + self.config.turnaround,
            start + self.config.min_addr_delay,
        )
        if self.faults is not None:
            device = self.targets.device_at(txn.address)
            if device is not None:
                # A late positive acknowledgment from the target device:
                # under strong ordering the next transaction may not issue
                # until the ack arrives, so the flow-control window simply
                # stretches.
                delay = self.faults.device_timeout()
                if delay:
                    self._next_start_allowed += delay
                    self.stats.bump("faults.device_timeout")
                    note = getattr(device, "note_ack_delay", None)
                    if note is not None:
                        note(delay)
                    self._publish_fault(
                        "device_timeout", txn.address, cycles=delay
                    )
        heapq.heappush(self._pending, (end, self._sequence, txn))
        self._sequence += 1
        self.stats.bump("bus.transactions")
        self.stats.bump("bus.bytes_wire", txn.size)
        if txn.is_burst:
            self.stats.bump("bus.bursts")
        self.stats.record_transaction(
            TransactionRecord(
                start_cycle=start,
                end_cycle=end,
                address=txn.address,
                size=txn.size,
                useful_bytes=txn.useful_bytes or 0,
                kind=txn.kind,
                burst=txn.is_burst,
                core_id=txn.core_id,
            )
        )
        if self.events is not None:
            self._publish_accept(txn, start, end)
        return True

    def _publish_fault(self, site: str, address: int, cycles: int = 0) -> None:
        """Publish a FaultInjected event when instrumentation is on."""
        if self.events is None:
            return
        from repro.observability.events import FaultInjected

        self.events.publish(FaultInjected(site, address=address, cycles=cycles))

    def _publish_accept(self, txn: BusTransaction, start: int, end: int) -> None:
        """Emit the observability view of an accepted transaction (kept
        out of try_issue so the traced path costs the uninstrumented run
        nothing but the ``events is None`` check)."""
        from repro.observability.events import (
            BusAddressCycle,
            BusDataCycle,
            TransactionAccepted,
            Turnaround,
        )

        addr_cycles, wait_cycles, data_cycles = self.cycle_breakdown(txn)
        publish = self.events.publish
        publish(
            TransactionAccepted(
                bus_cycle=start,
                end_cycle=end,
                address=txn.address,
                size=txn.size,
                useful_bytes=txn.useful_bytes or 0,
                txn_kind=txn.kind,
                burst=txn.is_burst,
                addr_cycles=addr_cycles,
                wait_cycles=wait_cycles,
                data_cycles=data_cycles,
                turnaround_after=self.config.turnaround,
                core_id=txn.core_id,
            )
        )
        for offset in range(addr_cycles):
            publish(BusAddressCycle(start + offset, txn.address, txn.kind))
        for beat in range(data_cycles):
            publish(
                BusDataCycle(
                    end - data_cycles + 1 + beat, txn.address, txn.kind, beat
                )
            )
        if self.config.turnaround:
            publish(Turnaround(end + 1, self.config.turnaround))

    def tick(self, bus_cycle: int) -> None:
        """Complete every transaction whose last data beat has passed."""
        while self._pending and self._pending[0][0] <= bus_cycle:
            _, _, txn = heapq.heappop(self._pending)
            self._complete(txn)

    def drain_complete(self) -> bool:
        """True when no transaction is in flight."""
        return not self._pending

    @property
    def next_start_allowed(self) -> int:
        return self._next_start_allowed

    def _complete(self, txn: BusTransaction) -> None:
        if txn.is_write:
            assert txn.data is not None
            self.targets.write(txn.address, txn.data)
        else:
            txn.result_data = self.targets.read(txn.address, txn.size)
        if txn.on_complete is not None:
            assert txn.end_cycle is not None
            txn.on_complete(txn.end_cycle)
