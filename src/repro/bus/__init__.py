"""System bus models.

Two bus organizations from the paper's evaluation (§4.1):

* :class:`MultiplexedBus` — address and data share one path; every
  transaction pays one address cycle before its data beats.
* :class:`SplitBus` — separate address and data paths; a transaction's cost
  is its data beats only.

Both are fully pipelined with arbitration overlapped, support naturally
aligned power-of-two transfer sizes up to a cache line, and model two kinds
of transaction overhead: a mandatory *turnaround* idle cycle between
transactions, and a *minimum address-to-address delay* approximating
acknowledgment-based selective flow control under strong ordering.
"""

from repro.bus.transaction import (
    BusTransaction,
    KIND_CSB_FLUSH,
    KIND_UNCACHED_LOAD,
    KIND_UNCACHED_STORE,
)
from repro.bus.base import SystemBus, TargetRegistry
from repro.bus.multiplexed import MultiplexedBus
from repro.bus.split import SplitBus
from repro.bus.factory import make_bus

__all__ = [
    "BusTransaction",
    "KIND_CSB_FLUSH",
    "KIND_UNCACHED_LOAD",
    "KIND_UNCACHED_STORE",
    "MultiplexedBus",
    "SplitBus",
    "SystemBus",
    "TargetRegistry",
    "make_bus",
]
