"""Bus construction from configuration."""

from __future__ import annotations

from repro.common.config import BusConfig
from repro.common.errors import ConfigError
from repro.common.stats import StatsCollector
from repro.bus.base import SystemBus, TargetRegistry
from repro.bus.multiplexed import MultiplexedBus
from repro.bus.split import SplitBus


def make_bus(
    config: BusConfig,
    stats: StatsCollector,
    targets: TargetRegistry,
    read_latency: int = 3,
) -> SystemBus:
    """Build the bus model named by ``config.kind``."""
    if config.kind == "multiplexed":
        return MultiplexedBus(config, stats, targets, read_latency)
    if config.kind == "split":
        return SplitBus(config, stats, targets, read_latency)
    raise ConfigError(f"unknown bus kind {config.kind!r}")
