"""Split address/data bus (Sun UPA / PowerPC 60x style).

Separate address and data paths: the address transfer overlaps the previous
transaction's data, so a transaction's cost on the data path is just its
data beats.  The data path is typically wider than a processor word (128 or
256 bits), which introduces the *wasted width* overhead the paper highlights:
a doubleword store still occupies a full beat, using only half (or a quarter)
of the wires (§4.3.1, Figure 4).
"""

from __future__ import annotations

from typing import Tuple

from repro.bus.base import SystemBus
from repro.bus.transaction import BusTransaction, KIND_REFILL


class SplitBus(SystemBus):
    """Separate address path; transactions cost data beats only."""

    def transaction_end(self, txn: BusTransaction, start: int) -> int:
        beats = self.config.data_beats(txn.size)
        stall = txn.fault_stall
        if txn.kind == KIND_REFILL:
            # Split-transaction refill: data beats only.
            return start + stall + beats - 1
        if txn.is_read:
            # Address at `start`, target access, then data beats.
            return start + self.read_latency + stall + beats - 1
        return start + stall + beats - 1

    def cycle_breakdown(self, txn: BusTransaction) -> Tuple[int, int, int]:
        # The address transfer rides the separate address path, so it
        # costs nothing on the accounted (data) path.
        beats = self.config.data_beats(txn.size)
        if txn.is_read and txn.kind != KIND_REFILL:
            return 0, self.read_latency + txn.fault_stall, beats
        return 0, txn.fault_stall, beats
