"""Bus transaction descriptor.

A transaction carries its payload functionally (``data`` bytes for writes)
and its accounting metadata (``useful_bytes`` vs. wire ``size``: a CSB flush
always moves a full line, but only the combined stores count as payload).
The issuing unit may attach a completion callback, invoked with the bus cycle
in which the transaction's last data beat finished.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.bitops import is_aligned, is_power_of_two
from repro.common.errors import AlignmentError

KIND_UNCACHED_STORE = "uncached_store"
KIND_UNCACHED_LOAD = "uncached_load"
KIND_CSB_FLUSH = "csb_flush"
#: A cache-line refill from main memory (only present when the memory
#: hierarchy is configured to occupy the bus with its misses).
KIND_REFILL = "refill"
#: A synchronization broadcast (e.g. a store-conditional's bus transaction).
KIND_SYNC = "sync"
#: A dirty cache-line write-back to main memory (only present when the
#: data cache is configured to occupy the bus with its evictions).
KIND_WRITEBACK = "writeback"

_KINDS = (
    KIND_UNCACHED_STORE,
    KIND_UNCACHED_LOAD,
    KIND_CSB_FLUSH,
    KIND_REFILL,
    KIND_SYNC,
    KIND_WRITEBACK,
)

CompletionCallback = Callable[[int], None]


@dataclass
class BusTransaction:
    """One naturally aligned power-of-two bus transaction."""

    address: int
    size: int
    kind: str
    data: Optional[bytes] = None
    useful_bytes: Optional[int] = None
    on_complete: Optional[CompletionCallback] = field(default=None, repr=False)
    #: Initiating core (-1 for non-core initiators such as refill or DMA).
    core_id: int = -1
    #: Injected extra target-wait cycles (repro.faults ``bus_stall``);
    #: stamped by the bus at accept time, consumed by the concrete bus
    #: models' cost and breakdown functions.  Always 0 when faults are off.
    fault_stall: int = 0
    # Filled in by the bus when the transaction is accepted:
    start_cycle: Optional[int] = None
    end_cycle: Optional[int] = None
    # Filled in at completion for reads:
    result_data: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown transaction kind {self.kind!r}")
        if not is_power_of_two(self.size):
            raise AlignmentError(f"transaction size {self.size} not a power of two")
        if not is_aligned(self.address, self.size):
            raise AlignmentError(
                f"transaction at {self.address:#x} not aligned to its size {self.size}"
            )
        if self.useful_bytes is None:
            self.useful_bytes = self.size
        if self.useful_bytes < 0 or self.useful_bytes > self.size:
            raise ValueError(
                f"useful_bytes {self.useful_bytes} outside [0, {self.size}]"
            )
        if self.is_write:
            if self.data is None:
                raise ValueError(f"{self.kind} transaction needs data")
            if len(self.data) != self.size:
                raise ValueError(
                    f"data length {len(self.data)} != transaction size {self.size}"
                )

    @property
    def is_write(self) -> bool:
        return self.kind in (KIND_UNCACHED_STORE, KIND_CSB_FLUSH, KIND_WRITEBACK)

    @property
    def is_read(self) -> bool:
        return self.kind in (KIND_UNCACHED_LOAD, KIND_REFILL, KIND_SYNC)

    @property
    def is_burst(self) -> bool:
        """A burst moves more than one processor doubleword."""
        return self.size > 8
