"""Shared infrastructure for the CSB reproduction: errors, bit helpers,
configuration dataclasses, statistics, and table rendering."""

from repro.common.errors import (
    AlignmentError,
    ConfigError,
    ReproError,
    SimulationError,
    AssemblyError,
    MemoryError_,
    DeadlockError,
)
from repro.common.bitops import (
    align_down,
    align_up,
    is_aligned,
    is_power_of_two,
    block_base,
    block_offset,
    decompose_aligned,
)
from repro.common.stats import Counter, StatsCollector, BandwidthWindow
from repro.common.tables import Table

__all__ = [
    "AlignmentError",
    "AssemblyError",
    "BandwidthWindow",
    "ConfigError",
    "Counter",
    "DeadlockError",
    "MemoryError_",
    "ReproError",
    "SimulationError",
    "StatsCollector",
    "Table",
    "align_down",
    "align_up",
    "block_base",
    "block_offset",
    "decompose_aligned",
    "is_aligned",
    "is_power_of_two",
]
