"""Exception hierarchy for the CSB reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class AlignmentError(ReproError):
    """An address or size violated an alignment requirement."""


class AssemblyError(ReproError):
    """The assembler rejected a source program.

    Carries the offending source line number when available.
    """

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """The simulator reached an inconsistent state at runtime."""


class MemoryError_(ReproError):
    """An access fell outside any mapped region or crossed a boundary.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`, which means something entirely different.
    """


class DeadlockError(SimulationError):
    """The simulation made no forward progress within its watchdog window."""

    def __init__(self, message: str, cycle: int | None = None) -> None:
        self.cycle = cycle
        if cycle is not None:
            message = f"{message} (cycle {cycle})"
        super().__init__(message)
