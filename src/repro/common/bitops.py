"""Alignment and block arithmetic helpers.

Bus transactions in this model must be naturally aligned powers of two
(paper §4.1: "the system bus supports transfer sizes ranging from 1 byte to a
complete cache line in powers of two. All transactions must be naturally
aligned").  :func:`decompose_aligned` implements the greedy decomposition of an
arbitrary byte run into such transactions; it is what limits how well the
hardware combining buffer can use the bus, and it produces the counterintuitive
effects the paper notes (a smaller combining buffer occasionally beating a
larger one on medium transfers).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import AlignmentError


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    _require_pow2(alignment)
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    _require_pow2(alignment)
    return (value + alignment - 1) & ~(alignment - 1)


def is_aligned(value: int, alignment: int) -> bool:
    """Return True if ``value`` is a multiple of ``alignment``."""
    _require_pow2(alignment)
    return (value & (alignment - 1)) == 0


def block_base(address: int, block_size: int) -> int:
    """Return the base address of the ``block_size``-aligned block holding
    ``address``."""
    return align_down(address, block_size)


def block_offset(address: int, block_size: int) -> int:
    """Return the offset of ``address`` within its ``block_size`` block."""
    _require_pow2(block_size)
    return address & (block_size - 1)


def decompose_aligned(
    address: int, length: int, max_size: int
) -> List[Tuple[int, int]]:
    """Split a byte run into naturally aligned power-of-two pieces.

    Returns ``(address, size)`` pairs covering ``[address, address+length)``
    exactly, where every piece is a power of two no larger than ``max_size``
    and is aligned to its own size.  The decomposition is greedy: each step
    takes the largest legal piece at the current address, which matches how a
    system interface carves a partially filled write buffer entry into bus
    transactions.

    >>> decompose_aligned(0, 24, 64)
    [(0, 16), (16, 8)]
    >>> decompose_aligned(8, 24, 64)
    [(8, 8), (16, 16)]
    """
    _require_pow2(max_size)
    if length < 0:
        raise AlignmentError(f"negative length {length}")
    pieces: List[Tuple[int, int]] = []
    cursor = address
    remaining = length
    while remaining > 0:
        size = max_size
        while size > 1 and (not is_aligned(cursor, size) or size > remaining):
            size //= 2
        pieces.append((cursor, size))
        cursor += size
        remaining -= size
    return pieces


def _require_pow2(value: int) -> None:
    if not is_power_of_two(value):
        raise AlignmentError(f"{value} is not a positive power of two")
