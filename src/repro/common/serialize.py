"""Config serialization: SystemConfig <-> plain dictionaries.

Experiment manifests (and the CSVs in ``expected_results/``) are only
reproducible if the exact configuration travels with them;
:func:`config_to_dict` / :func:`config_from_dict` round-trip every knob
through JSON-compatible dictionaries, validating on the way back in.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from repro.common.config import (
    BusConfig,
    CacheConfig,
    CoreConfig,
    CSBConfig,
    MemoryConfig,
    MemoryHierarchyConfig,
    SamplingConfig,
    SystemConfig,
    UncachedBufferConfig,
)
from repro.common.errors import ConfigError
from repro.faults.config import FaultConfig

_SECTION_TYPES = {
    "core": CoreConfig,
    "memory": MemoryHierarchyConfig,
    "bus": BusConfig,
    "uncached": UncachedBufferConfig,
    "csb": CSBConfig,
    "faults": FaultConfig,
    "sampling": SamplingConfig,
    "mem": MemoryConfig,
}

#: Whole-system scalar knobs of :class:`SystemConfig` (everything that is
#: not a nested section).  Values pass through as-is; ``SystemConfig``'s
#: own validation rejects bad ones.
_SCALAR_FIELDS = (
    "num_cores",
    "arbitration",
    "quantum",
    "switch_penalty",
    "bus_read_latency",
    "trace",
)


def config_to_dict(config: SystemConfig) -> Dict[str, Any]:
    """Flatten a SystemConfig into nested plain dictionaries."""
    return dataclasses.asdict(config)


def config_from_dict(data: Dict[str, Any]) -> SystemConfig:
    """Rebuild a SystemConfig; unknown sections or fields are errors."""
    if not isinstance(data, dict):
        raise ConfigError("config document must be a mapping")
    unknown = set(data) - set(_SECTION_TYPES) - set(_SCALAR_FIELDS)
    if unknown:
        raise ConfigError(f"unknown config sections: {sorted(unknown)}")
    sections: Dict[str, Any] = {}
    for name, cls in _SECTION_TYPES.items():
        if name not in data:
            continue
        sections[name] = _build(cls, data[name], where=name)
    for name in _SCALAR_FIELDS:
        if name in data:
            sections[name] = data[name]
    return SystemConfig(**sections)


def _build(cls, values: Dict[str, Any], where: str):
    if not isinstance(values, dict):
        raise ConfigError(f"section {where!r} must be a mapping")
    field_types = {f.name: f.type for f in dataclasses.fields(cls)}
    unknown = set(values) - set(field_types)
    if unknown:
        raise ConfigError(f"section {where!r}: unknown fields {sorted(unknown)}")
    kwargs = {}
    for key, value in values.items():
        if key in ("l1", "l2") and isinstance(value, dict):
            value = _build(CacheConfig, value, where=f"{where}.{key}")
        kwargs[key] = value
    return cls(**kwargs)


def apply_overrides(
    config: SystemConfig, overrides: Dict[str, Any]
) -> SystemConfig:
    """Apply a (possibly nested, possibly partial) overrides mapping.

    ``overrides`` uses the same shape as :func:`config_to_dict`, but every
    section and field is optional: ``{"mem": {"enabled": True}}`` changes
    one knob and keeps everything else from ``config``.  Unknown sections
    or fields are errors, exactly as in :func:`config_from_dict`.
    """
    if not isinstance(overrides, dict):
        raise ConfigError("config overrides must be a mapping")
    merged = config_to_dict(config)
    unknown = set(overrides) - set(_SECTION_TYPES) - set(_SCALAR_FIELDS)
    if unknown:
        raise ConfigError(f"unknown config sections: {sorted(unknown)}")
    for name, value in overrides.items():
        if name in _SECTION_TYPES and isinstance(value, dict):
            section = dict(merged[name])
            for key, sub in value.items():
                if key in ("l1", "l2") and isinstance(sub, dict):
                    sub = {**section[key], **sub}
                section[key] = sub
            merged[name] = section
        else:
            merged[name] = value
    return config_from_dict(merged)


def parse_field_assignment(cls, item: str, where: str):
    """Parse one ``KEY=VALUE`` CLI token against a config dataclass.

    The shared helper behind ``--sample``, ``--mem``, and friends: ``KEY``
    must name a field of ``cls``; ``VALUE`` is coerced to that field's
    default-value type (bool accepts true/false/1/0/yes/no/on/off).
    Returns ``(field_name, coerced_value)``.
    """
    key, sep, raw = item.partition("=")
    if not sep or not key:
        raise ConfigError(f"{where} expects KEY=VALUE, got {item!r}")
    defaults = {f.name: f.default for f in dataclasses.fields(cls)}
    if key not in defaults:
        raise ConfigError(
            f"{where}: unknown field {key!r} (one of {sorted(defaults)})"
        )
    default = defaults[key]
    try:
        if isinstance(default, bool):
            lowered = raw.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                value: Any = True
            elif lowered in ("0", "false", "no", "off"):
                value = False
            else:
                raise ValueError(f"not a boolean: {raw!r}")
        elif isinstance(default, int):
            value = int(raw)
        elif isinstance(default, float):
            value = float(raw)
        else:
            value = raw
    except ValueError as exc:
        raise ConfigError(f"{where} {key}: {exc}") from exc
    return key, value


def parse_field_assignments(cls, items, where: str) -> Dict[str, Any]:
    """Fold many ``KEY=VALUE`` tokens into one field dict (later wins)."""
    fields: Dict[str, Any] = {}
    for item in items:
        key, value = parse_field_assignment(cls, item, where)
        fields[key] = value
    return fields


def config_to_json(config: SystemConfig, indent: int = 2) -> str:
    return json.dumps(config_to_dict(config), indent=indent, sort_keys=True)


def config_from_json(text: str) -> SystemConfig:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid config JSON: {exc}") from exc
    return config_from_dict(data)
