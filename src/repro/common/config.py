"""Configuration dataclasses for every simulated component.

All knobs the paper sweeps live here: bus kind/width/frequency ratio,
turnaround and minimum-delay flow control (§4.1), cache line size, uncached
buffer combining block size, and the processor's dispatch/retire widths and
functional-unit mix.  Each dataclass validates itself in ``__post_init__`` so a
bad sweep fails loudly at construction rather than producing quietly wrong
bandwidth numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.common.bitops import is_power_of_two
from repro.common.errors import ConfigError
from repro.faults.config import FaultConfig

#: Doubleword size in bytes — the unit the microbenchmarks store in.
DOUBLEWORD = 8


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (paper §4.1).

    The modeled core dispatches and retires up to four instructions per
    cycle, issues to two integer and two floating-point units, and handles
    memory operations in a separate queue.  Uncached operations issue
    non-speculatively at or after retirement.
    """

    dispatch_width: int = 4
    retire_width: int = 4
    int_units: int = 2
    fp_units: int = 2
    rob_entries: int = 64
    memq_entries: int = 16
    int_latency: int = 1
    fp_latency: int = 3
    branch_mispredict_penalty: int = 4
    perfect_branch_prediction: bool = True
    #: A successful store-conditional performs a bus transaction even on a
    #: cache hit ("in many implementations", paper §4.3.2 discussion).
    sc_bus_transaction: bool = True

    def __post_init__(self) -> None:
        _require(self.dispatch_width >= 1, "dispatch_width must be >= 1")
        _require(self.retire_width >= 1, "retire_width must be >= 1")
        _require(self.int_units >= 1, "need at least one integer unit")
        _require(self.fp_units >= 0, "fp_units must be >= 0")
        _require(self.rob_entries >= 4, "rob_entries must be >= 4")
        _require(self.memq_entries >= 1, "memq_entries must be >= 1")
        _require(self.int_latency >= 1, "int_latency must be >= 1")
        _require(self.fp_latency >= 1, "fp_latency must be >= 1")
        _require(
            self.branch_mispredict_penalty >= 0,
            "branch_mispredict_penalty must be >= 0",
        )


@dataclass(frozen=True)
class CacheConfig:
    """One cache level (set-associative, write-back, write-allocate, LRU)."""

    size_bytes: int
    line_size: int
    associativity: int
    hit_latency: int

    def __post_init__(self) -> None:
        _require(is_power_of_two(self.size_bytes), "cache size must be a power of two")
        _require(is_power_of_two(self.line_size), "line size must be a power of two")
        _require(self.associativity >= 1, "associativity must be >= 1")
        _require(self.hit_latency >= 1, "hit_latency must be >= 1")
        sets = self.size_bytes // (self.line_size * self.associativity)
        _require(sets >= 1, "cache has no sets; check size/line/assoc")
        _require(
            is_power_of_two(sets),
            "number of sets must be a power of two (size / line / assoc)",
        )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_size * self.associativity)


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """Two-level cache hierarchy over a fixed-latency main memory.

    ``miss_latency`` is the total CPU-cycle latency of an access that misses
    everywhere; the paper's Figure 5 experiment fixes it at 100 cycles.
    """

    line_size: int = 64
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=16 * 1024, line_size=64, associativity=2, hit_latency=1
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=256 * 1024, line_size=64, associativity=4, hit_latency=8
        )
    )
    miss_latency: int = 100
    #: When True, every main-memory miss also occupies the system bus with
    #: a line-sized refill transaction (see repro.memory.refill).
    refills_use_bus: bool = False

    def __post_init__(self) -> None:
        _require(self.l1.line_size == self.line_size, "L1 line size != hierarchy line")
        _require(self.l2.line_size == self.line_size, "L2 line size != hierarchy line")
        _require(self.miss_latency >= 1, "miss_latency must be >= 1")

    @staticmethod
    def with_line_size(
        line_size: int, miss_latency: int = 100, refills_use_bus: bool = False
    ) -> "MemoryHierarchyConfig":
        """Build a hierarchy with a given line size, keeping default shapes."""
        return MemoryHierarchyConfig(
            line_size=line_size,
            l1=CacheConfig(16 * 1024, line_size, 2, 1),
            l2=CacheConfig(256 * 1024, line_size, 4, 8),
            miss_latency=miss_latency,
            refills_use_bus=refills_use_bus,
        )


#: Legal bus kinds.  ``multiplexed`` shares one path for address and data
#: (the address transfer costs one extra cycle); ``split`` has separate
#: address and data paths.
BUS_KINDS: Tuple[str, ...] = ("multiplexed", "split")


@dataclass(frozen=True)
class BusConfig:
    """System bus timing model (paper §4.1).

    ``cpu_ratio`` is the processor-to-bus clock frequency ratio.
    ``turnaround`` is the number of idle cycles required between consecutive
    transactions even from the same master.  ``min_addr_delay`` models
    selective flow control: the address cycles of consecutive strongly-ordered
    transactions must be at least this many bus cycles apart because the next
    uncached store may not issue until the previous one has been positively
    acknowledged.
    """

    kind: str = "multiplexed"
    width_bytes: int = 8
    cpu_ratio: int = 6
    turnaround: int = 0
    min_addr_delay: int = 0
    max_burst_bytes: int = 64

    def __post_init__(self) -> None:
        _require(self.kind in BUS_KINDS, f"unknown bus kind {self.kind!r}")
        _require(is_power_of_two(self.width_bytes), "bus width must be a power of two")
        _require(self.cpu_ratio >= 1, "cpu_ratio must be >= 1")
        _require(self.turnaround >= 0, "turnaround must be >= 0")
        _require(self.min_addr_delay >= 0, "min_addr_delay must be >= 0")
        _require(
            is_power_of_two(self.max_burst_bytes),
            "max_burst_bytes must be a power of two",
        )
        _require(
            self.max_burst_bytes >= self.width_bytes,
            "max burst must be at least one bus beat",
        )

    def data_beats(self, size: int) -> int:
        """Number of data cycles a ``size``-byte transaction occupies."""
        _require(size >= 1, "transaction size must be >= 1")
        return max(1, (size + self.width_bytes - 1) // self.width_bytes)


#: Legal bus arbitration policies.  ``round_robin`` rotates the grant among
#: same-priority initiators; ``priority`` always grants the lowest-numbered
#: initiator first (refill traffic outranks both).
ARBITRATION_POLICIES: Tuple[str, ...] = ("round_robin", "priority")


#: Combining block size that means "no combining": each store is its own entry.
NO_COMBINING = DOUBLEWORD


#: Legal combining policies: the paper's generic block model, the MIPS
#: R10000 uncached-accelerated pattern buffer, and PowerPC 620 pairing.
COMBINING_POLICIES: Tuple[str, ...] = ("block", "r10000", "ppc620")


@dataclass(frozen=True)
class UncachedBufferConfig:
    """The conventional uncached buffer with optional hardware combining.

    ``combine_block`` is the size of one buffer entry and therefore the
    maximum number of bytes a single bus transaction can carry; 8 bytes (one
    doubleword) disables combining entirely.  Entries drain in FIFO order and
    a store may only coalesce into an existing entry if it falls in the same
    block and does not bypass an earlier load or barrier (paper §4.1).

    ``policy`` selects how stores combine within an entry: ``block`` is the
    paper's generic model; ``r10000`` and ``ppc620`` are the faithful models
    of the processors the paper cites (see :mod:`repro.uncached.policies`).
    """

    combine_block: int = NO_COMBINING
    depth: int = 8
    policy: str = "block"

    def __post_init__(self) -> None:
        _require(
            is_power_of_two(self.combine_block), "combine_block must be a power of two"
        )
        _require(
            self.combine_block >= DOUBLEWORD,
            "combine_block must hold at least a doubleword",
        )
        _require(self.depth >= 1, "uncached buffer depth must be >= 1")
        _require(
            self.policy in COMBINING_POLICIES,
            f"policy must be one of {COMBINING_POLICIES}",
        )
        if self.policy == "ppc620":
            _require(
                self.combine_block == 2 * DOUBLEWORD,
                "ppc620 pairs doublewords: combine_block must be 16",
            )

    @property
    def combining(self) -> bool:
        return self.combine_block > NO_COMBINING


@dataclass(frozen=True)
class CSBConfig:
    """The conditional store buffer (paper §3.2).

    ``line_size`` is the data-register size (one cache line).  The base
    design always issues a full-line burst regardless of how many stores were
    combined; ``pad_to_full_line=False`` models the relaxed variant the paper
    mentions for buses that allow multiple burst sizes.  ``num_line_buffers``
    models the optional second line buffer used to overlap a flush with the
    next store sequence.  ``check_address`` disables the address comparison in
    the conflict check (the paper notes it is not strictly necessary but
    catches conflicts between threads sharing a process ID).
    """

    line_size: int = 64
    pad_to_full_line: bool = True
    num_line_buffers: int = 1
    check_address: bool = True
    flush_latency: int = 3

    def __post_init__(self) -> None:
        _require(is_power_of_two(self.line_size), "CSB line size must be a power of two")
        _require(self.line_size >= DOUBLEWORD, "CSB line must hold a doubleword")
        _require(self.num_line_buffers in (1, 2), "1 or 2 line buffers supported")
        _require(self.flush_latency >= 1, "flush_latency must be >= 1")


#: Legal write policies for the non-blocking data cache.
WRITE_POLICIES: Tuple[str, ...] = ("writeback", "writethrough")


@dataclass(frozen=True)
class MemoryConfig:
    """The non-blocking, write-allocate data cache in front of the hierarchy.

    When ``enabled``, each core gets its own set-associative D-cache with an
    MSHR file: a primary miss allocates an MSHR and the core's memory
    operation stalls until the refill lands; secondary misses to the same
    line merge into the existing MSHR; once all ``mshrs`` entries are busy,
    further misses stall at issue (capacity stall).  ``write_policy``
    selects write-back (dirty victims generate line write-back traffic on
    eviction) or write-through (every store hit also pays the memory
    latency, no dirty victims).  With ``bus_traffic`` the refill and
    write-back line transfers occupy the shared system bus through the
    arbiter — refills at priority class 0, write-backs at class 2 — instead
    of completing silently at fixed latency.

    The section is part of :class:`SystemConfig`, exactly like
    :class:`SamplingConfig`, so result-cache keys change automatically
    whenever any cache knob changes.  The default is ``enabled=False``, and
    a disabled cache leaves every simulated cycle byte-identical to the
    historical uncached-path machine.
    """

    enabled: bool = False
    size_bytes: int = 16 * 1024
    line_size: int = 64
    associativity: int = 2
    hit_latency: int = 1
    miss_latency: int = 100
    mshrs: int = 4
    write_policy: str = "writeback"
    bus_traffic: bool = True

    def __post_init__(self) -> None:
        _require(is_power_of_two(self.size_bytes), "cache size must be a power of two")
        _require(is_power_of_two(self.line_size), "line size must be a power of two")
        _require(self.associativity >= 1, "associativity must be >= 1")
        _require(self.hit_latency >= 1, "hit_latency must be >= 1")
        _require(self.miss_latency >= 1, "miss_latency must be >= 1")
        _require(self.mshrs >= 1, "need at least one MSHR")
        _require(
            self.write_policy in WRITE_POLICIES,
            f"write_policy must be one of {WRITE_POLICIES}",
        )
        sets = self.size_bytes // (self.line_size * self.associativity)
        _require(sets >= 1, "cache has no sets; check size/line/assoc")
        _require(
            is_power_of_two(sets),
            "number of sets must be a power of two (size / line / assoc)",
        )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_size * self.associativity)


#: Confidence levels the sampling report knows z-scores for (no scipy in
#: the toolchain, so the table is explicit).
CONFIDENCE_LEVELS: Tuple[float, ...] = (0.90, 0.95, 0.99)


@dataclass(frozen=True)
class SamplingConfig:
    """SMARTS-style tiered execution (fast-forward + sampled windows).

    When ``enabled``, the system alternates three phases instead of
    running every cycle through the detailed out-of-order model:

    * **fast-forward** — ``ff_instructions`` retired through the
      functional interpreter (:mod:`repro.sim.fastforward`), which
      advances architectural state only (no cycles, no stats);
    * **detailed warm-up** — ``warmup_cycles`` of full-detail simulation
      to re-warm timing state (caches, buffers, bus) before measuring;
    * **detailed measurement** — ``window_cycles`` of full-detail
      simulation whose per-window metric deltas become one sample.

    Window samples aggregate into estimates with a ``confidence``-level
    interval (see :mod:`repro.sim.sampling`).  The section is part of
    :class:`SystemConfig`, so result-cache keys change automatically
    whenever any sampling knob changes.
    """

    enabled: bool = False
    ff_instructions: int = 2000
    warmup_cycles: int = 2000
    window_cycles: int = 4000
    confidence: float = 0.95

    def __post_init__(self) -> None:
        _require(self.ff_instructions >= 1, "ff_instructions must be >= 1")
        _require(self.warmup_cycles >= 0, "warmup_cycles must be >= 0")
        _require(self.window_cycles >= 1, "window_cycles must be >= 1")
        _require(
            self.confidence in CONFIDENCE_LEVELS,
            f"confidence must be one of {CONFIDENCE_LEVELS}",
        )


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build one simulated system.

    Beyond the per-component sections, the whole-system knobs live here
    too: ``num_cores`` (identical cores sharing one bus, CSB, and memory
    hierarchy), ``arbitration`` (bus grant policy among same-priority
    initiators), ``quantum`` (scheduler timeslice in CPU cycles; None
    disables preemption), ``switch_penalty`` (context-switch cost in CPU
    cycles), ``bus_read_latency`` (target access time of a bus read, in
    bus cycles), and ``trace`` (record a per-instruction pipeline trace).

    ``faults`` configures deterministic fault injection (see
    :mod:`repro.faults`); the default has every rate at zero, and the
    system then builds no fault plan at all.
    """

    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)
    bus: BusConfig = field(default_factory=BusConfig)
    uncached: UncachedBufferConfig = field(default_factory=UncachedBufferConfig)
    csb: CSBConfig = field(default_factory=CSBConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    sampling: SamplingConfig = field(default_factory=SamplingConfig)
    mem: MemoryConfig = field(default_factory=MemoryConfig)
    num_cores: int = 1
    arbitration: str = "round_robin"
    quantum: Optional[int] = None
    switch_penalty: int = 100
    bus_read_latency: int = 3
    trace: bool = False

    def __post_init__(self) -> None:
        _require(self.num_cores >= 1, "num_cores must be >= 1")
        _require(
            self.arbitration in ARBITRATION_POLICIES,
            f"arbitration must be one of {ARBITRATION_POLICIES}",
        )
        _require(
            self.quantum is None or self.quantum >= 1,
            "scheduler quantum must be >= 1 CPU cycle (or None)",
        )
        _require(self.switch_penalty >= 0, "switch_penalty must be >= 0")
        _require(self.bus_read_latency >= 0, "bus_read_latency must be >= 0")
        _require(
            self.csb.line_size == self.memory.line_size,
            "CSB line size must match the cache line size",
        )
        _require(
            self.bus.max_burst_bytes >= self.memory.line_size,
            "bus must support cache-line bursts",
        )
        _require(
            self.uncached.combine_block <= self.memory.line_size,
            "uncached combining block cannot exceed the cache line",
        )
        if self.mem.enabled:
            _require(
                self.mem.line_size == self.memory.line_size,
                "data cache line size must match the hierarchy line size",
            )
        if self.sampling.enabled:
            _require(
                not self.mem.enabled,
                "sampled execution does not model the data cache yet",
            )
            _require(
                self.num_cores == 1,
                "sampled execution supports single-core systems only",
            )
            _require(
                self.quantum is None,
                "sampled execution is incompatible with preemptive quanta",
            )
            _require(
                not self.faults.enabled,
                "sampled execution is incompatible with fault injection",
            )

    def with_line_size(self, line_size: int) -> "SystemConfig":
        """Derive a config with a different cache-line size everywhere."""
        return replace(
            self,
            memory=MemoryHierarchyConfig.with_line_size(
                line_size, self.memory.miss_latency
            ),
            csb=replace(self.csb, line_size=line_size),
            mem=replace(self.mem, line_size=line_size),
            bus=replace(self.bus, max_burst_bytes=max(self.bus.max_burst_bytes, line_size)),
            uncached=replace(
                self.uncached,
                combine_block=min(self.uncached.combine_block, line_size),
            ),
        )
