"""Plain-text table rendering for figure/benchmark output.

The paper's evaluation is presented as bar charts; the harness reproduces each
panel as a table of the same series (one row per combining scheme, one column
per transfer size).  :class:`Table` renders those aligned for terminal output
and can also emit CSV so results are easy to diff across runs.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence, Union

Cell = Union[int, float, str, None]


class Table:
    """A small column-ordered table with aligned text rendering."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns: List[str] = list(columns)
        self.rows: List[List[Cell]] = []

    def add_row(self, *values: Cell) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_mapping(self, mapping: Dict[str, Cell]) -> None:
        """Add a row from a column-name -> value mapping (missing keys blank)."""
        self.rows.append([mapping.get(col) for col in self.columns])

    def column(self, name: str) -> List[Cell]:
        """Return all values in the named column, in row order."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    @staticmethod
    def _format(value: Cell, precision: int) -> str:
        if value is None:
            return ""
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    def render(self, precision: int = 2) -> str:
        """Render an aligned plain-text table."""
        cells = [self.columns] + [
            [self._format(v, precision) for v in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.columns))
        ]
        out = io.StringIO()
        if self.title:
            out.write(self.title + "\n")
        header = "  ".join(name.rjust(w) for name, w in zip(cells[0], widths))
        out.write(header + "\n")
        out.write("  ".join("-" * w for w in widths) + "\n")
        for row in cells[1:]:
            out.write("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
            out.write("\n")
        return out.getvalue()

    def to_csv(self, precision: int = 4) -> str:
        """Render the table as CSV (no quoting; cells never contain commas)."""
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(self._format(v, precision) for v in row))
        return "\n".join(lines) + "\n"

    def to_markdown(self, precision: int = 2) -> str:
        """Render as a GitHub-flavoured markdown table (title as a bold
        caption line when present)."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            cells = [self._format(v, precision) for v in row]
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe document that :meth:`from_dict` restores exactly.

        Cell types survive the round trip (JSON keeps int/float/str/None
        distinct), so a restored table renders byte-identically.
        """
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "Table":
        """Rebuild a table from :meth:`to_dict` output, validating shape."""
        title = document["title"]
        columns = document["columns"]
        rows = document["rows"]
        if not isinstance(title, str):
            raise ValueError(f"table title must be a string, got {title!r}")
        if not isinstance(columns, list) or not all(
            isinstance(c, str) for c in columns
        ):
            raise ValueError(f"bad table columns {columns!r}")
        table = cls(columns, title=title)
        if not isinstance(rows, list):
            raise ValueError(f"bad table rows {rows!r}")
        for row in rows:
            if not isinstance(row, list) or not all(
                type(cell) in (int, float, str, type(None)) for cell in row
            ):
                raise ValueError(f"bad table row {row!r}")
            table.add_row(*row)
        return table

    def lookup(self, key_column: str, key: Cell, value_column: str) -> Optional[Cell]:
        """Return the ``value_column`` cell of the first row whose
        ``key_column`` equals ``key`` (None if absent)."""
        key_index = self.columns.index(key_column)
        value_index = self.columns.index(value_column)
        for row in self.rows:
            if row[key_index] == key:
                return row[value_index]
        return None

    def __str__(self) -> str:
        return self.render()
