"""Run statistics: named counters, per-event records, and the bandwidth
window used to report "bytes per bus cycle" the way the paper does.

The paper's bandwidth metric (§4.3.1) counts bytes transferred divided by bus
cycles from the start of the first transaction to the *end of the last
transaction*; a turnaround cycle following the final transaction is explicitly
excluded ("the transfer is considered complete at the end of the last
transaction").  :class:`BandwidthWindow` implements exactly that accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: Every counter the simulator itself bumps, by component prefix.  Reads
#: of a name outside this namespace (and never bumped) raise ``KeyError``
#: — a typo'd lookup like ``stats.get("csb.flushs")`` must fail loudly,
#: not quietly return 0.  The namespace is documented in
#: docs/modeling.md ("The counter namespace").
COUNTER_NAMESPACE = frozenset(
    {
        # bus.*: system-bus activity
        "bus.transactions",
        "bus.bytes_wire",
        "bus.bursts",
        # core.*: pipeline activity
        "core.dispatched",
        "core.issued",
        "core.retired",
        "core.branches",
        "core.cached_loads",
        "core.cached_stores",
        "core.cached_swaps",
        "core.sc_failures",
        "core.squashed",
        "core.uncached_stores",
        "core.uncached_store_stalls",
        "core.frontend_value_stalls",
        "core.memq_full_stalls",
        "core.rob_full_stalls",
        # csb.*: conditional store buffer
        "csb.stores",
        "csb.sequences_started",
        "csb.flushes",
        "csb.flush_conflicts",
        "csb.flush_stalls",
        "csb.store_stalls",
        # uncached.*: conventional uncached buffer
        "uncached.entries_allocated",
        "uncached.stores_combined",
        "uncached.block_stores",
        "uncached.full_stalls",
        # refill.*: cache refills on the bus (refills_use_bus=True, or
        # the D-cache with mem.bus_traffic)
        "refill.requests",
        "refill.issued",
        # writeback.*: dirty-victim write-backs from the D-cache
        "writeback.requests",
        "writeback.issued",
        # faults.*: injected faults (repro.faults; zero when disabled)
        "faults.bus_nack",
        "faults.bus_stall",
        "faults.device_timeout",
        "faults.csb_spurious_abort",
        "faults.refill_stall",
    }
)


def known_counters() -> List[str]:
    """Every counter name the simulator can bump, sorted."""
    return sorted(COUNTER_NAMESPACE)


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


@dataclass
class BandwidthWindow:
    """Tracks the bus-cycle window covering a stream of transactions.

    ``open(cycle)`` is called at a transaction's first address cycle and
    ``close(cycle)`` at its last data cycle.  ``bytes_per_cycle`` divides the
    bytes recorded by the inclusive cycle span first-open .. last-close.
    """

    first_cycle: Optional[int] = None
    last_cycle: Optional[int] = None
    total_bytes: int = 0
    transactions: int = 0

    def open(self, cycle: int) -> None:
        if self.first_cycle is None:
            self.first_cycle = cycle

    def close(self, cycle: int, nbytes: int) -> None:
        if self.first_cycle is None:
            raise ValueError("close() before any open()")
        self.last_cycle = cycle
        self.total_bytes += nbytes
        self.transactions += 1

    @property
    def cycles(self) -> int:
        """Inclusive bus-cycle span of the window (0 if nothing happened)."""
        if self.first_cycle is None or self.last_cycle is None:
            return 0
        return self.last_cycle - self.first_cycle + 1

    @property
    def bytes_per_cycle(self) -> float:
        cycles = self.cycles
        if cycles == 0:
            return 0.0
        return self.total_bytes / cycles


@dataclass
class TransactionRecord:
    """One bus transaction as observed by the stats collector.

    ``size`` is the wire size (bytes moved across the bus, including any
    zero padding of a CSB burst); ``useful_bytes`` is the payload the
    program actually stored.  The paper's bandwidth metric counts useful
    bytes — that is what penalizes the CSB's always-full-line bursts on
    small transfers.
    """

    start_cycle: int
    end_cycle: int
    address: int
    size: int
    useful_bytes: int
    kind: str
    burst: bool
    #: Initiating core (-1 for non-core initiators such as refill or DMA).
    core_id: int = -1


class StatsCollector:
    """Aggregates counters, retire-cycle marks, and bus activity for a run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self.marks: Dict[str, int] = {}
        self.transactions: List[TransactionRecord] = []
        self.uncached_store_window = BandwidthWindow()

    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter called ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def bump(self, name: str, amount: int = 1) -> None:
        self.counter(name).add(amount)

    def get(self, name: str) -> int:
        """The value of counter ``name`` (0 if it was never bumped).

        Writes (:meth:`bump`, :meth:`counter`) may mint any name — ad-hoc
        counters are a feature — but a *read* of a name that was neither
        bumped nor belongs to :data:`COUNTER_NAMESPACE` can only be a
        typo, and raises ``KeyError`` listing the known names.
        """
        counter = self._counters.get(name)
        if counter is not None:
            return counter.value
        if name in COUNTER_NAMESPACE:
            return 0
        raise KeyError(
            f"unknown counter {name!r}; known counters: "
            f"{known_counters()}; counters bumped this run: "
            f"{sorted(self._counters)}"
        )

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def mark(self, label: str, cycle: int) -> None:
        """Record the retire cycle of a ``mark`` pseudo-instruction.

        Repeated marks with the same label keep the latest cycle; benchmark
        kernels use distinct labels when they need several measurement points.
        """
        self.marks[label] = cycle

    def record_transaction(self, record: TransactionRecord) -> None:
        self.transactions.append(record)
        if record.kind in ("uncached_store", "csb_flush"):
            self.uncached_store_window.open(record.start_cycle)
            self.uncached_store_window.close(record.end_cycle, record.useful_bytes)

    def span(self, start_label: str, end_label: str) -> int:
        """CPU cycles between two marks (end - start)."""
        try:
            return self.marks[end_label] - self.marks[start_label]
        except KeyError as exc:
            raise KeyError(
                f"mark {exc.args[0]!r} was never recorded; "
                f"have {sorted(self.marks)}"
            ) from None

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters, for reporting and assertions."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    # -- bus activity analysis -------------------------------------------------

    def size_histogram(self, kind: Optional[str] = None) -> Dict[int, int]:
        """Wire-size -> count over recorded transactions (optionally one
        kind).  The shape of this histogram is the whole story of a
        combining policy: all-8s means no combining, a spike at the line
        size means full bursts."""
        histogram: Dict[int, int] = {}
        for record in self.transactions:
            if kind is not None and record.kind != kind:
                continue
            histogram[record.size] = histogram.get(record.size, 0) + 1
        return dict(sorted(histogram.items()))

    def bytes_by_kind(self) -> Dict[str, int]:
        """Total wire bytes per transaction kind."""
        totals: Dict[str, int] = {}
        for record in self.transactions:
            totals[record.kind] = totals.get(record.kind, 0) + record.size
        return dict(sorted(totals.items()))

    def transactions_by_core(self) -> Dict[int, Dict[str, int]]:
        """Per initiating core: transaction count, wire and useful bytes.

        Key ``-1`` collects non-core initiators (refill engine, DMA), so
        the values always sum to the whole-run totals.
        """
        breakdown: Dict[int, Dict[str, int]] = {}
        for record in self.transactions:
            entry = breakdown.setdefault(
                record.core_id,
                {"transactions": 0, "wire_bytes": 0, "useful_bytes": 0},
            )
            entry["transactions"] += 1
            entry["wire_bytes"] += record.size
            entry["useful_bytes"] += record.useful_bytes
        return dict(sorted(breakdown.items()))

    def bus_busy_cycles(self) -> int:
        """Bus cycles occupied by any transaction (transactions never
        overlap on a single bus, so the per-record spans simply add)."""
        return sum(r.end_cycle - r.start_cycle + 1 for r in self.transactions)

    def bus_utilization(self) -> float:
        """Busy fraction of the bus over the observed activity span."""
        if not self.transactions:
            return 0.0
        first = min(r.start_cycle for r in self.transactions)
        last = max(r.end_cycle for r in self.transactions)
        span = last - first + 1
        return self.bus_busy_cycles() / span

    def efficiency(self) -> float:
        """Useful payload bytes over wire bytes (padding overhead)."""
        wire = sum(r.size for r in self.transactions)
        if wire == 0:
            return 0.0
        useful = sum(r.useful_bytes for r in self.transactions)
        return useful / wire

    def __repr__(self) -> str:
        return f"StatsCollector({self.as_dict()!r})"
