"""Run statistics: named counters, per-event records, and the bandwidth
window used to report "bytes per bus cycle" the way the paper does.

The paper's bandwidth metric (§4.3.1) counts bytes transferred divided by bus
cycles from the start of the first transaction to the *end of the last
transaction*; a turnaround cycle following the final transaction is explicitly
excluded ("the transfer is considered complete at the end of the last
transaction").  :class:`BandwidthWindow` implements exactly that accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: Every counter the simulator itself bumps, by component prefix.  Reads
#: of a name outside this namespace (and never bumped) raise ``KeyError``
#: — a typo'd lookup like ``stats.get("csb.flushs")`` must fail loudly,
#: not quietly return 0.  The namespace is documented in
#: docs/modeling.md ("The counter namespace").
COUNTER_NAMESPACE = frozenset(
    {
        # bus.*: system-bus activity
        "bus.transactions",
        "bus.bytes_wire",
        "bus.bursts",
        # core.*: pipeline activity
        "core.dispatched",
        "core.issued",
        "core.retired",
        "core.branches",
        "core.cached_loads",
        "core.cached_stores",
        "core.cached_swaps",
        "core.sc_failures",
        "core.squashed",
        "core.uncached_stores",
        "core.uncached_store_stalls",
        "core.frontend_value_stalls",
        "core.memq_full_stalls",
        "core.rob_full_stalls",
        # csb.*: conditional store buffer
        "csb.stores",
        "csb.sequences_started",
        "csb.flushes",
        "csb.flush_conflicts",
        "csb.flush_stalls",
        "csb.store_stalls",
        # uncached.*: conventional uncached buffer
        "uncached.entries_allocated",
        "uncached.stores_combined",
        "uncached.block_stores",
        "uncached.full_stalls",
        # refill.*: cache refills on the bus (refills_use_bus=True, or
        # the D-cache with mem.bus_traffic)
        "refill.requests",
        "refill.issued",
        # writeback.*: dirty-victim write-backs from the D-cache
        "writeback.requests",
        "writeback.issued",
        # faults.*: injected faults (repro.faults; zero when disabled)
        "faults.bus_nack",
        "faults.bus_stall",
        "faults.device_timeout",
        "faults.csb_spurious_abort",
        "faults.refill_stall",
    }
)


def known_counters() -> List[str]:
    """Every counter name the simulator can bump, sorted."""
    return sorted(COUNTER_NAMESPACE)


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


@dataclass
class BandwidthWindow:
    """Tracks the bus-cycle window covering a stream of transactions.

    ``open(cycle)`` is called at a transaction's first address cycle and
    ``close(cycle)`` at its last data cycle.  ``bytes_per_cycle`` divides the
    bytes recorded by the inclusive cycle span first-open .. last-close.
    """

    first_cycle: Optional[int] = None
    last_cycle: Optional[int] = None
    total_bytes: int = 0
    transactions: int = 0

    def open(self, cycle: int) -> None:
        if self.first_cycle is None:
            self.first_cycle = cycle

    def close(self, cycle: int, nbytes: int) -> None:
        if self.first_cycle is None:
            raise ValueError("close() before any open()")
        self.last_cycle = cycle
        self.total_bytes += nbytes
        self.transactions += 1

    @property
    def cycles(self) -> int:
        """Inclusive bus-cycle span of the window (0 if nothing happened)."""
        if self.first_cycle is None or self.last_cycle is None:
            return 0
        return self.last_cycle - self.first_cycle + 1

    @property
    def bytes_per_cycle(self) -> float:
        cycles = self.cycles
        if cycles == 0:
            return 0.0
        return self.total_bytes / cycles


#: Tail percentiles MetricsSnapshot exports for trace replay.
TAIL_PERCENTILES = (50.0, 90.0, 95.0, 99.0, 99.9)


def percentile_label(p: float) -> str:
    """``50.0`` -> ``"p50"``, ``99.9`` -> ``"p99.9"`` (stable JSON keys)."""
    text = f"{p:g}"
    return f"p{text}"


def _nearest_rank(p: float, count: int) -> int:
    """``ceil(p/100 * count)`` in exact integer arithmetic (percentiles
    are specified to at most one decimal place, so tenths are exact)."""
    tenths = round(p * 10)
    return max(1, -(-tenths * count // 1000))


class LatencyHistogram:
    """Bounded-memory histogram of non-negative integer samples.

    Values below ``2**precision_bits`` are counted exactly; larger values
    keep their top ``precision_bits`` significant bits (relative
    quantization error below ``2**-precision_bits``), so the key set — and
    therefore memory — stays bounded no matter how many samples stream
    through.  Small runs are exact: with the default 10 bits, every
    latency under 1024 cycles lands in its own bucket.

    Percentiles use the nearest-rank definition (the smallest recorded
    value with at least ``ceil(p/100 * count)`` samples at or below it),
    which is deterministic and exact on small N.
    """

    __slots__ = ("precision_bits", "count", "total", "_counts", "_max")

    def __init__(self, precision_bits: int = 10) -> None:
        if precision_bits < 1:
            raise ValueError("precision_bits must be >= 1")
        self.precision_bits = precision_bits
        self.count = 0
        self.total = 0
        self._counts: Dict[int, int] = {}
        self._max = 0

    def _quantize(self, value: int) -> int:
        if value < (1 << self.precision_bits):
            return value
        shift = value.bit_length() - self.precision_bits
        return (value >> shift) << shift

    def add(self, value: int) -> None:
        value = int(value)
        if value < 0:
            raise ValueError(f"latency sample must be >= 0, got {value}")
        self.count += 1
        self.total += value
        if value > self._max:
            self._max = value
        bucket = self._quantize(value)
        self._counts[bucket] = self._counts.get(bucket, 0) + 1

    def extend(self, values: Iterable[int]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def max(self) -> int:
        return self._max

    @property
    def buckets(self) -> Dict[int, int]:
        """Bucket floor -> sample count, sorted (bounded size)."""
        return dict(sorted(self._counts.items()))

    def percentile(self, p: float) -> int:
        """Nearest-rank percentile (0 < p <= 100) of the recorded samples."""
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if not self.count:
            raise ValueError("percentile of an empty histogram")
        rank = _nearest_rank(p, self.count)
        seen = 0
        for bucket in sorted(self._counts):
            seen += self._counts[bucket]
            if seen >= rank:
                return bucket
        return self._max  # pragma: no cover - rank <= count always returns

    def percentiles(
        self, ps: Tuple[float, ...] = TAIL_PERCENTILES
    ) -> Dict[str, int]:
        """``{"p50": ..., "p99.9": ...}`` — empty dict when no samples."""
        if not self.count:
            return {}
        return {percentile_label(p): self.percentile(p) for p in ps}


class ReservoirSample:
    """Seeded fixed-size uniform sample of a value stream (Algorithm R).

    Below ``capacity`` samples the reservoir holds every value, so
    percentiles are exact; past it each new value replaces a uniformly
    chosen slot.  The random stream is owned by this instance and seeded
    at construction, so identical input yields an identical reservoir.
    """

    __slots__ = ("capacity", "count", "_values", "_rng")

    def __init__(self, capacity: int = 1024, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = capacity
        self.count = 0
        self._values: List[int] = []
        self._rng = random.Random(seed)

    def add(self, value: int) -> None:
        self.count += 1
        if len(self._values) < self.capacity:
            self._values.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self._values[slot] = value

    @property
    def values(self) -> List[int]:
        return list(self._values)

    def percentile(self, p: float) -> int:
        """Nearest-rank percentile of the sampled values (exact while the
        stream fits the reservoir)."""
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if not self._values:
            raise ValueError("percentile of an empty reservoir")
        ordered = sorted(self._values)
        return ordered[_nearest_rank(p, len(ordered)) - 1]


@dataclass
class TransactionRecord:
    """One bus transaction as observed by the stats collector.

    ``size`` is the wire size (bytes moved across the bus, including any
    zero padding of a CSB burst); ``useful_bytes`` is the payload the
    program actually stored.  The paper's bandwidth metric counts useful
    bytes — that is what penalizes the CSB's always-full-line bursts on
    small transfers.
    """

    start_cycle: int
    end_cycle: int
    address: int
    size: int
    useful_bytes: int
    kind: str
    burst: bool
    #: Initiating core (-1 for non-core initiators such as refill or DMA).
    core_id: int = -1


class _CondensedTransactions:
    """Aggregates of transaction records folded away by
    :meth:`StatsCollector.condense_transactions` — everything the
    collector's analysis methods need, with the per-record list gone."""

    __slots__ = (
        "count",
        "busy_cycles",
        "first_cycle",
        "last_cycle",
        "wire_bytes",
        "useful_bytes",
        "size_histograms",
        "bytes_by_kind",
        "per_core",
    )

    def __init__(self) -> None:
        self.count = 0
        self.busy_cycles = 0
        self.first_cycle: Optional[int] = None
        self.last_cycle: Optional[int] = None
        self.wire_bytes = 0
        self.useful_bytes = 0
        #: kind -> {wire size -> count}
        self.size_histograms: Dict[str, Dict[int, int]] = {}
        self.bytes_by_kind: Dict[str, int] = {}
        self.per_core: Dict[int, Dict[str, int]] = {}

    def fold(self, record: TransactionRecord) -> None:
        self.count += 1
        self.busy_cycles += record.end_cycle - record.start_cycle + 1
        if self.first_cycle is None or record.start_cycle < self.first_cycle:
            self.first_cycle = record.start_cycle
        if self.last_cycle is None or record.end_cycle > self.last_cycle:
            self.last_cycle = record.end_cycle
        self.wire_bytes += record.size
        self.useful_bytes += record.useful_bytes
        histogram = self.size_histograms.setdefault(record.kind, {})
        histogram[record.size] = histogram.get(record.size, 0) + 1
        self.bytes_by_kind[record.kind] = (
            self.bytes_by_kind.get(record.kind, 0) + record.size
        )
        entry = self.per_core.setdefault(
            record.core_id,
            {"transactions": 0, "wire_bytes": 0, "useful_bytes": 0},
        )
        entry["transactions"] += 1
        entry["wire_bytes"] += record.size
        entry["useful_bytes"] += record.useful_bytes


class StatsCollector:
    """Aggregates counters, retire-cycle marks, and bus activity for a run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self.marks: Dict[str, int] = {}
        self.transactions: List[TransactionRecord] = []
        self.uncached_store_window = BandwidthWindow()
        # Set only by condense_transactions(); ordinary runs keep the full
        # per-record list and this stays None.
        self._condensed: Optional[_CondensedTransactions] = None

    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter called ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def bump(self, name: str, amount: int = 1) -> None:
        self.counter(name).add(amount)

    def get(self, name: str) -> int:
        """The value of counter ``name`` (0 if it was never bumped).

        Writes (:meth:`bump`, :meth:`counter`) may mint any name — ad-hoc
        counters are a feature — but a *read* of a name that was neither
        bumped nor belongs to :data:`COUNTER_NAMESPACE` can only be a
        typo, and raises ``KeyError`` listing the known names.
        """
        counter = self._counters.get(name)
        if counter is not None:
            return counter.value
        if name in COUNTER_NAMESPACE:
            return 0
        raise KeyError(
            f"unknown counter {name!r}; known counters: "
            f"{known_counters()}; counters bumped this run: "
            f"{sorted(self._counters)}"
        )

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def mark(self, label: str, cycle: int) -> None:
        """Record the retire cycle of a ``mark`` pseudo-instruction.

        Repeated marks with the same label keep the latest cycle; benchmark
        kernels use distinct labels when they need several measurement points.
        """
        self.marks[label] = cycle

    def record_transaction(self, record: TransactionRecord) -> None:
        self.transactions.append(record)
        if record.kind in ("uncached_store", "csb_flush"):
            self.uncached_store_window.open(record.start_cycle)
            self.uncached_store_window.close(record.end_cycle, record.useful_bytes)

    def condense_transactions(self) -> int:
        """Fold the per-record transaction list into bounded aggregates.

        Streaming replay calls this between trace windows so a
        million-transaction run never materializes a million
        :class:`TransactionRecord` objects.  Every analysis method merges
        the condensed aggregates with whatever live records arrived since,
        so results are identical to keeping the full list; only the
        per-record detail (exact cycles of each transaction) is gone.
        Returns the number of records folded away.
        """
        if not self.transactions:
            return 0
        condensed = self._condensed
        if condensed is None:
            condensed = self._condensed = _CondensedTransactions()
        for record in self.transactions:
            condensed.fold(record)
        folded = len(self.transactions)
        self.transactions.clear()
        return folded

    @property
    def transaction_count(self) -> int:
        """All recorded transactions, condensed and live."""
        count = len(self.transactions)
        if self._condensed is not None:
            count += self._condensed.count
        return count

    def span(self, start_label: str, end_label: str) -> int:
        """CPU cycles between two marks (end - start)."""
        try:
            return self.marks[end_label] - self.marks[start_label]
        except KeyError as exc:
            raise KeyError(
                f"mark {exc.args[0]!r} was never recorded; "
                f"have {sorted(self.marks)}"
            ) from None

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters, for reporting and assertions."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    # -- bus activity analysis -------------------------------------------------

    def size_histogram(self, kind: Optional[str] = None) -> Dict[int, int]:
        """Wire-size -> count over recorded transactions (optionally one
        kind).  The shape of this histogram is the whole story of a
        combining policy: all-8s means no combining, a spike at the line
        size means full bursts."""
        histogram: Dict[int, int] = {}
        if self._condensed is not None:
            for record_kind, sizes in self._condensed.size_histograms.items():
                if kind is not None and record_kind != kind:
                    continue
                for size, count in sizes.items():
                    histogram[size] = histogram.get(size, 0) + count
        for record in self.transactions:
            if kind is not None and record.kind != kind:
                continue
            histogram[record.size] = histogram.get(record.size, 0) + 1
        return dict(sorted(histogram.items()))

    def bytes_by_kind(self) -> Dict[str, int]:
        """Total wire bytes per transaction kind."""
        totals: Dict[str, int] = {}
        if self._condensed is not None:
            totals.update(self._condensed.bytes_by_kind)
        for record in self.transactions:
            totals[record.kind] = totals.get(record.kind, 0) + record.size
        return dict(sorted(totals.items()))

    def transactions_by_core(self) -> Dict[int, Dict[str, int]]:
        """Per initiating core: transaction count, wire and useful bytes.

        Key ``-1`` collects non-core initiators (refill engine, DMA), so
        the values always sum to the whole-run totals.
        """
        breakdown: Dict[int, Dict[str, int]] = {}
        if self._condensed is not None:
            for core_id, entry in self._condensed.per_core.items():
                breakdown[core_id] = dict(entry)
        for record in self.transactions:
            entry = breakdown.setdefault(
                record.core_id,
                {"transactions": 0, "wire_bytes": 0, "useful_bytes": 0},
            )
            entry["transactions"] += 1
            entry["wire_bytes"] += record.size
            entry["useful_bytes"] += record.useful_bytes
        return dict(sorted(breakdown.items()))

    def bus_busy_cycles(self) -> int:
        """Bus cycles occupied by any transaction (transactions never
        overlap on a single bus, so the per-record spans simply add)."""
        busy = sum(r.end_cycle - r.start_cycle + 1 for r in self.transactions)
        if self._condensed is not None:
            busy += self._condensed.busy_cycles
        return busy

    def bus_utilization(self) -> float:
        """Busy fraction of the bus over the observed activity span."""
        firsts = [r.start_cycle for r in self.transactions]
        lasts = [r.end_cycle for r in self.transactions]
        if self._condensed is not None and self._condensed.count:
            firsts.append(self._condensed.first_cycle)  # type: ignore[arg-type]
            lasts.append(self._condensed.last_cycle)  # type: ignore[arg-type]
        if not firsts:
            return 0.0
        span = max(lasts) - min(firsts) + 1
        return self.bus_busy_cycles() / span

    def efficiency(self) -> float:
        """Useful payload bytes over wire bytes (padding overhead)."""
        wire = sum(r.size for r in self.transactions)
        useful = sum(r.useful_bytes for r in self.transactions)
        if self._condensed is not None:
            wire += self._condensed.wire_bytes
            useful += self._condensed.useful_bytes
        if wire == 0:
            return 0.0
        return useful / wire

    def __repr__(self) -> str:
        return f"StatsCollector({self.as_dict()!r})"
