"""Fault sweep: lock vs CSB atomic device access under injected faults.

The paper argues the CSB's optimistic protocol degrades gracefully: a
failed conditional flush costs one software retry, while a lock-based
discipline serializes — every fault that delays one bus transaction also
delays the lock hold time, and every access pays the full lock/store/
unlock transaction count.  This study quantifies that claim with the
:mod:`repro.faults` subsystem: both disciplines run the same repeated
64-byte atomic device access on one core while a seeded fault plan NACKs
bus transactions, stretches target waits, delays device acknowledgments,
and (for the CSB) spuriously aborts conditional flushes.

The locked variant issues ~8 uncached store transactions per access, the
CSB exactly one burst flush; per-transaction fault rates therefore tax
the lock proportionally harder, and the measured cycles-per-access must
degrade at least as fast for the lock as for the CSB at every nonzero
rate (pinned by expected_results/fault-sweep.csv and
tests/faults/test_fault_sweep.py).
"""

from __future__ import annotations

from typing import Iterable

from repro.common.config import (
    BusConfig,
    CSBConfig,
    MemoryHierarchyConfig,
    SystemConfig,
)
from repro.common.errors import ConfigError
from repro.common.tables import Table
from repro.devices.sink import BurstSink
from repro.faults import FaultConfig
from repro.isa.assembler import assemble
from repro.memory.layout import (
    IO_COMBINING_BASE,
    IO_UNCACHED_BASE,
    PageAttr,
    Region,
)
from repro.sim.system import System
from repro.workloads.contention import contending_csb_kernel
from repro.workloads.lockbench import DEFAULT_LOCK_ADDR
from repro.workloads.smp import smp_locked_kernel

MECHANISMS = ("lock", "csb")

#: Injected-fault probabilities swept (0.0 first: the fault-free anchor
#: both slowdown columns normalize against).
DEFAULT_RATES = (0.0, 0.02, 0.05, 0.1)

#: Accesses per run — enough fault opportunities (~8 bus transactions per
#: locked access) for every site to fire at the 2 % rate.
DEFAULT_ITERATIONS = 40

#: Campaign seed for the golden CSV.
DEFAULT_SEED = 7


def fault_profile(rate: float, seed: int = DEFAULT_SEED) -> FaultConfig:
    """The sweep's fault mix: every transport-level site at ``rate``.

    Bus NACKs, target-wait stretches, and late device acknowledgments
    hit both disciplines per transaction; spurious flush aborts tax the
    CSB's own conditional protocol.  A zero ``rate`` returns a disabled
    config, so the baseline row runs the pristine fault-free fast path.
    """
    return FaultConfig(
        seed=seed,
        bus_nack_rate=rate,
        bus_stall_rate=rate,
        device_timeout_rate=rate,
        csb_spurious_abort_rate=rate,
    )


def fault_sweep_system(
    mechanism: str,
    rate: float,
    iterations: int = DEFAULT_ITERATIONS,
    seed: int = DEFAULT_SEED,
) -> System:
    """Build (without running) one sweep point's single-core system."""
    if mechanism not in MECHANISMS:
        raise ConfigError(f"unknown mechanism {mechanism!r}; have {MECHANISMS}")
    config = SystemConfig(
        memory=MemoryHierarchyConfig.with_line_size(64),
        bus=BusConfig(cpu_ratio=6, max_burst_bytes=64),
        csb=CSBConfig(line_size=64),
        faults=fault_profile(rate, seed),
    )
    system = System(config)
    # Real device targets at both disciplines' windows, so injected
    # device acknowledgment timeouts apply to each equally.
    system.attach_device(
        BurstSink(
            Region(IO_UNCACHED_BASE, 8192, PageAttr.UNCACHED, "lock-dev")
        )
    )
    system.attach_device(
        BurstSink(
            Region(
                IO_COMBINING_BASE, 8192, PageAttr.UNCACHED_COMBINING, "csb-dev"
            )
        )
    )
    if mechanism == "lock":
        source = smp_locked_kernel(iterations, signature=0x1_0000)
    else:
        source = contending_csb_kernel(
            iterations, IO_COMBINING_BASE, signature=0x1_0000
        )
    system.add_process(assemble(source, name=mechanism))
    system.hierarchy.warm(DEFAULT_LOCK_ADDR)
    return system


def fault_sweep_cycles(
    mechanism: str,
    rate: float,
    iterations: int = DEFAULT_ITERATIONS,
    seed: int = DEFAULT_SEED,
) -> float:
    """CPU cycles per completed atomic access at one fault rate."""
    system = fault_sweep_system(mechanism, rate, iterations, seed)
    system.run(max_cycles=50_000_000)
    return system.cycle / iterations


def fault_sweep_table(
    rates: Iterable[float] = DEFAULT_RATES,
    iterations: int = DEFAULT_ITERATIONS,
    seed: int = DEFAULT_SEED,
) -> Table:
    """Lock vs CSB cycles-per-access (and slowdowns) per fault rate."""
    rates = list(rates)
    if not rates or rates[0] != 0.0:
        raise ConfigError("the sweep needs the fault-free rate 0.0 first")
    table = Table(
        [
            "rate",
            "lock",
            "csb",
            "lock-slowdown",
            "csb-slowdown",
            "lock/csb",
        ],
        title=f"Fault sweep: {iterations} atomic 64B device accesses, "
        f"seed {seed} [CPU cycles per access]",
    )
    baselines = {}
    for rate in rates:
        lock = fault_sweep_cycles("lock", rate, iterations, seed)
        csb = fault_sweep_cycles("csb", rate, iterations, seed)
        if rate == 0.0:
            baselines = {"lock": lock, "csb": csb}
        table.add_row(
            rate,
            round(lock, 2),
            round(csb, 2),
            round(lock / baselines["lock"], 4),
            round(csb / baselines["csb"], 4),
            round(lock / csb, 2),
        )
    return table
