"""Combining-scheme names used throughout the harness.

Each Figure 3/4 panel compares a family of uncached store policies
(paper §4.1): ``none`` (every doubleword store is its own transaction),
hardware combining with block sizes from 16 bytes up to a full cache line,
and the conditional store buffer (``csb``).
"""

from __future__ import annotations

from typing import List

from repro.common.config import NO_COMBINING
from repro.common.errors import ConfigError

SCHEME_NONE = "none"
SCHEME_CSB = "csb"


def hw_schemes(line_size: int) -> List[str]:
    """Hardware uncached-buffer schemes for a given cache-line size."""
    schemes = [SCHEME_NONE]
    block = 16
    while block <= line_size:
        schemes.append(f"combine{block}")
        block *= 2
    return schemes


def all_schemes(line_size: int) -> List[str]:
    """Hardware schemes plus the CSB, in the paper's bar-chart order."""
    return hw_schemes(line_size) + [SCHEME_CSB]


def scheme_block(scheme: str) -> int:
    """Uncached-buffer combining block size implied by a scheme name."""
    if scheme == SCHEME_NONE:
        return NO_COMBINING
    if scheme.startswith("combine"):
        try:
            block = int(scheme[len("combine"):])
        except ValueError:
            raise ConfigError(f"bad scheme name {scheme!r}") from None
        return block
    if scheme == SCHEME_CSB:
        raise ConfigError("the CSB is not an uncached-buffer scheme")
    raise ConfigError(f"unknown scheme {scheme!r}")
