"""Experiment registry: every table/figure the harness can regenerate.

Each entry maps an experiment id (``fig3a`` .. ``fig5b``, plus extension
studies) to a zero-argument callable returning a rendered
:class:`~repro.common.tables.Table`.  The CLI and EXPERIMENTS.md both draw
from this registry, so the documented inventory can never drift from the
code.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.common.errors import ConfigError
from repro.common.tables import Table
from repro.evaluation.bandwidth import panel_table
from repro.evaluation.latency import fig5_table
from repro.evaluation.panels import FIG3_PANELS, FIG4_PANELS

TableFactory = Callable[[], Table]


def _bandwidth_factory(figure: int, panel: str) -> TableFactory:
    panels = FIG3_PANELS if figure == 3 else FIG4_PANELS
    spec = panels[panel]

    def build() -> Table:
        return panel_table(spec)

    build.__name__ = f"fig{figure}{panel}"
    return build


def _registry() -> Dict[str, TableFactory]:
    registry: Dict[str, TableFactory] = {}
    for panel in FIG3_PANELS:
        registry[f"fig3{panel}"] = _bandwidth_factory(3, panel)
    for panel in FIG4_PANELS:
        registry[f"fig4{panel}"] = _bandwidth_factory(4, panel)
    registry["fig5a"] = lambda: fig5_table(lock_hits_l1=True)
    registry["fig5b"] = lambda: fig5_table(lock_hits_l1=False)
    registry.update(_extension_registry())
    return registry


def _extension_registry() -> Dict[str, TableFactory]:
    """Studies beyond the paper's figures (§5/§6 claims, ablations)."""
    from repro.evaluation.ablations import (
        address_check_table,
        buffer_depth_table,
        burst_padding_table,
        flush_latency_table,
        line_buffer_table,
    )
    from repro.evaluation.blockstore import blockstore_table
    from repro.evaluation.crossover import crossover_table
    from repro.evaluation.policy_comparison import policy_table
    from repro.evaluation.loaded_bus import loaded_bus_table, miss_interleaved_table
    from repro.evaluation.rtt import rtt_table
    from repro.evaluation.sync_mechanisms import sync_mechanism_table
    from repro.evaluation.sensitivity import (
        ratio_sensitivity_table,
        width_sensitivity_table,
    )

    return {
        "pingpong": rtt_table,
        "loaded-bus": loaded_bus_table,
        "loaded-bus-misses": miss_interleaved_table,
        "crossover": crossover_table,
        "policies-sequential": lambda: policy_table(interleaved=False),
        "policies-shuffled": lambda: policy_table(interleaved=True),
        "blockstore": blockstore_table,
        "ablation-linebuffers": line_buffer_table,
        "ablation-padding": burst_padding_table,
        "ablation-addrcheck": address_check_table,
        "ablation-depth": buffer_depth_table,
        "ablation-flushlatency": flush_latency_table,
        "sensitivity-width": width_sensitivity_table,
        "sync-mechanisms": sync_mechanism_table,
        "sensitivity-ratio": ratio_sensitivity_table,
    }


EXPERIMENTS: Dict[str, TableFactory] = _registry()


def experiment_ids() -> List[str]:
    return sorted(EXPERIMENTS)


def run_experiment(experiment_id: str) -> Table:
    try:
        factory = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; have {experiment_ids()}"
        ) from None
    return factory()
