"""Experiment registry: every table/figure the harness can regenerate.

Each entry maps an experiment id (``fig3a`` .. ``fig5b``, plus extension
studies) to a zero-argument callable returning a rendered
:class:`~repro.common.tables.Table`.  The CLI and EXPERIMENTS.md both draw
from this registry, so the documented inventory can never drift from the
code.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigError
from repro.common.tables import Table
from repro.evaluation.bandwidth import panel_table
from repro.evaluation.latency import fig5_table
from repro.evaluation.panels import FIG3_PANELS, FIG4_PANELS
from repro.evaluation.runner import SweepRunner

#: Every factory takes an optional :class:`SweepRunner`; sweep-style
#: experiments hand their jobs to it, single-run studies ignore it.
TableFactory = Callable[[Optional[SweepRunner]], Table]


def _bandwidth_factory(figure: int, panel: str) -> TableFactory:
    panels = FIG3_PANELS if figure == 3 else FIG4_PANELS
    spec = panels[panel]

    def build(runner: Optional[SweepRunner] = None) -> Table:
        return panel_table(spec, runner=runner)

    build.__name__ = f"fig{figure}{panel}"
    return build


def _ignores_runner(factory: Callable[[], Table]) -> TableFactory:
    """Adapt a zero-argument factory (a study that is not a sweep of
    independent simulations) to the registry signature."""

    def build(runner: Optional[SweepRunner] = None) -> Table:
        return factory()

    build.__name__ = getattr(factory, "__name__", "experiment")
    return build


def _registry() -> Dict[str, TableFactory]:
    registry: Dict[str, TableFactory] = {}
    for panel in FIG3_PANELS:
        registry[f"fig3{panel}"] = _bandwidth_factory(3, panel)
    for panel in FIG4_PANELS:
        registry[f"fig4{panel}"] = _bandwidth_factory(4, panel)
    registry["fig5a"] = lambda runner=None: fig5_table(
        lock_hits_l1=True, runner=runner
    )
    registry["fig5b"] = lambda runner=None: fig5_table(
        lock_hits_l1=False, runner=runner
    )
    registry.update(_extension_registry())
    return registry


def _extension_registry() -> Dict[str, TableFactory]:
    """Studies beyond the paper's figures (§5/§6 claims, ablations)."""
    from repro.evaluation.ablations import (
        address_check_table,
        buffer_depth_table,
        burst_padding_table,
        flush_latency_table,
        line_buffer_table,
    )
    from repro.evaluation.blockstore import blockstore_table
    from repro.evaluation.cached_crossover import cached_crossover_table
    from repro.evaluation.crossover import crossover_table
    from repro.evaluation.fault_sweep import fault_sweep_table
    from repro.evaluation.policy_comparison import policy_table
    from repro.evaluation.loaded_bus import loaded_bus_table, miss_interleaved_table
    from repro.evaluation.rtt import rtt_table
    from repro.evaluation.smp_contention import smp_contention_table
    from repro.evaluation.sync_mechanisms import sync_mechanism_table
    from repro.evaluation.sensitivity import (
        ratio_sensitivity_table,
        width_sensitivity_table,
    )
    from repro.evaluation.trace_experiments import (
        trace_imbalance_table,
        trace_saturation_table,
    )

    return {
        "pingpong": _ignores_runner(rtt_table),
        "loaded-bus": _ignores_runner(loaded_bus_table),
        "loaded-bus-misses": _ignores_runner(miss_interleaved_table),
        "crossover": _ignores_runner(crossover_table),
        "cached-crossover": lambda runner=None: cached_crossover_table(
            runner=runner
        ),
        "policies-sequential": lambda runner=None: policy_table(
            interleaved=False, runner=runner
        ),
        "policies-shuffled": lambda runner=None: policy_table(
            interleaved=True, runner=runner
        ),
        "blockstore": _ignores_runner(blockstore_table),
        "ablation-linebuffers": lambda runner=None: line_buffer_table(
            runner=runner
        ),
        "ablation-padding": lambda runner=None: burst_padding_table(
            runner=runner
        ),
        "ablation-addrcheck": address_check_table,
        "ablation-depth": lambda runner=None: buffer_depth_table(
            runner=runner
        ),
        "ablation-flushlatency": lambda runner=None: flush_latency_table(
            runner=runner
        ),
        "sensitivity-width": lambda runner=None: width_sensitivity_table(
            runner=runner
        ),
        "fault-sweep": _ignores_runner(fault_sweep_table),
        "smp-contention": _ignores_runner(smp_contention_table),
        "sync-mechanisms": _ignores_runner(sync_mechanism_table),
        "sensitivity-ratio": lambda runner=None: ratio_sensitivity_table(
            runner=runner
        ),
        "trace-saturation": lambda runner=None: trace_saturation_table(
            runner=runner
        ),
        "trace-imbalance": lambda runner=None: trace_imbalance_table(
            runner=runner
        ),
    }


EXPERIMENTS: Dict[str, TableFactory] = _registry()


def experiment_ids() -> List[str]:
    return sorted(EXPERIMENTS)


def run_experiment(
    experiment_id: str, runner: Optional[SweepRunner] = None
) -> Table:
    try:
        factory = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; have {experiment_ids()}"
        ) from None
    return factory(runner)
