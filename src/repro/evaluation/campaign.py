"""Campaign manifests: a whole sweep as one serializable, replayable artifact.

A *campaign* bundles everything the disk-trace simulation literature says
a replayable experiment needs — workload, configuration (faults and
sampling ride inside :class:`~repro.common.config.SystemConfig`),
measurement — into a single content-addressed document that expands
deterministically into the existing :class:`~repro.evaluation.runner
.SimJob`/:class:`~repro.evaluation.runner.TraceJob` space.  The same
manifest can be executed serially through a
:class:`~repro.evaluation.runner.SweepRunner`, sharded across the
:class:`~repro.evaluation.service.WorkerPool`, or enqueued over the HTTP
results API — and the headline invariant, enforced by
tests/evaluation/, is that all three produce byte-identical results.

Content addressing follows the :meth:`~repro.workloads.spec
.ProgramWorkload.cache_key` idiom: :meth:`CampaignManifest.cache_key` is
the SHA-256 of the canonical JSON of the manifest's *content* — the
per-job cache keys, which already exclude display names — so renaming a
campaign or a job never invalidates cached results, while any change to
a config knob, kernel byte, or measurement always does.

The finished-results document uses the versioned ``csb-campaign-1``
schema (sorted keys, pinned types; see :func:`results_document` and
docs/campaigns.md) so API consumers can rely on stable bytes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.common.serialize import config_from_dict, config_to_dict
from repro.evaluation.runner import (
    Job,
    Result,
    SimJob,
    SweepRunner,
    TraceJob,
    job_key,
)
from repro.workloads.spec import (
    ProgramWorkload,
    TraceWorkload,
    workload_from_dict,
)

#: Version tag of the manifest document format (the ``version`` field of
#: every serialized manifest; unknown versions are rejected on revival).
MANIFEST_VERSION = "campaign-manifest-1"

#: Schema tag of the results document served by the campaign API.
RESULTS_SCHEMA = "csb-campaign-1"

#: Job states a results document may report.
JOB_STATUSES = ("done", "failed", "drained")

Workload = Union[ProgramWorkload, TraceWorkload]


def _digest(document: Dict[str, Any]) -> str:
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _reject_unknown(document: Dict[str, Any], known: Sequence[str], where: str) -> None:
    unknown = set(document) - set(known)
    if unknown:
        raise ConfigError(f"{where}: unknown fields {sorted(unknown)}")


@dataclass(frozen=True)
class JobSpec:
    """One campaign entry: a workload, its configuration, a measurement.

    The serializable counterpart of one :class:`SimJob` or
    :class:`TraceJob` — :meth:`to_job` lowers a spec losslessly into the
    job the :class:`~repro.evaluation.runner.SweepRunner` executes, so a
    manifest point and a hand-built job share cache entries.  ``name`` is
    a display label only; it never reaches the cache key.
    """

    workload: Workload
    config: SystemConfig = field(default_factory=SystemConfig)
    measurement: str = ""
    args: Tuple[str, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.workload, (ProgramWorkload, TraceWorkload)):
            raise ConfigError(
                f"job spec workload must be a workload spec, "
                f"got {type(self.workload).__name__}"
            )
        if not self.measurement:
            default = (
                "latency_p99"
                if isinstance(self.workload, TraceWorkload)
                else "store_bandwidth"
            )
            object.__setattr__(self, "measurement", default)
        self.to_job()  # fail fast: bad measurements/args never enter a manifest

    @property
    def display_name(self) -> str:
        return self.name or self.workload.name

    def to_job(self) -> Job:
        """The runnable job this spec describes."""
        if isinstance(self.workload, TraceWorkload):
            return TraceJob(
                config=self.config,
                workload=self.workload,
                measurement=self.measurement,
                args=self.args,
                name=self.display_name,
            )
        args = self.args
        if self.measurement == "span" and not args:
            args = self.workload.span
        return SimJob(
            config=self.config,
            kernel=self.workload.source,
            measurement=self.measurement,
            args=args,
            warm=self.workload.warm,
            name=self.display_name,
        )

    def cache_key(self) -> str:
        """Content hash of the job this spec expands to (name-free)."""
        return job_key(self.to_job())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload.to_dict(),
            "config": config_to_dict(self.config),
            "measurement": self.measurement,
            "args": list(self.args),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "JobSpec":
        if not isinstance(document, dict):
            raise ConfigError("job spec document must be a mapping")
        _reject_unknown(
            document,
            ("workload", "config", "measurement", "args", "name"),
            "job spec",
        )
        if "workload" not in document:
            raise ConfigError("job spec document needs a 'workload'")
        return cls(
            workload=workload_from_dict(document["workload"]),
            config=config_from_dict(document.get("config", {})),
            measurement=document.get("measurement", ""),
            args=tuple(str(a) for a in document.get("args", ())),
            name=document.get("name", ""),
        )


@dataclass(frozen=True)
class CampaignManifest:
    """A named, serializable list of :class:`JobSpec` entries.

    ``name`` is display-only.  :meth:`expand` produces the jobs in
    manifest order; :meth:`cache_key` content-addresses the campaign the
    same way :meth:`~repro.workloads.spec.ProgramWorkload.cache_key`
    addresses a workload — renames never move it, content always does.
    """

    name: str
    jobs: Tuple[JobSpec, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("campaign manifest needs a name")
        if not self.jobs:
            raise ConfigError(f"campaign {self.name!r} has no jobs")
        for spec in self.jobs:
            if not isinstance(spec, JobSpec):
                raise ConfigError(
                    f"campaign {self.name!r}: jobs must be JobSpec entries, "
                    f"got {type(spec).__name__}"
                )

    def expand(self) -> List[Job]:
        """The manifest's jobs, in manifest order — exactly what a
        :class:`SweepRunner` would be handed."""
        return [spec.to_job() for spec in self.jobs]

    def cache_key(self) -> str:
        """Content hash over the per-job cache keys (display names — the
        campaign's and every job's — are excluded by construction)."""
        return _digest(
            {
                "version": MANIFEST_VERSION,
                "kind": "campaign",
                "jobs": [spec.cache_key() for spec in self.jobs],
            }
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": MANIFEST_VERSION,
            "kind": "campaign",
            "name": self.name,
            "jobs": [spec.to_dict() for spec in self.jobs],
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "CampaignManifest":
        if not isinstance(document, dict):
            raise ConfigError("campaign document must be a mapping")
        _reject_unknown(
            document, ("version", "kind", "name", "jobs"), "campaign"
        )
        version = document.get("version", MANIFEST_VERSION)
        if version != MANIFEST_VERSION:
            raise ConfigError(
                f"unsupported campaign manifest version {version!r} "
                f"(this build reads {MANIFEST_VERSION})"
            )
        kind = document.get("kind", "campaign")
        if kind != "campaign":
            raise ConfigError(f"campaign document has kind {kind!r}")
        jobs = document.get("jobs", [])
        if not isinstance(jobs, (list, tuple)):
            raise ConfigError("campaign 'jobs' must be a list")
        return cls(
            name=document.get("name", ""),
            jobs=tuple(JobSpec.from_dict(entry) for entry in jobs),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CampaignManifest":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid campaign JSON: {exc}") from exc
        return cls.from_dict(document)


@dataclass(frozen=True)
class JobOutcome:
    """How one manifest job resolved: a value, a failure, or drained.

    ``attempts`` counts executions including crash-requeues; ``worker``
    is the pool worker that produced the final outcome (-1 when the job
    ran in-process or never ran).
    """

    index: int
    status: str = "done"
    value: Optional[Result] = None
    error: str = ""
    attempts: int = 1
    worker: int = -1

    def __post_init__(self) -> None:
        if self.status not in JOB_STATUSES:
            raise ConfigError(
                f"unknown job status {self.status!r}; have {JOB_STATUSES}"
            )
        if self.status == "done" and not isinstance(
            self.value, (int, float)
        ):
            raise ConfigError("a done job outcome needs a numeric value")


def results_document(
    manifest: CampaignManifest, outcomes: Sequence[JobOutcome]
) -> Dict[str, Any]:
    """The ``csb-campaign-1`` results document for a finished campaign.

    Stable contract (see docs/campaigns.md): sorted keys, pinned types,
    jobs in manifest order.  ``value`` is the measurement (int or float,
    exactly the number a direct ``SweepRunner`` run returns) for ``done``
    jobs and null otherwise.  Fields may be added, never renamed or
    removed — tests/evaluation/test_schema_golden.py pins the bytes.
    """
    if len(outcomes) != len(manifest.jobs):
        raise ConfigError(
            f"campaign {manifest.name!r} has {len(manifest.jobs)} jobs "
            f"but {len(outcomes)} outcomes"
        )
    by_index = {outcome.index: outcome for outcome in outcomes}
    if sorted(by_index) != list(range(len(manifest.jobs))):
        raise ConfigError("outcomes must cover every job index exactly once")
    entries = []
    for index, spec in enumerate(manifest.jobs):
        outcome = by_index[index]
        entries.append(
            {
                "index": index,
                "name": spec.display_name,
                "measurement": spec.measurement,
                "args": list(spec.args),
                "job": spec.cache_key(),
                "status": outcome.status,
                "value": outcome.value if outcome.status == "done" else None,
                "error": outcome.error,
                "attempts": outcome.attempts,
            }
        )
    return {
        "schema": RESULTS_SCHEMA,
        "campaign": manifest.cache_key(),
        "name": manifest.name,
        "total": len(entries),
        "completed": sum(1 for e in entries if e["status"] == "done"),
        "failed": sum(1 for e in entries if e["status"] == "failed"),
        "results": entries,
    }


def results_to_json(document: Dict[str, Any]) -> str:
    """Canonical bytes of a results document (the served representation)."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def run_campaign(
    manifest: CampaignManifest, runner: Optional[SweepRunner] = None
) -> Dict[str, Any]:
    """Execute a manifest through a :class:`SweepRunner` (serial
    in-process by default) and return its ``csb-campaign-1`` document.

    This is the reference executor the worker pool is measured against:
    for any manifest, :func:`repro.evaluation.service.run_campaign_pooled`
    must produce byte-identical ``results_to_json`` output.
    """
    if runner is None:
        runner = SweepRunner(jobs=1)
    values = runner.run(manifest.expand())
    outcomes = [
        JobOutcome(index=index, status="done", value=value)
        for index, value in enumerate(values)
    ]
    return results_document(manifest, outcomes)


def example_manifest(name: str = "example-campaign") -> CampaignManifest:
    """A small real manifest (used by docs, tests, and the CI smoke job):
    a Figure-3 bandwidth slice plus one synthetic trace-replay point."""
    from repro.evaluation.bandwidth import bandwidth_workload, config_for
    from repro.evaluation.panels import FIG3_PANELS

    panel = FIG3_PANELS["e"]
    jobs = [
        JobSpec(
            workload=bandwidth_workload(panel, scheme, size),
            config=config_for(panel, scheme),
            measurement="store_bandwidth",
        )
        for scheme in ("none", "csb")
        for size in (16, 64)
    ]
    jobs.append(
        JobSpec(
            workload=TraceWorkload(
                name="synthetic-burst",
                source="synth:n=120,seed=7,gap=40,devices=2",
                discipline="csb",
                window=64,
            ),
            measurement="latency_p99",
        )
    )
    return CampaignManifest(name=name, jobs=tuple(jobs))
