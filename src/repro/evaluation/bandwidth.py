"""Store-bandwidth measurement (Figures 3 and 4).

``bandwidth_point`` runs one (panel, scheme, transfer-size) simulation and
returns bytes per bus cycle over the uncached-store window, exactly as the
paper measures it.  ``panel_table`` sweeps a whole panel into a
:class:`~repro.common.tables.Table` whose rows are combining schemes and
whose columns are transfer sizes — one bar group per column of the paper's
chart.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.common.config import (
    BusConfig,
    CSBConfig,
    MemoryHierarchyConfig,
    SystemConfig,
    UncachedBufferConfig,
)
from repro.common.tables import Table
from repro.sim.system import System
from repro.evaluation.panels import PanelSpec
from repro.evaluation.runner import (
    SimJob,
    SweepRunner,
    default_runner,
    execute_job,
)
from repro.evaluation.schemes import SCHEME_CSB, all_schemes, scheme_block
from repro.workloads.spec import ProgramWorkload
from repro.workloads.storebw import (
    TRANSFER_SIZES,
    store_kernel_csb,
    store_kernel_uncached,
)


def config_for(panel: PanelSpec, scheme: str) -> SystemConfig:
    """System configuration for one panel/scheme combination."""
    bus = BusConfig(
        kind=panel.bus_kind,
        width_bytes=panel.bus_width,
        cpu_ratio=panel.cpu_ratio,
        turnaround=panel.turnaround,
        min_addr_delay=panel.min_addr_delay,
        max_burst_bytes=max(panel.line_size, panel.bus_width),
    )
    block = 8 if scheme == SCHEME_CSB else scheme_block(scheme)
    return SystemConfig(
        memory=MemoryHierarchyConfig.with_line_size(panel.line_size),
        bus=bus,
        uncached=UncachedBufferConfig(combine_block=min(block, panel.line_size)),
        csb=CSBConfig(line_size=panel.line_size),
    )


def system_for(panel: PanelSpec, scheme: str) -> System:
    return System(config_for(panel, scheme))


def bandwidth_workload(
    panel: PanelSpec, scheme: str, transfer_bytes: int
) -> ProgramWorkload:
    """The (panel, scheme, transfer-size) point as a workload spec."""
    name = f"{panel.panel_id}-{scheme}-{transfer_bytes}"
    if scheme == SCHEME_CSB:
        source = store_kernel_csb(transfer_bytes, panel.line_size)
    else:
        source = store_kernel_uncached(transfer_bytes)
    return ProgramWorkload(name=name, sources=((name, source),))


def bandwidth_job(panel: PanelSpec, scheme: str, transfer_bytes: int) -> SimJob:
    """Describe one (panel, scheme, transfer-size) point as a SimJob."""
    return SimJob.from_workload(
        bandwidth_workload(panel, scheme, transfer_bytes),
        config=config_for(panel, scheme),
        measurement="store_bandwidth",
    )


def bandwidth_point(panel: PanelSpec, scheme: str, transfer_bytes: int) -> float:
    """Simulate one data point; returns bytes per bus cycle."""
    return execute_job(bandwidth_job(panel, scheme, transfer_bytes))


def panel_table(
    panel: PanelSpec,
    sizes: Iterable[int] = TRANSFER_SIZES,
    schemes: Optional[List[str]] = None,
    runner: Optional[SweepRunner] = None,
) -> Table:
    """Sweep one panel: rows = schemes, columns = transfer sizes."""
    sizes = list(sizes)
    if schemes is None:
        schemes = all_schemes(panel.line_size)
    if runner is None:
        runner = default_runner()
    jobs = [
        bandwidth_job(panel, scheme, size)
        for scheme in schemes
        for size in sizes
    ]
    values = iter(runner.run(jobs))
    table = Table(
        ["scheme"] + [str(s) for s in sizes],
        title=(
            f"Figure {panel.figure}({panel.panel}) — {panel.caption} "
            f"[bytes per bus cycle]"
        ),
    )
    for scheme in schemes:
        table.add_row(scheme, *[next(values) for _ in sizes])
    return table
