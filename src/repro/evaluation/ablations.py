"""Ablations of the CSB design choices discussed in paper §3.2.

Each function isolates one knob:

* **Second line buffer** — §3.2: "the single line buffer ... could be
  easily extended with a second line buffer to increase pipelining and
  avoid program stalls awaiting the completion of the conditional flush."
  On a fast split bus the single-buffer CSB cannot keep the bus saturated;
  the second buffer recovers the peak.
* **Full-line padding vs. multiple burst sizes** — §3.2: "this restriction
  could be relaxed in a CSB design for a particular bus which permits
  multiple burst sizes."  Relaxing it removes the small-transfer penalty.
* **Address check** — §3.2: "it is not strictly necessary to include the
  destination address in the conflict check.  However, this allows
  detection of conflicts between competing threads that might run under
  the same process ID."
* **Uncached buffer depth** — how much FIFO depth hardware combining needs
  before it stops being the bottleneck.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional

from repro.common.config import CSBConfig, SystemConfig, UncachedBufferConfig
from repro.common.stats import StatsCollector
from repro.common.tables import Table
from repro.uncached.csb import ConditionalStoreBuffer, FlushResult
from repro.evaluation.bandwidth import config_for
from repro.evaluation.panels import FIG3_PANELS, FIG4_PANELS, PanelSpec
from repro.evaluation.runner import (
    SimJob,
    SweepRunner,
    default_runner,
    execute_job,
)
from repro.workloads.spec import ProgramWorkload
from repro.workloads.storebw import store_kernel_csb

_SIZES = (16, 32, 64, 128, 256, 512, 1024)


def _csb_bandwidth_job(
    panel: PanelSpec, csb_config: CSBConfig, size: int
) -> SimJob:
    name = f"ablation-{panel.panel_id}-csb-{size}"
    workload = ProgramWorkload(
        name=name,
        sources=((name, store_kernel_csb(size, panel.line_size)),),
    )
    return SimJob.from_workload(
        workload,
        config=replace(config_for(panel, "csb"), csb=csb_config),
        measurement="store_bandwidth",
    )


def _csb_bandwidth(panel: PanelSpec, csb_config: CSBConfig, size: int) -> float:
    return execute_job(_csb_bandwidth_job(panel, csb_config, size))


def line_buffer_table(
    sizes: Iterable[int] = _SIZES,
    runner: Optional[SweepRunner] = None,
) -> Table:
    """Single vs. double line buffer on the fast 256-bit split bus, where
    the single-buffer refill stall is visible."""
    panel = FIG4_PANELS["b"]
    sizes = list(sizes)
    if runner is None:
        runner = default_runner()
    variants = (1, 2)
    jobs = [
        _csb_bandwidth_job(
            panel,
            CSBConfig(line_size=panel.line_size, num_line_buffers=buffers),
            size,
        )
        for buffers in variants
        for size in sizes
    ]
    values = iter(runner.run(jobs))
    table = Table(
        ["line_buffers"] + [str(s) for s in sizes],
        title="Ablation: CSB line buffers on a 256-bit split bus "
        "[bytes per bus cycle]",
    )
    for buffers in variants:
        table.add_row(str(buffers), *[next(values) for _ in sizes])
    return table


def burst_padding_table(
    sizes: Iterable[int] = _SIZES,
    runner: Optional[SweepRunner] = None,
) -> Table:
    """Always-full-line vs. multiple-burst-size flushes on the mux bus:
    the relaxation removes the small-transfer penalty."""
    panel = FIG3_PANELS["e"]
    sizes = list(sizes)
    if runner is None:
        runner = default_runner()
    variants = (True, False)
    jobs = [
        _csb_bandwidth_job(
            panel,
            CSBConfig(line_size=panel.line_size, pad_to_full_line=pad),
            size,
        )
        for pad in variants
        for size in sizes
    ]
    values = iter(runner.run(jobs))
    table = Table(
        ["flush_policy"] + [str(s) for s in sizes],
        title="Ablation: full-line vs multi-size CSB bursts "
        "[bytes per bus cycle]",
    )
    for pad in variants:
        name = "full_line" if pad else "multi_size"
        table.add_row(name, *[next(values) for _ in sizes])
    return table


def address_check_table(runner: Optional[SweepRunner] = None) -> Table:
    """Same-PID thread conflicts: caught with the address check, silently
    merged without it."""
    table = Table(
        ["address_check", "thread_A_flush", "commits_wrong_line"],
        title="Ablation: CSB conflict detection for same-PID threads",
    )
    for check in (True, False):
        csb = ConditionalStoreBuffer(
            CSBConfig(check_address=check, num_line_buffers=2), StatsCollector()
        )
        line_a, line_b = 0x3000_0000, 0x3000_0040
        # Thread A stores once to its line; thread B (same process ID)
        # preempts it and stores once to a different line.  A's flush then
        # has a matching PID and hit count — only the address differs.
        csb.store(line_a, b"A" * 8, pid=1)
        csb.store(line_b, b"B" * 8, pid=1)     # thread B, same process ID
        result_a = csb.conditional_flush(line_a, 1, expected=1)
        if result_a is FlushResult.SUCCESS:
            burst = csb.pop_burst()
            wrong = "yes" if burst.address != line_a else "no"
        else:
            wrong = "no"
        table.add_row("on" if check else "off", result_a.value, wrong)
    return table


def buffer_depth_table(
    depths: Iterable[int] = (1, 2, 4, 8, 16),
    n_stores: int = 16,
    runner: Optional[SweepRunner] = None,
) -> Table:
    """CPU-side stall absorption vs uncached buffer depth.

    Bandwidth on the bus is drain-limited and insensitive to depth; what
    depth buys is *decoupling*: with a shallow buffer the core stalls at
    retirement behind every uncached store, so the cycles until the store
    sequence has retired (and the core may move on to independent work)
    shrink as the buffer deepens.
    """
    from repro.memory.layout import IO_UNCACHED_BASE

    depths = list(depths)
    if runner is None:
        runner = default_runner()
    stores = "".join(
        f"stx %l0, [%o1+{8 * i}]\n" for i in range(n_stores)
    )
    source = (
        f"set {IO_UNCACHED_BASE}, %o1\n"
        "mark a\n" + stores + "mark b\nhalt"
    )
    panel = FIG3_PANELS["e"]
    jobs = [
        SimJob.from_workload(
            ProgramWorkload(
                name=f"ablation-depth-{depth}",
                sources=((f"ablation-depth-{depth}", source),),
                span=("a", "b"),
            ),
            config=replace(
                config_for(panel, "none"),
                uncached=UncachedBufferConfig(combine_block=8, depth=depth),
            ),
            measurement="span",
        )
        for depth in depths
    ]
    values = runner.run(jobs)
    table = Table(
        ["depth", "cpu_cycles_to_retire_stores"],
        title=f"Ablation: uncached buffer depth ({n_stores} doubleword stores)",
    )
    for depth, value in zip(depths, values):
        table.add_row(depth, value)
    return table


def flush_latency_table(
    latencies: Iterable[int] = (1, 3, 5, 10),
    runner: Optional[SweepRunner] = None,
) -> Table:
    """Sensitivity of the Figure 5 CSB latency to the flush-check latency."""
    from repro.common.config import (
        BusConfig,
        MemoryHierarchyConfig,
    )
    from repro.workloads.lockbench import MARK_DONE, MARK_START, csb_access_kernel

    latencies = list(latencies)
    if runner is None:
        runner = default_runner()
    counts = (2, 8)
    jobs = [
        SimJob.from_workload(
            ProgramWorkload(
                name=f"ablation-flushlatency-{latency}-{n}dw",
                sources=(
                    (f"ablation-flushlatency-{latency}-{n}dw",
                     csb_access_kernel(n)),
                ),
                span=(MARK_START, MARK_DONE),
            ),
            config=SystemConfig(
                memory=MemoryHierarchyConfig.with_line_size(64),
                bus=BusConfig(cpu_ratio=6, max_burst_bytes=64),
                csb=CSBConfig(line_size=64, flush_latency=latency),
            ),
            measurement="span",
        )
        for latency in latencies
        for n in counts
    ]
    values = iter(runner.run(jobs))
    table = Table(
        ["flush_latency", "2dw", "8dw"],
        title="Ablation: CSB flush latency vs access time [CPU cycles]",
    )
    for latency in latencies:
        table.add_row(latency, *[next(values) for _ in counts])
    return table
