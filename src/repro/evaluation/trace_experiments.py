"""Trace-replay studies: bus saturation and device imbalance.

Both studies stream synthetic I/O traces (seeded, so every cell is
deterministic) through the replay engine and read tail latencies and
descriptor-ring occupancy off the finished run:

* **Bus saturation** — sweep the mean inter-arrival gap from comfortable
  to saturating under the lock and CSB disciplines.  While the bus keeps
  up with arrivals the percentiles sit near zero; once per-record service
  exceeds the gap, backlog accumulates and the tails explode.  The CSB's
  smaller bus footprint (one burst per line instead of a lock/store/
  unlock transaction train) moves its saturation point to smaller gaps.
* **Device imbalance** — one trace, four descriptor rings, Zipf-skewed
  device choice (the LBICA-style load-imbalance shape).  Columns sweep
  the skew exponent; rows report each ring's share of enqueued
  descriptors, the hot ring's mean occupancy, and the p99 latency —
  imbalance concentrates queueing on one ring long before aggregate
  throughput saturates.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.common.config import SystemConfig
from repro.common.tables import Table
from repro.evaluation.runner import SweepRunner, TraceJob, default_runner
from repro.workloads.spec import TraceWorkload

#: Mean inter-arrival gaps (CPU cycles) the saturation study sweeps,
#: comfortable to saturating.
SATURATION_GAPS = (200, 50, 10)

#: Zipf skew exponents the imbalance study sweeps.
IMBALANCE_SKEWS = (0.0, 1.0, 2.0)

#: Records per synthetic trace (windows of 64 keep arrival fidelity).
_N_RECORDS = 192
_WINDOW = 64


def saturation_workload(discipline: str, gap: int) -> TraceWorkload:
    """The saturation study's trace for one (discipline, gap) cell."""
    return TraceWorkload(
        name=f"saturation-{discipline}-gap{gap}",
        source=(
            f"synth:n={_N_RECORDS},seed=11,gap={gap},devices=1,"
            "sizes=64:3/8:1"
        ),
        discipline=discipline,
        window=_WINDOW,
    )


def saturation_job(discipline: str, gap: int, measurement: str) -> TraceJob:
    return TraceJob(
        config=SystemConfig(),
        workload=saturation_workload(discipline, gap),
        measurement=measurement,
        name=f"trace-saturation-{discipline}-gap{gap}-{measurement}",
    )


def trace_saturation_table(
    gaps: Iterable[int] = SATURATION_GAPS,
    runner: Optional[SweepRunner] = None,
) -> Table:
    """Rows = (discipline, percentile), columns = arrival gaps."""
    gaps = list(gaps)
    if runner is None:
        runner = default_runner()
    rows = [
        ("lock", "latency_p50"),
        ("lock", "latency_p99"),
        ("csb", "latency_p50"),
        ("csb", "latency_p99"),
    ]
    jobs = [
        saturation_job(discipline, gap, measurement)
        for discipline, measurement in rows
        for gap in gaps
    ]
    values = iter(runner.run(jobs))
    table = Table(
        ["discipline"] + [f"gap{g}" for g in gaps],
        title=(
            "Trace replay: tail latency vs arrival gap "
            "[CPU cycles from arrival to last byte on the bus]"
        ),
    )
    for discipline, measurement in rows:
        label = f"{discipline}-{measurement[len('latency_'):]}"
        table.add_row(label, *[next(values) for _ in gaps])
    return table


def imbalance_workload(skew: float) -> TraceWorkload:
    """The imbalance study's four-ring trace at one skew exponent."""
    return TraceWorkload(
        name=f"imbalance-skew{skew:g}",
        source=(
            f"synth:n={_N_RECORDS},seed=13,gap=40,devices=4,skew={skew:g},"
            "sizes=8:3/64:1"
        ),
        discipline="uncached",
        window=_WINDOW,
    )


def imbalance_job(skew: float, measurement: str, *args: str) -> TraceJob:
    return TraceJob(
        config=SystemConfig(),
        workload=imbalance_workload(skew),
        measurement=measurement,
        args=args,
        name=f"trace-imbalance-skew{skew:g}-{measurement}{''.join(args)}",
    )


def trace_imbalance_table(
    skews: Iterable[float] = IMBALANCE_SKEWS,
    runner: Optional[SweepRunner] = None,
) -> Table:
    """Rows = per-ring shares + hot-ring occupancy + p99, columns = skew."""
    skews = list(skews)
    if runner is None:
        runner = default_runner()
    jobs = []
    for skew in skews:
        for device in range(4):
            jobs.append(imbalance_job(skew, "device_share", str(device)))
        jobs.append(imbalance_job(skew, "mean_occupancy", "0"))
        jobs.append(imbalance_job(skew, "latency_p99"))
    values = iter(runner.run(jobs))
    columns = [f"skew{s:g}" for s in skews]
    cells = {column: [] for column in columns}
    for column in columns:
        for _ in range(6):
            cells[column].append(next(values))
    table = Table(
        ["metric"] + columns,
        title=(
            "Trace replay: device imbalance vs Zipf skew "
            "(4 descriptor rings, uncached discipline)"
        ),
    )
    labels = [f"ring{d}_share" for d in range(4)] + [
        "ring0_mean_occupancy",
        "latency_p99",
    ]
    for index, label in enumerate(labels):
        table.add_row(label, *[cells[column][index] for column in columns])
    return table
