"""SMP contention study: lock vs CSB as 2–8 cores hammer one device.

Extends the paper's Figure 5 comparison — locked uncached access vs CSB
atomic access — from a single preempted core to true multiprocessing.
Every core runs the same kernel against the same device line; the lock
variant serializes all cores on one spin lock, while the CSB variant
relies on the conditional flush's conflict detection (process ID + hit
counter) plus software retry with exponential backoff.  The measurement
is the total CPU cycles until every core has completed its accesses and
all I/O has drained: the lock's handoff cost grows with the number of
waiters, while the CSB's optimistic protocol pays only for actual store
interleavings, so the gap between the two columns must widen
monotonically with the core count.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.config import (
    BusConfig,
    CSBConfig,
    MemoryHierarchyConfig,
    SystemConfig,
)
from repro.common.errors import ConfigError
from repro.common.tables import Table
from repro.isa.assembler import assemble
from repro.memory.layout import IO_COMBINING_BASE
from repro.sim.system import System
from repro.workloads.lockbench import DEFAULT_LOCK_ADDR
from repro.workloads.smp import (
    DEFAULT_STAGGER_STEP,
    smp_csb_kernel,
    smp_locked_kernel,
)

MECHANISMS = ("lock", "csb")

#: Accesses each core performs (kept small: the experiment is O(cores^2)
#: in simulated work and runs inside the CI smoke job).
DEFAULT_ITERATIONS = 6


def smp_contention_system(
    mechanism: str,
    num_cores: int,
    iterations: int = DEFAULT_ITERATIONS,
    n_doublewords: int = 8,
    arbitration: str = "round_robin",
) -> System:
    """Build (without running) the N-core contention system."""
    if mechanism not in MECHANISMS:
        raise ConfigError(f"unknown mechanism {mechanism!r}; have {MECHANISMS}")
    config = SystemConfig(
        num_cores=num_cores,
        arbitration=arbitration,
        memory=MemoryHierarchyConfig.with_line_size(64),
        bus=BusConfig(cpu_ratio=6, max_burst_bytes=64),
        csb=CSBConfig(line_size=64),
    )
    system = System(config)
    for core in range(num_cores):
        if mechanism == "lock":
            source = smp_locked_kernel(
                iterations,
                n_doublewords=n_doublewords,
                signature=(core + 1) << 16,
            )
        else:
            source = smp_csb_kernel(
                iterations,
                IO_COMBINING_BASE,
                n_doublewords=n_doublewords,
                signature=(core + 1) << 16,
                stagger=core * DEFAULT_STAGGER_STEP,
                # Distinct per-core backoff bases and caps keep the
                # deterministic cores' retry periods permanently unequal
                # (see repro.workloads.smp); the caps bound the tail spin
                # so the last finisher's idle time stays proportional to
                # the contention it actually saw.
                backoff_base=2 * core + 1,
                backoff_cap=64 * (core + 1),
            )
        system.add_process(
            assemble(source, name=f"{mechanism}{core}"), core_id=core
        )
    # The lock hits the L1 (the paper's Figure 5a regime); harmless for csb.
    system.hierarchy.warm(DEFAULT_LOCK_ADDR)
    return system


def smp_contention_cycles(
    mechanism: str,
    num_cores: int,
    iterations: int = DEFAULT_ITERATIONS,
    n_doublewords: int = 8,
    arbitration: str = "round_robin",
) -> int:
    """Total CPU cycles for all cores to finish their accesses and drain."""
    system = smp_contention_system(
        mechanism, num_cores, iterations, n_doublewords, arbitration
    )
    system.run(max_cycles=50_000_000)
    return system.cycle


def smp_contention_table(
    core_counts: Iterable[int] = (2, 4, 8),
    iterations: int = DEFAULT_ITERATIONS,
) -> Table:
    """Lock vs CSB total cycles per core count, plus their ratio."""
    table = Table(
        ["cores", "lock", "csb", "lock/csb"],
        title=f"SMP contention: {iterations} atomic 64B device accesses "
        "per core, one shared line [total CPU cycles]",
    )
    for cores in core_counts:
        lock = smp_contention_cycles("lock", cores, iterations)
        csb = smp_contention_cycles("csb", cores, iterations)
        table.add_row(cores, lock, csb, round(lock / csb, 2))
    return table
