"""Two-node round-trip time study (the paper's §5 scalability argument).

Builds a two-node cluster — each node a full system with its NIC mapped
twice (control registers in plain uncached space, TX windows aliased into
uncached-combining space) — and measures ping-pong RTT for the
conventional locked-PIO send path versus the CSB send path.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.common.errors import ConfigError
from repro.common.tables import Table
from repro.devices.base import DeviceAlias
from repro.devices.link import Link
from repro.devices.nic import NetworkInterface
from repro.isa.assembler import assemble
from repro.memory.layout import (
    IO_COMBINING_BASE,
    IO_UNCACHED_BASE,
    PageAttr,
    Region,
)
from repro.sim.cluster import Cluster
from repro.sim.system import System
from repro.workloads.lockbench import DEFAULT_LOCK_ADDR
from repro.workloads.pingpong import (
    MARK_RTT_DONE,
    MARK_RTT_START,
    ping_kernel,
    pong_kernel,
)

NIC_REGION_SIZE = 16 * 1024

#: Methods measured: the kernel-level send paths plus the relaxed-CSB
#: hardware variant (multi-size flush bursts, paper §3.2's relaxation).
RTT_METHODS = ("pio", "csb", "csb_multisize")


def _build_node(pad_to_full_line: bool = True) -> Tuple[System, NetworkInterface]:
    from dataclasses import replace

    from repro.common.config import SystemConfig

    config = SystemConfig()
    config = replace(config, csb=replace(config.csb, pad_to_full_line=pad_to_full_line))
    system = System(config)
    nic = NetworkInterface(
        Region(IO_UNCACHED_BASE, NIC_REGION_SIZE, PageAttr.UNCACHED, "nic")
    )
    system.attach_device(nic)
    alias = DeviceAlias(
        Region(
            IO_COMBINING_BASE,
            NIC_REGION_SIZE,
            PageAttr.UNCACHED_COMBINING,
            "nic-tx",
        ),
        nic,
    )
    system.attach_device(alias)
    system.hierarchy.warm(DEFAULT_LOCK_ADDR)
    return system, nic


def pingpong_rtt(
    method: str, payload_dwords: int, link_latency: int = 10
) -> int:
    """Round-trip time in CPU cycles for one echo exchange."""
    if method not in RTT_METHODS:
        raise ConfigError(f"unknown send method {method!r}")
    pad = method != "csb_multisize"
    kernel_method = "pio" if method == "pio" else "csb"
    node_a, nic_a = _build_node(pad_to_full_line=pad)
    node_b, nic_b = _build_node(pad_to_full_line=pad)
    cluster = Cluster([node_a, node_b])
    cluster.connect(Link(nic_a, nic_b, latency=link_latency))
    node_a.add_process(
        assemble(
            ping_kernel(
                kernel_method, payload_dwords, IO_UNCACHED_BASE, IO_COMBINING_BASE
            ),
            name=f"ping-{method}",
        )
    )
    node_b.add_process(
        assemble(
            pong_kernel(
                kernel_method, payload_dwords, IO_UNCACHED_BASE, IO_COMBINING_BASE
            ),
            name=f"pong-{method}",
        )
    )
    cluster.run()
    if nic_b.received_total != 1 or nic_a.received_total != 1:
        raise ConfigError("ping-pong did not complete one exchange per side")
    return node_a.span(MARK_RTT_START, MARK_RTT_DONE)


def rtt_table(
    payload_dwords: Iterable[int] = (1, 2, 4, 8), link_latency: int = 10
) -> Table:
    """Rows = send methods, columns = payload sizes, cells = RTT cycles."""
    payload_dwords = list(payload_dwords)
    table = Table(
        ["method"] + [f"{n * 8}B" for n in payload_dwords],
        title=f"Two-node ping-pong RTT, {link_latency}-bus-cycle wire "
        "[CPU cycles]",
    )
    for method in RTT_METHODS:
        table.add_row(
            method,
            *[pingpong_rtt(method, n, link_latency) for n in payload_dwords],
        )
    return table
