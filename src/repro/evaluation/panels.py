"""Panel specifications for Figures 3 and 4.

The paper's bar charts are unlabeled in the surviving text, so the exact
per-panel parameter assignment follows the prose (see DESIGN.md §2 and §6):

* Figure 3 a–c vary the processor/bus frequency ratio over {2, 4, 6} at a
  32-byte line — consistent with "approaching the peak bandwidth of one
  cache line per 5 cycles" on an 8-byte multiplexed bus (1 address + 4 data
  cycles).
* Figure 3 d–f vary the line size over {32, 64, 128} at ratio 6.
* Figure 3 g–i vary transaction overhead at a 64-byte line: a turnaround
  cycle after every transaction, then minimum address-to-address delays of
  4 and 8 cycles.
* Figure 4 a–b vary the split-bus data width over 128/256 bits; c–e add
  the same overhead sweep on the 128-bit split bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class PanelSpec:
    """Everything needed to regenerate one figure panel."""

    figure: int
    panel: str
    bus_kind: str
    bus_width: int
    cpu_ratio: int
    line_size: int
    turnaround: int
    min_addr_delay: int
    caption: str

    @property
    def panel_id(self) -> str:
        return f"fig{self.figure}{self.panel}"


def _p3(panel: str, ratio: int, line: int, turn: int, delay: int, caption: str) -> PanelSpec:
    return PanelSpec(3, panel, "multiplexed", 8, ratio, line, turn, delay, caption)


def _p4(panel: str, width: int, turn: int, delay: int, caption: str) -> PanelSpec:
    return PanelSpec(4, panel, "split", width, 6, 64, turn, delay, caption)


FIG3_PANELS: Dict[str, PanelSpec] = {
    spec.panel: spec
    for spec in (
        _p3("a", 2, 32, 0, 0, "ratio 2, 32 B line, 8 B mux bus"),
        _p3("b", 4, 32, 0, 0, "ratio 4, 32 B line, 8 B mux bus"),
        _p3("c", 6, 32, 0, 0, "ratio 6, 32 B line, 8 B mux bus"),
        _p3("d", 6, 32, 0, 0, "ratio 6, 32 B line, 8 B mux bus"),
        _p3("e", 6, 64, 0, 0, "ratio 6, 64 B line, 8 B mux bus"),
        _p3("f", 6, 128, 0, 0, "ratio 6, 128 B line, 8 B mux bus"),
        _p3("g", 6, 64, 1, 0, "ratio 6, 64 B line, turnaround cycle"),
        _p3("h", 6, 64, 0, 4, "ratio 6, 64 B line, min addr delay 4"),
        _p3("i", 6, 64, 0, 8, "ratio 6, 64 B line, min addr delay 8"),
    )
}

FIG4_PANELS: Dict[str, PanelSpec] = {
    spec.panel: spec
    for spec in (
        _p4("a", 16, 0, 0, "128-bit split bus, no turnaround"),
        _p4("b", 32, 0, 0, "256-bit split bus, no turnaround"),
        _p4("c", 16, 1, 0, "128-bit split bus, turnaround cycle"),
        _p4("d", 16, 0, 4, "128-bit split bus, min addr delay 4"),
        _p4("e", 16, 0, 8, "128-bit split bus, min addr delay 8"),
    )
}


def panel_by_id(panel_id: str) -> PanelSpec:
    """Look up e.g. ``fig3c`` or ``fig4a``."""
    name = panel_id.lower().strip()
    if name.startswith("fig3") and name[4:] in FIG3_PANELS:
        return FIG3_PANELS[name[4:]]
    if name.startswith("fig4") and name[4:] in FIG4_PANELS:
        return FIG4_PANELS[name[4:]]
    raise ConfigError(f"unknown panel id {panel_id!r}")
