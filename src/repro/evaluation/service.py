"""Campaign service: sharded sweep workers and an HTTP/JSON results API.

This module promotes :class:`~repro.evaluation.runner.SweepRunner` from a
multiprocess CLI into a long-running service, in three layers:

* :class:`WorkerPool` — shards a manifest's jobs across worker
  *processes* with per-worker progress heartbeats, crash-requeue (a
  worker dying mid-job returns the job to the queue at most
  ``max_requeues`` times before it is marked failed — never lost), and a
  graceful drain: once the drain event is set no new job is handed out,
  in-flight jobs finish, and the remainder is reported ``drained``.
  Workers share one hardened :class:`~repro.evaluation.runner
  .ResultCache` directory; the cache's advisory lock and atomic writes
  make that safe, and the pool's results are byte-identical to a serial
  :func:`~repro.evaluation.campaign.run_campaign` of the same manifest.

* :class:`CampaignStore` — the on-disk state of the service: one
  directory per campaign (keyed by :meth:`~repro.evaluation.campaign
  .CampaignManifest.cache_key`) holding ``manifest.json``,
  ``status.json`` (mutable progress: state, counters, worker
  heartbeats), and ``results.json`` (immutable ``csb-campaign-1``
  bytes, written once when the campaign finishes).

* :func:`serve` — a stdlib :class:`~http.server.ThreadingHTTPServer`
  exposing ``GET /campaigns``, ``GET /campaigns/<key>``,
  ``GET /campaigns/<key>/results`` and ``POST /campaigns`` (enqueue),
  with a background thread executing queued campaigns through the pool.
  Results are served as the stored bytes, verbatim — the byte-identity
  invariant holds across HTTP.

See docs/campaigns.md for the endpoint reference and curl examples.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_module
import re
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.evaluation.campaign import (
    CampaignManifest,
    JobOutcome,
    results_document,
    results_to_json,
)
from repro.evaluation.runner import Job, ResultCache, execute_job, job_key

#: Times a job lost to a worker crash is re-queued before it is failed.
DEFAULT_MAX_REQUEUES = 2

#: Seconds between a worker's idle heartbeats.
DEFAULT_HEARTBEAT_INTERVAL = 0.5

_KEY_PATTERN = re.compile(r"^[0-9a-f]{64}$")

#: Campaign lifecycle states recorded in ``status.json``.
CAMPAIGN_STATES = ("queued", "running", "done", "failed", "drained")


def _now() -> float:
    return time.time()


def default_state_dir() -> str:
    """``$CSB_STATE_DIR`` or ``~/.local/state/csb-campaigns``."""
    configured = os.environ.get("CSB_STATE_DIR")
    if configured:
        return configured
    return os.path.join(
        os.path.expanduser("~"), ".local", "state", "csb-campaigns"
    )


# ---------------------------------------------------------------------------
# Worker processes
# ---------------------------------------------------------------------------


def _worker_main(
    worker_id: int,
    tasks: Any,
    messages: Any,
    cache_dir: Optional[str],
    executor: Callable[[Job], Any],
    heartbeat_interval: float,
) -> None:
    """One pool worker: take a task, resolve it (cache first), report.

    Runs in a child process.  The heartbeat thread reports liveness even
    while a long simulation blocks the main loop, so the coordinator can
    tell "slow" from "dead".
    """
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                messages.put(("heartbeat", worker_id, _now()))
            except Exception:  # pragma: no cover - queue torn down
                return

    heartbeat = threading.Thread(target=beat, daemon=True)
    heartbeat.start()
    cache = ResultCache(cache_dir) if cache_dir else None
    try:
        while True:
            task = tasks.get()
            if task is None:
                messages.put(("bye", worker_id))
                return
            index, job, attempt = task
            messages.put(("start", worker_id, index, attempt, _now()))
            try:
                value = cache.get(job_key(job)) if cache else None
                simulated = value is None
                if value is None:
                    value = executor(job)
                    if cache:
                        cache.put(job_key(job), value, name=job.name)
                messages.put(
                    ("done", worker_id, index, attempt, value, simulated)
                )
            except Exception as exc:  # deterministic job failure
                messages.put(
                    (
                        "error",
                        worker_id,
                        index,
                        attempt,
                        f"{type(exc).__name__}: {exc}",
                    )
                )
    finally:
        stop.set()


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


@dataclass
class _WorkerSlot:
    process: Any
    tasks: Any
    task: Optional[Tuple[int, Job, int]] = None  # (index, job, attempt)
    last_heartbeat: float = 0.0
    dismissed: bool = False


class WorkerPool:
    """Shards jobs across worker processes; never loses a job.

    ``workers`` is the pool width; ``cache_dir`` (optional) is a shared
    :class:`ResultCache` directory every worker consults and populates.
    ``max_requeues`` bounds how many times a job lost to a worker crash
    is retried before it is marked failed.  ``drain`` is an optional
    :class:`threading.Event`: once set, no new job is dispatched,
    in-flight jobs finish, and undispatched jobs come back ``drained``
    (the SIGTERM path of ``csb-figures campaign``).  ``on_progress`` is
    called after every state change with a status snapshot — the
    campaign store wires this to ``status.json``.

    Results are deterministic: :meth:`run` returns outcomes in input
    order, and a fully ``done`` pool run carries exactly the values a
    serial :class:`~repro.evaluation.runner.SweepRunner` produces.
    """

    def __init__(
        self,
        workers: int = 2,
        cache_dir: Optional[str] = None,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        drain: Optional[threading.Event] = None,
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
        executor: Callable[[Job], Any] = execute_job,
    ) -> None:
        if workers < 1:
            raise ConfigError("worker pool needs at least one worker")
        if max_requeues < 0:
            raise ConfigError("max_requeues must be >= 0")
        self.workers = workers
        self.cache_dir = cache_dir
        self.max_requeues = max_requeues
        self.heartbeat_interval = heartbeat_interval
        self.drain = drain if drain is not None else threading.Event()
        self.on_progress = on_progress
        self.executor = executor
        #: Jobs actually executed (cache hits excluded), across all workers.
        self.simulated = 0
        #: Total crash-requeues performed.
        self.requeues = 0
        #: worker id -> last heartbeat wall-clock time.
        self.heartbeats: Dict[int, float] = {}
        self._context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self, worker_id: int, messages: Any) -> _WorkerSlot:
        tasks = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(
                worker_id,
                tasks,
                messages,
                self.cache_dir,
                self.executor,
                self.heartbeat_interval,
            ),
            daemon=True,
        )
        process.start()
        return _WorkerSlot(
            process=process, tasks=tasks, last_heartbeat=_now()
        )

    # -- the run loop ------------------------------------------------------

    def run(self, jobs: Sequence[Job]) -> List[JobOutcome]:
        """Resolve every job; outcomes are returned in input order."""
        total = len(jobs)
        outcomes: List[Optional[JobOutcome]] = [None] * total
        if not total:
            return []
        pending: Deque[Tuple[int, Job, int]] = deque(
            (index, job, 1) for index, job in enumerate(jobs)
        )
        messages = self._context.Queue()
        slots: Dict[int, _WorkerSlot] = {}
        next_worker_id = 0
        for _ in range(min(self.workers, total)):
            slots[next_worker_id] = self._spawn(next_worker_id, messages)
            next_worker_id += 1

        def unresolved() -> int:
            return sum(1 for outcome in outcomes if outcome is None)

        def in_flight() -> int:
            return sum(1 for slot in slots.values() if slot.task is not None)

        def settle(outcome: JobOutcome) -> None:
            outcomes[outcome.index] = outcome
            self._progress(outcomes, total)

        try:
            while unresolved():
                if self.drain.is_set() and not in_flight():
                    # Graceful drain: everything not yet dispatched is
                    # reported, not silently dropped.
                    while pending:
                        index, _, attempt = pending.popleft()
                        if outcomes[index] is None:
                            settle(
                                JobOutcome(
                                    index=index,
                                    status="drained",
                                    error="campaign drained before dispatch",
                                    attempts=attempt - 1,
                                )
                            )
                    break
                self._dispatch(pending, slots)
                try:
                    message = messages.get(timeout=self.heartbeat_interval)
                except queue_module.Empty:
                    self._reap(pending, slots, messages, settle)
                    continue
                kind = message[0]
                if kind == "heartbeat":
                    _, worker_id, stamp = message
                    self.heartbeats[worker_id] = stamp
                    if worker_id in slots:
                        slots[worker_id].last_heartbeat = stamp
                elif kind == "start":
                    _, worker_id, _, _, stamp = message
                    self.heartbeats[worker_id] = stamp
                elif kind == "done":
                    _, worker_id, index, attempt, value, simulated = message
                    if simulated:
                        self.simulated += 1
                    if worker_id in slots:
                        slots[worker_id].task = None
                    settle(
                        JobOutcome(
                            index=index,
                            status="done",
                            value=value,
                            attempts=attempt,
                            worker=worker_id,
                        )
                    )
                elif kind == "error":
                    _, worker_id, index, attempt, error = message
                    if worker_id in slots:
                        slots[worker_id].task = None
                    settle(
                        JobOutcome(
                            index=index,
                            status="failed",
                            error=error,
                            attempts=attempt,
                            worker=worker_id,
                        )
                    )
                elif kind == "bye":
                    _, worker_id = message
                    slot = slots.pop(worker_id, None)
                    if slot is not None:
                        slot.process.join(timeout=5)
                self._reap(pending, slots, messages, settle)
        finally:
            self._shutdown(slots, messages)
        return [
            outcome
            if outcome is not None
            else JobOutcome(
                index=index,
                status="drained",
                error="campaign drained before dispatch",
                attempts=0,
            )
            for index, outcome in enumerate(outcomes)
        ]

    def _dispatch(
        self,
        pending: Deque[Tuple[int, Job, int]],
        slots: Dict[int, _WorkerSlot],
    ) -> None:
        if self.drain.is_set():
            return
        for slot in slots.values():
            if not pending:
                return
            if slot.task is None and slot.process.is_alive():
                task = pending.popleft()
                slot.task = task
                slot.tasks.put(task)

    def _reap(
        self,
        pending: Deque[Tuple[int, Job, int]],
        slots: Dict[int, _WorkerSlot],
        messages: Any,
        settle: Callable[[JobOutcome], None],
    ) -> None:
        """Crash-requeue: detect dead workers, recover their jobs."""
        for worker_id, slot in list(slots.items()):
            if slot.process.is_alive():
                continue
            del slots[worker_id]
            task = slot.task
            if task is not None:
                index, job, attempt = task
                if attempt > self.max_requeues:
                    settle(
                        JobOutcome(
                            index=index,
                            status="failed",
                            error=(
                                f"worker process died {attempt} time(s) "
                                f"running this job"
                            ),
                            attempts=attempt,
                            worker=worker_id,
                        )
                    )
                else:
                    self.requeues += 1
                    pending.appendleft((index, job, attempt + 1))
            if (pending or any(s.task for s in slots.values())) and not (
                self.drain.is_set() and slot.task is None
            ):
                replacement = max(list(slots) + [worker_id]) + 1
                slots[replacement] = self._spawn(replacement, messages)

    def _shutdown(self, slots: Dict[int, _WorkerSlot], messages: Any) -> None:
        for slot in slots.values():
            try:
                slot.tasks.put(None)
            except Exception:  # pragma: no cover - queue torn down
                pass
        deadline = _now() + 5.0
        for slot in slots.values():
            slot.process.join(timeout=max(0.1, deadline - _now()))
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(timeout=1.0)
        messages.close()

    def _progress(
        self, outcomes: Sequence[Optional[JobOutcome]], total: int
    ) -> None:
        if self.on_progress is None:
            return
        done = sum(
            1 for o in outcomes if o is not None and o.status == "done"
        )
        failed = sum(
            1 for o in outcomes if o is not None and o.status == "failed"
        )
        self.on_progress(
            {
                "total": total,
                "completed": done,
                "failed": failed,
                "requeues": self.requeues,
                "workers": {
                    str(worker): {"last_heartbeat_unix": stamp}
                    for worker, stamp in sorted(self.heartbeats.items())
                },
            }
        )


def run_campaign_pooled(
    manifest: CampaignManifest,
    workers: int = 2,
    cache_dir: Optional[str] = None,
    max_requeues: int = DEFAULT_MAX_REQUEUES,
    drain: Optional[threading.Event] = None,
    on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Dict[str, Any]:
    """Execute a manifest through a :class:`WorkerPool` and return its
    ``csb-campaign-1`` document — byte-identical, for a fully completed
    run, to :func:`~repro.evaluation.campaign.run_campaign`."""
    pool = WorkerPool(
        workers=workers,
        cache_dir=cache_dir,
        max_requeues=max_requeues,
        drain=drain,
        on_progress=on_progress,
    )
    outcomes = pool.run(manifest.expand())
    return results_document(manifest, outcomes)


# ---------------------------------------------------------------------------
# On-disk campaign store
# ---------------------------------------------------------------------------


class CampaignStore:
    """One directory per campaign: manifest, mutable status, final results.

    Layout under ``root``::

        <campaign key>/manifest.json   # CampaignManifest.to_json bytes
        <campaign key>/status.json     # state + counters + heartbeats
        <campaign key>/results.json    # csb-campaign-1 bytes, written once

    Status writes are atomic (temp + replace) so concurrent API readers
    always see a consistent document.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _dir(self, key: str) -> str:
        if not _KEY_PATTERN.match(key):
            raise ConfigError(f"bad campaign key {key!r}")
        return os.path.join(self.root, key)

    def _write_file(self, path: str, text: str) -> None:
        temporary = f"{path}.tmp.{os.getpid()}"
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)

    def enqueue(self, manifest: CampaignManifest) -> str:
        """Persist a manifest and mark it queued; returns the key.

        Re-enqueueing a campaign that already has results is a no-op (it
        stays ``done`` — results are immutable and content-addressed).
        """
        key = manifest.cache_key()
        directory = self._dir(key)
        os.makedirs(directory, exist_ok=True)
        self._write_file(
            os.path.join(directory, "manifest.json"), manifest.to_json()
        )
        if self.results_bytes(key) is not None:
            return key
        self.write_status(key, {"state": "queued"})
        return key

    def keys(self) -> List[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(n for n in names if _KEY_PATTERN.match(n))

    def manifest(self, key: str) -> Optional[CampaignManifest]:
        path = os.path.join(self._dir(key), "manifest.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return CampaignManifest.from_json(handle.read())
        except (OSError, ConfigError):
            return None

    def status(self, key: str) -> Optional[Dict[str, Any]]:
        path = os.path.join(self._dir(key), "status.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return None
        return document if isinstance(document, dict) else None

    def write_status(self, key: str, document: Dict[str, Any]) -> None:
        state = document.get("state")
        if state not in CAMPAIGN_STATES:
            raise ConfigError(
                f"unknown campaign state {state!r}; have {CAMPAIGN_STATES}"
            )
        payload = dict(document)
        payload["campaign"] = key
        payload["updated_unix"] = _now()
        self._write_file(
            os.path.join(self._dir(key), "status.json"),
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )

    def results_bytes(self, key: str) -> Optional[bytes]:
        """The stored ``csb-campaign-1`` document, verbatim bytes."""
        path = os.path.join(self._dir(key), "results.json")
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def write_results(self, key: str, document: Dict[str, Any]) -> None:
        self._write_file(
            os.path.join(self._dir(key), "results.json"),
            results_to_json(document),
        )

    def describe(self, key: str) -> Optional[Dict[str, Any]]:
        """The status-endpoint document for one campaign."""
        manifest = self.manifest(key)
        if manifest is None:
            return None
        status = self.status(key) or {"state": "queued"}
        document = dict(status)
        document.setdefault("campaign", key)
        document["name"] = manifest.name
        document["jobs"] = len(manifest.jobs)
        document["results_ready"] = self.results_bytes(key) is not None
        return document


# ---------------------------------------------------------------------------
# The service: queued-campaign executor + HTTP API
# ---------------------------------------------------------------------------


class CampaignService:
    """Executes queued campaigns from a :class:`CampaignStore` through a
    :class:`WorkerPool`, updating ``status.json`` as it goes."""

    def __init__(
        self,
        store: CampaignStore,
        workers: int = 2,
        cache_dir: Optional[str] = None,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.store = store
        self.workers = workers
        self.cache_dir = cache_dir
        self.max_requeues = max_requeues
        self.log = log or (lambda message: None)
        self.drain = threading.Event()
        self.wake = threading.Event()

    def queued(self) -> List[str]:
        keys = []
        for key in self.store.keys():
            status = self.store.status(key)
            if status is not None and status.get("state") == "queued":
                keys.append(key)
        return keys

    def run_one(self, key: str) -> bool:
        """Run one stored campaign to completion; True when done."""
        manifest = self.store.manifest(key)
        if manifest is None:
            return False
        self.log(f"campaign {key[:12]}: running {len(manifest.jobs)} job(s)")

        def on_progress(snapshot: Dict[str, Any]) -> None:
            self.store.write_status(key, {"state": "running", **snapshot})

        self.store.write_status(
            key, {"state": "running", "total": len(manifest.jobs)}
        )
        document = run_campaign_pooled(
            manifest,
            workers=self.workers,
            cache_dir=self.cache_dir,
            max_requeues=self.max_requeues,
            drain=self.drain,
            on_progress=on_progress,
        )
        statuses = {entry["status"] for entry in document["results"]}
        if "drained" in statuses:
            state = "drained"
        elif "failed" in statuses:
            state = "failed"
        else:
            state = "done"
        if state != "drained":
            self.store.write_results(key, document)
        self.store.write_status(
            key,
            {
                "state": state,
                "total": document["total"],
                "completed": document["completed"],
                "failed": document["failed"],
            },
        )
        self.log(f"campaign {key[:12]}: {state}")
        return state == "done"

    def run_queued_forever(self) -> None:
        """The background executor loop ``serve`` runs in a thread."""
        while not self.drain.is_set():
            ran = False
            for key in self.queued():
                if self.drain.is_set():
                    break
                self.run_one(key)
                ran = True
            if not ran:
                self.wake.wait(timeout=0.2)
                self.wake.clear()


class _CampaignHandler(BaseHTTPRequestHandler):
    server_version = "csb-campaign/1"
    #: set by make_server
    service: CampaignService

    def _send_json(
        self, payload: Dict[str, Any], code: int = 200
    ) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        self._send_bytes(body, code)

    def _send_bytes(self, body: bytes, code: int = 200) -> None:
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send_json({"error": message}, code)

    def log_message(self, format: str, *args: Any) -> None:
        self.service.log(
            f"{self.address_string()} {format % args}"
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        store = self.service.store
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["campaigns"]:
            self._send_json(
                {
                    "campaigns": [
                        store.describe(key) for key in store.keys()
                    ]
                }
            )
            return
        if len(parts) in (2, 3) and parts[0] == "campaigns":
            key = parts[1]
            if not _KEY_PATTERN.match(key):
                self._error(404, f"bad campaign key {key!r}")
                return
            if len(parts) == 2:
                description = store.describe(key)
                if description is None:
                    self._error(404, f"no campaign {key}")
                    return
                self._send_json(description)
                return
            if parts[2] == "results":
                body = store.results_bytes(key)
                if body is None:
                    if store.manifest(key) is None:
                        self._error(404, f"no campaign {key}")
                    else:
                        self._error(404, f"campaign {key} has no results yet")
                    return
                self._send_bytes(body)
                return
        self._error(404, f"no route {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        if [p for p in self.path.split("?")[0].split("/") if p] != [
            "campaigns"
        ]:
            self._error(404, f"no route {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "bad Content-Length")
            return
        body = self.rfile.read(length)
        try:
            manifest = CampaignManifest.from_json(body.decode("utf-8"))
        except (ConfigError, UnicodeDecodeError) as exc:
            self._error(400, f"invalid campaign manifest: {exc}")
            return
        key = self.service.store.enqueue(manifest)
        self.service.wake.set()
        status = self.service.store.status(key) or {}
        self._send_json(
            {
                "campaign": key,
                "name": manifest.name,
                "state": status.get("state", "queued"),
            },
            code=202,
        )


def make_server(
    service: CampaignService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A ready-to-serve ThreadingHTTPServer bound to (host, port)."""
    handler = type(
        "BoundCampaignHandler", (_CampaignHandler,), {"service": service}
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(
    service: CampaignService,
    host: str = "127.0.0.1",
    port: int = 8731,
    install_signal_handlers: bool = True,
) -> int:
    """Run the campaign service until SIGTERM/SIGINT, then drain.

    SIGTERM sets the service drain event: the executor stops dispatching
    new jobs, in-flight simulations finish, statuses are flushed, and
    the HTTP server shuts down — the graceful-drain contract pinned by
    tests/evaluation/test_service_api.py.
    """
    server = make_server(service, host=host, port=port)

    def shutdown(signum: int, frame: Any) -> None:
        service.log(f"signal {signum}: draining")
        service.drain.set()
        service.wake.set()
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signal_handlers:
        signal.signal(signal.SIGTERM, shutdown)
        signal.signal(signal.SIGINT, shutdown)
    runner = threading.Thread(
        target=service.run_queued_forever, daemon=True
    )
    runner.start()
    bound = server.server_address
    service.log(f"serving campaigns on http://{bound[0]}:{bound[1]}")
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        service.drain.set()
        service.wake.set()
        runner.join(timeout=10)
        server.server_close()
    return 0
