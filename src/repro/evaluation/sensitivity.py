"""Sensitivity studies backing the paper's §4.3.2 discussion.

* **Superscalar width** — "Experiments with a 2-way and 8-way superscalar
  CPU did not change the lock overhead at all, because of the short data
  and control dependencies."
* **Bus speed** — "Wider and faster buses lead to a smaller per-doubleword
  increase in latency": the locking path's slope is one uncached bus
  transaction per doubleword (2 bus cycles x the CPU/bus frequency ratio),
  while the CSB slope stays one CPU cycle per doubleword regardless.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.common.config import (
    BusConfig,
    CoreConfig,
    CSBConfig,
    MemoryHierarchyConfig,
    SystemConfig,
)
from repro.common.tables import Table
from repro.evaluation.runner import (
    SimJob,
    SweepRunner,
    default_runner,
    execute_job,
)
from repro.workloads.spec import ProgramWorkload
from repro.workloads.lockbench import (
    DEFAULT_LOCK_ADDR,
    MARK_DONE,
    MARK_START,
    csb_access_kernel,
    locked_access_kernel,
)


def _access_job(
    scheme: str, n_doublewords: int, core: CoreConfig, cpu_ratio: int
) -> SimJob:
    config = SystemConfig(
        core=core,
        memory=MemoryHierarchyConfig.with_line_size(64),
        bus=BusConfig(cpu_ratio=cpu_ratio, max_burst_bytes=64),
        csb=CSBConfig(line_size=64),
    )
    if scheme == "csb":
        source = csb_access_kernel(n_doublewords)
    else:
        source = locked_access_kernel(n_doublewords)
    name = f"sensitivity-{scheme}-{n_doublewords}dw-r{cpu_ratio}"
    workload = ProgramWorkload(
        name=name,
        sources=((name, source),),
        warm=(DEFAULT_LOCK_ADDR,),
        span=(MARK_START, MARK_DONE),
    )
    return SimJob.from_workload(workload, config=config, measurement="span")


def _access_cycles(
    scheme: str, n_doublewords: int, core: CoreConfig, cpu_ratio: int
) -> int:
    return execute_job(_access_job(scheme, n_doublewords, core, cpu_ratio))


def _width_config(width: int) -> CoreConfig:
    return CoreConfig(
        dispatch_width=width,
        retire_width=width,
        int_units=max(1, width // 2),
        fp_units=max(1, width // 2),
    )


def width_sensitivity_table(
    widths: Iterable[int] = (2, 4, 8),
    runner: Optional[SweepRunner] = None,
) -> Table:
    """Lock and CSB access time vs superscalar width (4 doublewords)."""
    widths = list(widths)
    if runner is None:
        runner = default_runner()
    jobs = [
        _access_job(scheme, 4, _width_config(width), cpu_ratio=6)
        for width in widths
        for scheme in ("lock", "csb")
    ]
    values = iter(runner.run(jobs))
    table = Table(
        ["width", "lock_cycles", "csb_cycles"],
        title="Sensitivity: superscalar width (32 B access, lock hits L1)",
    )
    for width in widths:
        table.add_row(width, next(values), next(values))
    return table


def ratio_sensitivity_table(
    ratios: Iterable[int] = (2, 4, 6, 8),
    runner: Optional[SweepRunner] = None,
) -> Table:
    """Per-doubleword latency slope vs the CPU/bus frequency ratio."""
    ratios = list(ratios)
    if runner is None:
        runner = default_runner()
    core = CoreConfig()
    jobs = [
        _access_job(scheme, n, core, ratio)
        for ratio in ratios
        for scheme in ("lock", "csb")
        for n in (8, 2)
    ]
    values = iter(runner.run(jobs))
    table = Table(
        ["cpu_ratio", "lock_slope", "csb_slope"],
        title="Sensitivity: per-doubleword latency slope vs bus speed "
        "[CPU cycles per doubleword]",
    )
    for ratio in ratios:
        lock_slope = (next(values) - next(values)) / 6
        csb_slope = (next(values) - next(values)) / 6
        table.add_row(ratio, lock_slope, csb_slope)
    return table


def sensitivity_summary() -> List[str]:
    """Human-readable conclusions (used by the CLI and docs)."""
    width = width_sensitivity_table()
    ratio = ratio_sensitivity_table()
    lock_range = {row[1] for row in width.rows}
    lines = [
        f"lock overhead across widths 2..8: {sorted(lock_range)}",
        "lock slope tracks 2 bus cycles/dw: "
        + ", ".join(
            f"ratio {row[0]} -> {row[1]:.0f}" for row in ratio.rows
        ),
    ]
    return lines
