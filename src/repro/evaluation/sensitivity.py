"""Sensitivity studies backing the paper's §4.3.2 discussion.

* **Superscalar width** — "Experiments with a 2-way and 8-way superscalar
  CPU did not change the lock overhead at all, because of the short data
  and control dependencies."
* **Bus speed** — "Wider and faster buses lead to a smaller per-doubleword
  increase in latency": the locking path's slope is one uncached bus
  transaction per doubleword (2 bus cycles x the CPU/bus frequency ratio),
  while the CSB slope stays one CPU cycle per doubleword regardless.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List

from repro.common.config import (
    BusConfig,
    CoreConfig,
    CSBConfig,
    MemoryHierarchyConfig,
    SystemConfig,
)
from repro.common.tables import Table
from repro.isa.assembler import assemble
from repro.sim.system import System
from repro.workloads.lockbench import (
    DEFAULT_LOCK_ADDR,
    MARK_DONE,
    MARK_START,
    csb_access_kernel,
    locked_access_kernel,
)


def _access_cycles(
    scheme: str, n_doublewords: int, core: CoreConfig, cpu_ratio: int
) -> int:
    config = SystemConfig(
        core=core,
        memory=MemoryHierarchyConfig.with_line_size(64),
        bus=BusConfig(cpu_ratio=cpu_ratio, max_burst_bytes=64),
        csb=CSBConfig(line_size=64),
    )
    system = System(config)
    if scheme == "csb":
        source = csb_access_kernel(n_doublewords)
    else:
        source = locked_access_kernel(n_doublewords)
    system.add_process(assemble(source))
    system.hierarchy.warm(DEFAULT_LOCK_ADDR)
    system.run()
    return system.span(MARK_START, MARK_DONE)


def _width_config(width: int) -> CoreConfig:
    return CoreConfig(
        dispatch_width=width,
        retire_width=width,
        int_units=max(1, width // 2),
        fp_units=max(1, width // 2),
    )


def width_sensitivity_table(widths: Iterable[int] = (2, 4, 8)) -> Table:
    """Lock and CSB access time vs superscalar width (4 doublewords)."""
    widths = list(widths)
    table = Table(
        ["width", "lock_cycles", "csb_cycles"],
        title="Sensitivity: superscalar width (32 B access, lock hits L1)",
    )
    for width in widths:
        table.add_row(
            width,
            _access_cycles("lock", 4, _width_config(width), cpu_ratio=6),
            _access_cycles("csb", 4, _width_config(width), cpu_ratio=6),
        )
    return table


def ratio_sensitivity_table(ratios: Iterable[int] = (2, 4, 6, 8)) -> Table:
    """Per-doubleword latency slope vs the CPU/bus frequency ratio."""
    ratios = list(ratios)
    table = Table(
        ["cpu_ratio", "lock_slope", "csb_slope"],
        title="Sensitivity: per-doubleword latency slope vs bus speed "
        "[CPU cycles per doubleword]",
    )
    core = CoreConfig()
    for ratio in ratios:
        lock_slope = (
            _access_cycles("lock", 8, core, ratio)
            - _access_cycles("lock", 2, core, ratio)
        ) / 6
        csb_slope = (
            _access_cycles("csb", 8, core, ratio)
            - _access_cycles("csb", 2, core, ratio)
        ) / 6
        table.add_row(ratio, lock_slope, csb_slope)
    return table


def sensitivity_summary() -> List[str]:
    """Human-readable conclusions (used by the CLI and docs)."""
    width = width_sensitivity_table()
    ratio = ratio_sensitivity_table()
    lock_range = {row[1] for row in width.rows}
    lines = [
        f"lock overhead across widths 2..8: {sorted(lock_range)}",
        "lock slope tracks 2 bus cycles/dw: "
        + ", ".join(
            f"ratio {row[0]} -> {row[1]:.0f}" for row in ratio.rows
        ),
    ]
    return lines
